/// \file bench_campaign.cpp
/// \brief Gates the adaptive-stopping win of the exp campaign engine: the
///        CI-driven scheduler must finish the same convergence job with at
///        least 30% fewer trials than the fixed-count design.
///
/// The workload is the repo's canonical Monte-Carlo shape — per-technology
/// VMM relative error on small crossbars — which has strongly heterogeneous
/// variance across cells: near-ideal substrates (SRAM) converge in a
/// handful of trials while high-variation analog substrates (ReRAM, PCM)
/// need many. A fixed design must size every cell for the worst one; the
/// adaptive scheduler reinvests trials where the variance is and freezes
/// cells as their confidence interval meets the target.
///
/// Protocol: (1) run the adaptive campaign to the per-cell relative CI
/// target; (2) size a fixed-count campaign at the adaptive run's maximum
/// per-cell trial count (the smallest uniform design that covers the
/// hardest cell); (3) require every cell of BOTH runs to meet the target
/// and adaptive_total <= 0.7 * fixed_total. Exit 1 on a gate violation, so
/// the collect_bench aggregation fails loudly. Both campaigns share the
/// same name/seed/cells/block — trials are identical functions of
/// (seed, cell, rep) — so the comparison is apples-to-apples and a single
/// CIM_EXP_WORKERS pool serves both.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "exp/campaign.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  const auto techs = device::all_technologies();
  const std::vector<int> level_settings{4, 16};

  struct Cell {
    device::Technology tech;
    int levels;
  };
  std::vector<Cell> cells;
  std::vector<std::string> names;
  for (const auto tech : techs)
    for (const int lv : level_settings) {
      cells.push_back({tech, lv});
      names.push_back(std::string(device::technology_name(tech)) + "/L" +
                      std::to_string(lv));
    }

  exp::CampaignConfig ccfg;
  ccfg.name = "campaign_gate";
  ccfg.seed = 97;
  ccfg.cells = cells.size();
  ccfg.cell_names = names;
  ccfg.block = 8;
  ccfg.min_trials = 16;
  ccfg.max_trials = 2048;
  ccfg.max_blocks_per_round = 4;
  ccfg.ci_confidence = 0.95;
  // Absolute target: required n scales with the cell's variance, which
  // spans more than an order of magnitude between near-ideal (SRAM) and
  // high-variation analog (ReRAM/PCM) substrates — exactly the situation
  // where a uniform design over-samples the easy cells.
  ccfg.ci_target = 4e-4;
  ccfg.pool = &util::ThreadPool::global();
  ccfg = exp::apply_env(ccfg);

  const exp::TrialFn trial = [&](std::size_t cell, std::uint64_t /*rep*/,
                                 util::Rng& rng) {
    crossbar::CrossbarConfig cfg;
    cfg.rows = cfg.cols = 16;
    cfg.tech = cells[cell].tech;
    cfg.levels = cells[cell].levels;
    cfg.model_ir_drop = false;
    cfg.verified_writes = true;
    cfg.seed = rng();
    crossbar::Crossbar xbar(cfg);
    util::Matrix lv(16, 16);
    const int levels = xbar.scheme().levels();
    for (auto& v : lv.flat())
      v = static_cast<double>(
          rng.uniform_int(static_cast<std::uint64_t>(levels)));
    xbar.program_levels(lv);
    std::vector<double> v(16, xbar.tech().v_read);
    const auto meas = xbar.vmm(v);
    const auto ideal = xbar.ideal_vmm(v);
    util::RunningStats err;
    for (std::size_t c = 0; c < meas.size(); ++c)
      if (std::abs(ideal[c]) > 1.0)
        err.add(std::abs(meas[c] - ideal[c]) / std::abs(ideal[c]));
    return err.count() > 0 ? err.mean() : 0.0;
  };

  // (1) adaptive run.
  bench::WallTimer adaptive_timer;
  const auto adaptive = exp::run_campaign(ccfg, trial);
  const double adaptive_ms = adaptive_timer.elapsed_ms();

  std::uint64_t worst_n = 0;
  for (const auto& c : adaptive.cells) worst_n = std::max(worst_n, c.stat.n);

  // (2) fixed-count baseline sized for the hardest cell.
  exp::CampaignConfig fcfg = ccfg;
  fcfg.adaptive = false;
  fcfg.fixed_trials = worst_n;
  fcfg.checkpoint_path.clear();    // same fingerprint as the adaptive run:
  fcfg.convergence_csv.clear();    // never resume/overwrite its artifacts
  bench::WallTimer fixed_timer;
  const auto fixed = exp::run_campaign(fcfg, trial);
  const double fixed_ms = fixed_timer.elapsed_ms();

  // (3) verdicts.
  const double z = obs::z_for_confidence(ccfg.ci_confidence);
  util::Table t({"cell", "mean err", "adaptive n", "adaptive ci", "fixed n",
                 "fixed ci", "state"});
  t.set_title("Adaptive vs fixed-count Monte-Carlo (target: ci95 half <= "
              "4e-4 absolute)");
  bool all_converged = true;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const obs::StreamStat& sa = adaptive.cells[c].stat;
    const obs::StreamStat& sf = fixed.cells[c].stat;
    const bool ok = adaptive.cells[c].frozen && !adaptive.cells[c].capped &&
                    sa.ci_half_width(z) <= ccfg.ci_target + 1e-12 &&
                    sf.ci_half_width(z) <= ccfg.ci_target + 1e-12;
    all_converged = all_converged && ok;
    t.add_row({adaptive.cells[c].name, util::Table::num(sa.mean, 4),
               std::to_string(sa.n),
               util::Table::num(sa.ci_half_width(z), 5), std::to_string(sf.n),
               util::Table::num(sf.ci_half_width(z), 5),
               ok ? "ok" : "MISSED"});
  }
  t.print(std::cout);

  const double saved_frac =
      1.0 - static_cast<double>(adaptive.total_trials) /
                static_cast<double>(fixed.total_trials);
  std::cout << "adaptive: " << adaptive.total_trials << " trials in "
            << adaptive.rounds << " rounds; fixed(" << worst_n
            << "/cell): " << fixed.total_trials << " trials; saved "
            << util::Table::num(100.0 * saved_frac, 1) << "%\n";

  bool gate_ok = true;
  if (!all_converged) {
    std::cout << "GATE FAILED: a cell missed the CI target\n";
    gate_ok = false;
  }
  if (saved_frac < 0.30) {
    std::cout << "GATE FAILED: adaptive stopping saved "
              << util::Table::num(100.0 * saved_frac, 1)
              << "% trials, need >= 30%\n";
    gate_ok = false;
  }
  if (gate_ok)
    std::cout << "shape check: adaptive stopping met every CI target with "
              << util::Table::num(100.0 * saved_frac, 1)
              << "% fewer trials than the uniform design.\n";

  bench::report(
      "bench_campaign", total.elapsed_ms(),
      static_cast<double>(adaptive.total_trials + fixed.total_trials),
      {{"adaptive_trials", static_cast<double>(adaptive.total_trials)},
       {"fixed_trials", static_cast<double>(fixed.total_trials)},
       {"saved_frac", saved_frac},
       {"adaptive_wall_ms", adaptive_ms},
       {"fixed_wall_ms", fixed_ms}});
  return gate_ok ? 0 : 1;
}
