/// \file bench_fig7_changepoint.cpp
/// \brief Regenerates **Fig. 7** — "A changepoint is detected when faults
///        are inserted in a ReRAM crossbar after cycle 600" — plus the
///        ML-based faulty-cell-fraction estimator of [52].
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "memtest/power_monitor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace cim;

namespace {

crossbar::CrossbarConfig array_cfg(std::uint64_t seed) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  cfg.levels = 16;
  cfg.model_ir_drop = false;
  cfg.seed = seed;
  return cfg;
}

void program_random(crossbar::Crossbar& xbar, util::Rng& rng) {
  util::Matrix lv(xbar.rows(), xbar.cols());
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(16));
  xbar.program_levels(lv);
}

}  // namespace

int main() {
  bench::WallTimer total;
  // --- the Fig. 7 scenario: faults at cycle 600 -----------------------------
  {
    util::Table t({"faulty cells", "alarm cycle", "detection delay",
                   "located changepoint", "power shift (rel)"});
    t.set_title("Fig. 7 — changepoint detection, faults inserted after cycle 600");
    // Stuck-at-0 faults, as in the paper's accuracy study: a one-sided
    // conductance shift the power monitor sees directly (a mixed SA0/SA1
    // population can partially cancel in total power).
    fault::FaultMix sa0_only;
    sa0_only.sa0 = 1.0;
    sa0_only.sa1 = sa0_only.transition = sa0_only.write_variation = 0.0;
    sa0_only.read_disturb = sa0_only.write_disturb = sa0_only.over_forming = 0.0;

    for (const std::size_t n_faults : {30u, 60u, 120u, 240u}) {
      util::Rng rng(n_faults);
      crossbar::Crossbar xbar(array_cfg(n_faults + 1));
      program_random(xbar, rng);
      const auto map = fault::FaultMap::with_fault_count(32, 32, n_faults,
                                                         sa0_only, rng);

      memtest::MonitorConfig cfg;
      cfg.cycles = 1200;
      const auto run = memtest::run_monitored_workload(xbar, cfg, rng, &map, 600);

      util::RunningStats pre, post;
      for (std::size_t i = 0; i < run.power_mw.size(); ++i)
        (i < 600 ? pre : post).add(run.power_mw[i]);

      t.add_row(
          {std::to_string(n_faults),
           run.alarm_cycle ? std::to_string(*run.alarm_cycle) : "none",
           run.alarm_cycle ? std::to_string(*run.alarm_cycle - 600) : "-",
           run.located_changepoint ? std::to_string(*run.located_changepoint)
                                   : "none",
           util::Table::num((post.mean() - pre.mean()) / pre.mean(), 4)});
    }
    t.print(std::cout);
  }

  // --- the ML fault-rate estimator ------------------------------------------
  {
    util::Rng rng(77);
    auto cfg = array_cfg(0);
    cfg.rows = cfg.cols = 16;
    memtest::MonitorConfig mon;
    mon.cycles = 700;
    mon.cusum.warmup = 150;

    const auto train =
        memtest::FaultRateEstimator::generate_training_data(cfg, mon, 60, rng);
    memtest::FaultRateEstimator est;
    est.train(train);

    const auto holdout =
        memtest::FaultRateEstimator::generate_training_data(cfg, mon, 15, rng);
    std::vector<double> pred, truth;
    util::Table t({"true fault fraction", "estimated fraction", "abs error"});
    t.set_title("ML fault-rate estimator [52] — held-out examples");
    for (const auto& ex : holdout) {
      const double p = est.estimate(ex.features);
      pred.push_back(p);
      truth.push_back(ex.fault_fraction);
      t.add_row({util::Table::num(ex.fault_fraction, 3),
                 util::Table::num(p, 3),
                 util::Table::num(std::abs(p - ex.fault_fraction), 3)});
    }
    t.print(std::cout);
    std::cout << "train R^2 = " << util::Table::num(est.r2(train), 3)
              << ", held-out correlation = "
              << util::Table::num(util::pearson(pred, truth), 3) << "\n";
  }
  std::cout << "shape check: alarm lands shortly after cycle 600, the offline "
               "locator pins the changepoint near 600, the power shift and "
               "estimator output grow with the fault fraction.\n";
  bench::report("bench_fig7_changepoint", total.elapsed_ms(), 4.0 * 1200.0 + 75.0 * 700.0);
  return 0;
}
