/// \file bench_fig5_adc_share.cpp
/// \brief Regenerates **Fig. 5** — "Area and Power share of CIM design
///        blocks": the ADC dominates CIM die area and power consumption.
///        Prints the per-block breakdown of an ISAAC-style tile and sweeps
///        ADC resolution and ADC count. Also cross-checks the analytic
///        model against a *measured* breakdown from cim::obs telemetry
///        collected while a real CimTile runs the same workload.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/cim_tile.hpp"
#include "obs/obs.hpp"
#include "periphery/tile_cost.hpp"
#include "periphery/voltage_domains.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  periphery::TileConfig tile;
  tile.rows = tile.cols = 128;
  tile.adc_bits = 8;
  tile.adcs = 1;
  tile.dac_bits = 1;
  tile.input_bits = 8;

  // --- per-block breakdown ---------------------------------------------------
  {
    const auto blocks = periphery::tile_breakdown(tile);
    const auto total = periphery::total_cost(blocks);
    util::Table t({"block", "area (um^2)", "area share", "power (mW)",
                   "power share"});
    t.set_title("Fig. 5 — area/power share of CIM design blocks (128x128, 8-bit ADC)");
    for (const auto& b : blocks) {
      t.add_row({b.name, util::Table::num(b.area_um2, 1),
                 util::Table::num(100.0 * b.area_um2 / total.area_um2, 1) + "%",
                 util::Table::num(b.power_mw, 4),
                 util::Table::num(100.0 * b.power_mw / total.power_mw, 1) + "%"});
    }
    t.add_row({"total", util::Table::num(total.area_um2, 1), "100%",
               util::Table::num(total.power_mw, 3), "100%"});
    t.print(std::cout);
  }

  // --- sweep ADC resolution ---------------------------------------------------
  {
    util::Table t({"ADC bits", "ADC area share", "ADC power share",
                   "tile VMM latency (ns)", "tile VMM energy (pJ)"});
    t.set_title("Fig. 5 sweep — ADC dominance grows with resolution");
    for (const int bits : {4, 5, 6, 7, 8, 9, 10}) {
      auto cfg = tile;
      cfg.adc_bits = bits;
      const auto blocks = periphery::tile_breakdown(cfg);
      t.add_row({std::to_string(bits),
                 util::Table::num(100.0 * periphery::area_share(blocks, "ADC"), 1) + "%",
                 util::Table::num(100.0 * periphery::power_share(blocks, "ADC"), 1) + "%",
                 util::Table::num(periphery::tile_vmm_latency_ns(cfg), 1),
                 util::Table::num(periphery::tile_vmm_energy_pj(cfg), 1)});
    }
    t.print(std::cout);
  }

  // --- sweep ADC provisioning --------------------------------------------------
  {
    util::Table t({"# ADCs", "ADC area share", "VMM latency (ns)"});
    t.set_title("Fig. 5 sweep — throughput vs ADC count (8-bit)");
    for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 128u}) {
      auto cfg = tile;
      cfg.adcs = n;
      const auto blocks = periphery::tile_breakdown(cfg);
      t.add_row({std::to_string(n),
                 util::Table::num(100.0 * periphery::area_share(blocks, "ADC"), 1) + "%",
                 util::Table::num(periphery::tile_vmm_latency_ns(cfg), 1)});
    }
    t.print(std::cout);
  }
  // --- read/write voltage-domain burden (Conclusions, point 4) ---------------
  {
    util::Table t({"plan (vdd/read/write/program V)", "extra rails",
                   "pump+shifter area (um^2)", "write energy multiplier"});
    t.set_title("Voltage-domain burden — 'skewed voltage for read and write'");
    struct Plan {
      const char* name;
      periphery::VoltagePlan plan;
    };
    const Plan plans[] = {
        {"SRAM-like 1.0/1.0/1.0/-", {1.0, 1.0, 1.0, 0.0}},
        {"ReRAM 1.0/0.2/2.0/-", {1.0, 0.2, 2.0, 0.0}},
        {"PCM 1.0/0.3/3.0/-", {1.0, 0.3, 3.0, 0.0}},
        {"FeRFET 1.0/0.2/2.0/2.5", {1.0, 0.2, 2.0, 2.5}},
    };
    for (const auto& p : plans) {
      const auto rep = periphery::analyze_voltage_domains(p.plan, 128);
      t.add_row({p.name, std::to_string(rep.rails.size()),
                 util::Table::num(rep.total_area_um2, 0),
                 util::Table::num(rep.write_energy_multiplier, 2) + "x"});
    }
    t.print(std::cout);
  }

  // --- measured breakdown from telemetry --------------------------------------
  // The sweeps above are analytic. Here the same 128x128 tile actually runs
  // VMMs with cim::obs metrics on, and obs::breakdown() regenerates the
  // Fig. 5 energy shares from the per-component attribution recorded by the
  // simulator itself (tests/obs/test_breakdown_fig5.cpp checks the two
  // agree within 10%).
  {
    const auto prior_mode = obs::mode();
    obs::set_mode(obs::Mode::kOff);
    core::CimTileConfig cfg;
    cfg.tile = tile;
    cfg.weight_bits = 4;
    cfg.seed = 42;
    core::CimTile sim_tile(cfg);
    util::Rng rng(99);
    util::Matrix w(cfg.tile.cols, cfg.tile.rows);
    for (double& v : w.flat())
      v = static_cast<double>(rng.uniform_int(31)) - 15.0;
    sim_tile.program_weights(w);  // programming is not part of Fig. 5

    obs::set_mode(obs::Mode::kMetrics);
    obs::reset();
    std::vector<std::uint32_t> x(cfg.tile.rows);
    for (int it = 0; it < 4; ++it) {
      for (auto& v : x) v = rng.uniform_int(255);
      (void)sim_tile.vmm_int(x, cfg.tile.input_bits);
    }
    const auto rows = obs::breakdown();
    obs::set_mode(prior_mode);
    obs::reset();

    util::Table t({"component", "energy (pJ)", "energy share", "sim time (ns)"});
    t.set_title("Fig. 5 measured — obs::breakdown() of 4 VMMs on the same tile");
    for (const auto& row : rows) {
      t.add_row({std::string(obs::component_name(row.comp)),
                 util::Table::num(row.energy_pj, 1),
                 util::Table::num(100.0 * row.energy_share, 1) + "%",
                 util::Table::num(row.sim_time_ns, 1)});
    }
    t.print(std::cout);
  }

  std::cout << "shape check (paper: ADC dominates area and >65% of power):\n"
               "the ADC is the largest block at 8 bits, its share grows "
               "steeply with bits,\nand buying throughput with more ADCs "
               "pushes the area share towards 100%.\n";
  bench::report("bench_fig5_adc_share", total.elapsed_ms(), 18.0);
  return 0;
}
