/// \file bench_write_read_interleave.cpp
/// \brief Write-heavy workload gate for the incremental conductance cache.
///
/// The paper's testing / fault-tolerance loops (march tests, program-verify,
/// retraining-in-the-loop, online scouting) interleave single-cell writes
/// with array reads. Before dirty tracking, every such write forced the
/// next VMM to rebuild the whole O(rows*cols) conductance cache; with
/// dirty tracking the repair is O(|dirty|).
///
/// Two workloads at 256x256, each run twice — incremental_cache on vs. off
/// (the legacy full-rebuild behaviour) — from identical seeds:
///
///   1. program-verify: write a handful of cells, then verify-read them by
///      driving only the written wordline (one-hot voltage vector). This is
///      the gated workload: outputs must be bit-identical between the two
///      cache modes, and the incremental mode must be >= 5x faster.
///   2. dense interleave: same write pattern, but every VMM drives all 256
///      wordlines (informational; the VMM kernel itself dominates here).
///
/// Exit code is non-zero if the bit-identical gate or the 5x speedup gate
/// fails, mirroring bench_parallel's determinism gate.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace cim;

namespace {

constexpr std::size_t kArray = 256;   ///< array edge (rows == cols)
constexpr int kIters = 240;           ///< write/verify rounds per run
constexpr int kWritesPerIter = 4;     ///< cells written per round

crossbar::Crossbar make_xbar(bool incremental) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = kArray;
  cfg.levels = 16;
  cfg.seed = 41;
  cfg.incremental_cache = incremental;
  crossbar::Crossbar xbar(cfg);
  util::Rng rng(43);
  util::Matrix lv(kArray, kArray);
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(16));
  xbar.program_levels(lv);
  xbar.reset_stats();
  return xbar;
}

/// Runs the interleaved write/VMM loop; `dense` selects all-wordline reads
/// instead of the one-hot program-verify read. Returns the concatenation of
/// every VMM output (the bit-identical gate compares these across modes).
std::vector<double> run_workload(bool incremental, bool dense,
                                 double& wall_ms,
                                 crossbar::CrossbarStats& stats_out) {
  auto xbar = make_xbar(incremental);
  util::Rng rng(47);  // same op sequence for both cache modes
  std::vector<double> v(kArray, 0.0);
  std::vector<double> currents(kArray, 0.0);
  std::vector<double> outputs;
  outputs.reserve(static_cast<std::size_t>(kIters) * kArray);

  bench::WallTimer timer;
  for (int it = 0; it < kIters; ++it) {
    std::size_t last_row = 0;
    for (int w = 0; w < kWritesPerIter; ++w) {
      const std::size_t r = rng.uniform_int(kArray);
      const std::size_t c = rng.uniform_int(kArray);
      xbar.write_bit(r, c, rng.bernoulli(0.5));
      last_row = r;
    }
    if (dense) {
      for (auto& x : v) x = 0.2;
    } else {
      // Program-verify read: drive only the last written wordline.
      std::fill(v.begin(), v.end(), 0.0);
      v[last_row] = 0.2;
    }
    xbar.vmm(v, currents);
    outputs.insert(outputs.end(), currents.begin(), currents.end());
  }
  wall_ms = timer.elapsed_ms();
  stats_out = xbar.stats();
  return outputs;
}

}  // namespace

int main() {
  bench::WallTimer total;
  bool all_pass = true;
  util::Table t({"workload", "full-rebuild (ms)", "incremental (ms)",
                 "speedup", "rebuilds", "delta updates", "bit-identical"});
  t.set_title("Interleaved write/VMM at 256x256: incremental cache vs. "
              "whole-cache invalidation");

  double speedup_verify = 0.0, speedup_dense = 0.0;
  crossbar::CrossbarStats incr_stats{};
  for (const bool dense : {false, true}) {
    double t_full = 0.0, t_incr = 0.0;
    crossbar::CrossbarStats s_full{}, s_incr{};
    const auto ref = run_workload(/*incremental=*/false, dense, t_full, s_full);
    const auto out = run_workload(/*incremental=*/true, dense, t_incr, s_incr);
    const bool identical = ref == out;
    const double speedup = t_incr > 0.0 ? t_full / t_incr : 0.0;
    (dense ? speedup_dense : speedup_verify) = speedup;
    if (!dense) incr_stats = s_incr;
    // The program-verify workload is the gate; the dense one is reported
    // for context (the VMM kernel dominates its runtime on both paths).
    all_pass &= identical && (dense || speedup >= 5.0);
    t.add_row({dense ? "dense interleave" : "program-verify",
               util::Table::num(t_full, 1), util::Table::num(t_incr, 1),
               util::Table::num(speedup, 2),
               std::to_string(s_incr.cache_full_rebuilds),
               std::to_string(s_incr.cache_delta_updates),
               identical ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << (all_pass
                    ? "write/read interleave gate: PASS — bit-identical and "
                      ">=5x on the program-verify workload\n"
                    : "write/read interleave gate: FAIL\n");

  const double ops = 2.0 * 2.0 * kIters * (kWritesPerIter + 1);
  bench::report("bench_write_read_interleave", total.elapsed_ms(), ops,
                {{"speedup_program_verify", speedup_verify},
                 {"speedup_dense", speedup_dense},
                 {"incr_full_rebuilds",
                  static_cast<double>(incr_stats.cache_full_rebuilds)},
                 {"incr_delta_updates",
                  static_cast<double>(incr_stats.cache_delta_updates)},
                 {"incr_dirty_cells",
                  static_cast<double>(incr_stats.cache_dirty_cells)},
                 {"gate_pass", all_pass ? 1.0 : 0.0}});
  return all_pass ? 0 : 1;
}
