/// \file bench_technology_sweep.cpp
/// \brief Section II.B: "The memory array for CIM architecture can be
///        implemented using different non-volatile memory technologies such
///        as PCM, ReRAM and MRAM as well as conventional SRAM and DRAM ...
///        the basic concept of CIM and its core functional units are
///        similar and independent of the adopted memory technology."
///        Sweeps every technology preset through the same VMM workload and
///        reports how the device parameters shape accuracy, cost and
///        reliability.
///
/// The per-technology VMM-error statistics run as an adaptive Monte-Carlo
/// campaign (exp::run_campaign): each cell is one technology, each trial
/// builds a fresh 32x32 array from a (seed, cell, rep) counter-split RNG
/// and measures one VMM's mean relative error, and trials stop per cell
/// once the 95% CI half-width falls under 5% of the mean. Results are
/// bit-identical for any CIM_THREADS / CIM_EXP_WORKERS.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "exp/campaign.hpp"
#include "memtest/march.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  const auto techs = device::all_technologies();

  // --- device parameter card --------------------------------------------------
  {
    util::Table t({"technology", "Ron/Roff (kOhm)", "levels", "cell (F^2)",
                   "write (ns/pJ)", "read (ns/pJ)", "endurance",
                   "non-volatile"});
    t.set_title("Section II.B — technology presets");
    for (const auto tech : techs) {
      const auto p = device::technology_params(tech);
      t.add_row({std::string(device::technology_name(tech)),
                 util::Table::num(p.r_on_kohm, 1) + "/" +
                     util::Table::num(p.r_off_kohm, 0),
                 std::to_string(p.max_levels),
                 util::Table::num(p.cell_area_f2, 0),
                 util::Table::num(p.t_write_ns, 1) + "/" +
                     util::Table::num(p.e_write_pj, 2),
                 util::Table::num(p.t_read_ns, 1) + "/" +
                     util::Table::num(p.e_read_pj, 3),
                 util::Table::num(p.endurance_mean, 0),
                 p.nonvolatile ? "yes" : "no"});
    }
    t.print(std::cout);
  }

  // --- fixed-seed cost/reliability pass (one array per technology) ------------
  struct FixedRow {
    int levels = 0;
    double vmm_energy = 0.0;
    double coverage = 0.0;
    double march_us = 0.0;
  };
  std::vector<FixedRow> fixed(techs.size());
  for (std::size_t ti = 0; ti < techs.size(); ++ti) {
    crossbar::CrossbarConfig cfg;
    cfg.rows = cfg.cols = 32;
    cfg.tech = techs[ti];
    cfg.levels = 16;  // clamped to the technology's capability
    cfg.model_ir_drop = false;
    cfg.verified_writes = true;
    cfg.seed = 31;
    crossbar::Crossbar xbar(cfg);

    util::Rng rng(7);
    util::Matrix lv(32, 32);
    const int levels = xbar.scheme().levels();
    for (auto& v : lv.flat())
      v = static_cast<double>(
          rng.uniform_int(static_cast<std::uint64_t>(levels)));
    xbar.program_levels(lv);
    std::vector<double> v(32, xbar.tech().v_read);
    xbar.reset_stats();
    for (int rep = 0; rep < 16; ++rep) (void)xbar.vmm(v);

    crossbar::CrossbarConfig mcfg = cfg;
    mcfg.levels = 2;
    mcfg.seed = 41;
    crossbar::Crossbar marr(mcfg);
    util::Rng frng(9);
    const auto map = fault::FaultMap::with_fault_count(
        32, 32, 16, fault::FaultMix::stuck_at_only(), frng);
    marr.apply_faults(map);
    const auto march = memtest::run_march(marr, memtest::march_cstar());

    fixed[ti] = {levels, xbar.stats().energy_pj / 16.0,
                 memtest::fault_coverage(map, march), march.time_ns / 1e3};
  }

  // --- adaptive VMM-error campaign over every substrate ------------------------
  exp::CampaignConfig ccfg;
  ccfg.name = "technology_sweep";
  ccfg.seed = 31;
  ccfg.cells = techs.size();
  for (const auto tech : techs)
    ccfg.cell_names.emplace_back(device::technology_name(tech));
  ccfg.block = 4;
  ccfg.min_trials = 8;
  ccfg.max_trials = 64;
  ccfg.ci_confidence = 0.95;
  ccfg.ci_rel_target = 0.05;
  ccfg.pool = &util::ThreadPool::global();
  ccfg = exp::apply_env(ccfg);

  const exp::TrialFn trial = [&](std::size_t cell, std::uint64_t /*rep*/,
                                 util::Rng& rng) {
    crossbar::CrossbarConfig cfg;
    cfg.rows = cfg.cols = 32;
    cfg.tech = techs[cell];
    cfg.levels = 16;
    cfg.model_ir_drop = false;
    cfg.verified_writes = true;
    cfg.seed = rng();
    crossbar::Crossbar xbar(cfg);
    util::Matrix lv(32, 32);
    const int levels = xbar.scheme().levels();
    for (auto& v : lv.flat())
      v = static_cast<double>(
          rng.uniform_int(static_cast<std::uint64_t>(levels)));
    xbar.program_levels(lv);
    std::vector<double> v(32, xbar.tech().v_read);
    const auto meas = xbar.vmm(v);
    const auto ideal = xbar.ideal_vmm(v);
    util::RunningStats err;
    for (std::size_t c = 0; c < meas.size(); ++c)
      if (std::abs(ideal[c]) > 1.0)
        err.add(std::abs(meas[c] - ideal[c]) / std::abs(ideal[c]));
    return err.count() > 0 ? err.mean() : 0.0;
  };
  const auto res = exp::run_campaign(ccfg, trial);

  {
    util::Table t({"technology", "usable levels", "VMM rel err (mean)",
                   "ci95 half", "trials", "VMM energy (pJ)",
                   "March C* coverage", "March C* time (us)"});
    t.set_title("Same CIM workload, every substrate (32x32 array, adaptive "
                "Monte-Carlo)");
    const double zz = obs::z_for_confidence(ccfg.ci_confidence);
    for (std::size_t ti = 0; ti < techs.size(); ++ti) {
      const auto& cell = res.cells[ti];
      t.add_row({cell.name, std::to_string(fixed[ti].levels),
                 util::Table::num(cell.stat.mean, 4),
                 util::Table::num(cell.stat.ci_half_width(zz), 4),
                 std::to_string(cell.stat.n),
                 util::Table::num(fixed[ti].vmm_energy, 2),
                 util::Table::num(fixed[ti].coverage, 3),
                 util::Table::num(fixed[ti].march_us, 1)});
    }
    t.print(std::cout);
  }
  std::cout << "shape check: the same functional units run on every "
               "substrate; binary technologies (MRAM/SRAM/DRAM) lose the "
               "multi-level density, PCM pays write cost, ReRAM balances "
               "levels vs variation — the Section II.B trade-off space. "
               "High-variance substrates drew more trials ("
            << res.total_trials << " total over " << res.rounds
            << " rounds).\n";
  bench::report("bench_technology_sweep", total.elapsed_ms(),
                static_cast<double>(res.total_trials),
                {{"campaign_rounds", static_cast<double>(res.rounds)},
                 {"campaign_shards", static_cast<double>(res.worker_shards)}});
  return 0;
}
