/// \file bench_technology_sweep.cpp
/// \brief Section II.B: "The memory array for CIM architecture can be
///        implemented using different non-volatile memory technologies such
///        as PCM, ReRAM and MRAM as well as conventional SRAM and DRAM ...
///        the basic concept of CIM and its core functional units are
///        similar and independent of the adopted memory technology."
///        Sweeps every technology preset through the same VMM workload and
///        reports how the device parameters shape accuracy, cost and
///        reliability. Technologies are independent trials and fan out
///        across the global thread pool; rows print in preset order, so the
///        table is identical for any CIM_THREADS.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "memtest/march.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  // --- device parameter card --------------------------------------------------
  {
    util::Table t({"technology", "Ron/Roff (kOhm)", "levels", "cell (F^2)",
                   "write (ns/pJ)", "read (ns/pJ)", "endurance",
                   "non-volatile"});
    t.set_title("Section II.B — technology presets");
    for (const auto tech : device::all_technologies()) {
      const auto p = device::technology_params(tech);
      t.add_row({std::string(device::technology_name(tech)),
                 util::Table::num(p.r_on_kohm, 1) + "/" +
                     util::Table::num(p.r_off_kohm, 0),
                 std::to_string(p.max_levels),
                 util::Table::num(p.cell_area_f2, 0),
                 util::Table::num(p.t_write_ns, 1) + "/" +
                     util::Table::num(p.e_write_pj, 2),
                 util::Table::num(p.t_read_ns, 1) + "/" +
                     util::Table::num(p.e_read_pj, 3),
                 util::Table::num(p.endurance_mean, 0),
                 p.nonvolatile ? "yes" : "no"});
    }
    t.print(std::cout);
  }

  // --- the same 32x32 VMM workload on every technology -------------------------
  std::size_t vmm_total = 0;
  {
    util::Table t({"technology", "usable levels", "VMM rel err (mean)",
                   "VMM energy (pJ)", "March C* coverage",
                   "March C* time (us)"});
    t.set_title("Same CIM workload, every substrate (32x32 array)");

    struct Row {
      int levels = 0;
      double err_mean = 0.0;
      double vmm_energy = 0.0;
      double coverage = 0.0;
      double march_us = 0.0;
    };
    const auto techs = device::all_technologies();
    std::vector<Row> rows(techs.size());
    util::ThreadPool::global().parallel_for(
        0, techs.size(), [&](std::size_t ti) {
          const auto tech = techs[ti];
          crossbar::CrossbarConfig cfg;
          cfg.rows = cfg.cols = 32;
          cfg.tech = tech;
          cfg.levels = 16;  // clamped to the technology's capability
          cfg.model_ir_drop = false;
          cfg.verified_writes = true;
          cfg.seed = 31;
          crossbar::Crossbar xbar(cfg);

          util::Rng rng(7);
          util::Matrix lv(32, 32);
          const int levels = xbar.scheme().levels();
          for (auto& v : lv.flat())
            v = static_cast<double>(rng.uniform_int(
                static_cast<std::uint64_t>(levels)));
          xbar.program_levels(lv);

          std::vector<double> v(32, xbar.tech().v_read);
          util::RunningStats err;
          xbar.reset_stats();
          for (int rep = 0; rep < 16; ++rep) {
            const auto meas = xbar.vmm(v);
            const auto ideal = xbar.ideal_vmm(v);
            for (std::size_t c = 0; c < 32; ++c)
              if (std::abs(ideal[c]) > 1.0)
                err.add(std::abs(meas[c] - ideal[c]) / std::abs(ideal[c]));
          }

          // March C* on a fresh faulty array of the same technology.
          crossbar::CrossbarConfig mcfg = cfg;
          mcfg.levels = 2;
          mcfg.seed = 41;
          crossbar::Crossbar marr(mcfg);
          util::Rng frng(9);
          const auto map = fault::FaultMap::with_fault_count(
              32, 32, 16, fault::FaultMix::stuck_at_only(), frng);
          marr.apply_faults(map);
          const auto march = memtest::run_march(marr, memtest::march_cstar());

          rows[ti] = {levels, err.mean(), xbar.stats().energy_pj / 16.0,
                      memtest::fault_coverage(map, march),
                      march.time_ns / 1e3};
        });

    for (std::size_t ti = 0; ti < techs.size(); ++ti) {
      t.add_row({std::string(device::technology_name(techs[ti])),
                 std::to_string(rows[ti].levels),
                 util::Table::num(rows[ti].err_mean, 4),
                 util::Table::num(rows[ti].vmm_energy, 2),
                 util::Table::num(rows[ti].coverage, 3),
                 util::Table::num(rows[ti].march_us, 1)});
    }
    t.print(std::cout);
    vmm_total = techs.size() * 16;
  }
  std::cout << "shape check: the same functional units run on every "
               "substrate; binary technologies (MRAM/SRAM/DRAM) lose the "
               "multi-level density, PCM pays write cost, ReRAM balances "
               "levels vs variation — the Section II.B trade-off space.\n";
  bench::report("bench_technology_sweep", total.elapsed_ms(),
                static_cast<double>(vmm_total));
  return 0;
}
