/// \file bench_fig11_mil_xor.cpp
/// \brief Regenerates **Fig. 11** — the programmable XOR/XNOR
///        Memory-in-Logic cell: "P and !P ... configure the gate to either
///        compute the XOR or XNOR function of the inputs A and B", with the
///        program and data paths fully separated.
#include <iostream>

#include "bench_common.hpp"
#include "ferfet/mil_cells.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  // --- exhaustive functional table over inputs x programmed states -----------
  {
    util::Table t({"P (function)", "A", "B", "OUT", "expected"});
    t.set_title("Fig. 11 — programmable XOR/XNOR cell, exhaustive check");
    for (const auto fn : {ferfet::MilFunction::kXnor, ferfet::MilFunction::kXor}) {
      ferfet::XorXnorCell cell({}, fn);
      for (int a = 0; a <= 1; ++a) {
        for (int b = 0; b <= 1; ++b) {
          const bool out = cell.eval(a, b);
          const bool expected =
              fn == ferfet::MilFunction::kXnor ? (a == b) : (a != b);
          t.add_row({fn == ferfet::MilFunction::kXnor ? "XNOR" : "XOR",
                     std::to_string(a), std::to_string(b),
                     std::to_string(out),
                     out == expected ? "ok" : "MISMATCH"});
        }
      }
    }
    t.print(std::cout);
  }

  // --- reprogramming + cost accounting ----------------------------------------
  {
    ferfet::XorXnorCell cell({}, ferfet::MilFunction::kXnor);
    for (int i = 0; i < 1000; ++i) (void)cell.eval(i & 1, (i >> 1) & 1);
    const auto eval_stats = cell.stats();
    cell.program(ferfet::MilFunction::kXor);
    const auto after = cell.stats();

    util::Table t({"metric", "value"});
    t.set_title("Fig. 11 — cell cost accounting (1000 evaluations + 1 reprogram)");
    t.add_row({"transistors", std::to_string(ferfet::XorXnorCell::transistor_count())});
    t.add_row({"evaluations", std::to_string(eval_stats.evaluations)});
    t.add_row({"eval energy total (pJ)", util::Table::num(eval_stats.energy_pj, 3)});
    t.add_row({"energy per eval (fJ)",
               util::Table::num(1e3 * eval_stats.energy_pj /
                                    double(eval_stats.evaluations), 2)});
    t.add_row({"reprogram energy (pJ)",
               util::Table::num(after.energy_pj - eval_stats.energy_pj, 3)});
    t.add_row({"reprogram time (ns)",
               util::Table::num(after.time_ns - eval_stats.time_ns, 2)});
    t.print(std::cout);
  }
  std::cout << "shape check: the same four transistors compute XOR or XNOR "
               "depending on the non-volatile program state; reprogramming "
               "costs ~an order of magnitude more energy than one "
               "evaluation (separate program/data paths).\n";
  bench::report("bench_fig11_mil_xor", total.elapsed_ms(), 1008.0);
  return 0;
}
