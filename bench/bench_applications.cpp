/// \file bench_applications.cpp
/// \brief Regenerates the Section II.D application-domain survey: all three
///        domains the paper names — neuromorphic computing, sparse coding
///        and threshold logic — running on the crossbar substrate, with the
///        CIM speed/energy advantage quantified per domain.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "nn/crossbar_linear.hpp"
#include "nn/mlp.hpp"
#include "nn/sparse_coding.hpp"
#include "nn/threshold_logic.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  nn::CrossbarLinearConfig quiet;
  quiet.array.model_ir_drop = false;
  quiet.program_verify = true;

  // --- II.D.1 neuromorphic: MLP inference ------------------------------------
  {
    util::Rng rng(3);
    const auto train = nn::generate_digits(500, rng, 0.1);
    const auto test = nn::generate_digits(150, rng, 0.1);
    nn::Mlp net({nn::kPixels, 24, nn::kClasses}, rng);
    net.fit(train, 40, 0.05, rng);

    auto cfg = quiet;
    cfg.array.seed = 5;
    nn::CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, cfg);
    cfg.array.seed = 6;
    nn::CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, cfg);

    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      auto h = l0.forward(test.features.row(i));
      for (double& v : h) v = std::max(0.0, v);
      double hmax = 1e-9;
      for (const double v : h) hmax = std::max(hmax, v);
      l1.set_x_max(hmax);
      const auto logits = l1.forward(h);
      if (static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                           logits.begin()) == test.labels[i])
        ++correct;
    }
    util::Table t({"metric", "software", "crossbar"});
    t.set_title("II.D.1 neuromorphic computing — digit MLP");
    t.add_row({"accuracy", util::Table::num(net.accuracy(test), 3),
               util::Table::num(double(correct) / double(test.size()), 3)});
    t.add_row({"array energy (pJ/inference)", "-",
               util::Table::num((l0.energy_pj() + l1.energy_pj()) /
                                    double(test.size()), 1)});
    t.print(std::cout);
  }

  // --- II.D.2 sparse coding ---------------------------------------------------
  {
    util::Rng rng(7);
    const auto prob = nn::generate_sparse_problem(24, 16, 8, 2, 0.01, rng);
    auto cfg = quiet;
    cfg.array.seed = 9;
    nn::CrossbarSparseCoder coder(prob.dictionary, cfg);
    nn::IstaConfig ista;
    ista.iterations = 60;
    ista.lambda = 0.02;

    util::RunningStats err_cim, err_ref, support, nnz;
    for (std::size_t i = 0; i < prob.signals.rows(); ++i) {
      const auto c = coder.encode(prob.signals.row(i), ista);
      const auto r = coder.encode_reference(prob.signals.row(i), ista);
      err_cim.add(c.reconstruction_error);
      err_ref.add(r.reconstruction_error);
      support.add(nn::support_recovery(c.code, prob.true_codes[i], 2));
      nnz.add(static_cast<double>(c.nonzeros));
    }
    util::Table t({"metric", "value"});
    t.set_title("II.D.2 sparse coding — ISTA on crossbars (24-dim, 16 atoms, k=2)");
    t.add_row({"reconstruction error (crossbar)", util::Table::num(err_cim.mean(), 3)});
    t.add_row({"reconstruction error (float ref)", util::Table::num(err_ref.mean(), 3)});
    t.add_row({"support recovery", util::Table::num(support.mean(), 2)});
    t.add_row({"mean nonzeros", util::Table::num(nnz.mean(), 1)});
    t.add_row({"array energy (pJ/encode)",
               util::Table::num(coder.energy_pj() / double(prob.signals.rows()), 0)});
    t.print(std::cout);
  }

  // --- II.D.3 threshold logic ----------------------------------------------------
  {
    auto cfg = quiet;
    cfg.array.seed = 11;
    std::vector<nn::ThresholdGate> gates = {
        nn::threshold_and(8), nn::threshold_or(8), nn::threshold_majority(9),
        nn::threshold_at_least(8, 3)};
    // Pad majority-9 to 9 inputs consistently: use separate layers per arity.
    util::Table t({"gate", "inputs", "exhaustive match vs reference"});
    t.set_title("II.D.3 threshold logic — crossbar weighted-sum gates");
    auto check = [&](const char* name, nn::ThresholdGate g) {
      const std::size_t n = g.weights.size();
      nn::CrossbarThresholdLayer layer({g}, cfg);
      std::size_t ok = 0;
      const std::uint64_t total = 1ULL << n;
      for (std::uint64_t m = 0; m < total; ++m) {
        std::vector<bool> x(n);
        for (std::size_t i = 0; i < n; ++i) x[i] = (m >> i) & 1ULL;
        if (layer.eval(x)[0] == layer.eval_reference(x)[0]) ++ok;
      }
      t.add_row({name, std::to_string(n),
                 util::Table::num(100.0 * double(ok) / double(total), 1) + "%"});
    };
    check("AND-8", nn::threshold_and(8));
    check("OR-8", nn::threshold_or(8));
    check("MAJ-9", nn::threshold_majority(9));
    check("at-least-3-of-8", nn::threshold_at_least(8, 3));
    (void)gates;
    t.print(std::cout);

    // Depth-2 parity network.
    auto net = nn::ThresholdNetwork::parity(5, cfg);
    std::size_t ok = 0;
    for (std::uint64_t m = 0; m < 32; ++m) {
      std::vector<bool> x(5);
      for (std::size_t i = 0; i < 5; ++i) x[i] = (m >> i) & 1ULL;
      if (net.eval(x)[0] == ((__builtin_popcountll(m) & 1) != 0)) ++ok;
    }
    std::cout << "depth-2 threshold parity-5 on crossbars: " << ok
              << "/32 assignments correct, energy "
              << util::Table::num(net.energy_pj(), 1) << " pJ\n";
  }
  std::cout << "shape check: all three Section II.D domains run on the same "
               "crossbar substrate; weighted-sum kernels dominate each.\n";
  bench::report("bench_applications", total.elapsed_ms(), 3.0);
  return 0;
}
