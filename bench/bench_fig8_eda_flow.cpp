/// \file bench_fig8_eda_flow.cpp
/// \brief Regenerates **Fig. 8 / Section IV** — the EDA flow from logic
///        synthesis through technology mapping for the three ReRAM logic
///        families (IMPLY, Majority/ReVAMP, MAGIC), reporting device count,
///        delay and area-delay product per benchmark, plus the
///        area-constrained (cell-reuse) ablation of the CONTRA-style flow
///        and the static-vs-measured cost cross-validation gate (the
///        wear/cost certifier's energy expectation must land within 15% of
///        the charge the executors actually push through the crossbar).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "core/simd_magic.hpp"
#include "crossbar/crossbar.hpp"
#include "device/technology.hpp"
#include "eda/aig.hpp"
#include "eda/esop_mapper.hpp"
#include "eda/flow.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/wear_cost.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  const auto suite = eda::standard_suite();

  // --- synthesis statistics ---------------------------------------------------
  {
    util::Table t({"circuit", "PI", "PO", "AIG nodes", "AIG depth",
                   "MIG nodes", "MIG depth", "ESOP cubes", "BDD nodes"});
    t.set_title("Fig. 8 phase 1/2 — synthesis statistics");
    for (const auto& bc : suite) {
      const auto rep =
          eda::run_flow(bc.name, bc.netlist, eda::LogicFamily::kMagic,
                        {.reuse_cells = true, .verify = false});
      t.add_row({bc.name, std::to_string(bc.netlist.num_inputs()),
                 std::to_string(bc.netlist.num_outputs()),
                 std::to_string(rep.aig_nodes), std::to_string(rep.aig_depth),
                 std::to_string(rep.mig_nodes), std::to_string(rep.mig_depth),
                 rep.esop_cubes ? std::to_string(rep.esop_cubes) : "-",
                 rep.bdd_nodes ? std::to_string(rep.bdd_nodes) : "-"});
    }
    t.print(std::cout);
  }

  // --- technology mapping across the three families ---------------------------
  {
    util::Table t({"circuit", "family", "devices", "delay", "ADP", "verified"});
    t.set_title("Fig. 8 phase 3 — technology mapping (area-constrained)");
    for (const auto& bc : suite) {
      const bool verify = bc.netlist.num_inputs() <= 9;
      for (const auto family : eda::all_logic_families()) {
        const auto rep = eda::run_flow(bc.name, bc.netlist, family,
                                       {.reuse_cells = true, .verify = verify});
        t.add_row({bc.name, std::string(eda::logic_family_name(family)),
                   std::to_string(rep.devices), std::to_string(rep.delay),
                   util::Table::num(rep.area_delay_product, 0),
                   verify ? (rep.verified ? "yes" : "NO!") : "skipped"});
      }
    }
    t.print(std::cout);
  }

  // --- ESOP-based crossbar mapping [69] (single-output circuits) --------------
  {
    util::Table t({"circuit", "cubes", "layout", "devices", "delay", "verified"});
    t.set_title("ESOP crossbar mapping [69] — row-per-cube vs 3x2-style "
                "time-multiplexed");
    for (const auto& bc : suite) {
      if (bc.netlist.num_outputs() != 1 || bc.netlist.num_inputs() > 8)
        continue;
      const auto esop =
          eda::Esop::from_truth_table(bc.netlist.truth_tables().front());
      for (const auto layout :
           {eda::EsopLayout::kRowPerCube, eda::EsopLayout::kTimeMultiplexed}) {
        const auto prog = eda::compile_esop(esop, layout);
        t.add_row({bc.name, std::to_string(esop.cube_count()),
                   layout == eda::EsopLayout::kRowPerCube ? "row/cube"
                                                          : "time-mux",
                   std::to_string(prog.device_count),
                   std::to_string(prog.delay),
                   eda::verify_esop(prog) ? "yes" : "NO!"});
      }
    }
    t.print(std::cout);
  }

  // --- ablation: area-constrained cell reuse (CONTRA-style) vs naive ----------
  {
    util::Table t({"circuit", "family", "devices (naive)", "devices (reuse)",
                   "area saved", "ADP gain"});
    t.set_title("Ablation — area-constrained mapping [73] vs naive allocation");
    for (const auto& bc : suite) {
      for (const auto family :
           {eda::LogicFamily::kImply, eda::LogicFamily::kMagic}) {
        const auto naive = eda::run_flow(bc.name, bc.netlist, family,
                                         {.reuse_cells = false, .verify = false});
        const auto reuse = eda::run_flow(bc.name, bc.netlist, family,
                                         {.reuse_cells = true, .verify = false});
        t.add_row(
            {bc.name, std::string(eda::logic_family_name(family)),
             std::to_string(naive.devices), std::to_string(reuse.devices),
             util::Table::num(
                 100.0 * (1.0 - double(reuse.devices) / double(naive.devices)),
                 1) + "%",
             util::Table::num(naive.area_delay_product /
                                  std::max(1.0, reuse.area_delay_product),
                              2) + "x"});
      }
    }
    t.print(std::cout);
  }
  // --- static-vs-measured cost cross-validation (15% gate) --------------------
  // The static certifier predicts latency exactly (schedules are data-blind)
  // and brackets energy; its probabilistic expectation must land within 15%
  // of the mean charge measured by executing every input assignment on a
  // real crossbar at the same technology point (STT-MRAM, binary, no IR
  // drop — the verify_* configuration).
  double max_energy_err_pct = 0.0;
  double max_time_err_pct = 0.0;
  {
    util::Table t({"circuit", "family", "static ns", "meas ns",
                   "static pJ (exp)", "meas pJ", "energy err"});
    t.set_title("Static cost certifier vs executed crossbar charge "
                "(gate: 15%)");
    const auto tech =
        device::technology_params(device::Technology::kSttMram);
    const auto cross_check = [&](const std::string& circuit,
                                 const char* family, std::size_t rows,
                                 std::size_t cols, std::size_t num_inputs,
                                 const eda::verify::CostEstimate& est,
                                 auto&& exec) {
      const std::uint64_t n = 1ULL << num_inputs;
      double sum_e = 0.0;
      double time_ns = 0.0;
      for (std::uint64_t a = 0; a < n; ++a) {
        crossbar::CrossbarConfig cfg;
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.tech = device::Technology::kSttMram;
        cfg.levels = 2;
        cfg.model_ir_drop = false;
        cfg.seed = 1000 + a;
        crossbar::Crossbar xbar(cfg);
        exec(xbar, a);
        sum_e += xbar.stats().energy_pj;
        time_ns = xbar.stats().time_ns;
      }
      const double mean_e = sum_e / static_cast<double>(n);
      const double e_err =
          100.0 * std::abs(mean_e - est.energy_pj_exp) / est.energy_pj_exp;
      const double t_err =
          100.0 * std::abs(time_ns - est.time_ns) / est.time_ns;
      max_energy_err_pct = std::max(max_energy_err_pct, e_err);
      max_time_err_pct = std::max(max_time_err_pct, t_err);
      t.add_row({circuit, family, util::Table::num(est.time_ns, 1),
                 util::Table::num(time_ns, 1),
                 util::Table::num(est.energy_pj_exp, 2),
                 util::Table::num(mean_e, 2),
                 util::Table::num(e_err, 1) + "%"});
    };
    for (const auto& bc : suite) {
      if (bc.netlist.num_inputs() > 9) continue;  // exhaustive runs only
      const auto aig = eda::Aig::from_netlist(bc.netlist);
      {
        const auto prog = eda::compile_imply(aig, true);
        const auto est = eda::verify::estimate_cost(prog, tech);
        cross_check(bc.name, "IMPLY", 1, prog.num_cells, prog.num_inputs,
                    est, [&](crossbar::Crossbar& x, std::uint64_t a) {
                      eda::execute_imply(x, prog, a);
                    });
      }
      {
        const auto nor = aig.to_netlist().to_nor_only();
        const auto prog = eda::compile_magic(nor, true);
        const auto est = eda::verify::estimate_cost(prog, tech);
        cross_check(bc.name, "MAGIC", 1, prog.num_cells, prog.num_inputs,
                    est, [&](crossbar::Crossbar& x, std::uint64_t a) {
                      eda::execute_magic(x, prog, a);
                    });
      }
      {
        const auto mig = eda::Mig::from_aig(aig);
        const auto prog =
            eda::assemble_revamp(mig, eda::schedule_revamp(mig));
        const auto est = eda::verify::estimate_cost(prog, tech);
        cross_check(bc.name, "Majority", prog.wordlines, prog.bitlines,
                    prog.num_inputs, est,
                    [&](crossbar::Crossbar& x, std::uint64_t a) {
                      eda::execute_revamp_program(x, prog, a);
                    });
      }
    }
    t.print(std::cout);
  }
  const bool cost_gate_pass =
      max_energy_err_pct <= 15.0 && max_time_err_pct <= 15.0;
  std::cout << "static-vs-measured gate: max energy err "
            << util::Table::num(max_energy_err_pct, 2) << "%, max time err "
            << util::Table::num(max_time_err_pct, 2) << "% -> "
            << (cost_gate_pass ? "PASS (<= 15%)" : "FAIL (> 15%)") << "\n";

  // --- SIMD throughput of single-row MAGIC programs [70] ----------------------
  {
    util::Table t({"lanes", "latency (ns)", "throughput (evals/us)",
                   "energy/eval (pJ)"});
    t.set_title("SIMD MAGIC [70] — rca4 executed across crossbar rows in "
                "lockstep");
    const auto prog = eda::compile_magic(
        eda::Aig::from_netlist(eda::ripple_carry_adder(4)).to_netlist()
            .to_nor_only(), true);
    util::Rng rng(5);
    for (const std::size_t lanes : {1u, 8u, 32u, 128u}) {
      core::SimdMagicUnit unit(prog, lanes);
      std::vector<std::uint64_t> batch(lanes);
      for (auto& a : batch) a = rng.uniform_int(1 << 9);
      (void)unit.execute_batch(batch);
      const auto& s = unit.last_batch();
      t.add_row({std::to_string(lanes), util::Table::num(s.latency_ns, 0),
                 util::Table::num(s.throughput_per_us, 1),
                 util::Table::num(s.energy_pj / double(lanes), 1)});
    }
    t.print(std::cout);
  }

  std::cout << "shape check: every verified mapping is functionally correct;"
               "\nMajority delay tracks MIG depth (lower bound levels+1 [67]);"
               "\ncell reuse buys double-digit area savings at equal delay.\n";
  bench::report("bench_fig8_eda_flow", total.elapsed_ms(),
                static_cast<double>(suite.size()),
                {{"static_energy_err_pct", max_energy_err_pct},
                 {"static_time_err_pct", max_time_err_pct},
                 {"gate_pass", cost_gate_pass ? 1.0 : 0.0}});
  return cost_gate_pass ? 0 : 1;
}
