/// \file bench_march_sneakpath.cpp
/// \brief Regenerates the Section III.B comparison: March C* achieves very
///        high fault coverage but "requires a long test time"; the
///        sneak-path technique "increases test parallelism by testing a
///        group of adjacent ReRAM cells simultaneously" but its test time
///        still grows linearly with array size.
#include <array>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "memtest/march.hpp"
#include "memtest/repair.hpp"
#include "memtest/sneak_path_test.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

namespace {

crossbar::CrossbarConfig array_cfg(std::size_t n, std::uint64_t seed) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.tech = device::Technology::kReRamHfOx;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.verified_writes = true;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  bench::WallTimer total;
  // --- coverage and cost vs array size for both methods ---------------------
  util::Table t({"array", "faults", "MarchC* cov", "MarchC* ops",
                 "MarchC* time (us)", "sneak cov (SAF)", "sneak probes",
                 "sneak time (us)", "probe/ops ratio"});
  t.set_title("Section III.B — March C* vs sneak-path parallel testing");

  // The (array size, seed) grid is a set of independent Monte-Carlo trials;
  // fan them out across the global pool and aggregate in task order so the
  // table is identical for any CIM_THREADS.
  constexpr std::array<std::size_t, 3> kSizes{16, 32, 64};
  constexpr std::array<std::uint64_t, 3> kSeeds{5, 9, 13};
  struct Trial {
    double march_cov = 0.0, sneak_cov = 0.0;
    std::size_t march_ops = 0, sneak_probes = 0;
    double march_time = 0.0, sneak_time = 0.0;
  };
  std::vector<Trial> trials(kSizes.size() * kSeeds.size());
  util::ThreadPool::global().parallel_for(
      0, trials.size(), [&](std::size_t task) {
        const std::size_t n = kSizes[task / kSeeds.size()];
        const std::uint64_t seed = kSeeds[task % kSeeds.size()];
        util::Rng rng(seed);
        const std::size_t n_faults = std::max<std::size_t>(4, n * n / 64);
        const auto map = fault::FaultMap::with_fault_count(
            n, n, n_faults, fault::FaultMix::stuck_at_only(), rng);

        crossbar::Crossbar xm(array_cfg(n, seed));
        xm.apply_faults(map);
        const auto march = memtest::run_march(xm, memtest::march_cstar());

        crossbar::Crossbar xs(array_cfg(n, seed + 100));
        xs.apply_faults(map);
        const memtest::SneakTestConfig scfg{.window = 2};
        const auto sneak = memtest::run_sneak_path_test(xs, scfg);

        trials[task] = {memtest::fault_coverage(map, march),
                        memtest::sneak_coverage(map, sneak, scfg.window),
                        march.total_ops, sneak.probes, march.time_ns,
                        sneak.time_ns};
      });

  for (std::size_t si = 0; si < kSizes.size(); ++si) {
    const std::size_t n = kSizes[si];
    util::RunningStats march_cov, sneak_cov_s;
    std::size_t march_ops = 0, sneak_probes = 0;
    double march_time = 0.0, sneak_time = 0.0;
    for (std::size_t sd = 0; sd < kSeeds.size(); ++sd) {
      const auto& tr = trials[si * kSeeds.size() + sd];
      march_cov.add(tr.march_cov);
      sneak_cov_s.add(tr.sneak_cov);
      march_ops = tr.march_ops;
      sneak_probes = tr.sneak_probes;
      march_time = tr.march_time;
      sneak_time = tr.sneak_time;
    }

    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               std::to_string(std::max<std::size_t>(4, n * n / 64)),
               util::Table::num(march_cov.mean(), 3),
               std::to_string(march_ops),
               util::Table::num(march_time / 1e3, 1),
               util::Table::num(sneak_cov_s.mean(), 3),
               std::to_string(sneak_probes),
               util::Table::num(sneak_time / 1e3, 1),
               util::Table::num(double(sneak_probes) / double(march_ops), 3)});
  }
  t.print(std::cout);

  // --- the three march algorithms side by side -------------------------------
  util::Table t2({"algorithm", "ops/cell", "reads/cell", "coverage (mixed faults)"});
  t2.set_title("March algorithm comparison (32x32, mixed stuck-at/transition)");
  for (const auto& algo : {memtest::march_cstar(), memtest::march_cminus(),
                           memtest::mats_plus()}) {
    util::RunningStats cov;
    for (std::uint64_t seed : {3ull, 7ull, 11ull}) {
      util::Rng rng(seed);
      fault::FaultMix mix = fault::FaultMix::stuck_at_only();
      mix.transition = 0.3;
      const auto map = fault::FaultMap::with_fault_count(32, 32, 16, mix, rng);
      crossbar::Crossbar xbar(array_cfg(32, seed + 40));
      xbar.apply_faults(map);
      cov.add(memtest::fault_coverage(map, memtest::run_march(xbar, algo)));
    }
    t2.add_row({algo.name, std::to_string(algo.ops_per_cell()),
                std::to_string(algo.reads_per_cell()),
                util::Table::num(cov.mean(), 3)});
  }
  t2.print(std::cout);

  // --- test -> localize -> repair -> retest pipeline ---------------------------
  {
    util::Table t3({"injected faults", "spares (r+c)", "repair feasible",
                    "spares used", "retest clean"});
    t3.set_title("Redundancy repair — March-located faults vs spare lines "
                 "(16x16 + spares)");
    for (const std::size_t n_faults : {2u, 5u, 8u, 14u}) {
      util::Rng rng(n_faults * 3 + 1);
      const std::size_t spare = 4;
      memtest::RepairedArray arr(16, 16, spare, spare,
                                 array_cfg(16, n_faults + 70));
      fault::FaultMap map(16 + spare, 16 + spare);
      util::Rng frng(n_faults);
      // Faults only in the main region so coverage is measurable.
      const auto inner = fault::FaultMap::with_fault_count(
          16, 16, n_faults, fault::FaultMix::stuck_at_only(), frng);
      for (const auto& fd : inner.all()) map.add(fd);
      arr.apply_faults(map);

      auto walk = [&]() {
        std::vector<memtest::FaultSite> fails;
        for (std::size_t r = 0; r < 16; ++r)
          for (std::size_t c = 0; c < 16; ++c) {
            arr.write_bit(r, c, false);
            if (arr.read_bit(r, c)) fails.push_back({r, c});
            arr.write_bit(r, c, true);
            if (!arr.read_bit(r, c)) fails.push_back({r, c});
          }
        return fails;
      };

      const auto plan = memtest::allocate_redundancy(walk(), spare, spare);
      bool clean = false;
      if (plan.feasible) {
        arr.install(plan);
        clean = walk().empty();
      }
      t3.add_row({std::to_string(n_faults),
                  std::to_string(spare) + "+" + std::to_string(spare),
                  plan.feasible ? "yes" : "no",
                  std::to_string(plan.spare_rows_used) + "+" +
                      std::to_string(plan.spare_cols_used),
                  plan.feasible ? (clean ? "yes" : "NO") : "-"});
    }
    t3.print(std::cout);
  }

  std::cout << "shape check: March C* coverage ~1.0 at 10N ops; the sneak "
               "test uses ~1-2% of the operations at reduced (SAF-only, "
               "ROD-resolution) coverage; MATS+ is cheaper and weaker; "
               "located faults repair cleanly while spares last.\n";
  bench::report("bench_march_sneakpath", total.elapsed_ms(),
                static_cast<double>(trials.size()));
  return 0;
}
