/// \file bench_fig3_device.cpp
/// \brief Regenerates **Fig. 3** — the two-region ReRAM device: programmable
///        resistance via filament (doping-front) motion. Reports the SET /
///        RESET trajectories, the pinched-hysteresis sweep, and the
///        multi-level quantization with guard bands the cell model builds
///        on ("the resistance value is typically quantized into N levels").
#include <iostream>

#include "bench_common.hpp"
#include "device/memristor.hpp"
#include "device/reram_cell.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  // --- SET / RESET switching dynamics --------------------------------------
  {
    util::Table t({"pulse #", "V (V)", "state w", "R (kOhm)", "I (uA)"});
    t.set_title("Fig. 3 — filament motion under SET then RESET pulses");
    device::Memristor dev({.mobility = 5e-2, .w_init = 0.05});
    int pulse = 0;
    for (int k = 0; k < 5; ++k) {
      const double i = dev.apply_voltage(+1.5, 50.0);
      t.add_row({std::to_string(++pulse), "+1.5",
                 util::Table::num(dev.state(), 3),
                 util::Table::num(dev.resistance_kohm(), 2),
                 util::Table::num(i, 1)});
    }
    for (int k = 0; k < 5; ++k) {
      const double i = dev.apply_voltage(-1.5, 50.0);
      t.add_row({std::to_string(++pulse), "-1.5",
                 util::Table::num(dev.state(), 3),
                 util::Table::num(dev.resistance_kohm(), 2),
                 util::Table::num(i, 1)});
    }
    t.print(std::cout);
  }

  // --- pinched hysteresis ---------------------------------------------------
  {
    device::Memristor dev({.mobility = 5e-2, .w_init = 0.1});
    const auto trace = dev.sweep_sinusoid(1.5, 2000.0, 64);
    util::Table t({"t (ns)", "V (V)", "I (uA)", "w"});
    t.set_title("Fig. 3 — sinusoidal sweep (pinched hysteresis, every 8th point)");
    for (std::size_t k = 0; k < trace.size(); k += 8) {
      const auto& p = trace[k];
      t.add_row({util::Table::num(p.time_ns, 0), util::Table::num(p.voltage_v, 2),
                 util::Table::num(p.current_ua, 1),
                 util::Table::num(p.state_w, 3)});
    }
    t.print(std::cout);
  }

  // --- multi-level quantization with guard bands ----------------------------
  {
    const auto tech = device::technology_params(device::Technology::kReRamHfOx);
    util::Rng rng(7);
    util::Table t({"level", "nominal G (uS)", "programmed mean (uS)",
                   "programmed sd (uS)", "within guard band"});
    t.set_title("Fig. 3 — 16-level quantization (program-and-verify, 200 writes/level)");
    for (int lvl = 0; lvl < 16; lvl += 3) {
      util::RunningStats stats;
      int in_band = 0;
      const int trials = 200;
      for (int k = 0; k < trials; ++k) {
        device::ReRamCell cell(tech, 16, rng);
        const auto res = cell.write_level(lvl, rng, /*verify=*/true);
        stats.add(cell.true_conductance_us());
        if (res.success) ++in_band;
      }
      device::LevelScheme sch(16, tech.g_off_us(), tech.g_on_us());
      t.add_row({std::to_string(lvl),
                 util::Table::num(sch.level_conductance_us(lvl), 2),
                 util::Table::num(stats.mean(), 2),
                 util::Table::num(stats.stddev(), 2),
                 util::Table::num(100.0 * in_band / trials, 1) + "%"});
    }
    t.print(std::cout);
  }
  std::cout << "shape check: positive pulses move w up (R down), negative "
               "reverse it;\ncurrent pinches at V=0; verified writes land "
               "inside the guard band.\n";
  bench::report("bench_fig3_device", total.elapsed_ms(), 1200.0);
  return 0;
}
