/// \file bench_health_monitor.cpp
/// \brief Write-heavy aging workload regenerating the qualitative Fig. 7
///        story with the device-health monitors: the CUSUM change-point on
///        the exported mean-|drift| time series alarms while the array
///        still reads back correctly, i.e. *before* accuracy collapses.
///
/// Setup: one 64x64 crossbar with a low-endurance technology override (so
/// wear-out happens within the run) and elevated disturb rates. Each aging
/// cycle rewrites the full array with an alternating checkerboard and then
/// reads every bit back. Per cycle we sample the health monitor's
/// mean-|drift| summary — programming error only while the array is
/// healthy, then a visible mean shift as cells hit their endurance limits
/// and stick — and feed it to the streaming CUSUM detector.
///
/// Gate (printed as gate_pass): the drift alarm fires at least 20 cycles
/// before read accuracy first drops below 90%, and wear-out is real by the
/// end of the run (>10% of cells hard-stuck). A monitor that only alarms
/// after the array is already failing is useless for field maintenance.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "util/changepoint.hpp"

namespace {

constexpr std::size_t kRows = 64;
constexpr std::size_t kCols = 64;
constexpr std::size_t kMaxCycles = 1500;
constexpr std::size_t kWarmupCycles = 100;
constexpr double kCollapseAccuracy = 0.90;
constexpr std::size_t kMinLeadCycles = 20;

}  // namespace

int main() {
  using namespace cim;

  // The bench *is* a health-telemetry workload: enable the tier explicitly
  // (metrics implied) instead of relying on the environment.
  obs::set_mode(obs::Mode::kHealth);
  obs::HealthRegistry::global().clear();

  crossbar::CrossbarConfig cfg;
  cfg.rows = kRows;
  cfg.cols = kCols;
  cfg.seed = 20260805;
  auto tech = device::technology_params(device::Technology::kReRamHfOx);
  // Aging compressed into minutes of simulated operation: cells survive a
  // few hundred rewrites instead of 1e8, and half-select stress is high.
  tech.endurance_mean = 400.0;
  tech.endurance_sigma_log = 0.2;
  tech.write_disturb_prob = 1e-4;
  cfg.tech_override = tech;
  crossbar::Crossbar xbar(cfg);
  xbar.set_health_name("bench.aging");

  util::CusumDetector cusum({.warmup = kWarmupCycles, .k = 0.75, .h = 10.0});

  bench::WallTimer timer;
  double ops = 0.0;

  std::size_t alarm_cycle = 0;    // 0 = never fired
  std::size_t collapse_cycle = 0; // 0 = never collapsed
  std::size_t cycles_run = 0;
  std::vector<double> drift_series;
  drift_series.reserve(kMaxCycles);

  for (std::size_t cycle = 0; cycle < kMaxCycles; ++cycle) {
    ++cycles_run;
    // Alternating checkerboard: every cell transitions every cycle, so a
    // stuck cell is wrong (and far from its program target) half the time.
    const bool phase = (cycle & 1) != 0;
    for (std::size_t r = 0; r < kRows; ++r)
      for (std::size_t c = 0; c < kCols; ++c)
        xbar.write_bit(r, c, ((r + c) & 1) == (phase ? 1u : 0u));

    std::size_t correct = 0;
    for (std::size_t r = 0; r < kRows; ++r)
      for (std::size_t c = 0; c < kCols; ++c) {
        const bool expected = ((r + c) & 1) == (phase ? 1u : 0u);
        if (xbar.read_bit(r, c) == expected) ++correct;
      }
    const double accuracy =
        static_cast<double>(correct) / static_cast<double>(kRows * kCols);
    ops += 2.0 * static_cast<double>(kRows * kCols);

    const auto snap = xbar.health_monitor().snapshot();
    drift_series.push_back(snap.mean_abs_drift_us);
    if (cusum.update(snap.mean_abs_drift_us) && alarm_cycle == 0)
      alarm_cycle = cycle + 1;

    if (collapse_cycle == 0 && cycle >= kWarmupCycles &&
        accuracy < kCollapseAccuracy) {
      collapse_cycle = cycle + 1;
      break;  // the array is dead; the story is over
    }
  }

  const auto final_snap = xbar.health_monitor().snapshot();
  const double worn_frac =
      static_cast<double>(final_snap.worn_cells) /
      static_cast<double>(kRows * kCols);
  const double lead =
      (alarm_cycle > 0 && collapse_cycle > alarm_cycle)
          ? static_cast<double>(collapse_cycle - alarm_cycle)
          : 0.0;
  const bool gate_pass = alarm_cycle > 0 && collapse_cycle > 0 &&
                         lead >= static_cast<double>(kMinLeadCycles) &&
                         worn_frac > 0.10;

  std::printf("bench_health_monitor: %zu cycles, alarm @%zu, collapse @%zu "
              "(lead %.0f), worn %.1f%%, mean|drift| %.2f uS -> %s\n",
              cycles_run, alarm_cycle, collapse_cycle, lead, 100.0 * worn_frac,
              final_snap.mean_abs_drift_us, gate_pass ? "PASS" : "FAIL");

  bench::report("health_monitor", timer.elapsed_ms(), ops,
                {{"alarm_cycle", static_cast<double>(alarm_cycle)},
                 {"collapse_cycle", static_cast<double>(collapse_cycle)},
                 {"alarm_lead_cycles", lead},
                 {"worn_cell_frac", worn_frac},
                 {"mean_abs_drift_us", final_snap.mean_abs_drift_us},
                 {"gate_pass", gate_pass ? 1.0 : 0.0}});
  return gate_pass ? 0 : 1;
}
