/// \file bench_fig12_lim_arrays.cpp
/// \brief Regenerates **Fig. 12** — Logic-in-Memory array cells: the
///        AND-array-like (N)OR cell, the NOR-array wired-AND cell with
///        AOI/XNOR dynamic operation, the in-array adders of [103], and the
///        Section V.D payoff: the FeRFET BNN XNOR engine versus a
///        ReRAM-analog mapping whose energy is ADC-dominated.
#include <iostream>

#include "bench_common.hpp"
#include "ferfet/bnn_engine.hpp"
#include "ferfet/lim_array.hpp"
#include "nn/bnn.hpp"
#include "nn/mlp.hpp"
#include "periphery/adc.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  // --- Fig. 12a: AND-array cell truth table ----------------------------------
  {
    util::Table t({"stored A", "applied B", "OR read", "NOR read"});
    t.set_title("Fig. 12a — AND-array-like cell: dynamic (N)OR of stored A "
                "and applied B");
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        ferfet::AndArrayCell cell;
        cell.store(a);
        t.add_row({std::to_string(a), std::to_string(b),
                   std::to_string(cell.read_or(b)),
                   std::to_string(cell.read_nor(b))});
      }
    }
    t.print(std::cout);
  }

  // --- Fig. 12b: wired-AND cell + AOI + XNOR ----------------------------------
  {
    util::Table t({"op", "inputs", "result", "expected"});
    t.set_title("Fig. 12b — NOR-array (wired-AND) dynamic operations");
    ferfet::NorArray arr(4, 2);
    arr.store(0, 0, true);
    arr.store(1, 0, true);
    // AOI: !(S0&x0 | S1&x1)
    std::vector<bool> sel = {true, true, false, false};
    t.add_row({"AOI col0", "x=(1,0)",
               std::to_string(arr.read_aoi(0, {true, false, false, false}, sel)),
               "0"});
    t.add_row({"AOI col0", "x=(0,0)",
               std::to_string(arr.read_aoi(0, {false, false, false, false}, sel)),
               "1"});
    // XNOR pair on column 1.
    for (int w = 0; w <= 1; ++w) {
      ferfet::NorArray a2(2, 1);
      a2.store(0, 0, w);
      a2.store(1, 0, !w);
      for (int x = 0; x <= 1; ++x)
        t.add_row({"XNOR pair", "w=" + std::to_string(w) + " x=" + std::to_string(x),
                   std::to_string(a2.read_xnor(0, 0, x)),
                   std::to_string(w == x)});
    }
    t.print(std::cout);
  }

  // --- in-array adders [103] ----------------------------------------------------
  {
    util::Table t({"a", "b", "cin", "sum", "carry", "steps"});
    t.set_title("Fig. 12 — in-array full adder (Breyer et al. [103])");
    for (int a = 0; a <= 1; ++a)
      for (int b = 0; b <= 1; ++b)
        for (int c = 0; c <= 1; ++c) {
          ferfet::NorArray arr(4, 4);
          const auto res = ferfet::in_array_full_adder(arr, a, b, c);
          t.add_row({std::to_string(a), std::to_string(b), std::to_string(c),
                     std::to_string(res.sum), std::to_string(res.carry),
                     std::to_string(res.steps)});
        }
    t.print(std::cout);
  }

  // --- Section V.D: BNN on FeRFET vs ReRAM-analog -------------------------------
  {
    util::Rng rng(5);
    const auto data = nn::generate_digits(600, rng, 0.05);
    nn::Mlp net({nn::kPixels, 48, nn::kClasses}, rng);
    net.fit(data, 40, 0.05, rng);
    const nn::BinaryMlp soft_bnn(net);

    // FeRFET engine executes layer 0 (64 -> 48) XNOR-popcounts.
    ferfet::FerfetBnnEngine engine(net.layers()[0].w);
    std::vector<bool> x(nn::kPixels);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.bernoulli(0.5);
    (void)engine.forward(x);
    const auto fe = engine.costs();

    // ReRAM-analog equivalent: same layer as analog VMM needs one 8-bit ADC
    // conversion per output (plus DAC/array energy, ignored in its favour).
    periphery::Adc adc({.bits = 8});
    const double adc_energy = adc.energy_per_sample_pj() * 48.0;

    util::Table t({"engine", "energy/inference (pJ)", "time (ns)",
                   "periphery"});
    t.set_title("Section V.D — BNN layer: FeRFET digital vs ReRAM analog");
    t.add_row({"FeRFET XNOR array", util::Table::num(fe.energy_pj, 3),
               util::Table::num(fe.time_ns, 2), "counter only"});
    t.add_row({"ReRAM analog + 8b ADC (ADC term alone)",
               util::Table::num(adc_energy, 3), "-", "DAC + S&H + ADC"});
    t.print(std::cout);

    std::cout << "binary MLP accuracy (software reference): "
              << util::Table::num(soft_bnn.accuracy(data), 3) << "\n";
  }
  std::cout << "shape check: all dynamic ops match their Boolean spec; the "
               "digital FeRFET path spends less energy than the ADC term of "
               "the analog mapping alone.\n";
  bench::report("bench_fig12_lim_arrays", total.elapsed_ms(), 30.0);
  return 0;
}
