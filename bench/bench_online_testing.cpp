/// \file bench_online_testing.cpp
/// \brief Regenerates the Section III.C comparison of on-line methods:
///        the voltage-comparison SAF test [38], X-ABFT checksums [49,50],
///        ECC's BER limit, and the Pause-and-Test overhead that motivates
///        the power-monitoring method of [52].
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "memtest/ecc.hpp"
#include "memtest/march.hpp"
#include "memtest/online_voltage_test.hpp"
#include "memtest/scouting_test.hpp"
#include "memtest/xabft.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  // --- voltage-comparison test: recall/precision and cost vs fault count ----
  {
    util::Table t({"injected SAFs", "recall", "precision", "VMM measurements",
                   "cell writes", "time (us)"});
    t.set_title("Voltage-comparison on-line SAF test [38] (16x16, 16 levels)");
    for (const std::size_t n_faults : {2u, 6u, 12u, 24u}) {
      util::RunningStats recall, precision, meas, writes, time_us;
      for (std::uint64_t seed : {3ull, 7ull, 11ull}) {
        crossbar::CrossbarConfig cfg;
        cfg.rows = cfg.cols = 16;
        cfg.levels = 16;
        cfg.model_ir_drop = false;
        cfg.verified_writes = true;
        cfg.seed = seed;
        crossbar::Crossbar xbar(cfg);

        util::Rng rng(seed);
        const auto map = fault::FaultMap::with_fault_count(
            16, 16, n_faults, fault::FaultMix::stuck_at_only(), rng);
        xbar.apply_faults(map);
        util::Matrix lv(16, 16);
        for (auto& v : lv.flat())
          v = 4.0 + static_cast<double>(rng.uniform_int(8));
        xbar.program_levels(lv);

        const auto res = memtest::run_voltage_comparison_test(xbar);
        const auto q = memtest::voltage_test_quality(map, res);
        recall.add(q.recall);
        precision.add(q.precision);
        meas.add(static_cast<double>(res.vmm_measurements));
        writes.add(static_cast<double>(res.cell_writes));
        time_us.add(res.time_ns / 1e3);
      }
      t.add_row({std::to_string(n_faults), util::Table::num(recall.mean(), 3),
                 util::Table::num(precision.mean(), 3),
                 util::Table::num(meas.mean(), 0),
                 util::Table::num(writes.mean(), 0),
                 util::Table::num(time_us.mean(), 1)});
    }
    t.print(std::cout);
  }

  // --- X-ABFT: in-line detection + scrub correction --------------------------
  {
    util::Table t({"injected SAFs", "inline detection rate",
                   "scrub located", "soft fixes OK", "hard flagged"});
    t.set_title("X-ABFT checksum protection [49,50] (8x8 level matrices)");
    for (const std::size_t n_faults : {1u, 2u, 4u}) {
      util::RunningStats detect, located, fixed, hard;
      for (std::uint64_t seed : {5ull, 9ull, 13ull, 17ull}) {
        util::Rng rng(seed);
        util::Matrix lv(8, 8);
        for (auto& v : lv.flat())
          v = 8.0 + static_cast<double>(rng.uniform_int(8));
        crossbar::CrossbarConfig cfg;
        cfg.model_ir_drop = false;
        cfg.seed = seed;
        memtest::XabftProtected prot(lv, cfg);
        const auto map = fault::FaultMap::with_fault_count(
            8, 8, n_faults, fault::FaultMix::stuck_at_only(), rng);
        prot.apply_faults(map);

        // In-line detection over full-row activations.
        std::size_t flagged = 0;
        const std::size_t trials = 8;
        for (std::size_t k = 0; k < trials; ++k) {
          std::vector<double> x(8, 1.0);
          if (!prot.multiply(x).checksum_ok) ++flagged;
        }
        detect.add(static_cast<double>(flagged) / trials);

        const auto rep = prot.scrub();
        std::size_t on_fault = 0, ok = 0, bad = 0;
        for (const auto& fix : rep.corrections) {
          if (map.cell_fault(fix.row, fix.col)) ++on_fault;
          if (fix.reprogram_succeeded)
            ++ok;
          else
            ++bad;
        }
        located.add(static_cast<double>(on_fault) /
                    static_cast<double>(map.cell_fault_count()));
        fixed.add(static_cast<double>(ok));
        hard.add(static_cast<double>(bad));
      }
      t.add_row({std::to_string(n_faults), util::Table::num(detect.mean(), 2),
                 util::Table::num(located.mean(), 2),
                 util::Table::num(fixed.mean(), 1),
                 util::Table::num(hard.mean(), 1)});
    }
    t.print(std::cout);
  }

  // --- ECC BER limit -----------------------------------------------------------
  {
    util::Table t({"raw BER", "analytic P(word >1 err)",
                   "simulated wrong-data rate", "verdict"});
    t.set_title("ECC (72,64) SEC-DED — works only below BER ~1e-5 (Section III.C)");
    util::Rng rng(21);
    for (const double ber : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
      const double analytic = memtest::word_uncorrectable_probability(ber);
      const double sim =
          memtest::simulate_word_failure_rate(ber, 40000, rng);
      t.add_row({util::Table::num(ber, 6), util::Table::num(analytic, 8),
                 util::Table::num(sim, 8),
                 analytic < 1e-5 ? "safe" : "breaks down"});
    }
    t.print(std::cout);
  }

  // --- scouting-logic test [40] ----------------------------------------------
  {
    util::Table t({"pair stride", "checks", "coverage (stuck, tested rows)",
                   "time (us)"});
    t.set_title("Scouting-logic test (Fieback et al. [40]) — 16x16 array");
    for (const std::size_t stride : {1u, 2u, 4u}) {
      util::RunningStats cov, checks, time_us;
      for (std::uint64_t seed : {3ull, 9ull, 15ull}) {
        crossbar::CrossbarConfig cfg;
        cfg.rows = cfg.cols = 16;
        cfg.levels = 2;
        cfg.model_ir_drop = false;
        cfg.verified_writes = true;
        cfg.seed = seed;
        crossbar::Crossbar xbar(cfg);
        util::Rng rng(seed);
        const auto map = fault::FaultMap::with_fault_count(
            16, 16, 8, fault::FaultMix::stuck_at_only(), rng);
        xbar.apply_faults(map);
        const memtest::ScoutingTestConfig scfg{.pair_stride = stride};
        const auto res = memtest::run_scouting_test(xbar, scfg);
        cov.add(memtest::scouting_coverage(map, res, scfg, 16));
        checks.add(static_cast<double>(res.checks));
        time_us.add(res.time_ns / 1e3);
      }
      t.add_row({std::to_string(stride), util::Table::num(checks.mean(), 0),
                 util::Table::num(cov.mean(), 3),
                 util::Table::num(time_us.mean(), 1)});
    }
    t.print(std::cout);
  }

  // --- Pause-and-Test overhead ---------------------------------------------------
  {
    util::Table t({"test interval (cycles)", "March time/test (us)",
                   "overhead at 1ns/cycle"});
    t.set_title("Pause-and-Test cost — why [52] monitors power instead");
    crossbar::CrossbarConfig cfg;
    cfg.rows = cfg.cols = 64;
    cfg.tech = device::Technology::kSttMram;
    cfg.levels = 2;
    cfg.seed = 27;
    crossbar::Crossbar xbar(cfg);
    const auto march = memtest::run_march(xbar, memtest::march_cstar());
    for (const double interval : {1e4, 1e5, 1e6}) {
      const double overhead = march.time_ns / (interval + march.time_ns);
      t.add_row({util::Table::num(interval, 0),
                 util::Table::num(march.time_ns / 1e3, 1),
                 util::Table::num(100.0 * overhead, 2) + "%"});
    }
    t.print(std::cout);
  }
  std::cout << "shape check: voltage test keeps high recall at growing fault "
               "counts; X-ABFT detects inline and corrects soft errors; ECC "
               "collapses beyond ~1e-4 BER; frequent Pause-and-Test costs "
               "double-digit overhead.\n";
  bench::report("bench_online_testing", total.elapsed_ms(), 42.0);
  return 0;
}
