/// \file bench_fig1_bottleneck.cpp
/// \brief Regenerates **Fig. 1** — the von-Neumann bottleneck: conventional
///        architectures "spend excessive time and energy in moving massive
///        amounts of data between the memory and data paths", which CIM
///        removes. Sweeps square VMM sizes on the roofline von-Neumann
///        machine and on a CIM tile, reporting where time/energy go.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "arch/vonneumann.hpp"
#include "periphery/tile_cost.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  util::Table t({"n (VMM n x n)", "vN time (us)", "vN move-time frac",
                 "vN move-energy frac", "CIM tiles", "CIM time (us)",
                 "CIM energy (uJ)", "vN/CIM energy"});
  t.set_title("Fig. 1 — data-movement bottleneck: von Neumann vs CIM");

  const arch::VonNeumannParams vn;

  for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    const auto r = arch::run_vmm(vn, n, n, 1);

    // CIM executes the same n x n VMM on 128x128 tiles holding the matrix
    // in place: ceil(n/128)^2 tiles run one tile-VMM each, in parallel.
    periphery::TileConfig tile;
    tile.rows = tile.cols = 128;
    tile.adc_bits = 8;
    tile.adcs = 4;
    tile.input_bits = 8;
    const double tiles =
        std::ceil(n / 128.0) * std::ceil(n / 128.0);
    const double cim_time = periphery::tile_vmm_latency_ns(tile);
    const double cim_energy = tiles * periphery::tile_vmm_energy_pj(tile);

    t.add_row({std::to_string(n), util::Table::num(r.time_ns / 1e3, 2),
               util::Table::num(r.movement_time_fraction, 3),
               util::Table::num(r.movement_energy_fraction, 3),
               util::Table::num(tiles, 0),
               util::Table::num(cim_time / 1e3, 3),
               util::Table::num(cim_energy / 1e6, 4),
               util::Table::num(r.energy_pj / cim_energy, 1)});
  }
  t.print(std::cout);
  std::cout << "shape check: movement dominates (>80%) the von-Neumann "
               "energy at every size;\nCIM removes the operand traffic and "
               "wins on energy by one to two orders of magnitude.\n";
  bench::report("bench_fig1_bottleneck", total.elapsed_ms(), 5.0);
  return 0;
}
