/// \file bench_fig6_fault_taxonomy.cpp
/// \brief Regenerates **Fig. 6** — the hard/soft x static/dynamic fault
///        taxonomy — and quantifies each fault kind's behavioural effect on
///        cell conductance plus the defect->fault expansion statistics of a
///        Monte-Carlo yield run.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "fault/defects.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  // --- the taxonomy itself ----------------------------------------------------
  {
    util::Table t({"fault", "hard/soft", "static/dynamic", "array-level"});
    t.set_title("Fig. 6 — fault classification");
    for (const auto k : fault::all_fault_kinds()) {
      t.add_row({std::string(fault::fault_name(k)),
                 fault::is_hard(k) ? "hard" : "soft",
                 fault::is_static(k) ? "static" : "dynamic",
                 fault::is_array_level(k) ? "yes" : "no"});
    }
    t.print(std::cout);
  }

  // --- behavioural effect of each cell-level fault -----------------------------
  {
    util::Table t({"fault", "write-8 mean level", "write-8 level sd",
                   "responds to writes"});
    t.set_title("Fig. 6 — behavioural effect (target level 8 of 16, 300 cells)");
    for (const auto kind : fault::cell_fault_kinds()) {
      crossbar::CrossbarConfig cfg;
      cfg.rows = 1;
      cfg.cols = 300;
      cfg.levels = 16;
      cfg.verified_writes = false;
      cfg.seed = 17;
      crossbar::Crossbar xbar(cfg);
      fault::FaultMap map(1, 300);
      for (std::size_t c = 0; c < 300; ++c)
        map.add({kind, 0, c, 0, 0, 4.0});
      xbar.apply_faults(map);

      util::RunningStats levels;
      std::size_t moved = 0;
      for (std::size_t c = 0; c < 300; ++c) {
        const double g0 = xbar.true_conductance(0, c);
        xbar.program_cell(0, c, xbar.scheme().level_conductance_us(8));
        const double g1 = xbar.true_conductance(0, c);
        levels.add(xbar.scheme().nearest_level(g1));
        if (g1 != g0) ++moved;
      }
      t.add_row({std::string(fault::fault_name(kind)),
                 util::Table::num(levels.mean(), 2),
                 util::Table::num(levels.stddev(), 2),
                 util::Table::num(100.0 * moved / 300.0, 0) + "%"});
    }
    t.print(std::cout);
  }

  // --- defect -> fault Monte Carlo ---------------------------------------------
  {
    util::Rng rng(23);
    util::Table t({"defect", "faults caused (mean over 200 draws)",
                   "dominant fault"});
    t.set_title("Fig. 6 — defect-to-fault mapping census (64 x 64 array)");
    for (const auto dk : fault::all_defect_kinds()) {
      util::RunningStats n_faults;
      std::map<std::string, int> kinds;
      for (int k = 0; k < 200; ++k) {
        fault::Defect d{dk, rng.uniform_int(64), rng.uniform_int(64)};
        const auto faults = fault::map_defect_to_faults(d, 64, 64, rng);
        n_faults.add(static_cast<double>(faults.size()));
        for (const auto& fd : faults)
          ++kinds[std::string(fault::fault_name(fd.kind))];
      }
      std::string dominant;
      int best = -1;
      for (const auto& [name, n] : kinds)
        if (n > best) {
          best = n;
          dominant = name;
        }
      t.add_row({std::string(fault::defect_name(dk)),
                 util::Table::num(n_faults.mean(), 1), dominant});
    }
    t.print(std::cout);
  }
  std::cout << "shape check: hard faults ignore writes (0% respond), soft "
               "faults remain tunable;\nwrite-variation widens the level "
               "spread; line breaks fan out into many stuck cells.\n";
  bench::report("bench_fig6_fault_taxonomy", total.elapsed_ms(), 200.0);
  return 0;
}
