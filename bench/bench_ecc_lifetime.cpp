/// \file bench_ecc_lifetime.cpp
/// \brief The endurance story of Section III.C: "due to the limited
///        endurance, more devices will be worn out over time and eventually
///        the number of hard faults will exceed the ECC's correction
///        capability." Sweeps cell endurance and reports when the (72,64)
///        SEC-DED memory first corrects, first detects an uncorrectable
///        word, and how many cells ended up stuck.
#include <iostream>

#include "bench_common.hpp"
#include "memtest/ecc_memory.hpp"
#include "memtest/wear_leveling.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  util::Table t({"endurance (writes)", "first correction (cycle)",
                 "first uncorrectable (cycle)", "silent corruption",
                 "stuck cells at end"});
  t.set_title("ECC-protected ReRAM lifetime vs cell endurance (16 words)");

  util::Rng rng(23);
  for (const double endurance : {30.0, 60.0, 120.0, 240.0}) {
    const auto rep =
        memtest::run_ecc_lifetime(/*words=*/16, endurance, /*max_cycles=*/800,
                                  rng);
    auto cyc = [](std::uint64_t c) {
      return c ? std::to_string(c) : std::string("never");
    };
    t.add_row({util::Table::num(endurance, 0),
               cyc(rep.first_correction_cycle),
               cyc(rep.first_uncorrectable_cycle),
               cyc(rep.first_silent_corruption_cycle),
               util::Table::num(100.0 * rep.final_stuck_cell_fraction, 1) + "%"});
  }
  t.print(std::cout);

  // --- i2WAP-style wear leveling [48] -----------------------------------------
  {
    util::Table t2({"hot-row fraction", "static lifetime (writes)",
                    "rotated lifetime (writes)", "improvement"});
    t2.set_title("Wear leveling [48] — hot-row write stream, 8 rows, "
                 "endurance 60");
    util::Rng wrng(31);
    for (const double hot : {0.5, 0.7, 0.9}) {
      const auto rep =
          memtest::run_wear_leveling_experiment(8, 60.0, hot, 50000, wrng);
      t2.add_row({util::Table::num(hot, 1),
                  std::to_string(rep.static_lifetime),
                  std::to_string(rep.rotated_lifetime),
                  util::Table::num(rep.improvement, 1) + "x"});
    }
    t2.print(std::cout);
  }

  std::cout << "shape check: corrections precede uncorrectable words; both "
               "scale with endurance; ECC holds exactly until the second "
               "stuck bit lands in one word; rotating the hot row multiplies "
               "lifetime (the i2WAP effect).\n";
  bench::report("bench_ecc_lifetime", total.elapsed_ms(), 7.0);
  return 0;
}
