/// \file bench_accuracy_vs_yield.cpp
/// \brief Regenerates the Section III headline claim (ref. [38]): "the
///        classification accuracy ... with random stuck-at-0 faults is
///        reduced by 35% when the yield drops to 80%; if the yield is lower
///        than 80%, the classification accuracy is even lower."
///
/// A trained MLP is mapped onto differential crossbar pairs; yield is swept
/// downward with stuck-at fault injection and classification accuracy is
/// measured (3 fault-map seeds per point). The (yield, seed) trials are
/// independent Monte-Carlo tasks and fan out across the global thread pool;
/// results aggregate in task order, so the table is identical for any
/// CIM_THREADS.
#include <algorithm>
#include <array>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "nn/crossbar_linear.hpp"
#include "nn/mlp.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

namespace {

double crossbar_accuracy(const nn::Mlp& net, const nn::Dataset& test,
                         double yield, std::uint64_t seed) {
  nn::CrossbarLinearConfig cfg;
  cfg.array.seed = seed;
  cfg.program_verify = true;
  nn::CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, cfg);
  cfg.array.seed = seed + 1;
  nn::CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, cfg);

  util::Rng frng(seed * 31 + 7);
  if (yield < 1.0) {
    l0.apply_yield(yield, frng);
    l1.apply_yield(yield, frng);
  }

  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    auto h = l0.forward(test.features.row(i));
    for (double& v : h) v = std::max(0.0, v);
    double hmax = 1e-9;
    for (const double v : h) hmax = std::max(hmax, v);
    l1.set_x_max(hmax);
    const auto logits = l1.forward(h);
    const int pred = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (pred == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace

int main() {
  bench::WallTimer total;
  util::Rng rng(3);
  const auto train = nn::generate_digits(700, rng, 0.1);
  const auto test = nn::generate_digits(250, rng, 0.1);
  nn::Mlp net({nn::kPixels, 32, nn::kClasses}, rng);
  net.fit(train, 50, 0.05, rng);
  const double float_acc = net.accuracy(test);
  std::cout << "software float accuracy: " << util::Table::num(float_acc, 3)
            << "\n\n";

  util::Table t({"yield", "accuracy (mean of 3 seeds)", "accuracy min",
                 "drop vs fault-free"});
  t.set_title("Accuracy vs yield — stuck-at faults on crossbar-mapped MLP "
              "(cf. [38]: -35% at 80% yield)");

  // Flatten the sweep into independent (yield, seed) trials; each builds its
  // own arrays from the shared read-only net, so they run concurrently.
  constexpr std::array<double, 7> kYields{1.0, 0.95, 0.9, 0.85, 0.8, 0.7, 0.6};
  constexpr std::array<std::uint64_t, 3> kSeeds{11, 23, 47};
  std::vector<double> acc_of(kYields.size() * kSeeds.size(), 0.0);
  bench::WallTimer mc;
  util::ThreadPool::global().parallel_for(
      0, acc_of.size(), [&](std::size_t task) {
        acc_of[task] = crossbar_accuracy(net, test, kYields[task / kSeeds.size()],
                                         kSeeds[task % kSeeds.size()]);
      });
  const double mc_ms = mc.elapsed_ms();

  double clean_acc = 0.0;
  double drop_at_80 = 0.0;
  for (std::size_t y = 0; y < kYields.size(); ++y) {
    util::RunningStats acc;
    for (std::size_t s = 0; s < kSeeds.size(); ++s)
      acc.add(acc_of[y * kSeeds.size() + s]);
    if (kYields[y] == 1.0) clean_acc = acc.mean();
    if (kYields[y] == 0.8) drop_at_80 = clean_acc - acc.mean();
    t.add_row({util::Table::num(kYields[y], 2), util::Table::num(acc.mean(), 3),
               util::Table::num(acc.min(), 3),
               util::Table::num(clean_acc - acc.mean(), 3)});
  }
  t.print(std::cout);
  std::cout << "shape check: monotone accuracy drop; tens of percent lost by "
               "80% yield, worse below.\n";
  bench::report("bench_accuracy_vs_yield", total.elapsed_ms(),
                static_cast<double>(acc_of.size()),
                {{"mc_wall_ms", mc_ms}, {"drop_at_80", drop_at_80}});
  return 0;
}
