/// \file bench_accuracy_vs_yield.cpp
/// \brief Regenerates the Section III headline claim (ref. [38]): "the
///        classification accuracy ... with random stuck-at-0 faults is
///        reduced by 35% when the yield drops to 80%; if the yield is lower
///        than 80%, the classification accuracy is even lower."
///
/// A trained MLP is mapped onto differential crossbar pairs; yield is swept
/// downward with stuck-at fault injection and classification accuracy is
/// measured. The sweep runs as an adaptive Monte-Carlo campaign
/// (exp::run_campaign): each yield point is a cell, each trial damages a
/// fresh pair of arrays from a (seed, cell, rep) counter-split RNG, and
/// low-variance points (yield ~1.0) freeze after a handful of trials while
/// the noisy mid-yield cliff keeps drawing replications. Results are
/// bit-identical for any CIM_THREADS / CIM_EXP_WORKERS.
#include <algorithm>
#include <array>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exp/campaign.hpp"
#include "nn/crossbar_linear.hpp"
#include "nn/mlp.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

namespace {

double crossbar_accuracy(const nn::Mlp& net, const nn::Dataset& test,
                         double yield, util::Rng& rng) {
  nn::CrossbarLinearConfig cfg;
  cfg.array.seed = rng();
  cfg.program_verify = true;
  nn::CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, cfg);
  cfg.array.seed = rng();
  nn::CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, cfg);

  if (yield < 1.0) {
    l0.apply_yield(yield, rng);
    l1.apply_yield(yield, rng);
  }

  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    auto h = l0.forward(test.features.row(i));
    for (double& v : h) v = std::max(0.0, v);
    double hmax = 1e-9;
    for (const double v : h) hmax = std::max(hmax, v);
    l1.set_x_max(hmax);
    const auto logits = l1.forward(h);
    const int pred = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (pred == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace

int main() {
  bench::WallTimer total;
  util::Rng rng(3);
  const auto train = nn::generate_digits(700, rng, 0.1);
  const auto test = nn::generate_digits(250, rng, 0.1);
  nn::Mlp net({nn::kPixels, 32, nn::kClasses}, rng);
  net.fit(train, 50, 0.05, rng);
  const double float_acc = net.accuracy(test);
  std::cout << "software float accuracy: " << util::Table::num(float_acc, 3)
            << "\n\n";

  constexpr std::array<double, 7> kYields{1.0, 0.95, 0.9, 0.85, 0.8, 0.7, 0.6};

  exp::CampaignConfig ccfg;
  ccfg.name = "accuracy_vs_yield";
  ccfg.seed = 11;
  ccfg.cells = kYields.size();
  for (const double y : kYields) {
    char label[16];
    std::snprintf(label, sizeof(label), "y%.2f", y);
    ccfg.cell_names.emplace_back(label);
  }
  ccfg.block = 1;  // one accuracy evaluation is already a chunky task
  ccfg.min_trials = 3;
  ccfg.max_trials = 8;
  ccfg.max_blocks_per_round = 2;
  ccfg.ci_confidence = 0.95;
  ccfg.ci_target = 0.025;  // accuracy points, absolute
  ccfg.pool = &util::ThreadPool::global();
  ccfg = exp::apply_env(ccfg);

  bench::WallTimer mc;
  const auto res = exp::run_campaign(
      ccfg, [&](std::size_t cell, std::uint64_t /*rep*/, util::Rng& trng) {
        return crossbar_accuracy(net, test, kYields[cell], trng);
      });
  const double mc_ms = mc.elapsed_ms();

  util::Table t({"yield", "accuracy (mean)", "ci95 half", "accuracy min",
                 "trials", "drop vs fault-free"});
  t.set_title("Accuracy vs yield — stuck-at faults on crossbar-mapped MLP "
              "(cf. [38]: -35% at 80% yield)");
  const double z = obs::z_for_confidence(ccfg.ci_confidence);
  const double clean_acc = res.cells[0].stat.mean;  // yield 1.0 cell
  double drop_at_80 = 0.0;
  for (std::size_t y = 0; y < kYields.size(); ++y) {
    const obs::StreamStat& acc = res.cells[y].stat;
    if (kYields[y] == 0.8) drop_at_80 = clean_acc - acc.mean;
    t.add_row({util::Table::num(kYields[y], 2), util::Table::num(acc.mean, 3),
               util::Table::num(acc.ci_half_width(z), 3),
               util::Table::num(acc.min, 3), std::to_string(acc.n),
               util::Table::num(clean_acc - acc.mean, 3)});
  }
  t.print(std::cout);
  std::cout << "shape check: monotone accuracy drop; tens of percent lost by "
               "80% yield, worse below. Adaptive stopping spent "
            << res.total_trials
            << " trials, concentrated on the noisy mid-yield cliff.\n";
  bench::report("bench_accuracy_vs_yield", total.elapsed_ms(),
                static_cast<double>(res.total_trials),
                {{"mc_wall_ms", mc_ms},
                 {"drop_at_80", drop_at_80},
                 {"campaign_rounds", static_cast<double>(res.rounds)}});
  return 0;
}
