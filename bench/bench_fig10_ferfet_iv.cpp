/// \file bench_fig10_ferfet_iv.cpp
/// \brief Regenerates **Fig. 10(b)** — the four-state FeRFET transfer
///        curves: for both non-volatile polarities (n/p) the control-gate
///        polarization selects a low- or high-resistive branch. Prints the
///        Id(Vgs) sweep plus per-state figures of merit.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "ferfet/ferfet_device.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  const ferfet::FeRfetParams p;
  const ferfet::FeRfet devices[4] = {
      ferfet::FeRfet(p, ferfet::Polarity::kNType, ferfet::VtState::kLrs),
      ferfet::FeRfet(p, ferfet::Polarity::kNType, ferfet::VtState::kHrs),
      ferfet::FeRfet(p, ferfet::Polarity::kPType, ferfet::VtState::kLrs),
      ferfet::FeRfet(p, ferfet::Polarity::kPType, ferfet::VtState::kHrs)};
  const char* names[4] = {"n-LRS", "n-HRS", "p-LRS", "p-HRS"};

  // --- transfer curves --------------------------------------------------------
  {
    util::Table t({"Vgs (V)", "Id n-LRS (uA)", "Id n-HRS (uA)",
                   "Id p-LRS (uA)", "Id p-HRS (uA)"});
    t.set_title("Fig. 10b — transfer curves of the four programmed states "
                "(|Vds| = vdd)");
    for (double v = -2.0; v <= 2.001; v += 0.25) {
      std::vector<std::string> row = {util::Table::num(v, 2)};
      for (const auto& dev : devices)
        row.push_back(util::Table::num(std::abs(dev.drain_current_ua(v, p.vdd)), 4));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  // --- figures of merit --------------------------------------------------------
  {
    util::Table t({"state", "Vt (V)", "Ion @ +/-vdd (uA)",
                   "Ioff @ -/+vdd (uA)", "on/off", "conducts @ vdd",
                   "conducts @ boost"});
    t.set_title("Fig. 10 — per-state figures of merit");
    for (int k = 0; k < 4; ++k) {
      const auto& dev = devices[k];
      const double on_v =
          dev.polarity() == ferfet::Polarity::kNType ? p.vdd : -p.vdd;
      const double i_on = std::abs(dev.drain_current_ua(on_v, p.vdd));
      const double i_off = std::abs(dev.drain_current_ua(-on_v, p.vdd));
      const double boost_v =
          dev.polarity() == ferfet::Polarity::kNType ? p.v_boost : -p.v_boost;
      t.add_row({names[k], util::Table::num(dev.effective_vt(), 2),
                 util::Table::num(i_on, 3), util::Table::num(i_off, 5),
                 util::Table::num(i_on / std::max(1e-9, i_off), 0),
                 dev.conducts(on_v) ? "yes" : "no",
                 dev.conducts(boost_v) ? "yes" : "no"});
    }
    t.print(std::cout);
  }

  // --- non-volatile programming ------------------------------------------------
  {
    util::Table t({"program pulse", "takes effect", "resulting state"});
    t.set_title("Fig. 9/10 — programming requires 2-3x the operating voltage");
    ferfet::FeRfet dev(p);
    t.add_row({"polarity -1.0 V (= vdd)",
               dev.program_polarity(-1.0) ? "yes" : "no",
               std::string(ferfet::polarity_name(dev.polarity()))});
    t.add_row({"polarity -2.5 V", dev.program_polarity(-2.5) ? "yes" : "no",
               std::string(ferfet::polarity_name(dev.polarity()))});
    t.add_row({"Vt -2.5 V", dev.program_vt(-2.5) ? "yes" : "no",
               std::string(ferfet::vt_state_name(dev.vt_state()))});
    t.print(std::cout);
  }
  std::cout << "shape check: four separated branches; LRS/HRS split by the "
               "ferroelectric Vt shift;\nn/p branches mirror each other; "
               "programming only fires at >= 2.5 V.\n";
  bench::report("bench_fig10_ferfet_iv", total.elapsed_ms(), 68.0);
  return 0;
}
