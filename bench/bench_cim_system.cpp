/// \file bench_cim_system.cpp
/// \brief System-level experiments on the digital CIM path:
///        (a) Pinatubo-style bulk bitwise ops [21] — the canonical CIM-P
///            workload of Table I — against the COM-F baseline;
///        (b) an INT-quantized MLP running end to end on CimSystem tiles
///            (bit-serial DAC -> crossbar -> ADC -> shift-add), sweeping
///            ADC resolution — the accelerator story of Section II.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bulk_bitwise.hpp"
#include "core/quantized_mlp.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  // --- (a) bulk bitwise: CIM-P vs COM-F --------------------------------------
  {
    util::Table t({"word width (bits)", "CIM time/op (ns)",
                   "CIM energy/op (pJ)", "COM-F time/op (ns)",
                   "COM-F energy/op (pJ)", "energy win"});
    t.set_title("Bulk bitwise XOR [21] — in-periphery vs conventional core");
    util::Rng rng(3);
    for (const std::size_t bits : {16u, 32u, 64u}) {
      core::BulkBitwiseEngine eng(4, bits, bits);
      eng.store(0, rng());
      eng.store(1, rng());
      eng.reset_stats();
      const std::size_t ops = 32;
      for (std::size_t k = 0; k < ops; ++k)
        eng.op_rows(2, 0, 1, crossbar::ScoutOp::kXor);
      const auto base = eng.com_f_baseline(ops);
      t.add_row({std::to_string(bits),
                 util::Table::num(eng.stats().lockstep_time_ns / ops, 1),
                 util::Table::num(eng.stats().energy_pj / ops, 1),
                 util::Table::num(base.time_ns / ops, 2),
                 util::Table::num(base.energy_pj / ops, 0),
                 util::Table::num(base.energy_pj / eng.stats().energy_pj, 1) +
                     "x"});
    }
    t.print(std::cout);
    std::cout << "note: CIM op time is width-independent (one sense + one "
                 "write cycle);\nat memory-row widths (8 KB) the same two "
                 "cycles process 65536 bits.\n\n";
  }

  // --- (b) quantized MLP on tiles, ADC resolution sweep -----------------------
  {
    util::Rng rng(3);
    const auto train = nn::generate_digits(500, rng, 0.1);
    const auto test = nn::generate_digits(150, rng, 0.1);
    nn::Mlp net({nn::kPixels, 16, nn::kClasses}, rng);
    net.fit(train, 40, 0.05, rng);
    const auto q = core::QuantizedMlp::from_mlp(net, 4, 4, train);
    std::cout << "float accuracy " << util::Table::num(net.accuracy(test), 3)
              << ", INT4 reference "
              << util::Table::num(q.accuracy_reference(test), 3) << "\n";

    util::Table t({"ADC bits", "tile accuracy", "tiles", "energy/inf (pJ)",
                   "latency/inf (ns)", "area (um^2)"});
    t.set_title("INT4 MLP on CimSystem tiles — ADC resolution sweep");
    for (const int adc_bits : {4, 6, 8, 10}) {
      core::CimSystemConfig cfg;
      cfg.tile.tile.rows = 32;
      cfg.tile.tile.cols = 16;
      cfg.tile.tile.adc_bits = adc_bits;
      cfg.tile.array.model_ir_drop = false;
      cfg.tile.seed = 7;
      core::CimMlpRunner runner(q, cfg);
      runner.set_pool(&util::ThreadPool::global());
      const double acc = runner.accuracy(test);
      const auto totals = runner.totals();
      const double n = static_cast<double>(test.size());
      t.add_row({std::to_string(adc_bits), util::Table::num(acc, 3),
                 std::to_string(totals.tiles),
                 util::Table::num(totals.energy_pj / n, 0),
                 util::Table::num(totals.time_ns / n, 0),
                 util::Table::num(totals.area_um2, 0)});
    }
    t.print(std::cout);
  }
  std::cout << "shape check: bulk bitwise wins energy by orders of magnitude "
               "(operands never cross the bus); tile MLP accuracy collapses "
               "at low ADC resolution and saturates near the INT4 reference "
               "by ~8-10 bits — the Section II.E resolution/cost knife edge.\n";
  // Run with CIM_OBS=trace CIM_OBS_TRACE_FILE=trace.json to export a
  // Chrome-trace timeline of the system/tile/crossbar spans from this
  // workload (loadable in Perfetto or chrome://tracing); report() below
  // writes the file.
  bench::report("bench_cim_system", total.elapsed_ms(), 96.0 + 4.0 * 150.0);
  return 0;
}
