/// \file bench_fig4_crossbar_vmm.cpp
/// \brief Regenerates **Fig. 4** — the crossbar VMM: "all n MAC operations
///        are performed with O(1) time complexity". Sweeps array sizes and
///        compares the crossbar's constant-latency analog VMM against a
///        sequential MAC datapath; also sweeps conductance levels to show
///        the accuracy/precision trade-off.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace cim;

namespace {

util::Matrix random_levels(std::size_t n, int levels, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix m(n, n);
  for (auto& v : m.flat())
    v = static_cast<double>(rng.uniform_int(static_cast<std::uint64_t>(levels)));
  return m;
}

}  // namespace

int main() {
  bench::WallTimer total;
  // --- O(1) latency vs sequential MAC --------------------------------------
  {
    util::Table t({"n (n x n)", "crossbar VMM (ns)", "sequential MACs (ns)",
                   "speedup", "array energy (pJ)"});
    t.set_title("Fig. 4a — analog VMM latency is O(1) in array size");
    for (const std::size_t n : {16u, 32u, 64u, 128u}) {
      crossbar::CrossbarConfig cfg;
      cfg.rows = cfg.cols = n;
      cfg.levels = 16;
      cfg.verified_writes = true;
      cfg.seed = 3;
      crossbar::Crossbar xbar(cfg);
      xbar.program_levels(random_levels(n, 16, 5));
      xbar.reset_stats();

      std::vector<double> v(n, 0.2);
      (void)xbar.vmm(v);
      const double t_cim = xbar.stats().time_ns;
      // Sequential datapath: n*n MACs at 1 MAC/ns.
      const double t_seq = static_cast<double>(n) * static_cast<double>(n);
      t.add_row({std::to_string(n), util::Table::num(t_cim, 2),
                 util::Table::num(t_seq, 0),
                 util::Table::num(t_seq / t_cim, 0),
                 util::Table::num(xbar.stats().energy_pj, 2)});
    }
    t.print(std::cout);
  }

  // --- accuracy vs number of conductance levels -----------------------------
  {
    util::Table t({"levels N", "relative VMM error (mean)",
                   "relative VMM error (p95)"});
    t.set_title("Fig. 4 — VMM accuracy vs conductance quantization levels");
    for (const int levels : {2, 4, 8, 16}) {
      crossbar::CrossbarConfig cfg;
      cfg.rows = cfg.cols = 32;
      cfg.levels = levels;
      cfg.verified_writes = true;
      cfg.seed = 7;
      crossbar::Crossbar xbar(cfg);
      xbar.program_levels(random_levels(32, levels, 9));

      std::vector<double> v(32, 0.2);
      std::vector<double> errs;
      for (int rep = 0; rep < 32; ++rep) {
        const auto meas = xbar.vmm(v);
        const auto ideal = xbar.ideal_vmm(v);
        for (std::size_t c = 0; c < 32; ++c)
          if (ideal[c] > 1.0)
            errs.push_back(std::abs(meas[c] - ideal[c]) / ideal[c]);
      }
      std::sort(errs.begin(), errs.end());
      const auto s = util::summarize(errs);
      t.add_row({std::to_string(levels), util::Table::num(s.mean, 4),
                 util::Table::num(util::quantile_sorted(errs, 0.95), 4)});
    }
    t.print(std::cout);
  }

  // --- IR drop effect --------------------------------------------------------
  {
    util::Table t({"wire R (Ohm/seg)", "current loss vs ideal"});
    t.set_title("Fig. 4 — wire IR-drop attenuation (64 x 64 array)");
    for (const double rw : {0.0, 50.0, 500.0, 2000.0}) {
      crossbar::CrossbarConfig cfg;
      cfg.rows = cfg.cols = 64;
      cfg.levels = 16;
      cfg.model_ir_drop = rw > 0.0;
      cfg.wire_resistance_ohm = rw;
      cfg.verified_writes = true;
      cfg.seed = 11;
      crossbar::Crossbar xbar(cfg);
      xbar.program_levels(random_levels(64, 16, 13));
      std::vector<double> v(64, 0.2);
      double meas = 0.0, ideal = 0.0;
      for (int rep = 0; rep < 8; ++rep) {
        const auto m = xbar.vmm(v);
        const auto i = xbar.ideal_vmm(v);
        for (std::size_t c = 0; c < 64; ++c) {
          meas += m[c];
          ideal += i[c];
        }
      }
      t.add_row({util::Table::num(rw, 1),
                 util::Table::num(1.0 - meas / ideal, 4)});
    }
    t.print(std::cout);
  }
  std::cout << "shape check: crossbar latency flat in n (speedup grows ~n^2);"
               "\nerror shrinks with more levels; IR loss grows with wire "
               "resistance.\n";
  bench::report("bench_fig4_crossbar_vmm", total.elapsed_ms(), 164.0);
  return 0;
}
