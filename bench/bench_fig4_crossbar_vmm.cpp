/// \file bench_fig4_crossbar_vmm.cpp
/// \brief Regenerates **Fig. 4** — the crossbar VMM: "all n MAC operations
///        are performed with O(1) time complexity". Sweeps array sizes and
///        compares the crossbar's constant-latency analog VMM against a
///        sequential MAC datapath; also sweeps conductance levels to show
///        the accuracy/precision trade-off.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace cim;

namespace {

util::Matrix random_levels(std::size_t n, int levels, std::uint64_t seed) {
  util::Rng rng(seed);
  util::Matrix m(n, n);
  for (auto& v : m.flat())
    v = static_cast<double>(rng.uniform_int(static_cast<std::uint64_t>(levels)));
  return m;
}

}  // namespace

int main() {
  bench::WallTimer total;
  // --- O(1) latency vs sequential MAC --------------------------------------
  {
    util::Table t({"n (n x n)", "crossbar VMM (ns)", "sequential MACs (ns)",
                   "speedup", "array energy (pJ)"});
    t.set_title("Fig. 4a — analog VMM latency is O(1) in array size");
    for (const std::size_t n : {16u, 32u, 64u, 128u}) {
      crossbar::CrossbarConfig cfg;
      cfg.rows = cfg.cols = n;
      cfg.levels = 16;
      cfg.verified_writes = true;
      cfg.seed = 3;
      crossbar::Crossbar xbar(cfg);
      xbar.program_levels(random_levels(n, 16, 5));
      xbar.reset_stats();

      std::vector<double> v(n, 0.2);
      (void)xbar.vmm(v);
      const double t_cim = xbar.stats().time_ns;
      // Sequential datapath: n*n MACs at 1 MAC/ns.
      const double t_seq = static_cast<double>(n) * static_cast<double>(n);
      t.add_row({std::to_string(n), util::Table::num(t_cim, 2),
                 util::Table::num(t_seq, 0),
                 util::Table::num(t_seq / t_cim, 0),
                 util::Table::num(xbar.stats().energy_pj, 2)});
    }
    t.print(std::cout);
  }

  // --- accuracy vs number of conductance levels -----------------------------
  {
    util::Table t({"levels N", "relative VMM error (mean)",
                   "relative VMM error (p95)"});
    t.set_title("Fig. 4 — VMM accuracy vs conductance quantization levels");
    for (const int levels : {2, 4, 8, 16}) {
      crossbar::CrossbarConfig cfg;
      cfg.rows = cfg.cols = 32;
      cfg.levels = levels;
      cfg.verified_writes = true;
      cfg.seed = 7;
      crossbar::Crossbar xbar(cfg);
      xbar.program_levels(random_levels(32, levels, 9));

      std::vector<double> v(32, 0.2);
      std::vector<double> errs;
      for (int rep = 0; rep < 32; ++rep) {
        const auto meas = xbar.vmm(v);
        const auto ideal = xbar.ideal_vmm(v);
        for (std::size_t c = 0; c < 32; ++c)
          if (ideal[c] > 1.0)
            errs.push_back(std::abs(meas[c] - ideal[c]) / ideal[c]);
      }
      std::sort(errs.begin(), errs.end());
      const auto s = util::summarize(errs);
      t.add_row({std::to_string(levels), util::Table::num(s.mean, 4),
                 util::Table::num(util::quantile_sorted(errs, 0.95), 4)});
    }
    t.print(std::cout);
  }

  // --- IR drop effect --------------------------------------------------------
  {
    util::Table t({"wire R (Ohm/seg)", "current loss vs ideal"});
    t.set_title("Fig. 4 — wire IR-drop attenuation (64 x 64 array)");
    for (const double rw : {0.0, 50.0, 500.0, 2000.0}) {
      crossbar::CrossbarConfig cfg;
      cfg.rows = cfg.cols = 64;
      cfg.levels = 16;
      cfg.model_ir_drop = rw > 0.0;
      cfg.wire_resistance_ohm = rw;
      cfg.verified_writes = true;
      cfg.seed = 11;
      crossbar::Crossbar xbar(cfg);
      xbar.program_levels(random_levels(64, 16, 13));
      std::vector<double> v(64, 0.2);
      double meas = 0.0, ideal = 0.0;
      for (int rep = 0; rep < 8; ++rep) {
        const auto m = xbar.vmm(v);
        const auto i = xbar.ideal_vmm(v);
        for (std::size_t c = 0; c < 64; ++c) {
          meas += m[c];
          ideal += i[c];
        }
      }
      t.add_row({util::Table::num(rw, 1),
                 util::Table::num(1.0 - meas / ideal, 4)});
    }
    t.print(std::cout);
  }
  // --- fidelity-dial throughput: tier 1/2 vs the full analog model ----------
  // The raw-speed tiers trade modelled physics for wall-clock: tier 1
  // (calibrated noise, closed-form energy) must clear 3x over tier 0 on
  // this workload; tier 2 (pure ideal) lands in the same band — both are
  // bound by streaming the conductance matrix, and tier 1's hash noise
  // is nearly free. Accuracy deltas are reported alongside so the
  // speedup is never read in isolation.
  double tier1_speedup = 0.0, tier2_speedup = 0.0;
  double tier1_rel_dev = 0.0, tier2_rel_dev = 0.0;
  {
    const std::size_t n = 128;
    crossbar::CrossbarConfig cfg;
    cfg.rows = cfg.cols = n;
    cfg.levels = 16;
    cfg.verified_writes = true;
    cfg.seed = 17;
    crossbar::Crossbar xbar(cfg);
    xbar.program_levels(random_levels(n, 16, 19));
    std::vector<double> v(n);
    util::Rng vr(21);
    for (auto& x : v) x = vr.uniform(0.0, 0.3);
    (void)xbar.vmm(v);  // warm the conductance caches

    // Best of three passes: on a loaded single-core runner one scheduler
    // preemption inside a pass would otherwise dominate the tier ratio.
    constexpr int kReps = 400;
    const auto time_tier = [&](crossbar::FidelityTier tier) {
      double best = 1e300;
      double sink = 0.0;
      for (int pass = 0; pass < 3; ++pass) {
        bench::WallTimer t;
        for (int rep = 0; rep < kReps; ++rep) {
          const auto y = xbar.vmm(v, tier);
          sink += y[n / 2];
        }
        best = std::min(best, t.elapsed_ms());
      }
      return std::pair<double, double>(best, sink);
    };

    const auto [t0, s0] = time_tier(crossbar::FidelityTier::kFull);
    const auto [t1, s1] = time_tier(crossbar::FidelityTier::kCalibrated);
    const auto [t2, s2] = time_tier(crossbar::FidelityTier::kIdeal);
    (void)(s0 + s1 + s2);  // sinks only guard against dead-code elimination
    tier1_speedup = t1 > 0.0 ? t0 / t1 : 0.0;
    tier2_speedup = t2 > 0.0 ? t0 / t2 : 0.0;

    // Mean per-column relative deviation of each tier from the tier-0
    // expectation (the ideal oracle is the common reference scale).
    const auto ideal = xbar.ideal_vmm(v);
    std::vector<double> mean0(n, 0.0), mean1(n, 0.0), mean2(n, 0.0);
    constexpr int kStatReps = 64;
    for (int rep = 0; rep < kStatReps; ++rep) {
      const auto y0 = xbar.vmm(v, crossbar::FidelityTier::kFull);
      const auto y1 = xbar.vmm(v, crossbar::FidelityTier::kCalibrated);
      const auto y2 = xbar.vmm(v, crossbar::FidelityTier::kIdeal);
      for (std::size_t c = 0; c < n; ++c) {
        mean0[c] += y0[c] / kStatReps;
        mean1[c] += y1[c] / kStatReps;
        mean2[c] += y2[c] / kStatReps;
      }
    }
    double d1 = 0.0, d2 = 0.0, scale = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      d1 += std::abs(mean1[c] - mean0[c]);
      d2 += std::abs(mean2[c] - mean0[c]);
      scale += std::abs(ideal[c]);
    }
    tier1_rel_dev = d1 / scale;
    tier2_rel_dev = d2 / scale;

    util::Table t({"tier", "wall (ms, 400 VMMs)", "speedup vs full",
                   "mean |dev| vs tier 0"});
    t.set_title("Fig. 4 workload — fidelity-dial throughput (128 x 128)");
    t.add_row({"0 full", util::Table::num(t0, 2), "1.00", "0"});
    t.add_row({"1 calibrated", util::Table::num(t1, 2),
               util::Table::num(tier1_speedup, 2),
               util::Table::num(tier1_rel_dev, 5)});
    t.add_row({"2 ideal", util::Table::num(t2, 2),
               util::Table::num(tier2_speedup, 2),
               util::Table::num(tier2_rel_dev, 5)});
    t.print(std::cout);
  }

  std::cout << "shape check: crossbar latency flat in n (speedup grows ~n^2);"
               "\nerror shrinks with more levels; IR loss grows with wire "
               "resistance.\n";
  bench::report("bench_fig4_crossbar_vmm", total.elapsed_ms(), 164.0,
                {{"tier1_speedup", tier1_speedup},
                 {"tier2_speedup", tier2_speedup},
                 {"tier1_rel_dev", tier1_rel_dev},
                 {"tier2_rel_dev", tier2_rel_dev}});
  return 0;
}
