/// \file bench_obs_overhead.cpp
/// \brief Gate: disabled telemetry must cost < 2% on a real workload.
///
/// The cim::obs contract is that with CIM_OBS unset every instrumentation
/// site collapses to one relaxed atomic load and a predictable branch.
/// This bench verifies the contract on the bench_write_read_interleave
/// workload (256x256 interleaved writes + VMMs — the most
/// instrumentation-dense hot path: write_bit, vmm, cache maintenance).
///
/// Measuring a sub-2% effect directly is noise-bound, so the per-site cost
/// is measured by amplification: the workload runs once as-is (t_base) and
/// once with K extra *disabled* telemetry sites executed per operation
/// (t_amp). (t_amp - t_base) / total_extra_sites bounds the per-site
/// disabled cost; multiplying by the real site count per op and dividing
/// by the per-op time gives the overhead fraction the gate checks.
///
/// Exit code is non-zero if the gate fails. Enabled-mode (CIM_OBS=metrics)
/// time is also reported, informationally — that mode buys data with time.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace cim;

namespace {

constexpr std::size_t kArray = 256;
constexpr int kIters = 240;
constexpr int kWritesPerIter = 4;
/// Extra disabled span+counter sites executed per VMM in the amplified run.
constexpr int kAmplify = 64;
/// Instrumented sites a real iteration passes (spans + counter mirrors +
/// attribute calls on the write/vmm path), a deliberate overestimate.
constexpr double kRealSitesPerIter = 4.0 * (kWritesPerIter + 1);
constexpr double kGateFraction = 0.02;

crossbar::Crossbar make_xbar() {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = kArray;
  cfg.levels = 16;
  cfg.seed = 41;
  crossbar::Crossbar xbar(cfg);
  util::Rng rng(43);
  util::Matrix lv(kArray, kArray);
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(16));
  xbar.program_levels(lv);
  xbar.reset_stats();
  return xbar;
}

/// The interleave workload; `amplify` adds kAmplify disabled telemetry
/// sites (one span + one gated counter each) per iteration.
double run_workload(bool amplify) {
  auto xbar = make_xbar();
  util::Rng rng(47);
  std::vector<double> v(kArray, 0.0);
  std::vector<double> currents(kArray, 0.0);
  double sink = 0.0;

  bench::WallTimer timer;
  for (int it = 0; it < kIters; ++it) {
    std::size_t last_row = 0;
    for (int w = 0; w < kWritesPerIter; ++w) {
      const std::size_t r = rng.uniform_int(kArray);
      const std::size_t c = rng.uniform_int(kArray);
      xbar.write_bit(r, c, rng.bernoulli(0.5));
      last_row = r;
    }
    std::fill(v.begin(), v.end(), 0.0);
    v[last_row] = 0.2;
    if (amplify) {
      for (int k = 0; k < kAmplify; ++k) {
        CIM_OBS_SPAN("bench.obs_overhead.amplifier");
        if (obs::enabled())
          obs::Registry::global().counter("bench.obs_overhead").add(1);
      }
    }
    xbar.vmm(v, currents);
    sink += currents[0];
  }
  const double ms = timer.elapsed_ms();
  if (sink == 12345.6789) std::cout << "";  // defeat dead-code elimination
  return ms;
}

double median_of_three(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

int main() {
  bench::WallTimer total;

  // The gate only makes sense with telemetry disabled.
  obs::set_mode(obs::Mode::kOff);

  run_workload(false);  // warm-up: caches, page faults, lazy init
  const double t_base =
      median_of_three(run_workload(false), run_workload(false),
                      run_workload(false));
  const double t_amp =
      median_of_three(run_workload(true), run_workload(true),
                      run_workload(true));

  const double total_extra_sites =
      static_cast<double>(kAmplify) * static_cast<double>(kIters);
  const double per_site_ms = std::max(0.0, t_amp - t_base) / total_extra_sites;
  const double per_iter_ms = t_base / static_cast<double>(kIters);
  const double overhead_frac =
      per_iter_ms > 0.0 ? kRealSitesPerIter * per_site_ms / per_iter_ms : 0.0;
  const bool gate_pass = overhead_frac < kGateFraction;

  // Informational: what enabled metrics mode costs on the same workload.
  obs::set_mode(obs::Mode::kMetrics);
  const double t_metrics = run_workload(false);
  obs::set_mode(obs::Mode::kOff);
  obs::reset();

  util::Table t({"quantity", "value"});
  t.set_title("Disabled-telemetry overhead (amplified estimate, 256x256 "
              "interleave)");
  t.add_row({"baseline (ms)", util::Table::num(t_base, 2)});
  t.add_row({"amplified +" + std::to_string(kAmplify) + " sites/iter (ms)",
             util::Table::num(t_amp, 2)});
  t.add_row({"per-site cost (ns)", util::Table::num(per_site_ms * 1e6, 2)});
  t.add_row({"real sites per iter", util::Table::num(kRealSitesPerIter, 0)});
  t.add_row({"estimated overhead (%)",
             util::Table::num(overhead_frac * 100.0, 3)});
  t.add_row({"CIM_OBS=metrics run (ms)", util::Table::num(t_metrics, 2)});
  t.print(std::cout);

  std::cout << (gate_pass
                    ? "obs overhead gate: PASS — disabled telemetry < 2%\n"
                    : "obs overhead gate: FAIL — disabled telemetry >= 2%\n");

  const double ops = static_cast<double>(kIters) * (kWritesPerIter + 1);
  bench::report("bench_obs_overhead", total.elapsed_ms(), ops,
                {{"overhead_pct", overhead_frac * 100.0},
                 {"per_site_ns", per_site_ms * 1e6},
                 {"metrics_mode_ms", t_metrics},
                 {"gate_pass", gate_pass ? 1.0 : 0.0}});
  return gate_pass ? 0 : 1;
}
