/// \file bench_retraining_ablation.cpp
/// \brief Ablation for the recovery half of [38] ("Fault-tolerant training
///        with on-line fault detection"): the accuracy-vs-yield curve of
///        `bench_accuracy_vs_yield`, before and after fault-masked
///        retraining — the paper's proposed escape from the 35%+ drop.
///
/// The base MLP is trained once; each campaign trial copies it, maps it
/// onto fresh differential arrays, injects yield damage from the trial's
/// (seed, cell, rep) counter-split RNG, retrains through the faulty arrays
/// and reports the recovered accuracy (after - before). The adaptive
/// campaign (exp::run_campaign) replicates each yield point until the 95%
/// CI on the recovery tightens. Results are bit-identical for any
/// CIM_THREADS / CIM_EXP_WORKERS.
#include <algorithm>
#include <array>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exp/campaign.hpp"
#include "nn/fault_tolerant_training.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  util::Rng rng(3);
  const auto train = nn::generate_digits(600, rng, 0.1);
  const auto test = nn::generate_digits(200, rng, 0.1);

  // One shared base net: trials copy it, so the campaign measures the
  // recovery distribution of *this* network, not training noise.
  util::Rng net_rng(7);
  nn::Mlp base_net({nn::kPixels, 24, nn::kClasses}, net_rng);
  base_net.fit(train, 40, 0.05, net_rng);

  constexpr std::array<double, 5> kYields{0.95, 0.9, 0.85, 0.8, 0.7};

  exp::CampaignConfig ccfg;
  ccfg.name = "retraining_ablation";
  ccfg.seed = 17;
  ccfg.cells = kYields.size();
  for (const double y : kYields) {
    char label[16];
    std::snprintf(label, sizeof(label), "y%.2f", y);
    ccfg.cell_names.emplace_back(label);
  }
  ccfg.block = 1;  // a retrain run is an expensive, chunky task
  ccfg.min_trials = 2;
  ccfg.max_trials = 4;
  ccfg.max_blocks_per_round = 2;
  ccfg.ci_confidence = 0.95;
  ccfg.ci_target = 0.03;  // absolute, on recovered accuracy
  ccfg.pool = &util::ThreadPool::global();
  ccfg = exp::apply_env(ccfg);

  bench::WallTimer mc;
  const auto res = exp::run_campaign(
      ccfg, [&](std::size_t cell, std::uint64_t /*rep*/, util::Rng& trng) {
        const double yield = kYields[cell];
        nn::Mlp net = base_net;  // fresh copy: damage must not accumulate

        nn::CrossbarLinearConfig cfg;
        cfg.array.seed = trng();
        cfg.array.model_ir_drop = false;
        cfg.program_verify = true;
        nn::CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, cfg);
        cfg.array.seed = trng();
        nn::CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, cfg);

        l0.apply_yield(yield, trng);
        l1.apply_yield(yield, trng);

        const nn::RetrainResult r = nn::fault_tolerant_retrain(
            net, l0, l1, train, test, {.epochs = 6, .lr = 0.01}, trng);
        return r.accuracy_after - r.accuracy_before;
      });
  const double mc_ms = mc.elapsed_ms();

  util::Table t({"yield", "recovered (mean)", "ci95 half", "recovered min",
                 "trials"});
  t.set_title("Fault-tolerant retraining [38] — recovery across yields "
              "(adaptive Monte-Carlo)");
  const double z = obs::z_for_confidence(ccfg.ci_confidence);
  double recovered_sum = 0.0;
  for (std::size_t i = 0; i < kYields.size(); ++i) {
    const obs::StreamStat& rec = res.cells[i].stat;
    recovered_sum += rec.mean;
    t.add_row({util::Table::num(kYields[i], 2), util::Table::num(rec.mean, 3),
               util::Table::num(rec.ci_half_width(z), 3),
               util::Table::num(rec.min, 3), std::to_string(rec.n)});
  }
  t.print(std::cout);
  std::cout << "shape check ([38]): retraining with a deterministic fault "
               "mask recovers most of the lost accuracy down to ~80% yield; "
               "below that the surviving cells run out of capacity.\n";
  bench::report("bench_retraining_ablation", total.elapsed_ms(),
                static_cast<double>(res.total_trials),
                {{"mc_wall_ms", mc_ms},
                 {"mean_recovered",
                  recovered_sum / static_cast<double>(kYields.size())},
                 {"campaign_rounds", static_cast<double>(res.rounds)}});
  return 0;
}
