/// \file bench_retraining_ablation.cpp
/// \brief Ablation for the recovery half of [38] ("Fault-tolerant training
///        with on-line fault detection"): the accuracy-vs-yield curve of
///        `bench_accuracy_vs_yield`, before and after fault-masked
///        retraining — the paper's proposed escape from the 35%+ drop.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "nn/fault_tolerant_training.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  util::Rng rng(3);
  const auto train = nn::generate_digits(600, rng, 0.1);
  const auto test = nn::generate_digits(200, rng, 0.1);

  util::Table t({"yield", "accuracy faulty", "accuracy retrained",
                 "recovered", "epochs"});
  t.set_title("Fault-tolerant retraining [38] — recovery across yields");

  for (const double yield : {0.95, 0.9, 0.85, 0.8, 0.7}) {
    // Fresh net + arrays per point so damage does not accumulate.
    util::Rng net_rng(7);
    nn::Mlp net({nn::kPixels, 24, nn::kClasses}, net_rng);
    net.fit(train, 40, 0.05, net_rng);

    nn::CrossbarLinearConfig cfg;
    cfg.array.seed = static_cast<std::uint64_t>(yield * 1000);
    cfg.array.model_ir_drop = false;
    cfg.program_verify = true;
    nn::CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, cfg);
    cfg.array.seed += 1;
    nn::CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, cfg);

    util::Rng frng(static_cast<std::uint64_t>(yield * 777));
    l0.apply_yield(yield, frng);
    l1.apply_yield(yield, frng);

    const auto res = nn::fault_tolerant_retrain(
        net, l0, l1, train, test, {.epochs = 6, .lr = 0.01}, rng);
    t.add_row({util::Table::num(yield, 2),
               util::Table::num(res.accuracy_before, 3),
               util::Table::num(res.accuracy_after, 3),
               util::Table::num(res.accuracy_after - res.accuracy_before, 3),
               std::to_string(res.epochs_run)});
  }
  t.print(std::cout);
  std::cout << "shape check ([38]): retraining with a deterministic fault "
               "mask recovers most of the lost accuracy down to ~80% yield; "
               "below that the surviving cells run out of capacity.\n";
  return 0;
}
