/// \file bench_retraining_ablation.cpp
/// \brief Ablation for the recovery half of [38] ("Fault-tolerant training
///        with on-line fault detection"): the accuracy-vs-yield curve of
///        `bench_accuracy_vs_yield`, before and after fault-masked
///        retraining — the paper's proposed escape from the 35%+ drop.
///
/// Each yield point is a self-contained trial (own net, arrays, and a
/// counter-split RNG stream), so the points fan out across the global
/// thread pool and the table is identical for any CIM_THREADS.
#include <algorithm>
#include <array>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "nn/fault_tolerant_training.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  util::Rng rng(3);
  const auto train = nn::generate_digits(600, rng, 0.1);
  const auto test = nn::generate_digits(200, rng, 0.1);

  util::Table t({"yield", "accuracy faulty", "accuracy retrained",
                 "recovered", "epochs"});
  t.set_title("Fault-tolerant retraining [38] — recovery across yields");

  constexpr std::array<double, 5> kYields{0.95, 0.9, 0.85, 0.8, 0.7};
  std::vector<nn::RetrainResult> results(kYields.size());
  bench::WallTimer mc;
  util::ThreadPool::global().parallel_for(
      0, kYields.size(), [&](std::size_t task) {
        const double yield = kYields[task];
        // Fresh net + arrays per point so damage does not accumulate.
        util::Rng net_rng(7);
        nn::Mlp net({nn::kPixels, 24, nn::kClasses}, net_rng);
        net.fit(train, 40, 0.05, net_rng);

        nn::CrossbarLinearConfig cfg;
        cfg.array.seed = static_cast<std::uint64_t>(yield * 1000);
        cfg.array.model_ir_drop = false;
        cfg.program_verify = true;
        nn::CrossbarLinear l0(net.layers()[0].w, net.layers()[0].b, cfg);
        cfg.array.seed += 1;
        nn::CrossbarLinear l1(net.layers()[1].w, net.layers()[1].b, cfg);

        util::Rng frng(static_cast<std::uint64_t>(yield * 777));
        l0.apply_yield(yield, frng);
        l1.apply_yield(yield, frng);

        // Counter-split stream: each task's retraining noise is a pure
        // function of (base seed, task index), not of execution order.
        util::Rng task_rng(util::Rng::stream_seed(3, task));
        results[task] = nn::fault_tolerant_retrain(
            net, l0, l1, train, test, {.epochs = 6, .lr = 0.01}, task_rng);
      });
  const double mc_ms = mc.elapsed_ms();

  double recovered_sum = 0.0;
  for (std::size_t i = 0; i < kYields.size(); ++i) {
    const auto& res = results[i];
    recovered_sum += res.accuracy_after - res.accuracy_before;
    t.add_row({util::Table::num(kYields[i], 2),
               util::Table::num(res.accuracy_before, 3),
               util::Table::num(res.accuracy_after, 3),
               util::Table::num(res.accuracy_after - res.accuracy_before, 3),
               std::to_string(res.epochs_run)});
  }
  t.print(std::cout);
  std::cout << "shape check ([38]): retraining with a deterministic fault "
               "mask recovers most of the lost accuracy down to ~80% yield; "
               "below that the surviving cells run out of capacity.\n";
  bench::report("bench_retraining_ablation", total.elapsed_ms(),
                static_cast<double>(kYields.size()),
                {{"mc_wall_ms", mc_ms},
                 {"mean_recovered",
                  recovered_sum / static_cast<double>(kYields.size())}});
  return 0;
}
