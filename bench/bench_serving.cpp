/// \file bench_serving.cpp
/// \brief Open-loop serving bench: the PR 8 perf gate plus the SLO
///        characterization sweep of the batching CIM memory controller.
///
/// Four parts, all in simulated time (bit-identical across hosts/threads):
///
///  1. **Batching gate** — the same saturating Poisson stream served
///     request-at-a-time (max_batch = 1) and batch-coalesced
///     (max_batch = 16) on fresh 4-replica pools. Gate: coalescing
///     sustains >= 2x the throughput at equal-or-better p99 (the
///     issue-overhead amortization the controller exists for).
///  2. **Load sweep** — offered load at 20/50/80/120% of the pool's
///     analytic capacity; reports p50/p99/p999, queue depth, utilization
///     and sustained throughput (the saturation curve).
///  3. **Wear-aware routing** — replica 0's arrays are aged (recorded
///     write wear, visible in the health heatmap via CIM_OBS_HEATMAP_FILE);
///     round-robin vs wear-aware traffic shares on the worn replica.
///     Gate: wear-aware at most half of round-robin's worn-replica share.
///  4. **Determinism** — the 80% sweep re-run on a single-lane pool must
///     reproduce the multi-thread latency stats bit-exactly.
///
/// Knobs: CIM_SERVE_* (see README) + CIM_SERVE_TILES for the pool size.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "serve/controller.hpp"
#include "serve/tile_pool.hpp"
#include "serve/traffic.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cim;

util::Matrix bench_weights(std::size_t out, std::size_t in) {
  util::Rng rng(2024);
  util::Matrix w(out, in);
  for (auto& v : w.flat())
    v = static_cast<double>(static_cast<long>(rng.uniform_int(15)) - 7);
  return w;
}

serve::TilePoolConfig pool_cfg(std::size_t replicas) {
  serve::TilePoolConfig cfg;
  cfg.replicas = replicas;
  cfg.system.tile.array.model_ir_drop = false;  // perf path
  cfg.seed = 4242;
  return cfg;
}

serve::TilePool make_pool(std::size_t replicas, std::size_t dim) {
  return serve::TilePool(bench_weights(dim, dim), pool_cfg(replicas));
}

std::size_t env_tiles() {
  if (const char* v = std::getenv("CIM_SERVE_TILES"); v != nullptr) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 4;
}

}  // namespace

int main() {
  const bench::WallTimer timer;
  const std::size_t replicas = env_tiles();
  const std::size_t dim = 64;

  serve::TrafficConfig traffic;
  traffic.in_dim = dim;
  traffic.requests = 4000;
  serve::ControllerConfig ctl_cfg;
  serve::apply_env_overrides(traffic, ctl_cfg);
  util::ThreadPool& tp = util::ThreadPool::global();

  // Analytic per-replica capacity (requests/s) under coalesced dispatch:
  // a full batch of B pays issue overhead once over B service times.
  const double s = make_pool(1, dim).request_latency_ns(traffic.input_bits);
  const double B = static_cast<double>(ctl_cfg.max_batch);
  const double cap_rps = static_cast<double>(replicas) * 1e9 * B /
                         (ctl_cfg.issue_overhead_ns + B * s);

  double ops = 0.0;

  // ---- 1. Batching gate --------------------------------------------------
  auto gate_traffic = traffic;
  gate_traffic.rate_rps = 4.0 * cap_rps;  // saturating
  const auto gate_stream = serve::generate(gate_traffic);

  auto run_gate = [&](std::size_t max_batch) {
    auto pool = make_pool(replicas, dim);
    auto cfg = ctl_cfg;
    cfg.max_batch = max_batch;
    cfg.queue_capacity = gate_stream.size() + 1;  // no shedding in the gate
    serve::Controller ctl(pool, cfg);
    const auto st = ctl.run(gate_stream, &tp).stats;
    ops += static_cast<double>(st.completed);
    return st;
  };
  const auto batched = run_gate(ctl_cfg.max_batch > 1 ? ctl_cfg.max_batch : 16);
  const auto single = run_gate(1);
  const double speedup = batched.throughput_rps / single.throughput_rps;
  const bool gate_throughput = speedup >= 2.0;
  const bool gate_p99 = batched.p99_ns <= single.p99_ns;
  std::printf("# batching gate: %.3g rps batched vs %.3g rps single "
              "(%.2fx, need >=2x), p99 %.3g us vs %.3g us\n",
              batched.throughput_rps, single.throughput_rps, speedup,
              batched.p99_ns * 1e-3, single.p99_ns * 1e-3);

  // ---- 2. Load sweep -----------------------------------------------------
  struct SweepPoint {
    double frac;
    serve::ServeStats stats;
  };
  std::vector<SweepPoint> sweep;
  for (const double frac : {0.2, 0.5, 0.8, 1.2}) {
    auto cfg = traffic;
    cfg.rate_rps = frac * cap_rps;
    auto pool = make_pool(replicas, dim);
    serve::Controller ctl(pool, ctl_cfg);
    const auto st = ctl.run(serve::generate(cfg), &tp).stats;
    ops += static_cast<double>(st.completed);
    double util = 0.0;
    for (const double u : st.per_replica_utilization) util += u;
    util /= static_cast<double>(st.per_replica_utilization.size());
    std::printf("# load %.0f%%: p50 %.3g us p99 %.3g us p999 %.3g us | "
                "sustained %.3g rps | mean queue %.1f (max %zu) | "
                "util %.2f | mean batch %.1f | shed %zu\n",
                100.0 * frac, st.p50_ns * 1e-3, st.p99_ns * 1e-3,
                st.p999_ns * 1e-3, st.throughput_rps, st.mean_queue_depth,
                st.max_queue_depth, util, st.mean_batch, st.rejected);
    sweep.push_back({frac, st});
  }
  const auto& slo = sweep[2].stats;       // 80% — the SLO operating point
  const auto& overload = sweep[3].stats;  // 120% — saturation

  // ---- 3. Wear-aware routing (heatmap-verifiable wear) -------------------
  const obs::Mode entry_mode = obs::mode();  // restored below; keep the
  obs::set_mode(obs::Mode::kHealth);         // user's CIM_OBS for report()
  auto run_policy = [&](serve::RoutingPolicy policy) {
    auto pool = make_pool(replicas, dim);
    auto& worn = pool.replica(0);
    for (std::size_t b = 0; b < worn.tile_count(); ++b)
      worn.tile(b).plus_array().health_monitor().record_write(0, 0, 1000000);
    auto cfg_t = traffic;
    // SLO operating point: with headroom the router is free to steer; under
    // deep overload every replica must absorb backlog, worn or not.
    cfg_t.rate_rps = 0.8 * cap_rps;
    auto cfg_c = ctl_cfg;
    cfg_c.routing = policy;
    serve::Controller ctl(pool, cfg_c);
    const auto st = ctl.run(serve::generate(cfg_t), &tp).stats;
    ops += static_cast<double>(st.completed);
    return static_cast<double>(st.per_replica_requests[0]) /
           static_cast<double>(st.completed);
  };
  const double worn_share_rr = run_policy(serve::RoutingPolicy::kRoundRobin);
  const double worn_share_wear = run_policy(serve::RoutingPolicy::kWearAware);
  // The heatmap hook exports the same monitors the router consumed.
  obs::export_health_heatmap_if_requested();
  obs::set_mode(entry_mode);
  const bool gate_wear = worn_share_wear <= 0.5 * worn_share_rr;
  std::printf("# wear routing: worn-replica share rr %.3f -> wear-aware %.3f "
              "(need <= half)\n", worn_share_rr, worn_share_wear);

  // ---- 4. Determinism across thread counts -------------------------------
  auto run_slo = [&](util::ThreadPool* pool_threads) {
    auto cfg = traffic;
    cfg.rate_rps = 0.8 * cap_rps;
    auto pool = make_pool(replicas, dim);
    serve::Controller ctl(pool, ctl_cfg);
    return ctl.run(serve::generate(cfg), pool_threads).stats;
  };
  util::ThreadPool one(1);
  const auto st_one = run_slo(&one);
  const bool deterministic = st_one.p50_ns == slo.p50_ns &&
                             st_one.p99_ns == slo.p99_ns &&
                             st_one.p999_ns == slo.p999_ns &&
                             st_one.throughput_rps == slo.throughput_rps;
  ops += static_cast<double>(st_one.completed);

  const bool pass = gate_throughput && gate_p99 && gate_wear && deterministic;
  if (!pass)
    std::printf("# GATE FAILED: throughput=%d p99=%d wear=%d deterministic=%d\n",
                gate_throughput, gate_p99, gate_wear, deterministic);

  double util80 = 0.0;
  for (const double u : slo.per_replica_utilization) util80 += u;
  util80 /= static_cast<double>(slo.per_replica_utilization.size());

  bench::report(
      "bench_serving", timer.elapsed_ms(), ops,
      {{"serve_speedup_batched", speedup},
       {"p99_batched_us", batched.p99_ns * 1e-3},
       {"p99_single_us", single.p99_ns * 1e-3},
       {"p50_us", slo.p50_ns * 1e-3},
       {"p99_us", slo.p99_ns * 1e-3},
       {"p999_us", slo.p999_ns * 1e-3},
       {"mean_queue_depth", slo.mean_queue_depth},
       {"max_queue_depth", static_cast<double>(slo.max_queue_depth)},
       {"util_mean", util80},
       {"sustained_rps_overload", overload.throughput_rps},
       {"shed_frac_overload",
        static_cast<double>(overload.rejected) /
            static_cast<double>(overload.offered)},
       {"worn_share_rr", worn_share_rr},
       {"worn_share_wear", worn_share_wear},
       {"replicas", static_cast<double>(replicas)},
       {"deterministic", deterministic ? 1.0 : 0.0},
       {"gate_pass", pass ? 1.0 : 0.0}});
  return pass ? 0 : 1;
}
