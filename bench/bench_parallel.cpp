/// \file bench_parallel.cpp
/// \brief Parallel-execution-engine sweep: batched VMM throughput and
///        Monte-Carlo fan-out across thread-pool sizes, with a bitwise
///        determinism gate — the result must be identical for every pool
///        size (the engine's core contract), and on multi-core hardware
///        the wall-clock should scale with the pool.
///
/// Emits BENCH_JSON with per-pool-size throughput, the 8-vs-1 speedups,
/// and the machine's hardware concurrency (on a 1-core host the speedups
/// legitimately saturate at ~1x; the determinism gate still applies).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "memtest/march.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cim;

namespace {

constexpr std::size_t kArray = 128;     ///< batched-VMM array edge
constexpr std::size_t kBatch = 192;     ///< input vectors per batch
constexpr int kReps = 6;                ///< batches per timing run
constexpr std::size_t kTrials = 36;     ///< Monte-Carlo march trials

crossbar::Crossbar make_programmed_xbar() {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = kArray;
  cfg.levels = 16;
  cfg.verified_writes = false;
  cfg.seed = 17;
  crossbar::Crossbar xbar(cfg);
  util::Rng rng(23);
  util::Matrix lv(kArray, kArray);
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(16));
  xbar.program_levels(lv);
  xbar.reset_stats();
  return xbar;
}

util::Matrix make_inputs() {
  util::Rng rng(29);
  util::Matrix v(kBatch, kArray);
  for (auto& x : v.flat()) x = rng.uniform(0.0, 0.3);
  return v;
}

/// Runs kReps batches on a fresh identically-seeded crossbar; returns the
/// last batch result (for the bitwise determinism gate) and the wall time.
util::Matrix run_batches(util::ThreadPool& pool, const util::Matrix& inputs,
                         double& wall_ms) {
  auto xbar = make_programmed_xbar();
  util::Matrix out;
  bench::WallTimer timer;
  for (int r = 0; r < kReps; ++r) xbar.vmm_batch(inputs, out, &pool);
  wall_ms = timer.elapsed_ms();
  return out;
}

/// One Monte-Carlo trial: march-test a faulty 32x32 array, return coverage.
double march_trial(std::uint64_t trial) {
  util::Rng rng(util::Rng::stream_seed(1009, trial));
  const auto map = fault::FaultMap::with_fault_count(
      32, 32, 16, fault::FaultMix::stuck_at_only(), rng);
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  cfg.levels = 2;
  cfg.verified_writes = true;
  cfg.seed = util::Rng::stream_seed(2003, trial);
  crossbar::Crossbar xbar(cfg);
  xbar.apply_faults(map);
  return memtest::fault_coverage(map,
                                 memtest::run_march(xbar, memtest::march_cstar()));
}

std::vector<double> run_trials(util::ThreadPool& pool, double& wall_ms) {
  std::vector<double> cov(kTrials, 0.0);
  bench::WallTimer timer;
  pool.parallel_for(0, kTrials,
                    [&](std::size_t t) { cov[t] = march_trial(t); });
  wall_ms = timer.elapsed_ms();
  return cov;
}

bool bitwise_equal(const util::Matrix& a, const util::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i)
    if (fa[i] != fb[i]) return false;
  return true;
}

}  // namespace

int main() {
  bench::WallTimer total;
  util::ThreadPool pool1(1), pool2(2), pool8(8);
  bool deterministic = true;

  // --- batched VMM across pool sizes ----------------------------------------
  double t1 = 0.0, t2 = 0.0, t8 = 0.0;
  const auto inputs = make_inputs();
  const auto ref = run_batches(pool1, inputs, t1);
  deterministic &= bitwise_equal(ref, run_batches(pool2, inputs, t2));
  deterministic &= bitwise_equal(ref, run_batches(pool8, inputs, t8));

  const double vmm_count = static_cast<double>(kBatch) * kReps;
  util::Table t({"pool size", "wall (ms)", "VMM/s", "speedup vs 1"});
  t.set_title("Batched VMM (128x128, batch 192) across thread-pool sizes");
  for (const auto& [n, ms] : {std::pair<int, double>{1, t1}, {2, t2}, {8, t8}})
    t.add_row({std::to_string(n), util::Table::num(ms, 1),
               util::Table::num(vmm_count / (ms / 1e3), 0),
               util::Table::num(t1 / ms, 2)});
  t.print(std::cout);

  // --- Monte-Carlo fan-out across pool sizes --------------------------------
  double m1 = 0.0, m2 = 0.0, m8 = 0.0;
  const auto mref = run_trials(pool1, m1);
  deterministic &= mref == run_trials(pool2, m2);
  deterministic &= mref == run_trials(pool8, m8);

  util::Table mt({"pool size", "wall (ms)", "trials/s", "speedup vs 1"});
  mt.set_title("Monte-Carlo fan-out (36 march-test trials, 32x32 arrays)");
  for (const auto& [n, ms] : {std::pair<int, double>{1, m1}, {2, m2}, {8, m8}})
    mt.add_row({std::to_string(n), util::Table::num(ms, 1),
                util::Table::num(static_cast<double>(kTrials) / (ms / 1e3), 0),
                util::Table::num(m1 / ms, 2)});
  mt.print(std::cout);

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << (deterministic
                    ? "determinism gate: PASS — results bit-identical for "
                      "pool sizes 1/2/8\n"
                    : "determinism gate: FAIL — results differ across pool "
                      "sizes\n")
            << "hardware concurrency: " << hw
            << (hw < 2 ? " (single-core host: wall-clock speedup cannot "
                         "materialize here; the gate above is the portable "
                         "check)\n"
                       : "\n");

  bench::report("bench_parallel", total.elapsed_ms(),
                vmm_count * 3 + static_cast<double>(kTrials) * 3,
                {{"vmm_speedup_8v1", t1 / t8},
                 {"mc_speedup_8v1", m1 / m8},
                 {"hw_concurrency", static_cast<double>(hw)},
                 {"deterministic", deterministic ? 1.0 : 0.0}});
  return deterministic ? 0 : 1;
}
