/// \file bench_serve_timeline.cpp
/// \brief Request-lifecycle observability bench: the PR 8 capacity sweep
///        re-run through the PR 9 windowed SLO engine and latency
///        decomposition, plus the disabled-observability overhead gate.
///
/// Four parts, all in simulated time (bit-identical across hosts/threads):
///
///  1. **Decomposed sweep** — offered load at 20/50/80/120% of the pool's
///     analytic capacity with windowed aggregation and the SloTracker on.
///     Per point: the five-way mean latency decomposition (batch wait /
///     queue wait / amortized issue / bit-serial / reduce), per-window
///     p99, burn-rate alerts and the error budget.
///  2. **Queue-domination gate** — the decomposition must *prove* the PR 8
///     observation: at 120% capacity the queue-wait component dominates
///     end-to-end latency (> 50% of the mean and the largest component),
///     while at 20% it does not dominate.
///  3. **SLO gate** — the 120% point must breach the SLO (fast burn-rate
///     alerts fire), the 20% point must not.
///  4. **Overhead-when-off gate (PR 4 mold)** — the observability layer
///     disabled (window_ns = 0, no SLO, no flight, CIM_OBS off) must cost
///     < 2% on the 80% sweep point. Sub-2% is noise-bound to measure
///     directly, so the per-site disabled cost is amplified: the run
///     repeats with K extra disabled telemetry sites per request and the
///     difference bounds the per-site cost.
///
/// Also asserts the windowed series is bit-identical at 1 thread vs the
/// global pool (the determinism contract extended to windows).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "serve/controller.hpp"
#include "serve/tile_pool.hpp"
#include "serve/traffic.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cim;

util::Matrix bench_weights(std::size_t out, std::size_t in) {
  util::Rng rng(2024);
  util::Matrix w(out, in);
  for (auto& v : w.flat())
    v = static_cast<double>(static_cast<long>(rng.uniform_int(15)) - 7);
  return w;
}

serve::TilePoolConfig pool_cfg(std::size_t replicas) {
  serve::TilePoolConfig cfg;
  cfg.replicas = replicas;
  cfg.system.tile.array.model_ir_drop = false;  // perf path
  cfg.seed = 4242;
  return cfg;
}

serve::TilePool make_pool(std::size_t replicas, std::size_t dim) {
  return serve::TilePool(bench_weights(dim, dim), pool_cfg(replicas));
}

std::size_t env_tiles() {
  if (const char* v = std::getenv("CIM_SERVE_TILES"); v != nullptr) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 4;
}

/// Extra disabled telemetry sites per request in the amplified run.
constexpr int kAmplify = 64;
/// Disabled-gate sites a request passes through the new observability
/// layer (windows/slo/flight/trace branches + decomposition arithmetic),
/// a deliberate overestimate.
constexpr double kRealSitesPerRequest = 8.0;
constexpr double kGateFraction = 0.02;

double median_of_three(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

int main() {
  const bench::WallTimer timer;
  const std::size_t replicas = env_tiles();
  const std::size_t dim = 64;

  serve::TrafficConfig traffic;
  traffic.in_dim = dim;
  traffic.requests = 4000;
  serve::ControllerConfig ctl_cfg;
  serve::apply_env_overrides(traffic, ctl_cfg);
  util::ThreadPool& tp = util::ThreadPool::global();

  // Analytic per-replica capacity under coalesced dispatch (PR 8).
  const double s = make_pool(1, dim).request_latency_ns(traffic.input_bits);
  const double B = static_cast<double>(ctl_cfg.max_batch);
  const double cap_rps = static_cast<double>(replicas) * 1e9 * B /
                         (ctl_cfg.issue_overhead_ns + B * s);

  // SLO: generous at healthy load (2x the worst deadline-bound dispatch
  // path: full coalescing wait + issue + a whole batch of service), but
  // far below the queue-buildup latencies of sustained overload.
  const double slo_target_ns =
      2.0 * (ctl_cfg.batch_deadline_ns + ctl_cfg.issue_overhead_ns + B * s);

  double ops = 0.0;

  // ---- 1. Decomposed capacity sweep --------------------------------------
  struct SweepPoint {
    double frac;
    serve::ServeStats stats;
  };
  auto run_point = [&](double frac, util::ThreadPool* pool_threads) {
    auto cfg_t = traffic;
    cfg_t.rate_rps = frac * cap_rps;
    auto cfg_c = ctl_cfg;
    // ~40 windows over the nominal stream duration at every sweep point.
    const double duration_ns =
        static_cast<double>(cfg_t.requests) / cfg_t.rate_rps * 1e9;
    cfg_c.window_ns = duration_ns / 40.0;
    cfg_c.slo_target_ns = slo_target_ns;
    cfg_c.slo_objective = 0.99;
    auto pool = make_pool(replicas, dim);
    serve::Controller ctl(pool, cfg_c);
    auto st = ctl.run(serve::generate(cfg_t), pool_threads).stats;
    ops += static_cast<double>(st.completed);
    return st;
  };

  std::vector<SweepPoint> sweep;
  for (const double frac : {0.2, 0.5, 0.8, 1.2}) {
    const auto st = run_point(frac, &tp);
    std::printf(
        "# load %.0f%%: p50 %.3g us p99 %.3g us | decomposition (mean us): "
        "batch %.3g + queue %.3g + issue %.3g + bitserial %.3g + reduce %.3g "
        "| windows %zu | burn alerts fast %zu slow %zu | budget %.2fx%s\n",
        100.0 * frac, st.p50_ns * 1e-3, st.p99_ns * 1e-3,
        st.mean_batch_wait_ns * 1e-3, st.mean_queue_wait_ns * 1e-3,
        st.mean_issue_share_ns * 1e-3, st.mean_bitserial_ns * 1e-3,
        st.mean_reduce_ns * 1e-3, st.windows.size(), st.slo.fast_alerts,
        st.slo.slow_alerts, st.slo.budget_consumed,
        st.slo.breached ? " BREACHED" : "");
    sweep.push_back({frac, st});
  }
  const auto& healthy = sweep[0].stats;   // 20%
  const auto& slo_pt = sweep[2].stats;    // 80% — the SLO operating point
  const auto& overload = sweep[3].stats;  // 120% — saturation

  // ---- 2. Queue-domination gate ------------------------------------------
  auto queue_share = [](const serve::ServeStats& st) {
    return st.mean_ns > 0.0 ? st.mean_queue_wait_ns / st.mean_ns : 0.0;
  };
  auto largest_component_is_queue = [](const serve::ServeStats& st) {
    return st.mean_queue_wait_ns >= st.mean_batch_wait_ns &&
           st.mean_queue_wait_ns >= st.mean_issue_share_ns &&
           st.mean_queue_wait_ns >= st.mean_bitserial_ns &&
           st.mean_queue_wait_ns >= st.mean_reduce_ns;
  };
  const bool gate_queue_dom = queue_share(overload) > 0.5 &&
                              largest_component_is_queue(overload) &&
                              queue_share(healthy) < 0.5;
  std::printf("# queue domination: share %.2f at 120%% (need > 0.5 and "
              "largest), %.2f at 20%% (need < 0.5)\n",
              queue_share(overload), queue_share(healthy));

  // ---- 3. SLO gate --------------------------------------------------------
  const bool gate_slo = overload.slo.breached && overload.slo.fast_alerts > 0 &&
                        !healthy.slo.breached;
  std::printf("# slo: 120%% breached=%d (fast alerts %zu, budget %.2fx), "
              "20%% breached=%d\n",
              overload.slo.breached, overload.slo.fast_alerts,
              overload.slo.budget_consumed, healthy.slo.breached);

  // ---- Determinism: windowed series identical at 1 thread ----------------
  util::ThreadPool one(1);
  const auto st_one = run_point(0.8, &one);
  bool deterministic = st_one.windows.size() == slo_pt.windows.size() &&
                       st_one.slo.fast_alerts == slo_pt.slo.fast_alerts &&
                       st_one.slo.budget_consumed == slo_pt.slo.budget_consumed;
  if (deterministic)
    for (std::size_t i = 0; i < st_one.windows.size(); ++i) {
      const auto& a = st_one.windows[i];
      const auto& b = slo_pt.windows[i];
      deterministic = deterministic && a.index == b.index &&
                      a.completed == b.completed && a.p99_ns == b.p99_ns &&
                      a.burn_rate == b.burn_rate;
    }

  // ---- 4. Overhead-when-off gate (PR 4 amplification mold) ---------------
  obs::set_mode(obs::Mode::kOff);
  auto run_off = [&](bool amplify) {
    auto cfg_t = traffic;
    cfg_t.rate_rps = 0.8 * cap_rps;
    auto pool = make_pool(replicas, dim);
    serve::Controller ctl(pool, ctl_cfg);  // window/slo/flight all off
    const auto stream = serve::generate(cfg_t);
    bench::WallTimer t;
    auto report = ctl.run(stream, &tp);
    if (amplify)
      for (std::size_t r = 0; r < stream.size(); ++r)
        for (int k = 0; k < kAmplify; ++k) {
          CIM_OBS_SPAN("bench.serve_timeline.amplifier");
          if (obs::enabled())
            obs::Registry::global().counter("bench.serve_timeline").add(1);
        }
    const double ms = t.elapsed_ms();
    ops += static_cast<double>(report.stats.completed);
    return ms;
  };
  run_off(false);  // warm-up
  const double t_base =
      median_of_three(run_off(false), run_off(false), run_off(false));
  const double t_amp =
      median_of_three(run_off(true), run_off(true), run_off(true));
  const double total_extra =
      static_cast<double>(kAmplify) * static_cast<double>(traffic.requests);
  const double per_site_ms = std::max(0.0, t_amp - t_base) / total_extra;
  const double per_req_ms = t_base / static_cast<double>(traffic.requests);
  const double overhead_frac =
      per_req_ms > 0.0 ? kRealSitesPerRequest * per_site_ms / per_req_ms : 0.0;
  const bool gate_overhead = overhead_frac < kGateFraction;
  std::printf("# off-mode overhead: %.3f%% (amplified bound, need < 2%%)\n",
              overhead_frac * 100.0);

  const bool pass =
      gate_queue_dom && gate_slo && gate_overhead && deterministic;
  if (!pass)
    std::printf("# GATE FAILED: queue_dom=%d slo=%d overhead=%d "
                "deterministic=%d\n",
                gate_queue_dom, gate_slo, gate_overhead, deterministic);

  bench::report(
      "bench_serve_timeline", timer.elapsed_ms(), ops,
      {{"p99_us", slo_pt.p99_ns * 1e-3},
       {"p99_us_overload", overload.p99_ns * 1e-3},
       {"queue_share_overload", queue_share(overload)},
       {"queue_share_healthy", queue_share(healthy)},
       {"mean_batch_wait_us", overload.mean_batch_wait_ns * 1e-3},
       {"mean_queue_wait_us", overload.mean_queue_wait_ns * 1e-3},
       {"mean_issue_share_us", overload.mean_issue_share_ns * 1e-3},
       {"mean_bitserial_us", overload.mean_bitserial_ns * 1e-3},
       {"mean_reduce_us", overload.mean_reduce_ns * 1e-3},
       {"slo_breached_overload", overload.slo.breached ? 1.0 : 0.0},
       {"slo_fast_alerts_overload",
        static_cast<double>(overload.slo.fast_alerts)},
       {"slo_budget_consumed_overload", overload.slo.budget_consumed},
       {"windows_closed", static_cast<double>(overload.windows.size())},
       {"overhead_pct", overhead_frac * 100.0},
       {"replicas", static_cast<double>(replicas)},
       {"deterministic", deterministic ? 1.0 : 0.0},
       {"gate_pass", pass ? 1.0 : 0.0}});
  return pass ? 0 : 1;
}
