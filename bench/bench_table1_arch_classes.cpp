/// \file bench_table1_arch_classes.cpp
/// \brief Regenerates **Table I** — the qualitative comparison of CIM-A,
///        CIM-P, COM-N and COM-F — and derives its labels quantitatively by
///        executing VMM / bulk-bitwise / complex-function workloads on the
///        four analytic machine models. Also prints the Fig. 2 placement of
///        the paper's example systems.
#include <iostream>

#include "bench_common.hpp"
#include "arch/arch_class.hpp"
#include "arch/machine_model.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  // --- Part 1: the qualitative Table I as published ------------------------
  {
    util::Table t({"Architecture", "Data movement outside core",
                   "Data alignment", "Complex function", "Bandwidth",
                   "Effort: cells&array", "Effort: periphery",
                   "Effort: controller", "Scalability"});
    t.set_title("Table I — qualitative comparison (as published)");
    for (const auto cls : arch::all_arch_classes()) {
      const auto tr = arch::class_traits(cls);
      t.add_row({std::string(arch::arch_class_name(cls)),
                 tr.moves_data_outside_core ? "Yes" : "No",
                 tr.requires_data_alignment ? "Yes" : "NR",
                 std::string(tr.complex_function_cost),
                 std::string(arch::level_name(tr.available_bandwidth)),
                 std::string(arch::level_name(tr.effort_cells_array)),
                 std::string(arch::level_name(tr.effort_periphery)),
                 std::string(arch::level_name(tr.effort_controller)),
                 std::string(arch::level_name(tr.scalability))});
    }
    t.print(std::cout);
  }

  // --- Part 2: quantitative derivation on a 1 MiB VMM workload -------------
  {
    arch::Workload vmm;
    vmm.kind = arch::WorkloadKind::kVmm;
    vmm.input_bytes = 1 << 20;
    vmm.ops = 1 << 20;
    vmm.output_bytes = 1 << 10;

    arch::Workload complex = vmm;
    complex.kind = arch::WorkloadKind::kComplexFunction;

    util::Table t({"Architecture", "bytes moved", "move energy frac",
                   "eff. BW (GB/s)", "VMM time (us)", "VMM energy (uJ)",
                   "complex-fn slowdown"});
    t.set_title("Table I derived — 1 MiB VMM on each machine model");
    for (const auto cls : arch::all_arch_classes()) {
      const auto r = arch::execute(cls, vmm);
      const auto rc = arch::execute(cls, complex);
      t.add_row({std::string(arch::arch_class_name(cls)),
                 util::Table::num(r.bytes_moved, 0),
                 util::Table::num(r.movement_energy_fraction, 3),
                 util::Table::num(r.effective_bandwidth_gbps, 1),
                 util::Table::num(r.time_ns / 1e3, 2),
                 util::Table::num(r.energy_pj / 1e6, 3),
                 util::Table::num(rc.time_ns / r.time_ns, 1)});
    }
    t.print(std::cout);
    std::cout << "shape check: CIM classes move ~0 bytes, COM classes move "
                 "all operands;\nCIM bandwidth Max > High-Max > High > Low; "
                 "complex functions penalize CIM-A most.\n\n";
  }

  // --- Part 3: Fig. 2 placement of the paper's example systems -------------
  {
    util::Table t({"System", "Class (Fig. 2)"});
    t.set_title("Fig. 2 — classification of example systems");
    for (const auto& sys : arch::example_systems()) {
      t.add_row({std::string(sys.name),
                 std::string(arch::arch_class_name(arch::classify(sys)))});
    }
    t.print(std::cout);
  }
  bench::report("bench_table1_arch_classes", total.elapsed_ms(), 8.0);
  return 0;
}
