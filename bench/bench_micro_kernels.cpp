/// \file bench_micro_kernels.cpp
/// \brief Micro-kernel throughput bench. Default mode sweeps every
///        runtime-dispatched ISA variant (scalar / avx2 / avx512) of the
///        util::kernels hot loops — dot, axpy, gemm_accumulate,
///        vmm_row_accumulate — across sizes, reporting GB/s and speedup vs
///        the portable scalar table, and ends with the standard BENCH_JSON
///        line (per-variant extras) scraped into BENCH_PR<N>.json by
///        scripts/collect_bench.sh.
///
///        `--gbench` (or any --benchmark_* flag) instead runs the legacy
///        google-benchmark suite over the composite hot paths (crossbar
///        VMM, MAGIC NOR, march test, XNOR-popcount, synthesis flow).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "crossbar/crossbar.hpp"
#include "eda/flow.hpp"
#include "ferfet/bnn_engine.hpp"
#include "memtest/march.hpp"
#include "nn/bnn.hpp"
#include "util/rng.hpp"
#include "util/simd_dispatch.hpp"
#include "util/table.hpp"

using namespace cim;

namespace {

// --- legacy google-benchmark suite (--gbench) -------------------------------

crossbar::Crossbar make_array(std::size_t n) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.levels = 16;
  cfg.seed = 3;
  crossbar::Crossbar xbar(cfg);
  util::Rng rng(5);
  util::Matrix lv(n, n);
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(16));
  xbar.program_levels(lv);
  return xbar;
}

void BM_CrossbarVmm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto xbar = make_array(n);
  std::vector<double> v(n, 0.2);
  for (auto _ : state) benchmark::DoNotOptimize(xbar.vmm(v));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_CrossbarVmm)->Arg(32)->Arg(64)->Arg(128);

void BM_MagicNor(benchmark::State& state) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 16;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  crossbar::Crossbar xbar(cfg);
  xbar.write_bit(0, 0, true);
  xbar.write_bit(0, 1, false);
  const std::size_t ins[] = {0, 1};
  for (auto _ : state) {
    xbar.write_bit(0, 2, true);
    xbar.magic_nor(0, ins, 2);
    benchmark::DoNotOptimize(xbar.stats().logic_ops);
  }
}
BENCHMARK(BM_MagicNor);

void BM_MarchCstar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.seed = 7;
  for (auto _ : state) {
    crossbar::Crossbar xbar(cfg);
    benchmark::DoNotOptimize(memtest::run_march(xbar, memtest::march_cstar()));
  }
}
BENCHMARK(BM_MarchCstar)->Arg(16)->Arg(32);

void BM_XnorPopcount(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(9);
  nn::BitVector a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
  }
  for (auto _ : state) benchmark::DoNotOptimize(nn::xnor_popcount(a, b));
}
BENCHMARK(BM_XnorPopcount)->Arg(64)->Arg(1024);

void BM_FerfetBnnLayer(benchmark::State& state) {
  util::Rng rng(11);
  util::Matrix w(32, 64);
  for (auto& v : w.flat()) v = rng.normal(0.0, 1.0);
  ferfet::FerfetBnnEngine engine(w);
  std::vector<bool> x(64);
  for (std::size_t i = 0; i < 64; ++i) x[i] = rng.bernoulli(0.5);
  for (auto _ : state) benchmark::DoNotOptimize(engine.forward(x));
}
BENCHMARK(BM_FerfetBnnLayer);

void BM_SynthesisAndMagicMapping(benchmark::State& state) {
  const auto nl = eda::ripple_carry_adder(4);
  for (auto _ : state) {
    const auto rep = eda::run_flow("rca4", nl, eda::LogicFamily::kMagic,
                                   {.reuse_cells = true, .verify = false});
    benchmark::DoNotOptimize(rep.devices);
  }
}
BENCHMARK(BM_SynthesisAndMagicMapping);

// --- dispatched-ISA sweep (default mode) ------------------------------------

std::vector<double> bench_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

double checksum_sink = 0.0;  // defeats dead-code elimination across reps

/// Times `reps` invocations of `body` and returns seconds per rep.
template <typename F>
double time_reps(int reps, F&& body) {
  bench::WallTimer t;
  for (int i = 0; i < reps; ++i) body();
  return t.elapsed_ms() / 1e3 / static_cast<double>(reps);
}

struct KernelResult {
  std::string kernel;  // "dot" / "axpy" / "gemm" / "vmm_row"
  std::size_t n;       // problem size (elements or MACs)
  double bytes;        // bytes touched per invocation
  // seconds/rep, indexed like supported_isas()
  std::vector<double> sec;
};

/// One sweep entry: run every supported table on identical inputs.
void sweep_kernel(std::vector<KernelResult>& out, const std::string& name,
                  std::size_t n, double bytes, int reps,
                  const std::vector<util::simd::Isa>& isas,
                  const std::function<void(const util::simd::KernelTable&)>&
                      run) {
  KernelResult res{name, n, bytes, {}};
  for (const auto isa : isas) {
    const auto& table = util::simd::table_for(isa);
    run(table);  // warm-up: faults the working set, primes branch history
    res.sec.push_back(time_reps(reps, [&] { run(table); }));
  }
  out.push_back(std::move(res));
}

int run_isa_sweep() {
  const auto isas = util::simd::supported_isas();
  bench::WallTimer total;
  std::vector<KernelResult> results;

  // Vector kernels at L1/L2-resident sizes; the largest size of each
  // kernel feeds the per-variant speedup extras below.
  for (const std::size_t n : {256u, 1024u, 4096u}) {
    const auto a = bench_vec(n, 2 * n + 1);
    const auto b = bench_vec(n, 3 * n + 7);
    const int reps = static_cast<int>(4u * 1024u * 1024u / n);

    sweep_kernel(results, "dot", n, 16.0 * static_cast<double>(n), reps, isas,
                 [&](const util::simd::KernelTable& t) {
                   checksum_sink += t.dot(a.data(), b.data(), n);
                 });

    auto y = bench_vec(n, 5 * n + 3);
    sweep_kernel(results, "axpy", n, 24.0 * static_cast<double>(n), reps, isas,
                 [&](const util::simd::KernelTable& t) {
                   t.axpy(1.0000001, a.data(), y.data(), n);
                   checksum_sink += y[n / 2];
                 });

    auto g = bench_vec(n, 7 * n + 9);
    for (auto& x : g) x = x < 0 ? -x : x;  // conductances are non-negative
    auto currents = std::vector<double>(n, 0.0);
    auto noise = std::vector<double>(n, 0.0);
    sweep_kernel(results, "vmm_row", n, 40.0 * static_cast<double>(n), reps,
                 isas, [&](const util::simd::KernelTable& t) {
                   double e = 0.0;
                   t.vmm_row_accumulate(0.2, g.data(), currents.data(),
                                        noise.data(), 0.01, 1.0, n, e);
                   checksum_sink += e + currents[n / 2];
                 });
  }

  // Blocked GEMM: an L1-resident panel (the repo's small-layer nn shapes)
  // and a larger one crossing the kernel's kKc=64 / kNc=256 blocking.
  {
    struct Shape {
      std::size_t m, k, n;
      int reps;
    };
    for (const Shape s : {Shape{128, 64, 64, 32}, Shape{64, 128, 256, 8}}) {
      const auto a = bench_vec(s.m * s.k, 17);
      const auto b = bench_vec(s.k * s.n, 19);
      auto c = std::vector<double>(s.m * s.n, 0.0);
      const double macs = static_cast<double>(s.m * s.k * s.n);
      sweep_kernel(results, "gemm", s.m * s.k * s.n, 24.0 * macs, s.reps,
                   isas, [&, s](const util::simd::KernelTable& t) {
                     t.gemm_accumulate(a.data(), s.k, b.data(), s.n, c.data(),
                                       s.n, s.m, s.k, s.n);
                     checksum_sink += c[s.m * s.n / 2];
                   });
    }
  }

  // Human-readable report.
  {
    std::vector<std::string> headers = {"kernel", "n"};
    for (const auto isa : isas)
      headers.push_back(std::string(util::simd::isa_name(isa)) + " GB/s");
    for (std::size_t i = 1; i < isas.size(); ++i)
      headers.push_back(std::string("speedup ") +
                        util::simd::isa_name(isas[i]));
    util::Table t(headers);
    t.set_title("util::kernels dispatched-ISA throughput (vs scalar table)");
    for (const auto& r : results) {
      std::vector<std::string> row = {r.kernel, std::to_string(r.n)};
      for (const double s : r.sec)
        row.push_back(util::Table::num(r.bytes / s / 1e9, 2));
      for (std::size_t i = 1; i < r.sec.size(); ++i)
        row.push_back(util::Table::num(r.sec[0] / r.sec[i], 2));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  // BENCH_JSON extras: per-kernel GB/s for every variant plus speedup vs
  // scalar, taken at each kernel's peak-speedup size across the sweep
  // (the table above records every size).
  const auto best_speedup = [](const KernelResult& r) {
    double s = 0.0;
    for (std::size_t i = 1; i < r.sec.size(); ++i)
      s = std::max(s, r.sec[0] / r.sec[i]);
    return s;
  };
  std::vector<std::pair<std::string, double>> extras;
  double ops = 0.0;
  for (const auto& r : results) ops += static_cast<double>(r.n);
  for (const std::string kernel : {"dot", "axpy", "vmm_row", "gemm"}) {
    const KernelResult* best = nullptr;
    for (const auto& r : results)
      if (r.kernel == kernel &&
          (best == nullptr || best_speedup(r) > best_speedup(*best)))
        best = &r;
    if (best == nullptr) continue;
    for (std::size_t i = 0; i < isas.size(); ++i) {
      const std::string isa = util::simd::isa_name(isas[i]);
      extras.emplace_back(kernel + "_gbs_" + isa,
                          best->bytes / best->sec[i] / 1e9);
      if (i > 0)
        extras.emplace_back(kernel + "_speedup_" + isa,
                            best->sec[0] / best->sec[i]);
    }
  }

  obs::emit_bench_json("bench_micro_kernels", total.elapsed_ms(), ops, extras);
  return checksum_sink == 12345.6789 ? 1 : 0;  // keep the sink observable
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--gbench" || arg.rfind("--benchmark", 0) == 0) gbench = true;
  }
  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return run_isa_sweep();
}
