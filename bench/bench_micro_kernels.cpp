/// \file bench_micro_kernels.cpp
/// \brief google-benchmark microkernel suite: wall-clock cost of the
///        simulator's hot paths (crossbar VMM, stateful logic, march test,
///        XNOR-popcount, synthesis + mapping).
#include <benchmark/benchmark.h>

#include "crossbar/crossbar.hpp"
#include "eda/flow.hpp"
#include "ferfet/bnn_engine.hpp"
#include "memtest/march.hpp"
#include "nn/bnn.hpp"

using namespace cim;

namespace {

crossbar::Crossbar make_array(std::size_t n) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.levels = 16;
  cfg.seed = 3;
  crossbar::Crossbar xbar(cfg);
  util::Rng rng(5);
  util::Matrix lv(n, n);
  for (auto& v : lv.flat()) v = static_cast<double>(rng.uniform_int(16));
  xbar.program_levels(lv);
  return xbar;
}

void BM_CrossbarVmm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto xbar = make_array(n);
  std::vector<double> v(n, 0.2);
  for (auto _ : state) benchmark::DoNotOptimize(xbar.vmm(v));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_CrossbarVmm)->Arg(32)->Arg(64)->Arg(128);

void BM_MagicNor(benchmark::State& state) {
  crossbar::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = 16;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  crossbar::Crossbar xbar(cfg);
  xbar.write_bit(0, 0, true);
  xbar.write_bit(0, 1, false);
  const std::size_t ins[] = {0, 1};
  for (auto _ : state) {
    xbar.write_bit(0, 2, true);
    xbar.magic_nor(0, ins, 2);
    benchmark::DoNotOptimize(xbar.stats().logic_ops);
  }
}
BENCHMARK(BM_MagicNor);

void BM_MarchCstar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  crossbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.seed = 7;
  for (auto _ : state) {
    crossbar::Crossbar xbar(cfg);
    benchmark::DoNotOptimize(memtest::run_march(xbar, memtest::march_cstar()));
  }
}
BENCHMARK(BM_MarchCstar)->Arg(16)->Arg(32);

void BM_XnorPopcount(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(9);
  nn::BitVector a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
  }
  for (auto _ : state) benchmark::DoNotOptimize(nn::xnor_popcount(a, b));
}
BENCHMARK(BM_XnorPopcount)->Arg(64)->Arg(1024);

void BM_FerfetBnnLayer(benchmark::State& state) {
  util::Rng rng(11);
  util::Matrix w(32, 64);
  for (auto& v : w.flat()) v = rng.normal(0.0, 1.0);
  ferfet::FerfetBnnEngine engine(w);
  std::vector<bool> x(64);
  for (std::size_t i = 0; i < 64; ++i) x[i] = rng.bernoulli(0.5);
  for (auto _ : state) benchmark::DoNotOptimize(engine.forward(x));
}
BENCHMARK(BM_FerfetBnnLayer);

void BM_SynthesisAndMagicMapping(benchmark::State& state) {
  const auto nl = eda::ripple_carry_adder(4);
  for (auto _ : state) {
    const auto rep = eda::run_flow("rca4", nl, eda::LogicFamily::kMagic,
                                   {.reuse_cells = true, .verify = false});
    benchmark::DoNotOptimize(rep.devices);
  }
}
BENCHMARK(BM_SynthesisAndMagicMapping);

}  // namespace

BENCHMARK_MAIN();
