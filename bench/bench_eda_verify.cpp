/// \file bench_eda_verify.cpp
/// \brief `cim-lint` over the whole bench suite — runs the static micro-op
///        program verifier (eda/verify) across every benchmark circuit, all
///        three logic families (IMPLY, Majority/ReVAMP, MAGIC) and both
///        allocator modes (naive vs. CONTRA-style cell reuse), reporting the
///        per-program diagnostic counts, worst per-cell write pressure and a
///        clean/NO verdict per row.
///
/// Contrast with bench_fig8_eda_flow: that run proves functional correctness
/// by exhaustive simulation (2^inputs evaluations); this one proves
/// hazard-freedom with a single linear pass per program, so it covers every
/// circuit regardless of input count.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eda/aig.hpp"
#include "eda/flow.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/pass.hpp"
#include "eda/verify/verify.hpp"
#include "util/table.hpp"

using namespace cim;

int main() {
  bench::WallTimer total;
  const auto suite = eda::standard_suite();

  // --- cim-lint across suite x family x allocator mode ------------------------
  std::size_t total_errors = 0;
  std::size_t total_warnings = 0;
  std::size_t programs = 0;
  for (const bool reuse : {false, true}) {
    std::vector<eda::verify::LintEntry> entries;
    for (const auto& bc : suite) {
      const eda::Aig aig = eda::Aig::from_netlist(bc.netlist);
      {
        const auto prog = eda::compile_imply(aig, reuse);
        entries.push_back(
            {bc.name, "IMPLY", eda::verify::lint_imply(prog, &aig)});
      }
      {
        const eda::Mig mig = eda::Mig::from_aig(aig);
        const auto sched = eda::schedule_revamp(mig);
        entries.push_back({bc.name, "Majority",
                           eda::verify::lint_revamp(
                               eda::assemble_revamp(mig, sched))});
      }
      {
        const auto nor = aig.to_netlist().to_nor_only();
        const auto prog = eda::compile_magic(nor, reuse);
        entries.push_back(
            {bc.name, "MAGIC", eda::verify::lint_magic(prog, &nor)});
      }
    }
    auto t = eda::verify::lint_table(entries);
    t.set_title(std::string("cim-lint — ") +
                (reuse ? "area-constrained (cell reuse)" : "naive allocation"));
    t.print(std::cout);
    for (const auto& e : entries) {
      total_errors += e.report.errors();
      total_warnings += e.report.warnings();
      ++programs;
    }
  }

  // --- geometry pressure: footprint vs. a fixed 64x64 crossbar ----------------
  {
    util::Table t({"circuit", "family", "cells", "fits 64x64", "max W/cell"});
    t.set_title("Footprint check against a 64x64 crossbar tile");
    eda::verify::VerifyOptions opts;
    opts.geometry = crossbar::Geometry{64, 64};
    for (const auto& bc : suite) {
      const eda::Aig aig = eda::Aig::from_netlist(bc.netlist);
      const auto iprog = eda::compile_imply(aig, true);
      const auto irep = eda::verify::lint_imply(iprog, &aig, opts);
      t.add_row({bc.name, "IMPLY", std::to_string(iprog.num_cells),
                 irep.count(eda::verify::Rule::kOobCell) == 0 ? "yes" : "NO",
                 std::to_string(irep.max_writes_per_cell)});
      const auto nor = aig.to_netlist().to_nor_only();
      const auto mprog = eda::compile_magic(nor, true);
      const auto mrep = eda::verify::lint_magic(mprog, &nor, opts);
      t.add_row({bc.name, "MAGIC", std::to_string(mprog.num_cells),
                 mrep.count(eda::verify::Rule::kOobCell) == 0 ? "yes" : "NO",
                 std::to_string(mrep.max_writes_per_cell)});
    }
    t.print(std::cout);
  }

  // --- static pass pipeline timings + cross-tile hazard gate ------------------
  // One shared PassManager accumulates per-pass wall time across the whole
  // suite x 3 families; the suite-level run re-checks the cross-tile hazard
  // analyzer (round-robin tile pool) stays finding-free on mapper output.
  double pass_lint_ms = 0.0;
  double pass_wear_ms = 0.0;
  double pass_cost_ms = 0.0;
  std::size_t hazard_findings = 0;
  {
    auto pm = eda::verify::PassManager::standard();
    for (const auto& bc : suite) {
      const eda::Aig aig = eda::Aig::from_netlist(bc.netlist);
      const auto iprog = eda::compile_imply(aig, true);
      eda::verify::ProgramUnit iu;
      iu.name = bc.name + "/IMPLY";
      iu.imply = &iprog;
      iu.aig = &aig;
      pm.run(iu);
      const auto nor = aig.to_netlist().to_nor_only();
      const auto mprog = eda::compile_magic(nor, true);
      eda::verify::ProgramUnit mu;
      mu.name = bc.name + "/MAGIC";
      mu.magic = &mprog;
      mu.netlist = &nor;
      pm.run(mu);
      const eda::Mig mig = eda::Mig::from_aig(aig);
      const auto rprog = eda::assemble_revamp(mig, eda::schedule_revamp(mig));
      eda::verify::ProgramUnit ru;
      ru.name = bc.name + "/Majority";
      ru.revamp = &rprog;
      pm.run(ru);
    }
    util::Table t({"pass", "runs", "wall ms"});
    t.set_title("Static pass pipeline timings (suite x 3 families)");
    for (const auto& pt : pm.timings()) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.3f", pt.wall_ms);
      t.add_row({pt.name, std::to_string(pt.runs), ms});
      if (pt.name == "family-lint") pass_lint_ms = pt.wall_ms;
      if (pt.name == "wear-certify") pass_wear_ms = pt.wall_ms;
      if (pt.name == "cost-certify") pass_cost_ms = pt.wall_ms;
    }
    t.print(std::cout);
    const auto reports = eda::run_suite(
        suite, {.reuse_cells = true, .verify = false, .lint = true});
    for (const auto& r : reports) hazard_findings += r.hazard_findings;
    std::cout << "cross-tile hazard gate: "
              << (hazard_findings == 0 ? "clean" : "FINDINGS") << " ("
              << hazard_findings << " finding(s) across " << reports.size()
              << " scheduled programs)\n";
  }

  // --- the flow-integrated view: lint + dynamic verify side by side -----------
  {
    util::Table t({"circuit", "family", "lint", "dynamic verify"});
    t.set_title("Static lint vs. exhaustive simulation (flow integration)");
    for (const auto& bc : suite) {
      if (bc.netlist.num_inputs() > 9) continue;  // keep simulation cheap
      for (const auto family : eda::all_logic_families()) {
        const auto rep = eda::run_flow(bc.name, bc.netlist, family,
                                       {.reuse_cells = true, .verify = true,
                                        .lint = true});
        t.add_row({bc.name, std::string(eda::logic_family_name(family)),
                   rep.lint_clean ? "clean" : "DIRTY",
                   rep.verified ? "pass" : "FAIL"});
      }
    }
    t.print(std::cout);
  }

  std::cout << "cim-lint: " << programs << " programs, " << total_errors
            << " errors, " << total_warnings << " warnings\n"
            << "shape check: every compiled program is statically "
               "hazard-free in both allocator modes;\nstatic lint agrees "
               "with exhaustive simulation wherever both run.\n";
  bench::report("bench_eda_verify", total.elapsed_ms(),
                static_cast<double>(programs),
                {{"pass_lint_ms", pass_lint_ms},
                 {"pass_wear_ms", pass_wear_ms},
                 {"pass_cost_ms", pass_cost_ms},
                 {"hazard_findings", static_cast<double>(hazard_findings)}});
  return total_errors == 0 && hazard_findings == 0 ? 0 : 1;
}
