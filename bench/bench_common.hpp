/// \file bench_common.hpp
/// \brief Shared wall-time/throughput harness for the bench_* binaries.
///
/// Every bench ends by emitting one machine-readable line
///
///   BENCH_JSON {"bench":"<name>","wall_ms":...,"ops":...,"ops_per_s":...,
///               "threads":N, ...extras}
///
/// so the perf trajectory of each figure bench can be scraped into
/// BENCH_*.json files and tracked across PRs. `ops` is the bench's natural
/// unit of work (Monte-Carlo trials, VMMs, test operations, ...).
#pragma once

#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>

#include "util/thread_pool.hpp"

namespace cim::bench {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  void restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Emits the standard BENCH_JSON perf line on stdout. Extra numeric fields
/// can be appended as {"key", value} pairs.
inline void report(const std::string& bench, double wall_ms, double ops,
                   std::initializer_list<std::pair<const char*, double>>
                       extras = {}) {
  const double ops_per_s = wall_ms > 0.0 ? ops / (wall_ms / 1e3) : 0.0;
  std::printf(
      "BENCH_JSON {\"bench\":\"%s\",\"wall_ms\":%.3f,\"ops\":%.0f,"
      "\"ops_per_s\":%.1f,\"threads\":%zu",
      bench.c_str(), wall_ms, ops, ops_per_s,
      cim::util::ThreadPool::default_threads());
  for (const auto& [key, value] : extras)
    std::printf(",\"%s\":%.6g", key, value);
  std::printf("}\n");
}

}  // namespace cim::bench
