/// \file bench_common.hpp
/// \brief Shared wall-time/throughput harness for the bench_* binaries.
///
/// Every bench ends by emitting one machine-readable line
///
///   BENCH_JSON {"bench":"<name>","wall_ms":...,"ops":...,"ops_per_s":...,
///               "threads":N,"peak_rss_mb":...,"cache_full_rebuilds":...,
///               "cache_delta_updates":..., ...extras}
///
/// so the perf trajectory of each figure bench can be scraped into
/// BENCH_*.json files and tracked across PRs (scripts/collect_bench.sh
/// aggregates them into BENCH_PR<N>.json). `ops` is the bench's natural
/// unit of work (Monte-Carlo trials, VMMs, test operations, ...);
/// `peak_rss_mb` is the process high-water-mark resident set, and the two
/// cache counters are the process-wide conductance-cache maintenance totals
/// (util/perf_counters.hpp), so the line captures memory and cache
/// behaviour as well as time.
#pragma once

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>

#include "util/perf_counters.hpp"
#include "util/thread_pool.hpp"

namespace cim::bench {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  void restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Peak resident-set size of this process in MiB (Linux ru_maxrss is KiB).
inline double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// Emits the standard BENCH_JSON perf line on stdout. Extra numeric fields
/// can be appended as {"key", value} pairs.
inline void report(const std::string& bench, double wall_ms, double ops,
                   std::initializer_list<std::pair<const char*, double>>
                       extras = {}) {
  const double ops_per_s = wall_ms > 0.0 ? ops / (wall_ms / 1e3) : 0.0;
  std::printf(
      "BENCH_JSON {\"bench\":\"%s\",\"wall_ms\":%.3f,\"ops\":%.0f,"
      "\"ops_per_s\":%.1f,\"threads\":%zu,\"peak_rss_mb\":%.1f,"
      "\"cache_full_rebuilds\":%llu,\"cache_delta_updates\":%llu",
      bench.c_str(), wall_ms, ops, ops_per_s,
      cim::util::ThreadPool::default_threads(), peak_rss_mb(),
      static_cast<unsigned long long>(
          cim::util::perf::cache_full_rebuilds.load(
              std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          cim::util::perf::cache_delta_updates.load(
              std::memory_order_relaxed)));
  for (const auto& [key, value] : extras)
    std::printf(",\"%s\":%.6g", key, value);
  std::printf("}\n");
}

}  // namespace cim::bench
