/// \file bench_common.hpp
/// \brief Shared wall-time/throughput harness for the bench_* binaries.
///
/// Every bench ends by emitting one machine-readable line
///
///   BENCH_JSON {"bench":"<name>","wall_ms":...,"ops":...,"ops_per_s":...,
///               "threads":N,"peak_rss_mb":...,"cache_full_rebuilds":...,
///               "cache_delta_updates":...,"git_sha":"...",
///               "build_type":"...", ...extras}
///
/// so the perf trajectory of each figure bench can be scraped into
/// BENCH_*.json files and tracked across PRs (scripts/collect_bench.sh
/// aggregates them into BENCH_PR<N>.json and validates the schema). `ops`
/// is the bench's natural unit of work (Monte-Carlo trials, VMMs, test
/// operations, ...). The line is produced by the cim::obs exporter
/// (obs::emit_bench_json), which stamps the build metadata and reads the
/// cache counters from the metrics registry; with CIM_OBS enabled it also
/// honours the CIM_OBS_SNAPSHOT_FILE / CIM_OBS_TRACE_FILE exporter hooks,
/// so every bench can dump a full telemetry snapshot or Chrome trace
/// without per-bench wiring.
#pragma once

#include <chrono>
#include <initializer_list>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace cim::bench {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  void restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Peak resident-set size of this process in MiB.
inline double peak_rss_mb() { return cim::obs::peak_rss_mb(); }

/// Emits the standard BENCH_JSON perf line on stdout. Extra numeric fields
/// can be appended as {"key", value} pairs.
inline void report(const std::string& bench, double wall_ms, double ops,
                   std::initializer_list<std::pair<const char*, double>>
                       extras = {}) {
  cim::obs::emit_bench_json(bench, wall_ms, ops, extras);
}

}  // namespace cim::bench
