#include "device/reram_cell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cim::device {

LevelScheme::LevelScheme(int levels, double g_min_us, double g_max_us)
    : levels_(levels), g_min_(g_min_us), g_max_(g_max_us) {
  if (levels < 2) throw std::invalid_argument("LevelScheme: levels >= 2");
  if (!(g_max_us > g_min_us) || g_min_us <= 0.0)
    throw std::invalid_argument("LevelScheme: need 0 < g_min < g_max");
}

double LevelScheme::step_us() const {
  return (g_max_ - g_min_) / static_cast<double>(levels_ - 1);
}

double LevelScheme::level_conductance_us(int level) const {
  if (level < 0 || level >= levels_)
    throw std::out_of_range("LevelScheme: level out of range");
  return g_min_ + step_us() * static_cast<double>(level);
}

int LevelScheme::nearest_level(double g_us) const {
  const double idx = (g_us - g_min_) / step_us();
  const int level = static_cast<int>(std::lround(idx));
  return std::clamp(level, 0, levels_ - 1);
}

double LevelScheme::guard_band_us() const {
  // Guard factor 0.4: readings within 40% of the half-spacing of the nominal
  // value count as a clean hit; beyond that the margin is consumed.
  return 0.4 * step_us();
}

ReRamCell::ReRamCell(const TechnologyParams& tech, int levels, util::Rng& rng)
    : tech_(&tech),
      scheme_(std::clamp(levels, 2, tech.max_levels), tech.g_off_us(),
              tech.g_on_us()),
      g_(tech.g_off_us()),
      target_g_(tech.g_off_us()) {
  // Endurance limit per cell: lognormal around the technology mean.
  const double mu_log = std::log(tech.endurance_mean);
  const double sampled = rng.lognormal(mu_log, tech.endurance_sigma_log);
  endurance_limit_ = static_cast<std::uint64_t>(std::max(1.0, sampled));
}

double ReRamCell::sample_programmed(double target_g, util::Rng& rng) const {
  // Lognormal multiplicative spread around the target; the paper: "we end up
  // writing to the cell from a certain conductance distribution, instead of
  // a specific conductance value".
  const double factor =
      rng.lognormal(0.0, tech_->write_sigma_log * write_sigma_scale_);
  return std::clamp(target_g * factor, tech_->g_off_us(), tech_->g_on_us());
}

void ReRamCell::maybe_wear_out(util::Rng& rng) {
  if (stuck_ != StuckMode::kNone) return;
  if (writes_ >= endurance_limit_) {
    // Broken-filament cells favour the extremes (Section III.A).
    stuck_ = rng.bernoulli(0.5) ? StuckMode::kStuckAtZero : StuckMode::kStuckAtOne;
    g_ = (stuck_ == StuckMode::kStuckAtZero) ? tech_->g_off_us() : tech_->g_on_us();
  }
}

WriteResult ReRamCell::write_conductance(double g_us, util::Rng& rng, bool verify,
                                         int max_attempts) {
  WriteResult res;
  g_us = std::clamp(g_us, tech_->g_off_us(), tech_->g_on_us());
  target_level_ = scheme_.nearest_level(g_us);
  target_g_ = g_us;

  if (stuck_ != StuckMode::kNone) {
    // A hard-stuck cell absorbs the pulse but does not move.
    res.attempts = 1;
    res.time_ns = tech_->t_write_ns;
    res.energy_pj = tech_->e_write_pj;
    res.success = std::abs(g_ - g_us) <= scheme_.guard_band_us();
    ++writes_;
    return res;
  }

  // Transition faults: a cell that cannot move up (towards LRS) or down
  // (towards HRS) silently keeps its value for that direction.
  const bool wants_up = g_us > g_;
  if ((wants_up && tf_.up_fails) || (!wants_up && tf_.down_fails)) {
    res.attempts = 1;
    res.time_ns = tech_->t_write_ns;
    res.energy_pj = tech_->e_write_pj;
    res.success = std::abs(g_ - g_us) <= scheme_.guard_band_us();
    ++writes_;
    maybe_wear_out(rng);
    return res;
  }

  const int attempts_allowed = verify ? std::max(1, max_attempts) : 1;
  for (int a = 0; a < attempts_allowed; ++a) {
    ++res.attempts;
    ++writes_;
    res.time_ns += tech_->t_write_ns;
    res.energy_pj += tech_->e_write_pj;
    g_ = sample_programmed(g_us, rng);
    maybe_wear_out(rng);
    if (stuck_ != StuckMode::kNone) break;
    if (!verify) break;
    // Verify read costs a read operation.
    res.time_ns += tech_->t_read_ns;
    res.energy_pj += tech_->e_read_pj;
    if (std::abs(g_ - g_us) <= scheme_.guard_band_us()) break;
  }
  res.success = std::abs(g_ - g_us) <= scheme_.guard_band_us();
  return res;
}

WriteResult ReRamCell::write_level(int level, util::Rng& rng, bool verify,
                                   int max_attempts) {
  return write_conductance(scheme_.level_conductance_us(level), rng, verify,
                           max_attempts);
}

double ReRamCell::read_conductance_us(util::Rng& rng) {
  // Read disturb: a small SET-direction step with low probability.
  const double p_read_disturb =
      std::min(1.0, tech_->read_disturb_prob * read_disturb_scale_);
  if (stuck_ == StuckMode::kNone && rng.bernoulli(p_read_disturb)) {
    g_ = std::min(tech_->g_on_us(), g_ + 0.5 * scheme_.step_us());
  }
  const double noise = rng.normal(0.0, tech_->read_noise_frac * g_);
  return std::clamp(g_ + noise, 0.0, tech_->g_on_us() * 1.2);
}

int ReRamCell::read_level(util::Rng& rng) {
  return scheme_.nearest_level(read_conductance_us(rng));
}

bool ReRamCell::disturb_from_neighbour_write(util::Rng& rng) {
  if (stuck_ != StuckMode::kNone) return false;
  const double p_write_disturb =
      std::min(1.0, tech_->write_disturb_prob * write_disturb_scale_);
  if (rng.bernoulli(p_write_disturb)) {
    const double g_before = g_;
    g_ = std::min(tech_->g_on_us(), g_ + 0.5 * scheme_.step_us());
    return g_ != g_before;
  }
  return false;
}

void ReRamCell::force_stuck(StuckMode mode) {
  stuck_ = mode;
  if (mode == StuckMode::kStuckAtZero) g_ = tech_->g_off_us();
  if (mode == StuckMode::kStuckAtOne) g_ = tech_->g_on_us();
}

void ReRamCell::force_conductance(double g_us) {
  g_ = std::clamp(g_us, 0.0, tech_->g_on_us() * 1.2);
}

}  // namespace cim::device
