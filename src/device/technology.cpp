#include "device/technology.hpp"

#include <stdexcept>

namespace cim::device {

std::string_view technology_name(Technology tech) {
  switch (tech) {
    case Technology::kReRamHfOx: return "ReRAM-HfOx";
    case Technology::kReRamTiOx: return "ReRAM-TiOx";
    case Technology::kPcm: return "PCM";
    case Technology::kSttMram: return "STT-MRAM";
    case Technology::kSram: return "SRAM";
    case Technology::kDram: return "DRAM";
  }
  return "unknown";
}

TechnologyParams technology_params(Technology tech) {
  TechnologyParams p;
  p.tech = tech;
  switch (tech) {
    case Technology::kReRamHfOx:
      // Defaults in the struct are the HfOx ReRAM preset.
      break;
    case Technology::kReRamTiOx:
      p.r_on_kohm = 1.0;
      p.r_off_kohm = 100.0;
      p.max_levels = 8;
      p.v_set = 1.5;
      p.v_reset = -1.5;
      p.t_write_ns = 20.0;
      p.e_write_pj = 2.0;
      p.endurance_mean = 1e7;
      p.write_sigma_log = 0.08;
      break;
    case Technology::kPcm:
      p.r_on_kohm = 20.0;
      p.r_off_kohm = 2000.0;
      p.max_levels = 16;
      p.v_set = 1.2;
      p.v_reset = -1.8;   // melt-quench modeled as negative polarity
      p.t_write_ns = 100.0;
      p.t_read_ns = 2.0;
      p.e_write_pj = 10.0;
      p.e_read_pj = 0.1;
      p.endurance_mean = 1e9;
      p.write_sigma_log = 0.1;   // resistance drift makes PCM noisier
      p.read_noise_frac = 0.02;
      break;
    case Technology::kSttMram:
      p.r_on_kohm = 2.0;
      p.r_off_kohm = 5.0;        // TMR ~150%: tiny on/off window
      p.max_levels = 2;          // binary only
      p.v_set = 0.6;
      p.v_reset = -0.6;
      p.t_write_ns = 5.0;
      p.t_read_ns = 1.0;
      p.e_write_pj = 0.5;
      p.e_read_pj = 0.02;
      p.endurance_mean = 1e15;
      p.write_sigma_log = 0.02;
      p.read_disturb_prob = 1e-7;
      p.write_disturb_prob = 0.0;  // STT write is cell-selective
      p.cell_area_f2 = 20.0;
      break;
    case Technology::kSram:
      p.r_on_kohm = 5.0;         // effective pull strength proxy
      p.r_off_kohm = 50.0;
      p.max_levels = 2;
      p.v_set = 0.8;
      p.v_reset = -0.8;
      p.v_read = 0.8;
      p.t_write_ns = 0.5;
      p.t_read_ns = 0.5;
      p.e_write_pj = 0.01;
      p.e_read_pj = 0.01;
      p.endurance_mean = 1e18;   // effectively unlimited
      p.write_sigma_log = 0.005;
      p.read_noise_frac = 0.001;
      p.read_disturb_prob = 0.0;
      p.write_disturb_prob = 0.0;
      p.cell_area_f2 = 150.0;    // 6T cell
      p.nonvolatile = false;
      break;
    case Technology::kDram:
      p.r_on_kohm = 10.0;
      p.r_off_kohm = 100.0;
      p.max_levels = 2;
      p.v_set = 1.1;
      p.v_reset = -1.1;
      p.v_read = 1.1;
      p.t_write_ns = 15.0;
      p.t_read_ns = 15.0;
      p.e_write_pj = 0.1;
      p.e_read_pj = 0.1;
      p.endurance_mean = 1e18;
      p.write_sigma_log = 0.01;
      p.read_noise_frac = 0.005;
      p.read_disturb_prob = 0.0;
      p.write_disturb_prob = 1e-7;  // row-hammer-like coupling
      p.cell_area_f2 = 8.0;
      p.nonvolatile = false;
      break;
    default:
      throw std::invalid_argument("technology_params: unknown technology");
  }
  return p;
}

std::vector<Technology> all_technologies() {
  return {Technology::kReRamHfOx, Technology::kReRamTiOx, Technology::kPcm,
          Technology::kSttMram,   Technology::kSram,      Technology::kDram};
}

}  // namespace cim::device
