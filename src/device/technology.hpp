/// \file technology.hpp
/// \brief Technology parameter registry for the memory technologies the
///        paper lists as CIM substrates (Section II.B): ReRAM (HfOx/TiOx),
///        PCM, STT-MRAM, plus volatile SRAM/DRAM reference points.
///
/// Values are representative of published device literature (ISAAC, PRIME,
/// Nguyen et al. JETC'20 survey); they parameterize behaviour and cost
/// models, not materials physics. Canonical units per util/units.hpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cim::device {

/// Memory technologies usable as a CIM array substrate.
enum class Technology {
  kReRamHfOx,
  kReRamTiOx,
  kPcm,
  kSttMram,
  kSram,
  kDram,
};

/// Returns a short human-readable name ("ReRAM-HfOx", ...).
std::string_view technology_name(Technology tech);

/// Per-cell electrical, timing, energy, reliability and geometry parameters.
struct TechnologyParams {
  Technology tech = Technology::kReRamHfOx;

  // Electrical.
  double r_on_kohm = 10.0;     ///< low resistive state (LRS)
  double r_off_kohm = 1000.0;  ///< high resistive state (HRS)
  int max_levels = 16;         ///< max programmable conductance levels
  double v_set = 2.0;          ///< SET voltage (V)
  double v_reset = -2.0;       ///< RESET voltage (V)
  double v_read = 0.2;         ///< read voltage (V)

  // Timing (ns).
  double t_write_ns = 10.0;
  double t_read_ns = 1.0;

  // Energy (pJ per operation on one cell).
  double e_write_pj = 1.0;
  double e_read_pj = 0.05;

  // Reliability.
  double endurance_mean = 1e8;        ///< mean write cycles to wear-out
  double endurance_sigma_log = 0.5;   ///< lognormal spread of endurance
  double write_sigma_log = 0.05;      ///< lognormal sigma of programmed G
  double read_noise_frac = 0.01;      ///< Gaussian read noise (fraction of G)
  double read_disturb_prob = 1e-6;    ///< per-read probability of disturb step
  double write_disturb_prob = 1e-5;   ///< per-neighbour-write disturb probability

  // Geometry / integration.
  double cell_area_f2 = 4.0;     ///< cell footprint in F^2 (4F^2 crosspoint)
  double feature_nm = 32.0;      ///< technology node F (nm)
  bool nonvolatile = true;

  /// LRS conductance in uS.
  double g_on_us() const { return 1e3 / r_on_kohm; }
  /// HRS conductance in uS.
  double g_off_us() const { return 1e3 / r_off_kohm; }
  /// Cell area in um^2 derived from F^2 footprint.
  double cell_area_um2() const {
    const double f_um = feature_nm * 1e-3;
    return cell_area_f2 * f_um * f_um;
  }
};

/// Built-in parameter preset for a technology.
TechnologyParams technology_params(Technology tech);

/// All technologies with presets (for comparison sweeps).
std::vector<Technology> all_technologies();

}  // namespace cim::device
