/// \file reram_cell.hpp
/// \brief Multi-level ReRAM cell behavioural model (Section II.B.1).
///
/// "To reduce the effect of random variation, the resistance value is
/// typically quantized into N levels. Noise margin and guard bands are added
/// to each level." — the cell model implements exactly that: a LevelScheme
/// quantizing conductance into N linearly spaced levels, stochastic write
/// (lognormal programmed-conductance spread), optional program-and-verify,
/// Gaussian read noise, read/write disturb, endurance wear-out that converts
/// a working cell into a hard-stuck one, and hooks for the fault module to
/// force the fault behaviours of Fig. 6.
#pragma once

#include <cstdint>

#include "device/technology.hpp"
#include "util/rng.hpp"

namespace cim::device {

/// Hard-fault modes a cell can be in (paper: cells stuck at the extremes).
enum class StuckMode : std::uint8_t {
  kNone = 0,
  kStuckAtZero,  ///< SA0: stuck in HRS (lowest conductance, logic 0)
  kStuckAtOne,   ///< SA1: stuck in LRS (highest conductance, logic 1)
};

/// Soft transition faults: the cell can hold both states but fails a
/// specific direction of transition (classic memory TF fault model).
struct TransitionFaults {
  bool up_fails = false;    ///< 0 -> 1 transition does not happen
  bool down_fails = false;  ///< 1 -> 0 transition does not happen
};

/// Linear conductance quantization into `levels` states with guard bands.
class LevelScheme {
 public:
  /// levels >= 2; conductances span [g_min, g_max] (uS), level 0 = HRS.
  LevelScheme(int levels, double g_min_us, double g_max_us);

  int levels() const { return levels_; }
  double g_min_us() const { return g_min_; }
  double g_max_us() const { return g_max_; }

  /// Nominal conductance of a level (uS).
  double level_conductance_us(int level) const;

  /// Nearest level for a measured conductance (clamped to valid range).
  int nearest_level(double g_us) const;

  /// Half the inter-level spacing times the guard factor: a read within this
  /// band of the nominal value resolves unambiguously.
  double guard_band_us() const;

  /// Spacing between adjacent nominal levels (uS).
  double step_us() const;

 private:
  int levels_;
  double g_min_;
  double g_max_;
};

/// Outcome of one (possibly verified) write operation.
struct WriteResult {
  bool success = false;      ///< landed within guard band of the target level
  int attempts = 0;          ///< programming pulses used
  double time_ns = 0.0;
  double energy_pj = 0.0;
};

/// One multi-level ReRAM cell.
class ReRamCell {
 public:
  /// `levels` defaults to the technology's max; clamped to [2, max_levels].
  ReRamCell(const TechnologyParams& tech, int levels, util::Rng& rng);

  const LevelScheme& scheme() const { return scheme_; }

  /// Programs the cell towards `level`. Without verify a single stochastic
  /// pulse is applied; with verify, pulses repeat (up to `max_attempts`)
  /// until the programmed conductance is within the guard band.
  WriteResult write_level(int level, util::Rng& rng, bool verify = false,
                          int max_attempts = 8);

  /// Programs an *analog* target conductance (used for NN weight mapping).
  WriteResult write_conductance(double g_us, util::Rng& rng, bool verify = false,
                                int max_attempts = 8);

  /// Measured conductance: true conductance + read noise; may trigger a
  /// read-disturb drift (towards LRS) with the technology's probability.
  double read_conductance_us(util::Rng& rng);

  /// Measured level: read + nearest-level quantization.
  int read_level(util::Rng& rng);

  /// Noiseless stored conductance (test oracle; not available to circuits).
  double true_conductance_us() const { return g_; }
  /// Level the last write targeted.
  int target_level() const { return target_level_; }
  /// Clamped analog conductance the last program operation targeted (uS).
  /// Health monitors use this as the drift baseline: a hard-stuck or
  /// disturbed cell shows a large |true - target| long before reads fail.
  double target_conductance_us() const { return target_g_; }

  /// Disturb from a write on a neighbouring cell (half-select stress):
  /// with the technology's probability the conductance takes a small step
  /// towards LRS. Returns true when the stored conductance actually moved,
  /// so callers maintaining conductance caches can dirty-track precisely.
  bool disturb_from_neighbour_write(util::Rng& rng);

  // --- fault-module hooks -------------------------------------------------
  void force_stuck(StuckMode mode);
  StuckMode stuck() const { return stuck_; }
  void force_transition_faults(TransitionFaults tf) { tf_ = tf; }
  TransitionFaults transition_faults() const { return tf_; }
  /// Directly overrides the stored conductance (defect injection).
  void force_conductance(double g_us);
  /// Write-variation fault: multiplies the technology's programming sigma.
  void force_write_sigma_scale(double scale) { write_sigma_scale_ = scale; }
  double write_sigma_scale() const { return write_sigma_scale_; }
  /// Disturb faults: multiply the technology's read/write disturb rates
  /// (effective probability is clamped to 1).
  void force_disturb_scales(double read_scale, double write_scale) {
    read_disturb_scale_ = read_scale;
    write_disturb_scale_ = write_scale;
  }

  std::uint64_t write_count() const { return writes_; }
  /// Sampled wear-out limit for this cell (writes until it goes hard-stuck).
  std::uint64_t endurance_limit() const { return endurance_limit_; }
  bool worn_out() const { return writes_ >= endurance_limit_; }

 private:
  double sample_programmed(double target_g, util::Rng& rng) const;
  void maybe_wear_out(util::Rng& rng);

  const TechnologyParams* tech_;
  LevelScheme scheme_;
  double g_;              ///< stored conductance (uS)
  int target_level_ = 0;
  double target_g_ = 0.0;  ///< clamped target of the last program (uS)
  std::uint64_t writes_ = 0;
  std::uint64_t endurance_limit_;
  StuckMode stuck_ = StuckMode::kNone;
  TransitionFaults tf_;
  double write_sigma_scale_ = 1.0;
  double read_disturb_scale_ = 1.0;
  double write_disturb_scale_ = 1.0;
};

}  // namespace cim::device
