#include "device/memristor.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cim::device {

Memristor::Memristor(MemristorParams params) : params_(params), w_(params.w_init) {
  if (params_.r_on_kohm <= 0.0 || params_.r_off_kohm <= params_.r_on_kohm)
    throw std::invalid_argument("Memristor: need 0 < Ron < Roff");
  if (params_.window_p < 1) throw std::invalid_argument("Memristor: window_p >= 1");
  w_ = std::clamp(w_, 0.0, 1.0);
}

double Memristor::resistance_kohm() const {
  return params_.r_on_kohm * w_ + params_.r_off_kohm * (1.0 - w_);
}

double Memristor::conductance_us() const { return 1e3 / resistance_kohm(); }

double Memristor::window(double w) const {
  const double t = 2.0 * w - 1.0;
  double powed = 1.0;
  for (int i = 0; i < 2 * params_.window_p; ++i) powed *= t;
  return 1.0 - powed;
}

double Memristor::apply_voltage(double v, double dt_ns, std::size_t substeps) {
  if (dt_ns < 0.0) throw std::invalid_argument("Memristor: negative dt");
  if (substeps == 0) substeps = 1;
  const double h = dt_ns / static_cast<double>(substeps);
  double i_ua = 0.0;
  for (std::size_t s = 0; s < substeps; ++s) {
    const double r = resistance_kohm();
    // I[uA] = V[V] / R[kOhm] * 1e3
    i_ua = v / r * 1e3;
    // Drift uses current in mA to keep the lumped constant near unity scale.
    const double dw = params_.mobility * (i_ua * 1e-3) * window(w_) * h;
    w_ = std::clamp(w_ + dw, 0.0, 1.0);
  }
  return i_ua;
}

void Memristor::set_state(double w) { w_ = std::clamp(w, 0.0, 1.0); }

std::vector<IvPoint> Memristor::sweep_sinusoid(double amplitude_v, double period_ns,
                                               std::size_t points) {
  if (points < 2) throw std::invalid_argument("sweep_sinusoid: need >= 2 points");
  std::vector<IvPoint> trace;
  trace.reserve(points);
  const double dt = period_ns / static_cast<double>(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double t = static_cast<double>(k) * dt;
    const double v =
        amplitude_v * std::sin(2.0 * std::numbers::pi * t / period_ns);
    const double i = apply_voltage(v, dt);
    trace.push_back({t, v, i, w_, resistance_kohm()});
  }
  return trace;
}

}  // namespace cim::device
