/// \file memristor.hpp
/// \brief Behavioural memristor model (linear ion drift with Joglekar
///        window), following the HP-lab TiO2 device of Strukov et al. 2008
///        that Section II.B/Fig. 3 of the paper introduces.
///
/// The device is the series combination of a doped (low resistance) and an
/// undoped (high resistance) region; the normalized doping-front position
/// w in [0,1] divides the two:
///
///     R(w)  = Ron * w + Roff * (1 - w)
///     dw/dt = (mu_v * Ron / D^2) * i(t) * f(w)
///
/// with f(w) = 1 - (2w - 1)^(2p) the Joglekar window suppressing drift at
/// the boundaries. Positive applied voltage grows the doped region (SET,
/// towards Ron); negative voltage shrinks it (RESET, towards Roff).
#pragma once

#include <cstddef>
#include <vector>

namespace cim::device {

/// Physical parameters of the linear ion-drift model.
struct MemristorParams {
  double r_on_kohm = 1.0;      ///< fully doped resistance (kOhm)
  double r_off_kohm = 100.0;   ///< fully undoped resistance (kOhm)
  double mobility = 1e-2;      ///< mu_v * Ron / D^2 lumped drift constant (1/(V*ns)) scaled
  int window_p = 2;            ///< Joglekar window exponent p (>=1)
  double w_init = 0.1;         ///< initial doping-front position
};

/// One trace point of a voltage sweep (for I-V hysteresis reproduction).
struct IvPoint {
  double time_ns = 0.0;
  double voltage_v = 0.0;
  double current_ua = 0.0;
  double state_w = 0.0;
  double resistance_kohm = 0.0;
};

/// Time-stepped linear ion-drift memristor.
class Memristor {
 public:
  explicit Memristor(MemristorParams params = {});

  /// Normalized state w in [0,1].
  double state() const { return w_; }
  /// Instantaneous resistance R(w) in kOhm.
  double resistance_kohm() const;
  /// Instantaneous conductance in uS.
  double conductance_us() const;

  /// Integrates the state under a constant voltage for `dt_ns` nanoseconds
  /// using sub-stepped forward Euler; returns the current (uA) at the end of
  /// the interval.
  double apply_voltage(double v, double dt_ns, std::size_t substeps = 16);

  /// Resets the state to w (clamped to [0,1]).
  void set_state(double w);

  const MemristorParams& params() const { return params_; }

  /// Convenience: simulates a sinusoidal voltage sweep and records the I-V
  /// trajectory — the classic pinched-hysteresis figure-of-merit of a
  /// memristive device (Fig. 3's behavioural content).
  std::vector<IvPoint> sweep_sinusoid(double amplitude_v, double period_ns,
                                      std::size_t points) ;

 private:
  double window(double w) const;

  MemristorParams params_;
  double w_;
};

}  // namespace cim::device
