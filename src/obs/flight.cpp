#include "obs/flight.hpp"

#include <cstdio>
#include <ostream>

#include "obs/obs.hpp"

namespace cim::obs {

namespace {

void escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void FlightRecorder::record(std::string line) {
  if (size_ == capacity_) ++dropped_;
  ring_[head_] = std::move(line);
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<std::string> FlightRecorder::recent() const {
  std::vector<std::string> out;
  out.reserve(size_);
  const std::size_t start = (head_ + capacity_ - size_) % capacity_;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

bool FlightRecorder::dump(
    const std::string& path, const std::string& reason,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  const bool ok = write_file_atomic(path, [&](std::ostream& os) {
    os << "{\"format\":\"cim-flight-v1\",\"reason\":\"";
    escape_into(os, reason);
    os << "\",\"records\":" << size_ << ",\"dropped\":" << dropped_;
    for (const auto& [k, v] : meta) {
      os << ",\"";
      escape_into(os, k);
      os << "\":\"";
      escape_into(os, v);
      os << "\"";
    }
    os << "}\n";
    const std::size_t start = (head_ + capacity_ - size_) % capacity_;
    for (std::size_t i = 0; i < size_; ++i)
      os << ring_[(start + i) % capacity_] << "\n";
  });
  if (ok) ++dumps_;
  return ok;
}

void FlightRecorder::clear() {
  for (auto& s : ring_) s.clear();
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

}  // namespace cim::obs
