#include <algorithm>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace_events.hpp"

namespace cim::obs {

namespace detail {

namespace {

/// Per-thread bounded event buffer. Appends lock the buffer's own
/// (uncontended) mutex so the exporter can read live buffers safely;
/// trace mode is an explicitly heavyweight diagnostic mode.
struct EventBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

constexpr std::size_t kDefaultMaxEventsPerThread = 1u << 16;

/// Settable so tests can exercise the overflow path without recording 64k
/// events per thread. Relaxed: only mutated from test setup code.
std::atomic<std::size_t> g_max_events_per_thread{kDefaultMaxEventsPerThread};

struct EventBufferList {
  std::mutex mu;
  std::vector<EventBuffer*> live;
  std::vector<TraceEvent> retired;  ///< events of exited threads
  std::uint32_t next_tid = 0;
};

EventBufferList& buffer_list() {
  static EventBufferList* list = new EventBufferList();
  return *list;
}

/// Registers on first use, moves its events to the retired list on thread
/// exit so no event is lost before export.
struct ThreadBuffer {
  EventBuffer buf;
  ThreadBuffer() {
    auto& list = buffer_list();
    std::lock_guard<std::mutex> lk(list.mu);
    buf.tid = list.next_tid++;
    list.live.push_back(&buf);
  }
  ~ThreadBuffer() {
    auto& list = buffer_list();
    std::lock_guard<std::mutex> lk(list.mu);
    list.live.erase(std::remove(list.live.begin(), list.live.end(), &buf),
                    list.live.end());
    std::lock_guard<std::mutex> blk(buf.mu);
    list.retired.insert(list.retired.end(), buf.events.begin(),
                        buf.events.end());
  }
};

EventBuffer& this_thread_buffer() {
  thread_local ThreadBuffer tb;
  return tb.buf;
}

}  // namespace

void record_trace_event(TraceEvent e, bool keep_tid) {
  EventBuffer& buf = this_thread_buffer();
  if (!keep_tid) e.tid = buf.tid;
  {
    std::lock_guard<std::mutex> lk(buf.mu);
    if (buf.events.size() < trace_buffer_capacity()) {
      buf.events.push_back(e);
      return;
    }
  }
  // Exact per-event accounting: every event that did not make it into a
  // buffer bumps the drop counter exactly once. Surfaced in the Chrome
  // trace's otherData and asserted by tests/obs/test_trace_overflow.cpp.
  // Counted outside buf.mu: Registry::reset() holds the registry mutex
  // while clearing trace buffers, so taking the registry mutex under a
  // buffer mutex would close a lock-order cycle (found by TSan).
  Registry::global().counter("obs.trace.dropped").add(1);
}

void record_trace_event(const char* name, Component comp, std::uint64_t ts_ns,
                        std::uint64_t dur_ns, double energy_pj) {
  TraceEvent e;
  e.name = name;
  e.comp = comp;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.energy_pj = energy_pj;
  record_trace_event(e);
}

void set_trace_buffer_capacity_for_test(std::size_t cap) {
  g_max_events_per_thread.store(cap == 0 ? kDefaultMaxEventsPerThread : cap,
                                std::memory_order_relaxed);
}

std::size_t trace_buffer_capacity() {
  return g_max_events_per_thread.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> collect_trace_events() {
  auto& list = buffer_list();
  std::lock_guard<std::mutex> lk(list.mu);
  std::vector<TraceEvent> all = list.retired;
  for (EventBuffer* buf : list.live) {
    std::lock_guard<std::mutex> blk(buf->mu);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.tid < b.tid;
            });
  return all;
}

void clear_trace_events() {
  auto& list = buffer_list();
  std::lock_guard<std::mutex> lk(list.mu);
  list.retired.clear();
  for (EventBuffer* buf : list.live) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->events.clear();
  }
}

}  // namespace detail

SpanStat& SpanHandle::stat() {
  SpanStat* s = stat_.load(std::memory_order_acquire);
  if (s == nullptr) {
    s = &Registry::global().span_stat(name_, comp_);
    stat_.store(s, std::memory_order_release);
  }
  return *s;
}

void Span::finish() noexcept {
  const std::uint64_t end_ns = detail::now_ns();
  const std::uint64_t dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;

  SpanStat& stat = handle_->stat();
  stat.count.add(1);
  stat.wall_ns.add(static_cast<double>(dur_ns));
  stat.sim_time_ns.add(sim_ns_);
  stat.energy_pj.add(energy_pj_);

  // Wall time per component; simulated cost goes through attribute().
  ComponentAgg& agg = Registry::global().component(handle_->comp());
  agg.wall_ns.add(static_cast<double>(dur_ns));

  if (trace_enabled())
    detail::record_trace_event(handle_->name(), handle_->comp(), start_ns_,
                               dur_ns, energy_pj_);
}

}  // namespace cim::obs
