/// \file window.hpp
/// \brief Sliding simulated-time window aggregation and SLO tracking.
///
/// End-of-run aggregates (one cumulative histogram per run) can say *that*
/// p99 exploded but not *when*: a 120%-capacity overload run folds the
/// healthy warm-up and the collapsing tail into one number. The windowed
/// primitives here bucket observations by simulated-time window so the
/// serving layer can report live per-window tail latencies and rates, and
/// an `SloTracker` can do error-budget accounting with multi-window
/// burn-rate alerts — the instrumentation CIMFlow/NeuroSim-style
/// evaluation frameworks treat as part of the model, applied to the
/// repo's open-loop serving clock.
///
/// Design constraints, matching the repo-wide determinism contract:
///
///  - **Simulated time only.** Windows are indexed by
///    `floor(t_ns / window_ns)` of the *simulated* timestamp the caller
///    passes in; nothing here reads a wall clock, so any host and any
///    `CIM_THREADS` produce bit-identical window series.
///  - **Bounded memory.** Live windows sit in a ring of `ring_windows`
///    per-window buckets; advancing past the ring evicts the oldest
///    window through a close callback (the flight-recorder/stats
///    consumers harvest exactly-once window summaries). Observations
///    older than the ring are counted (`late_dropped`) rather than
///    silently folded into the wrong window.
///  - **Deterministic merge.** Two instances with identical shape
///    (window size, bounds, ring) merge window-by-window, bucket-by-
///    bucket — the same closed-form the sharded registry counters use.
///
/// These are plain (non-atomic) classes: the serving controller feeds them
/// from its serial schedule phase. Concurrent writers need external
/// ordering (and would forfeit the bit-identical-series contract anyway).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "obs/obs.hpp"

namespace cim::obs {

/// One closed window of a WindowedCounter.
struct WindowCount {
  std::uint64_t index = 0;  ///< window number: t in [index*W, (index+1)*W)
  double start_ns = 0.0;    ///< index * window_ns
  std::uint64_t count = 0;
};

/// Per-simulated-time-window event counter over a bounded ring.
class WindowedCounter {
 public:
  using CloseFn = std::function<void(const WindowCount&)>;

  /// `window_ns` > 0 is the window width; `ring_windows` >= 1 bounds how
  /// many trailing windows stay open (late observations within the ring
  /// still land in their own window).
  WindowedCounter(double window_ns, std::size_t ring_windows = 64);

  /// Counts `v` events at simulated time `t_ns` (< 0 clamps to window 0).
  /// Advancing to a new window evicts windows that fall off the ring via
  /// `on_close` (in increasing index order). Observations older than the
  /// ring bump `late_dropped()` instead of resurrecting a closed window.
  void add(double t_ns, std::uint64_t v = 1, const CloseFn& on_close = {});

  /// Closes every still-open window (increasing index order) and resets
  /// to the empty state. Total/late counters persist.
  void finalize(const CloseFn& on_close);

  /// Adds every open window of `other` into this instance (same shape
  /// required: window_ns and ring size). Windows of `other` outside this
  /// ring count as late. `other` is left untouched.
  void merge(const WindowedCounter& other, const CloseFn& on_close = {});

  double window_ns() const { return window_ns_; }
  std::size_t ring_windows() const { return ring_.size(); }
  std::uint64_t total() const { return total_; }
  std::uint64_t late_dropped() const { return late_dropped_; }
  std::uint64_t window_index(double t_ns) const;

 private:
  struct Slot {
    bool live = false;
    std::uint64_t index = 0;
    std::uint64_t count = 0;
  };
  void advance_to(std::uint64_t idx, const CloseFn& on_close);
  void close_slot(Slot& s, const CloseFn& on_close);
  void add_at_index(std::uint64_t idx, std::uint64_t v,
                    const CloseFn& on_close);

  double window_ns_;
  std::vector<Slot> ring_;
  std::uint64_t newest_ = 0;
  bool any_ = false;
  std::uint64_t total_ = 0;
  std::uint64_t late_dropped_ = 0;
};

/// One closed window of a WindowedHistogram: the same fixed-bucket
/// histogram snapshot the cumulative exporter path uses (quantile() and
/// friends included), stamped with its window coordinates.
struct WindowHistogramSnap {
  std::uint64_t index = 0;
  double start_ns = 0.0;
  Histogram::Snapshot hist;
};

/// Per-simulated-time-window fixed-bucket histogram over a bounded ring:
/// live per-window p50/p99/p999 and rates for the serving layer, with the
/// same closed-upper-bound bucket semantics as obs::Histogram.
class WindowedHistogram {
 public:
  using CloseFn = std::function<void(const WindowHistogramSnap&)>;

  WindowedHistogram(double window_ns, std::span<const double> bounds,
                    std::size_t ring_windows = 64);

  /// Observes `value` at simulated time `t_ns`; ring/eviction semantics
  /// identical to WindowedCounter::add.
  void observe(double t_ns, double value, const CloseFn& on_close = {});

  /// Closes every open window in increasing index order and resets.
  void finalize(const CloseFn& on_close);

  /// Deterministic merge (same window size, bounds, and ring required).
  void merge(const WindowedHistogram& other, const CloseFn& on_close = {});

  double window_ns() const { return window_ns_; }
  std::size_t ring_windows() const { return ring_.size(); }
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t late_dropped() const { return late_dropped_; }
  std::uint64_t window_index(double t_ns) const;

 private:
  struct Slot {
    bool live = false;
    std::uint64_t index = 0;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1, overflow last
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  void advance_to(std::uint64_t idx, const CloseFn& on_close);
  void close_slot(Slot& s, const CloseFn& on_close);
  void observe_at_index(std::uint64_t idx, double value, std::uint64_t weight,
                        const CloseFn& on_close);

  double window_ns_;
  std::vector<double> bounds_;
  std::vector<Slot> ring_;
  std::uint64_t newest_ = 0;
  bool any_ = false;
  std::uint64_t total_ = 0;
  std::uint64_t late_dropped_ = 0;
};

// --- SLO tracking ------------------------------------------------------------

/// Service-level objective: `objective` of events must have latency
/// <= `target_ns`, evaluated over simulated-time windows with Google-SRE
/// style multi-window burn-rate alerting (a fast alert over a short span
/// catches cliffs, a slow alert over a long span catches smoulder).
struct SloConfig {
  double target_ns = 0.0;    ///< latency threshold (must be > 0 to track)
  double objective = 0.999;  ///< required fraction of good events, (0, 1)
  double window_ns = 1.0e6;  ///< burn-rate evaluation window
  std::size_t fast_windows = 1;   ///< trailing windows of the fast alert
  std::size_t slow_windows = 12;  ///< trailing windows of the slow alert
  /// Burn rate = violation fraction / (1 - objective); 1.0 consumes the
  /// budget exactly at the objective boundary. The classic 1h/5% and
  /// 6h/10% SRE policy alerts at 14.4x and 6x.
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;
};

/// Per-closed-window SLO accounting row.
struct SloWindow {
  std::uint64_t index = 0;
  double start_ns = 0.0;
  std::uint64_t good = 0;
  std::uint64_t bad = 0;  ///< latency > target, plus rejected events
  double burn_rate = 0.0;  ///< this window alone
  bool fast_alert = false;  ///< fast-burn condition fired at this close
  bool slow_alert = false;  ///< slow-burn condition fired at this close
};

/// Whole-run SLO summary (error-budget accounting).
struct SloSummary {
  bool enabled = false;
  double target_ns = 0.0;
  double objective = 0.0;
  double window_ns = 0.0;
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  /// bad / ((good + bad) * (1 - objective)): 1.0 = budget exactly spent,
  /// > 1 = SLO missed over the run. 0 when no events.
  double budget_consumed = 0.0;
  std::size_t fast_alerts = 0;  ///< fast-burn condition onsets
  std::size_t slow_alerts = 0;  ///< slow-burn condition onsets
  bool breached = false;  ///< any fast alert, or budget_consumed >= 1
  double first_breach_ns = -1.0;  ///< window start of the first breach
};

/// Streaming SLO tracker. Feed events in non-decreasing simulated time
/// (the serving controller replays its schedule in completion order);
/// windows close as time advances and the burn-rate alerts are evaluated
/// once per window close over the trailing closed windows. Everything is
/// a pure function of the event stream — bit-identical at any thread
/// count by construction.
class SloTracker {
 public:
  explicit SloTracker(SloConfig cfg);

  /// An event that completed at `t_ns` with the given latency.
  void observe(double t_ns, double latency_ns);
  /// A shed/rejected event at `t_ns`: always a violation (an open-loop
  /// requester got no answer at all).
  void record_rejected(double t_ns);

  /// Closes trailing windows and returns the run summary. Idempotent.
  SloSummary finalize();

  /// Closed windows so far, increasing index (fully populated after
  /// finalize()). One row per window that saw traffic.
  const std::vector<SloWindow>& windows() const { return closed_; }
  const SloConfig& config() const { return cfg_; }

 private:
  void event(double t_ns, bool good);
  void close_current();

  SloConfig cfg_;
  bool any_ = false;
  bool finalized_ = false;
  std::uint64_t cur_index_ = 0;
  std::uint64_t cur_good_ = 0;
  std::uint64_t cur_bad_ = 0;
  std::uint64_t total_good_ = 0;
  std::uint64_t total_bad_ = 0;
  bool fast_active_ = false;  ///< alert condition level (for onset counting)
  bool slow_active_ = false;
  std::vector<SloWindow> closed_;
  SloSummary summary_;
};

}  // namespace cim::obs
