/// \file trace_events.hpp
/// \brief Internal interface between the span recorder (span.cpp) and the
///        Chrome-trace exporter (export.cpp). Not part of the public API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/obs.hpp"

namespace cim::obs::detail {

struct TraceEvent {
  const char* name = nullptr;
  Component comp = Component::kOther;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  double energy_pj = 0.0;
  std::uint32_t tid = 0;
};

void record_trace_event(const char* name, Component comp, std::uint64_t ts_ns,
                        std::uint64_t dur_ns, double energy_pj);

/// All recorded events (live + exited threads), sorted by timestamp.
std::vector<TraceEvent> collect_trace_events();
void clear_trace_events();

/// Per-thread buffer capacity. Defaults to 1<<16 events; tests shrink it to
/// exercise the overflow/drop path cheaply. Applies to buffers from the next
/// append on (existing contents are kept). 0 restores the default.
void set_trace_buffer_capacity_for_test(std::size_t cap);
std::size_t trace_buffer_capacity();

}  // namespace cim::obs::detail
