/// \file trace_events.hpp
/// \brief Internal interface between the span recorder (span.cpp) and the
///        Chrome-trace exporter (export.cpp). Not part of the public API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/obs.hpp"

namespace cim::obs::detail {

struct TraceEvent {
  const char* name = nullptr;  ///< must be a static string (not copied)
  Component comp = Component::kOther;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  double energy_pj = 0.0;
  std::uint32_t tid = 0;
  /// Chrome trace_event phase: 'X' complete span (the span recorder's only
  /// phase), or a flow arrow — 's' start / 'f' finish (binding point "e").
  /// Flow pairs share `flow_id` and draw an arrow between the slices
  /// enclosing their timestamps (request causality across serving lanes).
  char ph = 'X';
  std::uint64_t flow_id = 0;
  /// Trace process lane: pid 1 = wall-clock spans (the span recorder),
  /// pid 2 = simulated-time serving lanes (ts is simulated ns there).
  std::uint32_t pid = 1;
};

void record_trace_event(const char* name, Component comp, std::uint64_t ts_ns,
                        std::uint64_t dur_ns, double energy_pj);

/// Full-control overload for non-span events (flow arrows, simulated-time
/// lanes). `e.tid` is overwritten with the recording thread's trace tid
/// unless `keep_tid` is set (the serving controller assigns one lane per
/// replica, independent of which thread records the plan).
void record_trace_event(TraceEvent e, bool keep_tid = false);

/// All recorded events (live + exited threads), sorted by timestamp.
std::vector<TraceEvent> collect_trace_events();
void clear_trace_events();

/// Per-thread buffer capacity. Defaults to 1<<16 events; tests shrink it to
/// exercise the overflow/drop path cheaply. Applies to buffers from the next
/// append on (existing contents are kept). 0 restores the default.
void set_trace_buffer_capacity_for_test(std::size_t cap);
std::size_t trace_buffer_capacity();

}  // namespace cim::obs::detail
