/// \file trace_events.hpp
/// \brief Internal interface between the span recorder (span.cpp) and the
///        Chrome-trace exporter (export.cpp). Not part of the public API.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"

namespace cim::obs::detail {

struct TraceEvent {
  const char* name = nullptr;
  Component comp = Component::kOther;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  double energy_pj = 0.0;
  std::uint32_t tid = 0;
};

void record_trace_event(const char* name, Component comp, std::uint64_t ts_ns,
                        std::uint64_t dur_ns, double energy_pj);

/// All recorded events (live + exited threads), sorted by timestamp.
std::vector<TraceEvent> collect_trace_events();
void clear_trace_events();

}  // namespace cim::obs::detail
