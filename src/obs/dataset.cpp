#include "obs/dataset.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace cim::obs {

double StreamStat::stddev() const { return std::sqrt(variance()); }

double StreamStat::std_error() const {
  return n > 1 ? stddev() / std::sqrt(static_cast<double>(n)) : 0.0;
}

double StreamStat::ci_half_width(double z) const {
  if (n < 2) return std::numeric_limits<double>::infinity();
  return z * std_error();
}

double normal_quantile(double p) {
  if (!(p > 0.0)) return -std::numeric_limits<double>::infinity();
  if (!(p < 1.0)) return std::numeric_limits<double>::infinity();
  // Beasley-Springer-Moro with Acklam's coefficients: rational
  // approximations on a central region and two symmetric tails.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double z_for_confidence(double confidence) {
  return normal_quantile(0.5 + 0.5 * confidence);
}

void DataSet::observe(std::string_view key, double x) {
  auto it = stats_.find(key);
  if (it == stats_.end()) it = stats_.emplace(std::string(key), StreamStat{}).first;
  it->second.add(x);
}

void DataSet::absorb(std::string_view key, const StreamStat& stat) {
  auto it = stats_.find(key);
  if (it == stats_.end()) it = stats_.emplace(std::string(key), StreamStat{}).first;
  it->second.merge(stat);
}

void DataSet::merge(const DataSet& other) {
  for (const auto& [key, stat] : other.stats_) absorb(key, stat);
}

const StreamStat& DataSet::stat(std::string_view key) const {
  static const StreamStat kEmpty{};
  const auto it = stats_.find(key);
  return it == stats_.end() ? kEmpty : it->second;
}

bool DataSet::contains(std::string_view key) const {
  return stats_.find(key) != stats_.end();
}

std::vector<DataSet::Row> DataSet::rows() const {
  std::vector<Row> out;
  out.reserve(stats_.size());
  for (const auto& [key, stat] : stats_) out.push_back({key, stat});
  return out;
}

std::string DataSet::summary_table(double confidence) const {
  const double z = z_for_confidence(confidence);
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-28s %8s %12s %12s %12s %12s %12s\n",
                "key", "n", "mean", "stddev", "min", "max", "ci_half");
  out += line;
  for (const auto& [key, s] : stats_) {
    std::snprintf(line, sizeof line,
                  "%-28s %8llu %12.6g %12.6g %12.6g %12.6g %12.6g\n",
                  key.c_str(), static_cast<unsigned long long>(s.n), s.mean,
                  s.stddev(), s.min, s.max, s.ci_half_width(z));
    out += line;
  }
  return out;
}

}  // namespace cim::obs
