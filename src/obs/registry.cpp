#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace_events.hpp"
#include "util/simd_dispatch.hpp"
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace cim::obs {

namespace detail {

int init_mode_from_env() {
  int m = static_cast<int>(Mode::kOff);
  if (const char* env = std::getenv("CIM_OBS"); env != nullptr) {
    // Comma-separated tier list; every recognized tier ORs its bits in.
    std::string_view rest(env);
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view tok = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      if (tok == "1" || tok == "on" || tok == "metrics")
        m |= static_cast<int>(Mode::kMetrics);
      else if (tok == "trace")
        m |= static_cast<int>(Mode::kTrace);
      else if (tok == "health")
        m |= static_cast<int>(Mode::kHealth);
      else if (tok == "all")
        m |= static_cast<int>(Mode::kTraceHealth);
      // anything else (incl. "off"/"0") adds nothing
    }
  }
  // First initialiser wins; a concurrent set_mode() is not overwritten.
  int expected = -1;
  detail::g_mode.compare_exchange_strong(expected, m,
                                         std::memory_order_relaxed);
  return detail::g_mode.load(std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

}  // namespace detail

Mode mode() { return static_cast<Mode>(detail::mode_int()); }

void set_mode(Mode m) {
  detail::g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

std::string_view component_name(Component c) {
  switch (c) {
    case Component::kArray: return "array";
    case Component::kAdc: return "adc";
    case Component::kDac: return "dac";
    case Component::kDigital: return "digital";
    case Component::kInterconnect: return "interconnect";
    case Component::kOther: return "other";
  }
  return "unknown";
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_ = std::vector<Counter>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  // NaN compares false against every bound, which the search loop would
  // file under bucket 0; the documented semantics put it in overflow.
  std::size_t b = std::isnan(v) ? bounds_.size() : 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  counts_[b].add(1);
  count_.add(1);
  sum_.add(v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) s.counts.push_back(c.value());
  s.count = count_.value();
  s.sum = sum_.value();
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0 || bounds.empty() || counts.size() != bounds.size() + 1)
    return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (cum + in_bucket >= rank && in_bucket > 0.0) {
      const double lo = b > 0 ? bounds[b - 1] : std::min(bounds[0], 0.0);
      const double hi = bounds[b];
      return lo + (hi - lo) * ((rank - cum) / in_bucket);
    }
    cum += in_bucket;
  }
  // Rank fell in the overflow bucket: the layout cannot resolve past the
  // last finite bound (Prometheus clamps the same way).
  return bounds.back();
}

bool Histogram::absorb(const Snapshot& s) noexcept {
  if (s.bounds.size() != bounds_.size() ||
      s.counts.size() != counts_.size() ||
      !std::equal(s.bounds.begin(), s.bounds.end(), bounds_.begin()))
    return false;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    if (s.counts[i] != 0) counts_[i].add(s.counts[i]);
  if (s.count != 0) count_.add(s.count);
  if (s.sum != 0.0) sum_.add(s.sum);
  return true;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.reset();
  count_.reset();
  sum_.reset();
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::global() {
  static Registry* reg = new Registry();  // leaked: usable during teardown
  return *reg;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          bounds.begin(), bounds.end())))
             .first;
  return *it->second;
}

SpanStat& Registry::span_stat(std::string_view name, Component comp) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = spans_.find(name);
  if (it == spans_.end()) {
    auto entry = std::make_unique<SpanEntry>();
    entry->comp = comp;
    it = spans_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second->stat;
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  const BuildInfo info = build_info();
  s.meta.git_sha = info.git_sha;
  s.meta.build_type = info.build_type;
  s.meta.threads = info.threads;
  s.meta.simd_isa = info.simd_isa;
  s.meta.unix_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const int m = static_cast<int>(obs::mode());
  if (m == 0)
    s.meta.mode = "off";
  else if ((m & 6) == 6)
    s.meta.mode = "trace+health";
  else if ((m & 2) != 0)
    s.meta.mode = "trace";
  else if ((m & 4) != 0)
    s.meta.mode = "health";
  else
    s.meta.mode = "metrics";

  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_)
    s.histograms.push_back({name, h->snapshot()});
  for (const auto& [name, e] : spans_) {
    Snapshot::SpanRow row;
    row.name = name;
    row.comp = e->comp;
    row.count = e->stat.count.value();
    row.wall_ns = e->stat.wall_ns.value();
    row.sim_time_ns = e->stat.sim_time_ns.value();
    row.energy_pj = e->stat.energy_pj.value();
    s.spans.push_back(std::move(row));
  }
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    Snapshot::ComponentRow row;
    row.comp = static_cast<Component>(i);
    row.events = components_[i].events.value();
    row.wall_ns = components_[i].wall_ns.value();
    row.sim_time_ns = components_[i].sim_time_ns.value();
    row.energy_pj = components_[i].energy_pj.value();
    s.components.push_back(row);
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, e] : spans_) {
    e->stat.count.reset();
    e->stat.wall_ns.reset();
    e->stat.sim_time_ns.reset();
    e->stat.energy_pj.reset();
  }
  for (auto& c : components_) {
    c.events.reset();
    c.wall_ns.reset();
    c.sim_time_ns.reset();
    c.energy_pj.reset();
  }
  detail::clear_trace_events();
}

Snapshot snapshot() { return Registry::global().snapshot(); }
void reset() { Registry::global().reset(); }

// --- attribution -------------------------------------------------------------

void attribute(Component c, double sim_time_ns, double energy_pj) {
  if (!enabled()) return;
  ComponentAgg& agg = Registry::global().component(c);
  agg.events.add(1);
  agg.sim_time_ns.add(sim_time_ns);
  agg.energy_pj.add(energy_pj);
}

std::vector<BreakdownRow> breakdown() {
  Registry& reg = Registry::global();
  double total_e = 0.0;
  double total_t = 0.0;
  std::vector<BreakdownRow> rows;
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    const ComponentAgg& agg = reg.component(static_cast<Component>(i));
    BreakdownRow row;
    row.comp = static_cast<Component>(i);
    row.events = agg.events.value();
    row.sim_time_ns = agg.sim_time_ns.value();
    row.energy_pj = agg.energy_pj.value();
    if (row.events == 0) continue;
    total_e += row.energy_pj;
    total_t += row.sim_time_ns;
    rows.push_back(row);
  }
  for (auto& row : rows) {
    row.energy_share = total_e > 0.0 ? row.energy_pj / total_e : 0.0;
    row.time_share = total_t > 0.0 ? row.sim_time_ns / total_t : 0.0;
  }
  return rows;
}

// --- build metadata ----------------------------------------------------------

#ifndef CIM_GIT_SHA
#define CIM_GIT_SHA "unknown"
#endif
#ifndef CIM_BUILD_TYPE
#define CIM_BUILD_TYPE "unknown"
#endif

BuildInfo build_info() {
  BuildInfo info;
  info.git_sha = CIM_GIT_SHA;
  info.build_type = CIM_BUILD_TYPE;
  info.threads = 0;
  if (const char* env = std::getenv("CIM_THREADS"); env != nullptr) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && n > 0)
      info.threads = static_cast<std::size_t>(std::min(n, 1024ul));
  }
  if (info.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    info.threads = hw > 0 ? hw : 1;
  }
  info.simd_isa = util::simd::active_isa_name();
  return info;
}

}  // namespace cim::obs
