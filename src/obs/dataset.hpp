/// \file dataset.hpp
/// \brief Streaming statistical summaries: mergeable Welford accumulators,
///        keyed data sets, and confidence-interval arithmetic.
///
/// The Monte-Carlo campaign engine (src/exp/) is an observability problem
/// at heart: its adaptive-stopping control loop reads *streaming summaries*
/// of trial outcomes — the same shape as the windowed SLO engine reading
/// latency telemetry. This header is that summary layer, in the
/// `cmb_dataset`/`cmb_datasummary` mold of Cimba's data collection:
///
///  - `StreamStat`: a Welford accumulator (count/mean/M2/min/max) that is
///    *mergeable*, so per-block partial summaries computed on different
///    threads or in different worker processes combine into the same
///    moments. Merging is Chan's parallel update; it is exact in exact
///    arithmetic, and in floating point it is deterministic as long as the
///    merge order is fixed — the campaign engine always folds block
///    summaries in block-index order, which is what makes sharded campaigns
///    bit-identical to a serial run.
///  - `DataSet`: named `StreamStat`s with deterministic (sorted) iteration,
///    for keyed summaries ("cell=ReRAM-HfOx/levels=16" -> accuracy stats).
///  - CI helpers: `normal_quantile` / `z_for_confidence` and
///    `StreamStat::ci_half_width`, the numbers the campaign scheduler
///    compares against its convergence target.
///
/// Everything here is plain value types — no atomics, no registry coupling —
/// because campaign statistics are aggregated at deterministic barriers, not
/// concurrently. For lock-free process-wide metrics use the registry
/// primitives in obs.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cim::obs {

/// Mergeable Welford accumulator over a stream of doubles.
///
/// Fields are public and raw (count/mean/M2/min/max) so checkpoints can
/// serialize the exact state with %.17g and re-parse it bit-identically —
/// the `cim-campaign-v1` manifest stores these five numbers per cell.
struct StreamStat {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the running mean
  double min = 0.0;
  double max = 0.0;

  /// Welford single-observation update.
  void add(double x) {
    if (n == 0) {
      min = max = x;
    } else {
      if (x < min) min = x;
      if (x > max) max = x;
    }
    n += 1;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
  }

  /// Chan's parallel merge: `*this` becomes the summary of both streams.
  /// Deterministic for a fixed merge order (the campaign engine merges
  /// block summaries in block-index order; see file comment).
  void merge(const StreamStat& other) {
    if (other.n == 0) return;
    if (n == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.mean - mean;
    const double nab = na + nb;
    mean += delta * (nb / nab);
    m2 += other.m2 + delta * delta * (na * nb / nab);
    n += other.n;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  void reset() { *this = StreamStat{}; }

  std::uint64_t count() const { return n; }
  double sum() const { return mean * static_cast<double>(n); }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const {
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
  }
  double stddev() const;
  /// Standard error of the mean (stddev / sqrt(n)); 0 for n < 2.
  double std_error() const;

  /// Half-width of the two-sided normal-approximation confidence interval
  /// on the mean: z * stddev / sqrt(n). Returns +infinity for n < 2 (an
  /// unestimable interval never satisfies a convergence target), 0 for a
  /// degenerate (zero-variance) sample.
  double ci_half_width(double z) const;
};

/// Standard-normal quantile Phi^-1(p) for p in (0, 1), by the
/// Beasley-Springer-Moro rational approximation (|err| < 3e-9 over the
/// whole range) — deterministic, no <random> machinery. Out-of-range p
/// returns +/-infinity.
double normal_quantile(double p);

/// Two-sided z multiplier for a confidence level in (0, 1):
/// z_for_confidence(0.95) == Phi^-1(0.975) ~= 1.95996.
double z_for_confidence(double confidence);

/// Keyed streaming summaries with deterministic iteration order — the
/// `cmb_dataset` shape: observe(key, x) accumulates into the key's
/// StreamStat, rows() walks keys sorted so two identically fed DataSets
/// print and export identically.
class DataSet {
 public:
  /// Accumulates one observation under `key` (creates the key on first use).
  void observe(std::string_view key, double x);

  /// Merges a whole summary under `key` (creates the key on first use).
  void absorb(std::string_view key, const StreamStat& stat);

  /// Merges every key of `other` into this set (key-wise StreamStat merge).
  void merge(const DataSet& other);

  /// The summary for `key`; an empty StreamStat when the key is unknown.
  const StreamStat& stat(std::string_view key) const;

  bool contains(std::string_view key) const;
  std::size_t size() const { return stats_.size(); }
  bool empty() const { return stats_.empty(); }
  void clear() { stats_.clear(); }

  struct Row {
    std::string key;
    StreamStat stat;
  };
  /// Every (key, summary) pair in sorted key order.
  std::vector<Row> rows() const;

  /// cmb_datasummary-style fixed-width table of every key, one line per
  /// key: key, n, mean, stddev, min, max, and the `confidence` CI
  /// half-width. Returned as a string so callers choose the stream.
  std::string summary_table(double confidence = 0.95) const;

 private:
  std::map<std::string, StreamStat, std::less<>> stats_;
};

}  // namespace cim::obs
