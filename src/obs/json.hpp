/// \file json.hpp
/// \brief Minimal recursive-descent JSON parser used to validate exporter
///        output in tests. Header-only, no allocation tricks, not a speed
///        demon — deliberately small so tests can assert structural
///        well-formedness (Chrome trace_event / snapshot / BENCH_JSON)
///        without external dependencies.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cim::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A parsed JSON value. Accessors throw std::runtime_error on type
/// mismatch so tests fail with a message instead of UB.
class Value {
 public:
  Value() : v_(nullptr) {}
  explicit Value(std::nullptr_t) : v_(nullptr) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(Array a) : v_(std::move(a)) {}
  explicit Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return get<bool>("bool"); }
  double as_number() const { return get<double>("number"); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  const Object& as_object() const { return get<Object>("object"); }

  /// Object member access; throws if not an object or key missing.
  const Value& at(const std::string& key) const {
    const Object& obj = as_object();
    auto it = obj.find(key);
    if (it == obj.end())
      throw std::runtime_error("json: missing key '" + key + "'");
    return it->second;
  }
  bool contains(const std::string& key) const {
    return is_object() && as_object().count(key) != 0;
  }

 private:
  template <typename T>
  const T& get(const char* what) const {
    if (!std::holds_alternative<T>(v_))
      throw std::runtime_error(std::string("json: value is not a ") + what);
    return std::get<T>(v_);
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            // Tests only need round-tripping of ASCII control chars.
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("bad \\u escape digit");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else {  // 2-byte UTF-8 is enough for exporter output
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a number");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + tok + "'");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses `text` as a single JSON document; throws std::runtime_error with
/// an offset on malformed input.
inline Value parse(std::string_view text) {
  return detail::Parser(text).parse();
}

}  // namespace cim::obs::json
