/// \file flight.hpp
/// \brief Bounded flight recorder: last-N records, crash-safe auto-dump.
///
/// Post-mortems of an SLO breach need the *moments before* the breach, not
/// the whole run: a full reqlog of a million-request sweep is gigabytes,
/// but the 256 requests and controller decisions preceding the first
/// fast-burn alert fit in memory for free. The FlightRecorder keeps a
/// bounded ring of pre-rendered record lines (the caller decides what a
/// record is — the serving controller feeds it request completions and
/// batch-seal decisions) and dumps them oldest-first through
/// `obs::write_file_atomic` when a trigger fires, so an interrupted dump
/// never leaves a truncated post-mortem behind.
///
/// Like the windowed aggregates, this is a plain single-writer class fed
/// from the controller's serial schedule phase: determinism comes from the
/// event stream, not from locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cim::obs {

/// Bounded ring of record lines with an atomic-write dump.
class FlightRecorder {
 public:
  /// `capacity` >= 1 bounds the ring; older records are overwritten.
  explicit FlightRecorder(std::size_t capacity = 256);

  /// Appends one record line (newline-free JSON by convention; the dump
  /// writes one record per line). Overwrites the oldest when full.
  void record(std::string line);

  /// Records retained, oldest first.
  std::vector<std::string> recent() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  /// Records evicted by the ring bound since construction (or clear()).
  std::uint64_t dropped() const { return dropped_; }
  /// Successful dump() calls.
  std::size_t dumps() const { return dumps_; }

  /// Crash-safe dump: a `cim-flight-v1` header object naming the trigger
  /// `reason` plus any `meta` key/values, then the retained records oldest
  /// first, one per line. Returns false when the file cannot be written.
  bool dump(const std::string& path, const std::string& reason,
            const std::vector<std::pair<std::string, std::string>>& meta = {});

  /// Empties the ring (capacity and dump count persist).
  void clear();

 private:
  std::size_t capacity_;
  std::vector<std::string> ring_;
  std::size_t head_ = 0;  ///< slot the next record lands in
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t dumps_ = 0;
};

}  // namespace cim::obs
