/// \file health.hpp
/// \brief Spatial device-health observability (paper Secs. V–VI: Fig. 6
///        fault taxonomy, Fig. 7 change-point detection, online testing).
///
/// CIM arrays degrade continuously in the field — endurance wear-out,
/// conductance drift, read/write disturb, sneak-path corruption — and the
/// aggregate counters of the metrics registry are blind to *where* in an
/// array that happens. A `HealthMonitor` is a per-array grid of relaxed
/// atomic accumulators holding:
///
///  - per-cell write/endurance **wear** counts (programming pulses seen),
///  - per-cell **drift** deltas: stored conductance minus the target of the
///    last program operation (uS) — programming error plus every disturb
///    step since,
///  - per-cell **disturb** event counts (read disturb, half-select write
///    disturb, coupling-fault victims),
///  - per-cell **wear-out** flags (the cell went hard-stuck in the field),
///  - per-column **ADC** conversion/saturation counters and accumulated
///    **sneak-path** current (uA·samples).
///
/// Monitors register in the process-wide `HealthRegistry` so exporters can
/// dump spatial heatmaps (obs/health_export: CSV + flat JSON via
/// `CIM_OBS_HEATMAP_FILE`) and the Prometheus endpoint (obs/prom.hpp) can
/// serve per-array summaries to a scraper, like production hardware.
///
/// Enablement: the `health` tier of CIM_OBS (`obs::health_enabled()`).
/// Instrumentation sites gate on one relaxed load exactly like spans; the
/// monitors themselves use relaxed atomics so a scrape (snapshot) may run
/// concurrently with a single-writer simulation thread without races.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cim::obs {

/// Spatial health accumulators for one rows x cols array (or a cols-wide
/// periphery when only column metrics are used). Writers are expected to
/// be single-threaded per monitor (one monitor per array, arrays are not
/// thread-safe anyway); readers (snapshot, exporters, the Prometheus
/// server thread) may run concurrently with the writer.
class HealthMonitor {
 public:
  HealthMonitor(std::string name, std::size_t rows, std::size_t cols);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  const std::string& name() const { return name_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  // --- hot-path hooks (callers gate on obs::health_enabled()) --------------

  /// `pulses` programming pulses landed on (r, c) — endurance wear.
  void record_write(std::size_t r, std::size_t c, std::uint64_t pulses = 1);

  /// A program operation targeted conductance `g_target_us`; the cell ended
  /// at `g_actual_us`. Resets the drift baseline: drift = actual - target.
  void record_program(std::size_t r, std::size_t c, double g_target_us,
                      double g_actual_us);

  /// A disturb event moved (r, c) to `g_now_us`; drift tracks the delta
  /// against the last program target.
  void record_disturb(std::size_t r, std::size_t c, double g_now_us);

  /// The cell went hard-stuck in the field (endurance wear-out).
  void record_wearout(std::size_t r, std::size_t c);

  /// One ADC conversion on `col`; `clipped` when the input fell outside the
  /// converter's full-scale range (saturation/clipping).
  void record_adc_sample(std::size_t col, bool clipped);

  /// Sneak-path background/loop current observed on `col` this sample (uA).
  void record_sneak_current(std::size_t col, double ua);

  // --- scrape side ---------------------------------------------------------

  /// Copy of all accumulators plus derived summary statistics.
  struct Snapshot {
    std::string name;
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::uint64_t> wear;      ///< rows*cols, row-major
    std::vector<std::uint64_t> disturbs;  ///< rows*cols
    std::vector<double> drift_us;         ///< rows*cols, signed
    std::vector<std::uint8_t> worn;       ///< rows*cols, 1 = wore out in field
    std::vector<std::uint64_t> adc_samples;  ///< cols
    std::vector<std::uint64_t> adc_clips;    ///< cols
    std::vector<double> sneak_ua;            ///< cols, accumulated
    // Summary (derived in snapshot(), consistent with the vectors above).
    std::uint64_t total_writes = 0;
    std::uint64_t total_disturbs = 0;
    std::uint64_t max_wear = 0;
    std::uint64_t worn_cells = 0;
    std::uint64_t total_adc_samples = 0;
    std::uint64_t total_adc_clips = 0;
    double mean_abs_drift_us = 0.0;
    double max_abs_drift_us = 0.0;
    double total_sneak_ua = 0.0;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  std::size_t idx(std::size_t r, std::size_t c) const { return r * cols_ + c; }

  std::string name_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::atomic<std::uint64_t>> wear_;
  std::vector<std::atomic<std::uint64_t>> disturbs_;
  std::vector<std::atomic<double>> drift_us_;      ///< actual - target (uS)
  std::vector<std::atomic<double>> baseline_us_;   ///< last program target
  std::vector<std::atomic<std::uint8_t>> worn_;
  std::vector<std::atomic<std::uint64_t>> adc_samples_;
  std::vector<std::atomic<std::uint64_t>> adc_clips_;
  std::vector<std::atomic<double>> sneak_ua_;
};

/// Process-wide registry of health monitors, keyed by array name. Creation
/// locks; the returned references stay valid for the registry's lifetime.
class HealthRegistry {
 public:
  static HealthRegistry& global();

  /// Returns the named monitor, creating it with the given shape on first
  /// use. Shape of an existing monitor is not changed. Shared ownership:
  /// the instrumented array holds the pointer so a registry clear() cannot
  /// dangle its hooks.
  std::shared_ptr<HealthMonitor> monitor(std::string_view name,
                                         std::size_t rows, std::size_t cols);

  /// Stable handles to every registered monitor, in name order.
  std::vector<std::shared_ptr<HealthMonitor>> monitors() const;

  std::size_t size() const;

  /// Zeroes every monitor's accumulators (keeps registrations).
  void reset();
  /// Drops all monitors. Test-isolation helper; outstanding references from
  /// still-live arrays keep their monitor alive via shared ownership, but
  /// it will no longer be exported.
  void clear();

 private:
  HealthRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<HealthMonitor>, std::less<>> monitors_;
};

/// Process-unique default monitor name: "<prefix>.<N>" with a monotonically
/// increasing N per prefix-independent global sequence. Used by arrays that
/// were not given an explicit health name.
std::string next_health_name(const char* prefix);

// --- heatmap exporters (health_export.cpp) -----------------------------------

/// CSV heatmap of every registered monitor, one accumulator per line:
///   array,metric,row,col,value
/// Per-cell metrics (wear, disturbs, drift_us, worn) carry their cell
/// coordinates; per-column metrics (adc_samples, adc_clips, sneak_ua) use
/// row = -1. A header line is emitted first.
void write_health_heatmap_csv(std::ostream& os);

/// Flat-JSON heatmap dump: build meta plus, per array, the shape, the flat
/// row-major per-cell vectors and the per-column vectors, and the summary.
void write_health_json(std::ostream& os);

/// Honours the CIM_OBS_HEATMAP_FILE env hook: when set, health telemetry
/// is enabled and at least one monitor exists, writes the heatmap dump
/// crash-safely (CSV when the path ends in ".csv", flat JSON otherwise).
/// Returns true when a file was written.
bool export_health_heatmap_if_requested();

}  // namespace cim::obs
