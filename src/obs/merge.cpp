/// \file merge.cpp
/// \brief Deterministic metric-snapshot merge and the snapshot-JSON parser.
///
/// Worker processes of the campaign engine (src/exp/) ship their registry
/// snapshot to the parent over the result pipe as flat JSON; the parent
/// parses it here and folds it into its own telemetry. The merge rules are
/// type-aware: counters and span/component aggregates are *totals* and add;
/// histograms add bucket-wise but only over identical bucket layouts;
/// gauges are instantaneous values, so the snapshot captured later wins.
#include <algorithm>
#include <map>
#include <string>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace cim::obs {

namespace {

bool same_bounds(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

Component component_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kComponentCount; ++i)
    if (component_name(static_cast<Component>(i)) == name)
      return static_cast<Component>(i);
  return Component::kOther;
}

}  // namespace

MergeStats merge_snapshot(Snapshot& into, const Snapshot& from) {
  MergeStats ms;
  const bool from_newer = from.meta.unix_us > into.meta.unix_us;

  // Counters: totals add. Name lists are sorted (registry snapshot
  // contract), so a sorted-map fold keeps the output sorted too.
  std::map<std::string, std::uint64_t> counters(into.counters.begin(),
                                                into.counters.end());
  for (const auto& [name, v] : from.counters) {
    counters[name] += v;
    ++ms.counters_added;
  }
  into.counters.assign(counters.begin(), counters.end());

  // Gauges: last writer (by capture time) wins; ties keep `into`.
  std::map<std::string, double> gauges(into.gauges.begin(), into.gauges.end());
  for (const auto& [name, v] : from.gauges) {
    const auto it = gauges.find(name);
    if (it == gauges.end() || from_newer) {
      gauges[name] = v;
      ++ms.gauges_taken;
    }
  }
  into.gauges.assign(gauges.begin(), gauges.end());

  // Histograms: bucket-wise add over identical bounds only.
  std::map<std::string, Histogram::Snapshot> hists;
  for (auto& h : into.histograms) hists.emplace(h.name, std::move(h.data));
  for (const auto& h : from.histograms) {
    auto it = hists.find(h.name);
    if (it == hists.end()) {
      hists.emplace(h.name, h.data);
      ++ms.histograms_merged;
      continue;
    }
    if (!same_bounds(it->second.bounds, h.data.bounds) ||
        it->second.counts.size() != h.data.counts.size()) {
      ++ms.bound_conflicts;
      continue;
    }
    for (std::size_t i = 0; i < h.data.counts.size(); ++i)
      it->second.counts[i] += h.data.counts[i];
    it->second.count += h.data.count;
    it->second.sum += h.data.sum;
    ++ms.histograms_merged;
  }
  into.histograms.clear();
  for (auto& [name, data] : hists)
    into.histograms.push_back({name, std::move(data)});

  // Spans: aggregates add; a span's component tag comes from whichever
  // side registered it first (they agree in practice — same code).
  std::map<std::string, Snapshot::SpanRow> spans;
  for (auto& row : into.spans) spans.emplace(row.name, std::move(row));
  for (const auto& row : from.spans) {
    auto it = spans.find(row.name);
    if (it == spans.end()) {
      spans.emplace(row.name, row);
    } else {
      it->second.count += row.count;
      it->second.wall_ns += row.wall_ns;
      it->second.sim_time_ns += row.sim_time_ns;
      it->second.energy_pj += row.energy_pj;
    }
    ++ms.spans_merged;
  }
  into.spans.clear();
  for (auto& [name, row] : spans) into.spans.push_back(std::move(row));

  // Components: fixed six-slot vocabulary, add slot-wise.
  for (const auto& row : from.components) {
    bool found = false;
    for (auto& dst : into.components) {
      if (dst.comp != row.comp) continue;
      dst.events += row.events;
      dst.wall_ns += row.wall_ns;
      dst.sim_time_ns += row.sim_time_ns;
      dst.energy_pj += row.energy_pj;
      found = true;
      break;
    }
    if (!found) into.components.push_back(row);
  }

  if (from_newer) into.meta.unix_us = from.meta.unix_us;
  return ms;
}

bool parse_snapshot_json(std::string_view text, Snapshot& out,
                         std::string* error) {
  try {
    const json::Value doc = json::parse(text);
    Snapshot s;
    const json::Value& meta = doc.at("meta");
    s.meta.git_sha = meta.at("git_sha").as_string();
    s.meta.build_type = meta.at("build_type").as_string();
    s.meta.threads = static_cast<std::size_t>(meta.at("threads").as_number());
    s.meta.simd_isa = meta.at("simd_isa").as_string();
    s.meta.mode = meta.at("cim_obs").as_string();
    if (meta.contains("unix_us"))  // absent in pre-PR10 exports
      s.meta.unix_us =
          static_cast<std::uint64_t>(meta.at("unix_us").as_number());

    for (const auto& [name, v] : doc.at("counters").as_object())
      s.counters.emplace_back(name,
                              static_cast<std::uint64_t>(v.as_number()));
    for (const auto& [name, v] : doc.at("gauges").as_object())
      s.gauges.emplace_back(name, v.as_number());
    for (const auto& [name, v] : doc.at("histograms").as_object()) {
      Snapshot::Hist h;
      h.name = name;
      for (const auto& b : v.at("bounds").as_array())
        h.data.bounds.push_back(b.as_number());
      for (const auto& c : v.at("counts").as_array())
        h.data.counts.push_back(static_cast<std::uint64_t>(c.as_number()));
      h.data.count = static_cast<std::uint64_t>(v.at("count").as_number());
      h.data.sum = v.at("sum").as_number();
      if (h.data.counts.size() != h.data.bounds.size() + 1)
        throw std::runtime_error("histogram '" + name +
                                 "': counts/bounds size mismatch");
      s.histograms.push_back(std::move(h));
    }
    for (const auto& [name, v] : doc.at("spans").as_object()) {
      Snapshot::SpanRow row;
      row.name = name;
      row.comp = component_from_name(v.at("component").as_string());
      row.count = static_cast<std::uint64_t>(v.at("count").as_number());
      row.wall_ns = v.at("wall_ns").as_number();
      row.sim_time_ns = v.at("sim_time_ns").as_number();
      row.energy_pj = v.at("energy_pj").as_number();
      s.spans.push_back(std::move(row));
    }
    for (const auto& [name, v] : doc.at("components").as_object()) {
      Snapshot::ComponentRow row;
      row.comp = component_from_name(name);
      row.events = static_cast<std::uint64_t>(v.at("events").as_number());
      row.wall_ns = v.at("wall_ns").as_number();
      row.sim_time_ns = v.at("sim_time_ns").as_number();
      row.energy_pj = v.at("energy_pj").as_number();
      s.components.push_back(row);
    }
    out = std::move(s);
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

MergeStats absorb_snapshot(const Snapshot& from,
                           std::uint64_t newer_than_unix_us) {
  MergeStats ms;
  Registry& reg = Registry::global();
  for (const auto& [name, v] : from.counters) {
    if (v != 0) reg.counter(name).add(v);
    ++ms.counters_added;
  }
  if (from.meta.unix_us > newer_than_unix_us) {
    for (const auto& [name, v] : from.gauges) {
      reg.gauge(name).set(v);
      ++ms.gauges_taken;
    }
  }
  for (const auto& h : from.histograms) {
    Histogram& dst = reg.histogram(h.name, h.data.bounds);
    if (dst.absorb(h.data))
      ++ms.histograms_merged;
    else
      ++ms.bound_conflicts;  // name already registered with another layout
  }
  for (const auto& row : from.spans) {
    SpanStat& st = reg.span_stat(row.name, row.comp);
    st.count.add(row.count);
    st.wall_ns.add(row.wall_ns);
    st.sim_time_ns.add(row.sim_time_ns);
    st.energy_pj.add(row.energy_pj);
    ++ms.spans_merged;
  }
  for (const auto& row : from.components) {
    ComponentAgg& agg = reg.component(row.comp);
    agg.events.add(row.events);
    agg.wall_ns.add(row.wall_ns);
    agg.sim_time_ns.add(row.sim_time_ns);
    agg.energy_pj.add(row.energy_pj);
  }
  return ms;
}

}  // namespace cim::obs
