/// \file export.cpp
/// \brief Telemetry exporters: flat JSON snapshot, Chrome trace_event JSON,
///        and the registry-emitted BENCH_JSON line.
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "obs/prom.hpp"
#include "obs/trace_events.hpp"

namespace cim::obs {

namespace {

/// JSON string escaping for the few metadata strings we emit.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as JSON (no inf/nan — clamp to 0 to stay valid).
std::string json_num(double v) {
  if (!(v > -1e308 && v < 1e308)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Full-precision variant for the snapshot exporter: 17 significant digits
/// round-trip an IEEE double exactly, which the snapshot parser / merge
/// path (worker-process telemetry aggregation) relies on.
std::string json_num17(double v) {
  if (!(v > -1e308 && v < 1e308)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void write_meta_fields(std::ostream& os, const Snapshot::Meta& meta) {
  os << "\"git_sha\":\"" << json_escape(meta.git_sha) << "\","
     << "\"build_type\":\"" << json_escape(meta.build_type) << "\","
     << "\"threads\":" << meta.threads << ","
     << "\"simd_isa\":\"" << json_escape(meta.simd_isa) << "\","
     << "\"cim_obs\":\"" << json_escape(meta.mode) << "\","
     << "\"unix_us\":" << meta.unix_us;
}

}  // namespace

bool write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  // Write to <path>.tmp and rename over the target: an interrupted process
  // can leave a stale .tmp behind but never a truncated export at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    writer(f);
    f.flush();
    if (!f) {
      f.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

void write_snapshot_json(std::ostream& os, const Snapshot& s) {
  os << "{\"meta\":{";
  write_meta_fields(os, s.meta);
  os << "},\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    os << (first ? "" : ",") << "\"" << json_escape(name) << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    os << (first ? "" : ",") << "\"" << json_escape(name)
       << "\":" << json_num17(v);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : s.histograms) {
    os << (first ? "" : ",") << "\"" << json_escape(h.name) << "\":{";
    os << "\"bounds\":[";
    for (std::size_t i = 0; i < h.data.bounds.size(); ++i)
      os << (i != 0 ? "," : "") << json_num17(h.data.bounds[i]);
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.data.counts.size(); ++i)
      os << (i != 0 ? "," : "") << h.data.counts[i];
    os << "],\"count\":" << h.data.count
       << ",\"sum\":" << json_num17(h.data.sum) << "}";
    first = false;
  }
  os << "},\"spans\":{";
  first = true;
  for (const auto& row : s.spans) {
    os << (first ? "" : ",") << "\"" << json_escape(row.name) << "\":{"
       << "\"component\":\"" << component_name(row.comp) << "\","
       << "\"count\":" << row.count << ","
       << "\"wall_ns\":" << json_num17(row.wall_ns) << ","
       << "\"sim_time_ns\":" << json_num17(row.sim_time_ns) << ","
       << "\"energy_pj\":" << json_num17(row.energy_pj) << "}";
    first = false;
  }
  os << "},\"components\":{";
  first = true;
  for (const auto& row : s.components) {
    os << (first ? "" : ",") << "\"" << component_name(row.comp) << "\":{"
       << "\"events\":" << row.events << ","
       << "\"wall_ns\":" << json_num17(row.wall_ns) << ","
       << "\"sim_time_ns\":" << json_num17(row.sim_time_ns) << ","
       << "\"energy_pj\":" << json_num17(row.energy_pj) << "}";
    first = false;
  }
  os << "}}\n";
}

void write_snapshot_json(std::ostream& os) { write_snapshot_json(os, snapshot()); }

void write_chrome_trace(std::ostream& os) {
  const auto events = detail::collect_trace_events();
  const Snapshot::Meta meta = snapshot().meta;
  const std::uint64_t dropped =
      Registry::global().counter("obs.trace.dropped").value();
  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{";
  write_meta_fields(os, meta);
  os << ",\"dropped_events\":" << dropped;
  os << "},\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    // ts/dur are microseconds in the trace_event format; fractional values
    // carry the ns resolution.
    os << (first ? "" : ",") << "\n{\"name\":\""
       << json_escape(e.name != nullptr ? e.name : "span") << "\","
       << "\"cat\":\"" << component_name(e.comp) << "\",";
    if (e.ph == 's' || e.ph == 'f') {
      // Flow arrow: a start/finish pair sharing an id binds the slices
      // enclosing its timestamps (bp "e": attach to the enclosing slice).
      os << "\"ph\":\"" << e.ph << "\",\"id\":" << e.flow_id
         << (e.ph == 'f' ? ",\"bp\":\"e\"" : "") << ",\"pid\":" << e.pid
         << ",\"tid\":" << e.tid << ","
         << "\"ts\":" << json_num(static_cast<double>(e.ts_ns) / 1e3) << "}";
    } else {
      // Complete ("X") span.
      os << "\"ph\":\"X\",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ","
         << "\"ts\":" << json_num(static_cast<double>(e.ts_ns) / 1e3) << ","
         << "\"dur\":" << json_num(static_cast<double>(e.dur_ns) / 1e3) << ","
         << "\"args\":{\"energy_pj\":" << json_num(e.energy_pj) << "}}";
    }
    first = false;
  }
  os << "\n]}\n";
}

std::string bench_json_line(
    const std::string& bench, double wall_ms, double ops,
    const std::vector<std::pair<std::string, double>>& extras) {
  const double ops_per_s = wall_ms > 0.0 ? ops / (wall_ms / 1e3) : 0.0;
  const BuildInfo info = build_info();
  Registry& reg = Registry::global();
  std::ostringstream os;
  char buf[64];
  os << "BENCH_JSON {\"bench\":\"" << json_escape(bench) << "\",";
  std::snprintf(buf, sizeof buf, "%.3f", wall_ms);
  os << "\"wall_ms\":" << buf << ",";
  std::snprintf(buf, sizeof buf, "%.0f", ops);
  os << "\"ops\":" << buf << ",";
  std::snprintf(buf, sizeof buf, "%.1f", ops_per_s);
  os << "\"ops_per_s\":" << buf << ",";
  os << "\"threads\":" << info.threads << ",";
  std::snprintf(buf, sizeof buf, "%.1f", peak_rss_mb());
  os << "\"peak_rss_mb\":" << buf << ",";
  os << "\"cache_full_rebuilds\":" << reg.counter("cache.full_rebuilds").value()
     << ",";
  os << "\"cache_delta_updates\":" << reg.counter("cache.delta_updates").value()
     << ",";
  os << "\"git_sha\":\"" << json_escape(info.git_sha) << "\",";
  os << "\"build_type\":\"" << json_escape(info.build_type) << "\",";
  os << "\"simd_isa\":\"" << json_escape(info.simd_isa) << "\"";
  for (const auto& [key, value] : extras)
    os << ",\"" << json_escape(key) << "\":" << json_num(value);
  os << "}";
  return os.str();
}

std::string bench_json_line(
    const std::string& bench, double wall_ms, double ops,
    std::initializer_list<std::pair<const char*, double>> extras) {
  std::vector<std::pair<std::string, double>> vec;
  vec.reserve(extras.size());
  for (const auto& [key, value] : extras) vec.emplace_back(key, value);
  return bench_json_line(bench, wall_ms, ops, vec);
}

void emit_bench_json(
    const std::string& bench, double wall_ms, double ops,
    const std::vector<std::pair<std::string, double>>& extras) {
  std::printf("%s\n", bench_json_line(bench, wall_ms, ops, extras).c_str());

  // Exporter hooks: every bench dumps telemetry when asked to, without
  // per-bench wiring. All file exports are crash-safe (temp + rename).
  if (!enabled()) return;
  if (const char* path = std::getenv("CIM_OBS_SNAPSHOT_FILE");
      path != nullptr && *path != '\0') {
    write_file_atomic(path, [](std::ostream& os) { write_snapshot_json(os); });
  }
  if (const char* path = std::getenv("CIM_OBS_TRACE_FILE");
      path != nullptr && *path != '\0' && trace_enabled()) {
    write_file_atomic(path, [](std::ostream& os) { write_chrome_trace(os); });
  }
  if (const char* path = std::getenv("CIM_OBS_PROM_FILE");
      path != nullptr && *path != '\0') {
    write_prometheus_file(path);
  }
  export_health_heatmap_if_requested();
}

void emit_bench_json(
    const std::string& bench, double wall_ms, double ops,
    std::initializer_list<std::pair<const char*, double>> extras) {
  std::vector<std::pair<std::string, double>> vec;
  vec.reserve(extras.size());
  for (const auto& [key, value] : extras) vec.emplace_back(key, value);
  emit_bench_json(bench, wall_ms, ops, vec);
}

}  // namespace cim::obs
