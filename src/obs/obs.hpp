/// \file obs.hpp
/// \brief Unified telemetry: process-wide metrics registry, scoped span
///        tracing, and per-component energy/latency attribution.
///
/// The paper's headline numbers are *attributions* — Fig. 5 attributes tile
/// power to the ADC, Table I attributes architecture cost to data movement.
/// This module is the runtime backbone that lets the simulator produce such
/// attributions from measurement instead of hard-wired constants:
///
///  - **Metrics registry** (`Registry::global()`): named counters, gauges
///    and fixed-bucket histograms. The hot path is lock-free — counters are
///    sharded into cache-line-padded relaxed atomics indexed by a per-thread
///    slot, and registration (the only locking operation) happens once per
///    name. Snapshots merge shards in fixed index order and walk the name
///    maps in sorted order, so two snapshots of the same quiesced state are
///    identical — consistent with the repo's deterministic-parallelism
///    contract.
///  - **Scoped spans** (`CIM_OBS_SPAN("crossbar.vmm")`): RAII regions that
///    record wall-ns (host time), optional simulated time/energy, and a
///    component tag. Aggregates land in the registry; with `CIM_OBS=trace`
///    each span additionally records a Chrome `trace_event` for
///    chrome://tracing / Perfetto (see export.cpp).
///  - **Component attribution** (`attribute()` / `breakdown()`): simulated
///    time and energy accounted per design block (array, ADC, DAC, digital,
///    interconnect) at simulation time — the measured counterpart of the
///    analytic Fig. 5 model in periphery/tile_cost.hpp.
///
/// Enablement: the `CIM_OBS` environment variable — `off` (default),
/// `on`/`metrics`, `trace`, `health` (spatial device-health accumulators,
/// see obs/health.hpp), a comma list of those, or `all` — or `set_mode()`
/// programmatically. When
/// disabled every instrumentation site costs one relaxed atomic load and a
/// predictable branch (gated <2% by bench_obs_overhead). Registry metric
/// handles keep counting regardless of the mode: they are storage, and
/// always-on consumers (util/perf_counters.hpp) are thin views over them.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cim::obs {

// --- enablement --------------------------------------------------------------

/// Telemetry level, encoded as a bitmask over one atomic so every gate stays
/// a single relaxed load: bit 0 = aggregate metrics, bit 1 = per-span trace
/// events (Chrome exporter), bit 2 = spatial device-health accumulators.
/// Trace and health both imply metrics. CIM_OBS accepts a comma-separated
/// list ("trace,health"); "all" enables everything.
enum class Mode : int {
  kOff = 0,
  kMetrics = 1,
  kTrace = 3,        ///< metrics + individual span events
  kHealth = 5,       ///< metrics + per-cell wear/drift/disturb accumulators
  kTraceHealth = 7,  ///< everything
};

namespace detail {
/// -1 = not yet initialised from the CIM_OBS environment variable.
inline std::atomic<int> g_mode{-1};
int init_mode_from_env();  // reads CIM_OBS, stores and returns the mode

inline int mode_int() {
  const int m = g_mode.load(std::memory_order_relaxed);
  return m >= 0 ? m : init_mode_from_env();
}

/// Dense per-thread slot used to pick counter shards.
inline std::atomic<std::size_t> g_slot_counter{0};
inline std::size_t this_thread_slot() {
  thread_local const std::size_t slot =
      g_slot_counter.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Monotonic ns since process start (first call anchors the epoch).
std::uint64_t now_ns();
}  // namespace detail

/// True when telemetry is collected. The disabled path is exactly one
/// relaxed atomic load and one branch.
inline bool enabled() { return (detail::mode_int() & 1) != 0; }
/// True when individual span events are recorded for the Chrome exporter.
inline bool trace_enabled() { return (detail::mode_int() & 2) != 0; }
/// True when spatial device-health accumulators (obs/health.hpp) record.
inline bool health_enabled() { return (detail::mode_int() & 4) != 0; }

Mode mode();
void set_mode(Mode m);

// --- metric primitives -------------------------------------------------------

/// Monotonic counter, sharded across cache-line-padded relaxed atomics so
/// concurrent increments never contend. value() merges shards in index
/// order.
class Counter {
 public:
  void add(std::uint64_t v = 1) noexcept {
    shards_[detail::this_thread_slot() % kShards].v.fetch_add(
        v, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Relaxed-atomic double accumulator (CAS add; reads are monotone once the
/// writers quiesce).
class AtomicF64 {
 public:
  void add(double v) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// N buckets; one implicit overflow bucket catches the rest.
///
/// Boundary semantics (tested by tests/obs/test_histogram_bounds.cpp):
/// bucket i covers (bounds[i-1], bounds[i]] — a value exactly equal to an
/// upper bound lands in the bucket that bound closes, never in the next
/// one, and every observation lands in exactly one bucket, so the bucket
/// counts always sum to `count`. Values above bounds.back() (and NaN,
/// which compares false against every bound) land in the overflow bucket.
/// These are the same closed-upper-bound semantics the Prometheus
/// exporter's cumulative `le` buckets assume.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
    /// the bucket holding rank q*count — the same estimator Prometheus'
    /// histogram_quantile() applies to the cumulative `le` buckets. The
    /// first bucket interpolates from lower edge min(bounds[0], 0); a rank
    /// landing in the overflow bucket clamps to bounds.back() (the largest
    /// value the bucket layout can resolve). Returns NaN when count == 0
    /// or there are no finite bounds. Exact per-observation quantiles need
    /// the raw samples; this is the scrape-side estimate tail-latency
    /// consumers (serving bench, Prometheus export) read off a histogram.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }
  };
  Snapshot snapshot() const;
  void reset() noexcept;

  /// Bucket-wise add of a compatible snapshot (identical bounds): bucket
  /// counts, total count and sum accumulate exactly. Returns false and
  /// leaves the histogram untouched when the bucket layout differs. This
  /// is the live-registry half of the snapshot merge (worker-process
  /// telemetry absorption).
  bool absorb(const Snapshot& s) noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<Counter> counts_;  ///< bounds_.size() + 1
  Counter count_;
  AtomicF64 sum_;
};

// --- components --------------------------------------------------------------

/// Design blocks energy/latency is attributed to (the Fig. 5 vocabulary).
enum class Component : int {
  kArray = 0,        ///< crossbar cells (analog MAC / storage)
  kAdc,              ///< column ADC conversions
  kDac,              ///< row drivers / DACs
  kDigital,          ///< shift&add, control, digital post-processing
  kInterconnect,     ///< inter-tile partial-sum movement
  kOther,
};
inline constexpr std::size_t kComponentCount = 6;
std::string_view component_name(Component c);

/// Aggregate per component. wall_ns comes from spans; sim_time_ns/energy_pj
/// come from attribute() calls at simulation-accounting sites.
struct ComponentAgg {
  Counter events;
  AtomicF64 wall_ns;
  AtomicF64 sim_time_ns;
  AtomicF64 energy_pj;
};

/// Attributes simulated time/energy to a component. No-op when disabled —
/// call sites on hot paths should still guard with `if (obs::enabled())`
/// to keep the disabled cost to the inline branch.
void attribute(Component c, double sim_time_ns, double energy_pj);

// --- spans -------------------------------------------------------------------

/// Per-span-name aggregate.
struct SpanStat {
  Counter count;
  AtomicF64 wall_ns;
  AtomicF64 sim_time_ns;
  AtomicF64 energy_pj;
};

class SpanHandle;

/// RAII scoped span. Construction samples the clock only when enabled;
/// destruction records into the handle's SpanStat, adds wall time to the
/// component aggregate, and (in trace mode) appends a Chrome trace event.
class Span {
 public:
  explicit Span(SpanHandle& handle) {
    if ((detail::mode_int() & 1) != 0) {
      handle_ = &handle;
      start_ns_ = detail::now_ns();
    }
  }
  ~Span() {
    if (handle_ != nullptr) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach simulated cost to this span's aggregate (not to the component
  /// aggregates — use attribute() for those). Cheap no-ops when disabled.
  void add_energy_pj(double pj) noexcept { energy_pj_ += pj; }
  void add_sim_time_ns(double ns) noexcept { sim_ns_ += ns; }

 private:
  void finish() noexcept;

  SpanHandle* handle_ = nullptr;
  std::uint64_t start_ns_ = 0;
  double energy_pj_ = 0.0;
  double sim_ns_ = 0.0;
};

/// Per-call-site identity of a span: name + component + lazily resolved
/// registry slot. Declare as a function-local `static` (the CIM_OBS_SPAN
/// macro does) so resolution happens once per site, not per span.
class SpanHandle {
 public:
  constexpr explicit SpanHandle(const char* name,
                                Component comp = Component::kOther)
      : name_(name), comp_(comp) {}

  const char* name() const { return name_; }
  Component comp() const { return comp_; }
  SpanStat& stat();  ///< resolves against the registry on first use

 private:
  const char* name_;
  Component comp_;
  std::atomic<SpanStat*> stat_{nullptr};
};

#define CIM_OBS_CONCAT2(a, b) a##b
#define CIM_OBS_CONCAT(a, b) CIM_OBS_CONCAT2(a, b)

/// Named scoped span bound to a local variable, for sites that attach
/// energy: CIM_OBS_SPAN_NAMED(span, "crossbar.vmm", Component::kArray);
#define CIM_OBS_SPAN_NAMED(var, ...)                              \
  static ::cim::obs::SpanHandle CIM_OBS_CONCAT(var, _handle){__VA_ARGS__}; \
  ::cim::obs::Span var { CIM_OBS_CONCAT(var, _handle) }

/// Anonymous scoped span covering the rest of the enclosing block:
/// CIM_OBS_SPAN("eda.flow.map");
#define CIM_OBS_SPAN(...) \
  CIM_OBS_SPAN_NAMED(CIM_OBS_CONCAT(_cim_obs_span_, __LINE__), __VA_ARGS__)

// --- registry ----------------------------------------------------------------

/// Snapshot of every metric, merged deterministically (shards in index
/// order, names in sorted order).
struct Snapshot {
  struct Meta {
    std::string git_sha;
    std::string build_type;
    std::size_t threads = 1;
    std::string mode;
    std::string simd_isa;
    /// Wall-clock capture time (unix epoch microseconds,
    /// std::chrono::system_clock). Monotone process-relative clocks cannot
    /// order snapshots taken by *different processes*, and the snapshot
    /// merge uses this to resolve gauge conflicts (last writer wins) when
    /// worker-process telemetry aggregates into a parent campaign runner.
    /// Microseconds, not ns: the value round-trips exactly through the
    /// JSON exporter's double numbers (2^53 > 10^15).
    std::uint64_t unix_us = 0;
  } meta;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct Hist {
    std::string name;
    Histogram::Snapshot data;
  };
  std::vector<Hist> histograms;
  struct SpanRow {
    std::string name;
    Component comp = Component::kOther;
    std::uint64_t count = 0;
    double wall_ns = 0.0;
    double sim_time_ns = 0.0;
    double energy_pj = 0.0;
  };
  std::vector<SpanRow> spans;
  struct ComponentRow {
    Component comp = Component::kOther;
    std::uint64_t events = 0;
    double wall_ns = 0.0;
    double sim_time_ns = 0.0;
    double energy_pj = 0.0;
  };
  std::vector<ComponentRow> components;
};

class Registry {
 public:
  static Registry& global();

  /// Returns the named metric, creating it on first use. References stay
  /// valid for the registry's lifetime; only creation takes the lock.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);
  SpanStat& span_stat(std::string_view name,
                      Component comp = Component::kOther);
  ComponentAgg& component(Component c) {
    return components_[static_cast<std::size_t>(c)];
  }

  Snapshot snapshot() const;

  /// Zeroes every metric and drops recorded trace events (keeps
  /// registrations). Test/bench isolation helper — not thread-safe against
  /// concurrent writers.
  void reset();

 private:
  Registry() = default;

  struct SpanEntry {
    SpanStat stat;
    Component comp = Component::kOther;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<SpanEntry>, std::less<>> spans_;
  std::array<ComponentAgg, kComponentCount> components_{};
};

/// Convenience: snapshot of the global registry.
Snapshot snapshot();
/// Zero the global registry and recorded trace events.
void reset();

// --- snapshot merge (merge.cpp) ----------------------------------------------

/// What a merge_snapshot() call did — returned so callers (and tests) can
/// assert the merge semantics instead of trusting them.
struct MergeStats {
  std::size_t counters_added = 0;     ///< counter names summed or adopted
  std::size_t gauges_taken = 0;       ///< gauges where `from` won (newer)
  std::size_t histograms_merged = 0;  ///< bucket-wise added histograms
  std::size_t bound_conflicts = 0;    ///< histograms skipped: bounds differ
  std::size_t spans_merged = 0;
};

/// Deterministic merge of `from` into `into`:
///  - counters: values add (missing names are adopted);
///  - histograms: bucket-wise count add + sum add, *only* when the bucket
///    bounds match exactly — mismatched layouts measure different things,
///    so the `into` histogram is kept untouched and the conflict counted;
///  - gauges: last writer wins by snapshot capture time (`meta.unix_us`,
///    ties keep `into` — the deterministic choice), since a gauge is an
///    instantaneous value that cannot meaningfully add;
///  - spans/components: counts, wall, simulated time and energy add.
/// `into.meta` keeps its identity fields but takes the later unix_us, so
/// folding N worker snapshots into a parent is associative-in-effect and
/// independent of fold order for everything except gauge ties.
MergeStats merge_snapshot(Snapshot& into, const Snapshot& from);

/// Parses the flat-JSON snapshot format produced by write_snapshot_json()
/// back into a Snapshot. Returns false (and fills `error` when non-null)
/// on malformed input. parse(write(s)) == s up to histogram-bound float
/// formatting (%.17g is used on export for exactly this reason).
bool parse_snapshot_json(std::string_view text, Snapshot& out,
                         std::string* error = nullptr);

/// Folds a parsed snapshot into the *live* global registry: counters add
/// their deltas, histogram buckets re-observe... structurally (bucket
/// counts are added to a histogram registered with the same bounds),
/// span stats accumulate, and gauges are set when the snapshot is newer
/// than `newer_than_unix_us`. This is how a campaign parent absorbs the
/// telemetry a worker process shipped over its result pipe. Histograms
/// whose registered bounds differ are skipped (counted in the result).
MergeStats absorb_snapshot(const Snapshot& from,
                           std::uint64_t newer_than_unix_us = 0);

// --- attribution report ------------------------------------------------------

/// Per-component attribution with shares over the attributed totals — the
/// measured counterpart of Fig. 5's analytic breakdown.
struct BreakdownRow {
  Component comp = Component::kOther;
  std::uint64_t events = 0;
  double sim_time_ns = 0.0;
  double energy_pj = 0.0;
  double energy_share = 0.0;  ///< of total attributed energy
  double time_share = 0.0;    ///< of total attributed simulated time
};
std::vector<BreakdownRow> breakdown();

// --- build metadata ----------------------------------------------------------

/// Stamp carried in every exported snapshot header so BENCH_PR<N>.json
/// files are self-describing across the perf trajectory.
struct BuildInfo {
  std::string git_sha;     ///< configure-time git SHA (or "unknown")
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::size_t threads;     ///< CIM_THREADS or hardware concurrency
  std::string simd_isa;    ///< active kernel ISA (util::simd dispatch)
};
BuildInfo build_info();

// --- exporters (export.cpp) --------------------------------------------------

/// Crash-safe file export: `writer` streams into `<path>.tmp` which is then
/// atomically renamed onto `path`, so an interrupted process can never
/// leave a truncated export behind — readers see either the old file or
/// the complete new one. Returns false (and removes the temp file) when
/// the temp file cannot be created or the stream errors.
bool write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Flat JSON snapshot of the registry (meta header + every metric).
void write_snapshot_json(std::ostream& os);
/// Same format for an already-captured Snapshot (numbers at %.17g, so the
/// file re-parses bit-identically — see parse_snapshot_json).
void write_snapshot_json(std::ostream& os, const Snapshot& s);

/// Chrome trace_event JSON (chrome://tracing, Perfetto) of the span events
/// recorded under CIM_OBS=trace.
void write_chrome_trace(std::ostream& os);

/// Peak resident set of this process in MiB.
double peak_rss_mb();

/// The BENCH_JSON line (without trailing newline): the registry-emitted
/// bench schema — bench/wall_ms/ops/ops_per_s/threads/peak_rss_mb/cache
/// counters/git_sha/build_type plus numeric extras.
std::string bench_json_line(
    const std::string& bench, double wall_ms, double ops,
    std::initializer_list<std::pair<const char*, double>> extras = {});

/// Overload for dynamically built extras (per-ISA sweeps and other
/// run-time-shaped key sets).
std::string bench_json_line(
    const std::string& bench, double wall_ms, double ops,
    const std::vector<std::pair<std::string, double>>& extras);

/// Prints the BENCH_JSON line and honours the exporter env hooks:
/// CIM_OBS_TRACE_FILE / CIM_OBS_SNAPSHOT_FILE receive the Chrome trace /
/// JSON snapshot when set (and telemetry is enabled);
/// CIM_OBS_HEATMAP_FILE receives the device-health heatmap dump (CSV when
/// the path ends in .csv, flat JSON otherwise) when health telemetry is
/// enabled. All file exports are crash-safe (write_file_atomic). When
/// CIM_OBS_PROM_PORT is set the Prometheus endpoint is started on first
/// use (obs/prom.hpp).
void emit_bench_json(
    const std::string& bench, double wall_ms, double ops,
    std::initializer_list<std::pair<const char*, double>> extras = {});

/// Overload for dynamically built extras.
void emit_bench_json(
    const std::string& bench, double wall_ms, double ops,
    const std::vector<std::pair<std::string, double>>& extras);

}  // namespace cim::obs
