/// \file health_export.cpp
/// \brief Spatial heatmap exporters (CSV + flat JSON) over the
///        HealthRegistry. Schemas documented in DESIGN.md §8.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/health.hpp"
#include "obs/obs.hpp"

namespace cim::obs {

namespace {

void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void json_num(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "0";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

template <typename T>
void json_array(std::ostream& os, const std::vector<T>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ",";
    if constexpr (std::is_floating_point_v<T>)
      json_num(os, v[i]);
    else
      os << static_cast<std::uint64_t>(v[i]);
  }
  os << "]";
}

void csv_cell_metric(std::ostream& os, const std::string& array,
                     const char* metric, std::size_t rows, std::size_t cols,
                     const auto& values) {
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      os << array << ',' << metric << ',' << r << ',' << c << ',';
      const auto v = values[r * cols + c];
      if constexpr (std::is_floating_point_v<std::decay_t<decltype(v)>>)
        json_num(os, v);
      else
        os << static_cast<std::uint64_t>(v);
      os << '\n';
    }
}

void csv_col_metric(std::ostream& os, const std::string& array,
                    const char* metric, std::size_t cols, const auto& values) {
  for (std::size_t c = 0; c < cols; ++c) {
    os << array << ',' << metric << ",-1," << c << ',';
    const auto v = values[c];
    if constexpr (std::is_floating_point_v<std::decay_t<decltype(v)>>)
      json_num(os, v);
    else
      os << static_cast<std::uint64_t>(v);
    os << '\n';
  }
}

}  // namespace

void write_health_heatmap_csv(std::ostream& os) {
  os << "array,metric,row,col,value\n";
  for (const auto& mon : HealthRegistry::global().monitors()) {
    const HealthMonitor::Snapshot s = mon->snapshot();
    csv_cell_metric(os, s.name, "wear", s.rows, s.cols, s.wear);
    csv_cell_metric(os, s.name, "disturbs", s.rows, s.cols, s.disturbs);
    csv_cell_metric(os, s.name, "drift_us", s.rows, s.cols, s.drift_us);
    csv_cell_metric(os, s.name, "worn", s.rows, s.cols, s.worn);
    csv_col_metric(os, s.name, "adc_samples", s.cols, s.adc_samples);
    csv_col_metric(os, s.name, "adc_clips", s.cols, s.adc_clips);
    csv_col_metric(os, s.name, "sneak_ua", s.cols, s.sneak_ua);
  }
}

void write_health_json(std::ostream& os) {
  const BuildInfo info = build_info();
  os << "{\"meta\":{\"git_sha\":";
  json_escape(os, info.git_sha);
  os << ",\"build_type\":";
  json_escape(os, info.build_type);
  os << ",\"schema\":\"cim-health-heatmap-v1\"},\"arrays\":[";
  bool first = true;
  for (const auto& mon : HealthRegistry::global().monitors()) {
    const HealthMonitor::Snapshot s = mon->snapshot();
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    json_escape(os, s.name);
    os << ",\"rows\":" << s.rows << ",\"cols\":" << s.cols;
    os << ",\"wear\":";
    json_array(os, s.wear);
    os << ",\"disturbs\":";
    json_array(os, s.disturbs);
    os << ",\"drift_us\":";
    json_array(os, s.drift_us);
    os << ",\"worn\":";
    json_array(os, s.worn);
    os << ",\"adc_samples\":";
    json_array(os, s.adc_samples);
    os << ",\"adc_clips\":";
    json_array(os, s.adc_clips);
    os << ",\"sneak_ua\":";
    json_array(os, s.sneak_ua);
    os << ",\"summary\":{";
    os << "\"total_writes\":" << s.total_writes;
    os << ",\"total_disturbs\":" << s.total_disturbs;
    os << ",\"max_wear\":" << s.max_wear;
    os << ",\"worn_cells\":" << s.worn_cells;
    os << ",\"total_adc_samples\":" << s.total_adc_samples;
    os << ",\"total_adc_clips\":" << s.total_adc_clips;
    os << ",\"mean_abs_drift_us\":";
    json_num(os, s.mean_abs_drift_us);
    os << ",\"max_abs_drift_us\":";
    json_num(os, s.max_abs_drift_us);
    os << ",\"total_sneak_ua\":";
    json_num(os, s.total_sneak_ua);
    os << "}}";
  }
  os << "]}\n";
}

bool export_health_heatmap_if_requested() {
  const char* path = std::getenv("CIM_OBS_HEATMAP_FILE");
  if (path == nullptr || *path == '\0') return false;
  if (!health_enabled()) return false;
  if (HealthRegistry::global().size() == 0) return false;
  const std::string_view p(path);
  const bool csv = p.size() >= 4 && p.substr(p.size() - 4) == ".csv";
  return write_file_atomic(path, [&](std::ostream& os) {
    if (csv)
      write_health_heatmap_csv(os);
    else
      write_health_json(os);
  });
}

}  // namespace cim::obs
