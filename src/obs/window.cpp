#include "obs/window.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cim::obs {

namespace {

std::uint64_t index_of(double t_ns, double window_ns) {
  if (!(t_ns > 0.0)) return 0;  // negatives and NaN clamp to window 0
  return static_cast<std::uint64_t>(std::floor(t_ns / window_ns));
}

}  // namespace

// --- WindowedCounter ---------------------------------------------------------

WindowedCounter::WindowedCounter(double window_ns, std::size_t ring_windows)
    : window_ns_(window_ns) {
  if (!(window_ns > 0.0))
    throw std::invalid_argument("WindowedCounter: window_ns must be > 0");
  if (ring_windows == 0)
    throw std::invalid_argument("WindowedCounter: ring_windows must be >= 1");
  ring_.resize(ring_windows);
}

std::uint64_t WindowedCounter::window_index(double t_ns) const {
  return index_of(t_ns, window_ns_);
}

void WindowedCounter::close_slot(Slot& s, const CloseFn& on_close) {
  if (on_close) {
    WindowCount w;
    w.index = s.index;
    w.start_ns = static_cast<double>(s.index) * window_ns_;
    w.count = s.count;
    on_close(w);
  }
  s.live = false;
  s.count = 0;
}

void WindowedCounter::advance_to(std::uint64_t idx, const CloseFn& on_close) {
  const std::size_t R = ring_.size();
  const std::uint64_t keep_from = idx >= R - 1 ? idx - (R - 1) : 0;
  // Evict every live window that falls off the ring, oldest first, so the
  // close callback sees an in-order exactly-once stream.
  std::vector<Slot*> evict;
  for (Slot& s : ring_)
    if (s.live && s.index < keep_from) evict.push_back(&s);
  std::sort(evict.begin(), evict.end(),
            [](const Slot* a, const Slot* b) { return a->index < b->index; });
  for (Slot* s : evict) close_slot(*s, on_close);
  newest_ = idx;
}

void WindowedCounter::add(double t_ns, std::uint64_t v,
                          const CloseFn& on_close) {
  add_at_index(window_index(t_ns), v, on_close);
}

void WindowedCounter::add_at_index(std::uint64_t idx, std::uint64_t v,
                                   const CloseFn& on_close) {
  total_ += v;
  if (!any_) {
    any_ = true;
    newest_ = idx;
  } else if (idx > newest_) {
    advance_to(idx, on_close);
  } else if (newest_ >= ring_.size() &&
             idx < newest_ - (ring_.size() - 1)) {
    late_dropped_ += v;  // window already evicted; never resurrect it
    return;
  }
  Slot& s = ring_[idx % ring_.size()];
  if (!s.live) {
    s.live = true;
    s.index = idx;
    s.count = 0;
  }
  s.count += v;
}

void WindowedCounter::finalize(const CloseFn& on_close) {
  std::vector<Slot*> live;
  for (Slot& s : ring_)
    if (s.live) live.push_back(&s);
  std::sort(live.begin(), live.end(),
            [](const Slot* a, const Slot* b) { return a->index < b->index; });
  for (Slot* s : live) close_slot(*s, on_close);
  any_ = false;
  newest_ = 0;
}

void WindowedCounter::merge(const WindowedCounter& other,
                            const CloseFn& on_close) {
  if (other.window_ns_ != window_ns_ || other.ring_.size() != ring_.size())
    throw std::invalid_argument("WindowedCounter::merge: shape mismatch");
  std::vector<const Slot*> live;
  for (const Slot& s : other.ring_)
    if (s.live) live.push_back(&s);
  std::sort(live.begin(), live.end(),
            [](const Slot* a, const Slot* b) { return a->index < b->index; });
  for (const Slot* s : live) add_at_index(s->index, s->count, on_close);
  late_dropped_ += other.late_dropped_;
  total_ += other.late_dropped_;
}

// --- WindowedHistogram -------------------------------------------------------

WindowedHistogram::WindowedHistogram(double window_ns,
                                     std::span<const double> bounds,
                                     std::size_t ring_windows)
    : window_ns_(window_ns), bounds_(bounds.begin(), bounds.end()) {
  if (!(window_ns > 0.0))
    throw std::invalid_argument("WindowedHistogram: window_ns must be > 0");
  if (ring_windows == 0)
    throw std::invalid_argument("WindowedHistogram: ring_windows must be >= 1");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("WindowedHistogram: bounds must be sorted");
  ring_.resize(ring_windows);
}

std::uint64_t WindowedHistogram::window_index(double t_ns) const {
  return index_of(t_ns, window_ns_);
}

void WindowedHistogram::close_slot(Slot& s, const CloseFn& on_close) {
  if (on_close) {
    WindowHistogramSnap w;
    w.index = s.index;
    w.start_ns = static_cast<double>(s.index) * window_ns_;
    w.hist.bounds = bounds_;
    w.hist.counts = s.counts;
    w.hist.count = s.count;
    w.hist.sum = s.sum;
    on_close(w);
  }
  s.live = false;
  std::fill(s.counts.begin(), s.counts.end(), 0);
  s.count = 0;
  s.sum = 0.0;
}

void WindowedHistogram::advance_to(std::uint64_t idx, const CloseFn& on_close) {
  const std::size_t R = ring_.size();
  const std::uint64_t keep_from = idx >= R - 1 ? idx - (R - 1) : 0;
  std::vector<Slot*> evict;
  for (Slot& s : ring_)
    if (s.live && s.index < keep_from) evict.push_back(&s);
  std::sort(evict.begin(), evict.end(),
            [](const Slot* a, const Slot* b) { return a->index < b->index; });
  for (Slot* s : evict) close_slot(*s, on_close);
  newest_ = idx;
}

void WindowedHistogram::observe(double t_ns, double value,
                                const CloseFn& on_close) {
  observe_at_index(window_index(t_ns), value, 1, on_close);
}

void WindowedHistogram::observe_at_index(std::uint64_t idx, double value,
                                         std::uint64_t weight,
                                         const CloseFn& on_close) {
  total_ += weight;
  if (!any_) {
    any_ = true;
    newest_ = idx;
  } else if (idx > newest_) {
    advance_to(idx, on_close);
  } else if (newest_ >= ring_.size() &&
             idx < newest_ - (ring_.size() - 1)) {
    late_dropped_ += weight;
    return;
  }
  Slot& s = ring_[idx % ring_.size()];
  if (!s.live) {
    s.live = true;
    s.index = idx;
    if (s.counts.size() != bounds_.size() + 1)
      s.counts.assign(bounds_.size() + 1, 0);
  }
  // Same closed-upper-bound semantics as obs::Histogram: bucket i covers
  // (bounds[i-1], bounds[i]]; NaN and values above the last bound land in
  // the overflow bucket.
  std::size_t b = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    if (value <= bounds_[i]) {
      b = i;
      break;
    }
  s.counts[b] += weight;
  s.count += weight;
  s.sum += value * static_cast<double>(weight);
}

void WindowedHistogram::finalize(const CloseFn& on_close) {
  std::vector<Slot*> live;
  for (Slot& s : ring_)
    if (s.live) live.push_back(&s);
  std::sort(live.begin(), live.end(),
            [](const Slot* a, const Slot* b) { return a->index < b->index; });
  for (Slot* s : live) close_slot(*s, on_close);
  any_ = false;
  newest_ = 0;
}

void WindowedHistogram::merge(const WindowedHistogram& other,
                              const CloseFn& on_close) {
  if (other.window_ns_ != window_ns_ || other.ring_.size() != ring_.size() ||
      other.bounds_ != bounds_)
    throw std::invalid_argument("WindowedHistogram::merge: shape mismatch");
  std::vector<const Slot*> live;
  for (const Slot& s : other.ring_)
    if (s.live) live.push_back(&s);
  std::sort(live.begin(), live.end(),
            [](const Slot* a, const Slot* b) { return a->index < b->index; });
  for (const Slot* src : live) {
    // Replay the source window bucket-by-bucket at its own index. The
    // bucket mid-value does not matter — counts land by bucket position.
    total_ += src->count;
    if (!any_) {
      any_ = true;
      newest_ = src->index;
    } else if (src->index > newest_) {
      advance_to(src->index, on_close);
    } else if (newest_ >= ring_.size() &&
               src->index < newest_ - (ring_.size() - 1)) {
      late_dropped_ += src->count;
      continue;
    }
    Slot& dst = ring_[src->index % ring_.size()];
    if (!dst.live) {
      dst.live = true;
      dst.index = src->index;
      if (dst.counts.size() != bounds_.size() + 1)
        dst.counts.assign(bounds_.size() + 1, 0);
    }
    for (std::size_t i = 0; i < src->counts.size(); ++i)
      dst.counts[i] += src->counts[i];
    dst.count += src->count;
    dst.sum += src->sum;
  }
  late_dropped_ += other.late_dropped_;
  total_ += other.late_dropped_;
}

// --- SloTracker --------------------------------------------------------------

SloTracker::SloTracker(SloConfig cfg) : cfg_(cfg) {
  if (!(cfg_.target_ns > 0.0))
    throw std::invalid_argument("SloTracker: target_ns must be > 0");
  if (!(cfg_.objective > 0.0) || !(cfg_.objective < 1.0))
    throw std::invalid_argument("SloTracker: objective must be in (0, 1)");
  if (!(cfg_.window_ns > 0.0))
    throw std::invalid_argument("SloTracker: window_ns must be > 0");
  if (cfg_.fast_windows == 0 || cfg_.slow_windows == 0)
    throw std::invalid_argument("SloTracker: alert spans must be >= 1 window");
  summary_.enabled = true;
  summary_.target_ns = cfg_.target_ns;
  summary_.objective = cfg_.objective;
  summary_.window_ns = cfg_.window_ns;
}

void SloTracker::observe(double t_ns, double latency_ns) {
  // NaN compares false, so a NaN latency counts as a violation — the same
  // pessimistic default the histogram overflow bucket applies.
  event(t_ns, latency_ns <= cfg_.target_ns);
}

void SloTracker::record_rejected(double t_ns) { event(t_ns, false); }

void SloTracker::event(double t_ns, bool good) {
  const std::uint64_t idx = index_of(t_ns, cfg_.window_ns);
  if (!any_) {
    any_ = true;
    cur_index_ = idx;
  } else if (idx > cur_index_) {
    close_current();
    cur_index_ = idx;
  }
  // Events are fed in non-decreasing simulated time; anything that still
  // lands behind the current window folds into it (never reopens a
  // closed one).
  if (good) {
    ++cur_good_;
    ++total_good_;
  } else {
    ++cur_bad_;
    ++total_bad_;
  }
}

void SloTracker::close_current() {
  SloWindow row;
  row.index = cur_index_;
  row.start_ns = static_cast<double>(cur_index_) * cfg_.window_ns;
  row.good = cur_good_;
  row.bad = cur_bad_;
  const double budget = 1.0 - cfg_.objective;
  const std::uint64_t n = cur_good_ + cur_bad_;
  row.burn_rate =
      n > 0 ? (static_cast<double>(cur_bad_) / static_cast<double>(n)) / budget
            : 0.0;

  // Trailing burn over the last K *window indices* (quiet windows count as
  // zero-traffic, diluting nothing — they simply contribute no events).
  auto trailing_burn = [&](std::size_t k) {
    const std::uint64_t from =
        cur_index_ >= k - 1 ? cur_index_ - (k - 1) : 0;
    std::uint64_t good = cur_good_;
    std::uint64_t bad = cur_bad_;
    for (auto it = closed_.rbegin(); it != closed_.rend(); ++it) {
      if (it->index < from) break;
      good += it->good;
      bad += it->bad;
    }
    const std::uint64_t total = good + bad;
    if (total == 0) return 0.0;
    return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
  };

  const double fast = trailing_burn(cfg_.fast_windows);
  const double slow = trailing_burn(cfg_.slow_windows);
  const bool fast_now = fast >= cfg_.fast_burn_threshold;
  const bool slow_now = slow >= cfg_.slow_burn_threshold;
  row.fast_alert = fast_now && !fast_active_;  // onset, not level
  row.slow_alert = slow_now && !slow_active_;
  fast_active_ = fast_now;
  slow_active_ = slow_now;
  if (row.fast_alert) {
    ++summary_.fast_alerts;
    if (summary_.first_breach_ns < 0.0) summary_.first_breach_ns = row.start_ns;
  }
  if (row.slow_alert) ++summary_.slow_alerts;

  closed_.push_back(row);
  cur_good_ = 0;
  cur_bad_ = 0;
}

SloSummary SloTracker::finalize() {
  if (finalized_) return summary_;
  finalized_ = true;
  if (any_ && (cur_good_ + cur_bad_) > 0) close_current();
  summary_.good = total_good_;
  summary_.bad = total_bad_;
  const std::uint64_t total = total_good_ + total_bad_;
  summary_.budget_consumed =
      total > 0 ? static_cast<double>(total_bad_) /
                      (static_cast<double>(total) * (1.0 - cfg_.objective))
                : 0.0;
  summary_.breached =
      summary_.fast_alerts > 0 || summary_.budget_consumed >= 1.0;
  if (summary_.breached && summary_.first_breach_ns < 0.0 && !closed_.empty())
    summary_.first_breach_ns = closed_.front().start_ns;
  return summary_;
}

}  // namespace cim::obs
