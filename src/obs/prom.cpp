#include "obs/prom.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>

#include "obs/health.hpp"
#include "obs/obs.hpp"

namespace cim::obs {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry dots (and
/// anything else invalid) become underscores; a "cim_" prefix namespaces us.
std::string prom_name(std::string_view raw, const char* suffix = "") {
  std::string out = "cim_";
  for (char ch : raw) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(ok ? ch : '_');
  }
  out += suffix;
  return out;
}

/// Label values escape backslash, double-quote and newline per the spec.
void prom_label_value(std::ostream& os, std::string_view v) {
  os << '"';
  for (char ch : v) {
    switch (ch) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      default: os << ch;
    }
  }
  os << '"';
}

void prom_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  }
}

void header(std::ostream& os, const std::string& name, const char* type,
            const char* help) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

void write_prometheus_text(std::ostream& os) {
  const Snapshot s = snapshot();

  {
    const std::string name = "cim_build_info";
    header(os, name, "gauge", "Build metadata for this process.");
    os << name << "{git_sha=";
    prom_label_value(os, s.meta.git_sha);
    os << ",build_type=";
    prom_label_value(os, s.meta.build_type);
    os << ",mode=";
    prom_label_value(os, s.meta.mode);
    os << ",simd_isa=";
    prom_label_value(os, s.meta.simd_isa);
    os << "} 1\n";
  }

  for (const auto& [raw, v] : s.counters) {
    const std::string name = prom_name(raw, "_total");
    header(os, name, "counter", "cim::obs counter.");
    os << name << ' ' << v << '\n';
  }

  for (const auto& [raw, v] : s.gauges) {
    const std::string name = prom_name(raw);
    header(os, name, "gauge", "cim::obs gauge.");
    os << name << ' ';
    prom_value(os, v);
    os << '\n';
  }

  for (const auto& h : s.histograms) {
    const std::string name = prom_name(h.name);
    header(os, name, "histogram", "cim::obs histogram.");
    // obs::Histogram buckets have closed upper bounds, which is exactly
    // Prometheus `le` semantics; emit cumulative counts.
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.data.bounds.size(); ++b) {
      cum += h.data.counts[b];
      os << name << "_bucket{le=\"";
      prom_value(os, h.data.bounds[b]);
      os << "\"} " << cum << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.data.count << '\n';
    os << name << "_sum ";
    prom_value(os, h.data.sum);
    os << '\n';
    os << name << "_count " << h.data.count << '\n';
    // Scrape-side tail summary (Histogram::Snapshot::quantile): a separate
    // `<name>_q` gauge family so the histogram family above stays exactly
    // the conventional bucket/sum/count triple.
    if (h.data.count > 0) {
      const std::string qname = name + "_q";
      header(os, qname, "gauge",
             "Estimated quantiles of the cim::obs histogram.");
      for (const auto& [label, q] :
           {std::pair<const char*, double>{"0.5", 0.5},
            {"0.99", 0.99},
            {"0.999", 0.999}}) {
        os << qname << "{quantile=\"" << label << "\"} ";
        prom_value(os, h.data.quantile(q));
        os << '\n';
      }
    }
  }

  if (!s.spans.empty()) {
    header(os, "cim_span_count_total", "counter", "Span invocations.");
    header(os, "cim_span_wall_ns_total", "counter", "Span wall time (ns).");
    header(os, "cim_span_energy_pj_total", "counter", "Span energy (pJ).");
    for (const auto& row : s.spans) {
      std::ostringstream labels;
      labels << "{name=";
      prom_label_value(labels, row.name);
      labels << ",component=";
      prom_label_value(labels, component_name(row.comp));
      labels << "}";
      const std::string l = labels.str();
      os << "cim_span_count_total" << l << ' ' << row.count << '\n';
      os << "cim_span_wall_ns_total" << l << ' ';
      prom_value(os, row.wall_ns);
      os << '\n';
      os << "cim_span_energy_pj_total" << l << ' ';
      prom_value(os, row.energy_pj);
      os << '\n';
    }
  }

  header(os, "cim_component_events_total", "counter",
         "Attribution events per design component.");
  header(os, "cim_component_energy_pj_total", "counter",
         "Simulated energy per design component (pJ).");
  for (const auto& row : s.components) {
    std::ostringstream labels;
    labels << "{component=";
    prom_label_value(labels, component_name(row.comp));
    labels << "}";
    const std::string l = labels.str();
    os << "cim_component_events_total" << l << ' ' << row.events << '\n';
    os << "cim_component_energy_pj_total" << l << ' ';
    prom_value(os, row.energy_pj);
    os << '\n';
  }

  const auto monitors = HealthRegistry::global().monitors();
  if (!monitors.empty()) {
    header(os, "cim_health_writes_total", "counter",
           "Programming pulses per array (endurance wear).");
    header(os, "cim_health_disturbs_total", "counter",
           "Disturb events per array.");
    header(os, "cim_health_worn_cells", "gauge",
           "Cells worn out (hard-stuck) in the field.");
    header(os, "cim_health_max_wear", "gauge",
           "Maximum per-cell write count.");
    header(os, "cim_health_mean_abs_drift_us", "gauge",
           "Mean |conductance drift| since last program (uS).");
    header(os, "cim_health_max_abs_drift_us", "gauge",
           "Max |conductance drift| since last program (uS).");
    header(os, "cim_health_adc_samples_total", "counter",
           "ADC conversions per array.");
    header(os, "cim_health_adc_clips_total", "counter",
           "ADC saturation/clipping events per array.");
    header(os, "cim_health_sneak_ua_total", "counter",
           "Accumulated sneak-path current (uA-samples).");
    for (const auto& mon : monitors) {
      const HealthMonitor::Snapshot hs = mon->snapshot();
      std::ostringstream labels;
      labels << "{array=";
      prom_label_value(labels, hs.name);
      labels << "}";
      const std::string l = labels.str();
      os << "cim_health_writes_total" << l << ' ' << hs.total_writes << '\n';
      os << "cim_health_disturbs_total" << l << ' ' << hs.total_disturbs
         << '\n';
      os << "cim_health_worn_cells" << l << ' ' << hs.worn_cells << '\n';
      os << "cim_health_max_wear" << l << ' ' << hs.max_wear << '\n';
      os << "cim_health_mean_abs_drift_us" << l << ' ';
      prom_value(os, hs.mean_abs_drift_us);
      os << '\n';
      os << "cim_health_max_abs_drift_us" << l << ' ';
      prom_value(os, hs.max_abs_drift_us);
      os << '\n';
      os << "cim_health_adc_samples_total" << l << ' ' << hs.total_adc_samples
         << '\n';
      os << "cim_health_adc_clips_total" << l << ' ' << hs.total_adc_clips
         << '\n';
      os << "cim_health_sneak_ua_total" << l << ' ';
      prom_value(os, hs.total_sneak_ua);
      os << '\n';
    }
  }
}

bool write_prometheus_file(const std::string& path) {
  return write_file_atomic(path,
                           [](std::ostream& os) { write_prometheus_text(os); });
}

// --- PromServer --------------------------------------------------------------

PromServer::~PromServer() { stop(); }

bool PromServer::start(std::uint16_t port) {
  // Double-start is a no-op, not a bind failure: a front-end that starts
  // the endpoint explicitly must compose with a CimSystem ctor (or another
  // front-end) doing the same.
  if (running_.load(std::memory_order_acquire))
    return port == 0 || port == port_;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }

  // Recover the ephemeral port when started with 0.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
  else
    port_ = port;

  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void PromServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void PromServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;  // timeout (checks stop flag) or transient error
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // Drain whatever request line arrived; the path is ignored — every
    // request gets the metrics page.
    char reqbuf[1024];
    (void)::recv(conn, reqbuf, sizeof(reqbuf), MSG_DONTWAIT);

    std::ostringstream body;
    write_prometheus_text(body);
    const std::string text = body.str();

    std::ostringstream resp;
    resp << "HTTP/1.0 200 OK\r\n"
         << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
         << "Content-Length: " << text.size() << "\r\n"
         << "Connection: close\r\n\r\n"
         << text;
    const std::string out = resp.str();

    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(conn, out.data() + sent, out.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

namespace {
std::mutex& global_prom_mutex() {
  static std::mutex* mu = new std::mutex();  // leaked, like Registry
  return *mu;
}
}  // namespace

PromServer& global_prom_server() {
  static PromServer* server = new PromServer();  // leaked, like Registry
  return *server;
}

std::uint16_t start_global_prometheus(std::uint16_t port) {
  std::lock_guard<std::mutex> lk(global_prom_mutex());
  PromServer& server = global_prom_server();
  if (!server.start(port)) return 0;
  return server.port();
}

void stop_global_prometheus() {
  std::lock_guard<std::mutex> lk(global_prom_mutex());
  global_prom_server().stop();
}

std::uint16_t maybe_start_prometheus_from_env() {
  std::lock_guard<std::mutex> lk(global_prom_mutex());
  PromServer& server = global_prom_server();
  if (server.running()) return server.port();
  if (mode() == Mode::kOff) return 0;
  const char* env = std::getenv("CIM_OBS_PROM_PORT");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long p = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || p > 65535) return 0;
  if (!server.start(static_cast<std::uint16_t>(p))) return 0;
  return server.port();
}

}  // namespace cim::obs
