/// \file prom.hpp
/// \brief Prometheus text-format (exposition format 0.0.4) exporter over the
///        whole cim::obs registry + health summaries, with two delivery
///        paths:
///
///  - a one-shot writer (`write_prometheus_text` / `write_prometheus_file`,
///    env hook `CIM_OBS_PROM_FILE`) for batch jobs, and
///  - a minimal blocking TCP endpoint (`PromServer`, env hook
///    `CIM_OBS_PROM_PORT`) so long-running `CimSystem` processes can be
///    scraped like production hardware.
///
/// Naming scheme (documented in DESIGN.md §8):
///  - every metric gets a `cim_` prefix; registry dots become underscores
///    and all other invalid characters are replaced by `_`
///    (e.g. counter "crossbar.writes" -> `cim_crossbar_writes_total`),
///  - counters get the conventional `_total` suffix, gauges none,
///  - histograms expand to cumulative `_bucket{le="..."}` rows (closed
///    upper bounds, matching obs::Histogram semantics) plus `_sum`/`_count`,
///  - spans/components/health arrays export as labeled families
///    (`cim_span_*{name=...,component=...}`, `cim_health_*{array=...}`),
///  - build metadata exports as `cim_build_info{git_sha=...,...} 1`.
///
/// The server is deliberately minimal: HTTP/1.0, one request per
/// connection, response assembled before the reply is written. It exists to
/// be scraped by curl/Prometheus in tests and demos, not to be a web server.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <thread>

namespace cim::obs {

/// Renders the full registry (counters, gauges, histograms, spans,
/// components) plus per-array health summaries in Prometheus text format.
void write_prometheus_text(std::ostream& os);

/// One-shot crash-safe file export of write_prometheus_text.
bool write_prometheus_file(const std::string& path);

/// Blocking-accept TCP endpoint serving write_prometheus_text at any path.
/// One background thread; each accepted connection gets one response and is
/// closed. Port 0 binds an ephemeral port (query with port()).
class PromServer {
 public:
  PromServer() = default;
  ~PromServer();

  PromServer(const PromServer&) = delete;
  PromServer& operator=(const PromServer&) = delete;

  /// Binds 127.0.0.1:`port` and starts the accept thread. Starting an
  /// already-running server is a no-op that returns true when the request
  /// is compatible (same port, or 0 = "any"); asking a running server to
  /// rebind to a *different* port returns false. Returns false when the
  /// socket could not be bound.
  bool start(std::uint16_t port);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (differs from the request when started with 0).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// The process-wide scrape endpoint. Not started by construction — use the
/// explicit start/stop helpers below or the env-driven one. Exposed so any
/// long-running front-end (the serving layer, tools, tests) can manage the
/// endpoint lifecycle without constructing a CimSystem.
PromServer& global_prom_server();

/// Explicitly starts the process-wide scrape endpoint on `port` (0 binds an
/// ephemeral port). Idempotent: if the endpoint is already up the call is a
/// no-op and the already-bound port is returned. Returns 0 only when the
/// socket could not be bound (or a different port was requested while
/// running). Does not consult CIM_OBS_PROM_PORT or the telemetry mode.
std::uint16_t start_global_prometheus(std::uint16_t port);

/// Stops the process-wide scrape endpoint (no-op when not running).
void stop_global_prometheus();

/// Starts the process-wide scrape endpoint when CIM_OBS_PROM_PORT is set to
/// a valid port and telemetry is enabled. Idempotent (double-start is a
/// no-op); returns the bound port, or 0 when no server is running. Called
/// from the CimSystem ctor and the serving controller.
std::uint16_t maybe_start_prometheus_from_env();

}  // namespace cim::obs
