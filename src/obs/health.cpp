#include "obs/health.hpp"

#include <algorithm>
#include <cmath>

namespace cim::obs {

namespace {

template <typename T>
std::vector<std::atomic<T>> make_atomic_vec(std::size_t n) {
  // Value-initialised atomics: each element starts at T{}.
  return std::vector<std::atomic<T>>(n);
}

template <typename T>
void add_relaxed(std::atomic<T>& a, T delta) {
  // fetch_add on atomic<double> needs C++20 + libatomic on some targets;
  // a CAS loop works everywhere and these are not contended (single writer).
  T cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed))
    ;
}

}  // namespace

HealthMonitor::HealthMonitor(std::string name, std::size_t rows,
                             std::size_t cols)
    : name_(std::move(name)),
      rows_(rows),
      cols_(cols),
      wear_(make_atomic_vec<std::uint64_t>(rows * cols)),
      disturbs_(make_atomic_vec<std::uint64_t>(rows * cols)),
      drift_us_(make_atomic_vec<double>(rows * cols)),
      baseline_us_(make_atomic_vec<double>(rows * cols)),
      worn_(make_atomic_vec<std::uint8_t>(rows * cols)),
      adc_samples_(make_atomic_vec<std::uint64_t>(cols)),
      adc_clips_(make_atomic_vec<std::uint64_t>(cols)),
      sneak_ua_(make_atomic_vec<double>(cols)) {}

void HealthMonitor::record_write(std::size_t r, std::size_t c,
                                 std::uint64_t pulses) {
  if (r >= rows_ || c >= cols_) return;
  wear_[idx(r, c)].fetch_add(pulses, std::memory_order_relaxed);
}

void HealthMonitor::record_program(std::size_t r, std::size_t c,
                                   double g_target_us, double g_actual_us) {
  if (r >= rows_ || c >= cols_) return;
  const std::size_t i = idx(r, c);
  baseline_us_[i].store(g_target_us, std::memory_order_relaxed);
  drift_us_[i].store(g_actual_us - g_target_us, std::memory_order_relaxed);
}

void HealthMonitor::record_disturb(std::size_t r, std::size_t c,
                                   double g_now_us) {
  if (r >= rows_ || c >= cols_) return;
  const std::size_t i = idx(r, c);
  disturbs_[i].fetch_add(1, std::memory_order_relaxed);
  const double base = baseline_us_[i].load(std::memory_order_relaxed);
  drift_us_[i].store(g_now_us - base, std::memory_order_relaxed);
}

void HealthMonitor::record_wearout(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) return;
  worn_[idx(r, c)].store(1, std::memory_order_relaxed);
}

void HealthMonitor::record_adc_sample(std::size_t col, bool clipped) {
  if (col >= cols_) return;
  adc_samples_[col].fetch_add(1, std::memory_order_relaxed);
  if (clipped) adc_clips_[col].fetch_add(1, std::memory_order_relaxed);
}

void HealthMonitor::record_sneak_current(std::size_t col, double ua) {
  if (col >= cols_) return;
  add_relaxed(sneak_ua_[col], ua);
}

HealthMonitor::Snapshot HealthMonitor::snapshot() const {
  Snapshot s;
  s.name = name_;
  s.rows = rows_;
  s.cols = cols_;
  const std::size_t n = rows_ * cols_;
  s.wear.resize(n);
  s.disturbs.resize(n);
  s.drift_us.resize(n);
  s.worn.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.wear[i] = wear_[i].load(std::memory_order_relaxed);
    s.disturbs[i] = disturbs_[i].load(std::memory_order_relaxed);
    s.drift_us[i] = drift_us_[i].load(std::memory_order_relaxed);
    s.worn[i] = worn_[i].load(std::memory_order_relaxed);
    s.total_writes += s.wear[i];
    s.total_disturbs += s.disturbs[i];
    s.max_wear = std::max(s.max_wear, s.wear[i]);
    s.worn_cells += s.worn[i];
    const double d = std::abs(s.drift_us[i]);
    s.mean_abs_drift_us += d;
    s.max_abs_drift_us = std::max(s.max_abs_drift_us, d);
  }
  if (n > 0) s.mean_abs_drift_us /= static_cast<double>(n);
  s.adc_samples.resize(cols_);
  s.adc_clips.resize(cols_);
  s.sneak_ua.resize(cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    s.adc_samples[c] = adc_samples_[c].load(std::memory_order_relaxed);
    s.adc_clips[c] = adc_clips_[c].load(std::memory_order_relaxed);
    s.sneak_ua[c] = sneak_ua_[c].load(std::memory_order_relaxed);
    s.total_adc_samples += s.adc_samples[c];
    s.total_adc_clips += s.adc_clips[c];
    s.total_sneak_ua += s.sneak_ua[c];
  }
  return s;
}

void HealthMonitor::reset() {
  for (auto& a : wear_) a.store(0, std::memory_order_relaxed);
  for (auto& a : disturbs_) a.store(0, std::memory_order_relaxed);
  for (auto& a : drift_us_) a.store(0.0, std::memory_order_relaxed);
  for (auto& a : baseline_us_) a.store(0.0, std::memory_order_relaxed);
  for (auto& a : worn_) a.store(0, std::memory_order_relaxed);
  for (auto& a : adc_samples_) a.store(0, std::memory_order_relaxed);
  for (auto& a : adc_clips_) a.store(0, std::memory_order_relaxed);
  for (auto& a : sneak_ua_) a.store(0.0, std::memory_order_relaxed);
}

// --- HealthRegistry ----------------------------------------------------------

HealthRegistry& HealthRegistry::global() {
  static HealthRegistry* reg = new HealthRegistry();  // leaked, like Registry
  return *reg;
}

std::shared_ptr<HealthMonitor> HealthRegistry::monitor(std::string_view name,
                                                       std::size_t rows,
                                                       std::size_t cols) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = monitors_.find(name);
  if (it == monitors_.end())
    it = monitors_
             .emplace(std::string(name), std::make_shared<HealthMonitor>(
                                             std::string(name), rows, cols))
             .first;
  return it->second;
}

std::vector<std::shared_ptr<HealthMonitor>> HealthRegistry::monitors() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<HealthMonitor>> out;
  out.reserve(monitors_.size());
  for (const auto& [name, m] : monitors_) out.push_back(m);
  return out;
}

std::size_t HealthRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return monitors_.size();
}

void HealthRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, m] : monitors_) m->reset();
}

void HealthRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  monitors_.clear();
}

std::string next_health_name(const char* prefix) {
  static std::atomic<std::uint64_t> seq{0};
  return std::string(prefix) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace cim::obs
