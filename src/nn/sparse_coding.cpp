#include "nn/sparse_coding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cim::nn {

SparseProblem generate_sparse_problem(std::size_t signal_dim,
                                      std::size_t atoms, std::size_t n,
                                      std::size_t sparsity, double noise,
                                      util::Rng& rng) {
  if (sparsity > atoms)
    throw std::invalid_argument("generate_sparse_problem: sparsity > atoms");
  SparseProblem prob;
  prob.dictionary = util::Matrix(signal_dim, atoms);
  for (std::size_t a = 0; a < atoms; ++a) {
    double norm = 0.0;
    for (std::size_t d = 0; d < signal_dim; ++d) {
      const double v = rng.normal(0.0, 1.0);
      prob.dictionary(d, a) = v;
      norm += v * v;
    }
    norm = std::sqrt(norm);
    for (std::size_t d = 0; d < signal_dim; ++d) prob.dictionary(d, a) /= norm;
  }

  prob.signals = util::Matrix(n, signal_dim);
  prob.true_codes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> code(atoms, 0.0);
    const auto perm = rng.permutation(atoms);
    for (std::size_t k = 0; k < sparsity; ++k)
      code[perm[k]] = rng.uniform(0.5, 1.5) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    prob.true_codes[i] = code;
    for (std::size_t d = 0; d < signal_dim; ++d) {
      double acc = 0.0;
      for (std::size_t a = 0; a < atoms; ++a)
        acc += prob.dictionary(d, a) * code[a];
      prob.signals(i, d) = acc + rng.normal(0.0, noise);
    }
  }
  return prob;
}

CrossbarSparseCoder::CrossbarSparseCoder(const util::Matrix& dictionary,
                                         CrossbarLinearConfig array_cfg)
    : signal_dim_(dictionary.rows()),
      atoms_(dictionary.cols()),
      dict_(dictionary),
      dict_t_(dictionary.transposed()) {
  if (dictionary.empty())
    throw std::invalid_argument("CrossbarSparseCoder: empty dictionary");
  auto cfg_fwd = array_cfg;
  cfg_fwd.array.seed ^= 0x1111;
  forward_ = std::make_unique<CrossbarLinear>(
      dict_, std::vector<double>{}, cfg_fwd);
  auto cfg_bwd = array_cfg;
  cfg_bwd.array.seed ^= 0x2222;
  backward_ = std::make_unique<CrossbarLinear>(
      dict_t_, std::vector<double>{}, cfg_bwd);
}

namespace {

/// Signed analog matvec on a CrossbarLinear that accepts only non-negative
/// inputs: x = x+ - x-, two passes, subtracted digitally.
std::vector<double> signed_forward(CrossbarLinear& layer,
                                   std::span<const double> x) {
  double x_max = 1e-9;
  for (const double v : x) x_max = std::max(x_max, std::abs(v));
  layer.set_x_max(x_max);

  std::vector<double> pos(x.size()), neg(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    pos[i] = std::max(0.0, x[i]);
    neg[i] = std::max(0.0, -x[i]);
  }
  auto yp = layer.forward(pos);
  const auto yn = layer.forward(neg);
  for (std::size_t i = 0; i < yp.size(); ++i) yp[i] -= yn[i];
  return yp;
}

double soft_threshold(double v, double t) {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}

}  // namespace

std::vector<double> CrossbarSparseCoder::reconstruct(std::span<const double> a,
                                                     bool analog) {
  if (analog) return signed_forward(*forward_, a);
  return dict_.matvec(a);
}

std::vector<double> CrossbarSparseCoder::correlate(std::span<const double> r,
                                                   bool analog) {
  if (analog) return signed_forward(*backward_, r);
  return dict_t_.matvec(r);
}

namespace {

SparseCode finish(std::vector<double> code, std::span<const double> x,
                  const util::Matrix& dict) {
  SparseCode out;
  // Exact reconstruction error (evaluation metric, not part of the loop).
  const auto recon = dict.matvec(code);
  double err = 0.0, norm = 0.0;
  for (std::size_t d = 0; d < x.size(); ++d) {
    err += (x[d] - recon[d]) * (x[d] - recon[d]);
    norm += x[d] * x[d];
  }
  out.reconstruction_error = norm > 0 ? std::sqrt(err / norm) : 0.0;
  for (const double v : code)
    if (v != 0.0) ++out.nonzeros;
  out.code = std::move(code);
  return out;
}

}  // namespace

SparseCode CrossbarSparseCoder::encode(std::span<const double> x,
                                       const IstaConfig& cfg) {
  if (x.size() != signal_dim_)
    throw std::invalid_argument("encode: signal dim mismatch");
  std::vector<double> a(atoms_, 0.0);
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const auto recon = reconstruct(a, /*analog=*/true);
    std::vector<double> r(signal_dim_);
    for (std::size_t d = 0; d < signal_dim_; ++d) r[d] = x[d] - recon[d];
    const auto corr = correlate(r, /*analog=*/true);
    for (std::size_t k = 0; k < atoms_; ++k)
      a[k] = soft_threshold(a[k] + cfg.step * corr[k], cfg.step * cfg.lambda);
  }
  return finish(std::move(a), x, dict_);
}

SparseCode CrossbarSparseCoder::encode_reference(std::span<const double> x,
                                                 const IstaConfig& cfg) const {
  if (x.size() != signal_dim_)
    throw std::invalid_argument("encode_reference: signal dim mismatch");
  std::vector<double> a(atoms_, 0.0);
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const auto recon = dict_.matvec(a);
    std::vector<double> r(signal_dim_);
    for (std::size_t d = 0; d < signal_dim_; ++d) r[d] = x[d] - recon[d];
    const auto corr = dict_t_.matvec(r);
    for (std::size_t k = 0; k < atoms_; ++k)
      a[k] = soft_threshold(a[k] + cfg.step * corr[k], cfg.step * cfg.lambda);
  }
  return finish(std::move(a), x, dict_);
}

double CrossbarSparseCoder::energy_pj() const {
  return forward_->energy_pj() + backward_->energy_pj();
}

double support_recovery(std::span<const double> estimated,
                        std::span<const double> truth, std::size_t k) {
  if (estimated.size() != truth.size())
    throw std::invalid_argument("support_recovery: size mismatch");
  // Top-k of |estimated| vs the true support.
  std::vector<std::size_t> idx(estimated.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(std::min(k, idx.size())),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return std::abs(estimated[a]) > std::abs(estimated[b]);
                    });
  std::size_t truth_support = 0;
  for (const double v : truth)
    if (v != 0.0) ++truth_support;
  if (truth_support == 0) return 1.0;

  std::size_t hits = 0;
  for (std::size_t i = 0; i < std::min(k, idx.size()); ++i)
    if (truth[idx[i]] != 0.0) ++hits;
  return static_cast<double>(hits) / static_cast<double>(truth_support);
}

}  // namespace cim::nn
