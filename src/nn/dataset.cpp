#include "nn/dataset.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string_view>

namespace cim::nn {
namespace {

// 8x8 glyphs; '#' = on pixel. Hand-drawn to be mutually distinguishable
// under one pixel of jitter.
constexpr std::array<std::array<std::string_view, 8>, 10> kGlyphs = {{
    // 0
    {{"..####..",
      ".#....#.",
      ".#....#.",
      ".#....#.",
      ".#....#.",
      ".#....#.",
      ".#....#.",
      "..####.."}},
    // 1
    {{"...##...",
      "..###...",
      "...##...",
      "...##...",
      "...##...",
      "...##...",
      "...##...",
      ".######."}},
    // 2
    {{"..####..",
      ".#....#.",
      "......#.",
      ".....#..",
      "....#...",
      "...#....",
      "..#.....",
      ".######."}},
    // 3
    {{"..####..",
      ".#....#.",
      "......#.",
      "...###..",
      "......#.",
      "......#.",
      ".#....#.",
      "..####.."}},
    // 4
    {{"....##..",
      "...#.#..",
      "..#..#..",
      ".#...#..",
      ".######.",
      ".....#..",
      ".....#..",
      ".....#.."}},
    // 5
    {{".######.",
      ".#......",
      ".#......",
      ".#####..",
      "......#.",
      "......#.",
      ".#....#.",
      "..####.."}},
    // 6
    {{"..####..",
      ".#......",
      ".#......",
      ".#####..",
      ".#....#.",
      ".#....#.",
      ".#....#.",
      "..####.."}},
    // 7
    {{".######.",
      "......#.",
      ".....#..",
      ".....#..",
      "....#...",
      "....#...",
      "...#....",
      "...#...."}},
    // 8
    {{"..####..",
      ".#....#.",
      ".#....#.",
      "..####..",
      ".#....#.",
      ".#....#.",
      ".#....#.",
      "..####.."}},
    // 9
    {{"..####..",
      ".#....#.",
      ".#....#.",
      ".#....#.",
      "..#####.",
      "......#.",
      "......#.",
      "..####.."}},
}};

}  // namespace

std::vector<double> digit_template(int digit) {
  if (digit < 0 || digit >= kClasses)
    throw std::out_of_range("digit_template: digit in [0,9]");
  std::vector<double> img(kPixels, 0.0);
  const auto& glyph = kGlyphs[static_cast<std::size_t>(digit)];
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      if (glyph[r][c] == '#') img[r * 8 + c] = 1.0;
  return img;
}

Dataset generate_digits(std::size_t n, util::Rng& rng, double noise) {
  Dataset ds;
  ds.features = util::Matrix(n, kPixels);
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int digit = static_cast<int>(rng.uniform_int(kClasses));
    ds.labels[i] = digit;
    const auto tmpl = digit_template(digit);
    // Jitter by -1, 0 or +1 pixels in each direction.
    const int dr = static_cast<int>(rng.uniform_int(3)) - 1;
    const int dc = static_cast<int>(rng.uniform_int(3)) - 1;
    for (int r = 0; r < 8; ++r) {
      for (int c = 0; c < 8; ++c) {
        const int sr = r - dr;
        const int sc = c - dc;
        double v = 0.0;
        if (sr >= 0 && sr < 8 && sc >= 0 && sc < 8)
          v = tmpl[static_cast<std::size_t>(sr * 8 + sc)];
        v += rng.normal(0.0, noise);
        ds.features(i, static_cast<std::size_t>(r * 8 + c)) =
            std::clamp(v, 0.0, 1.0);
      }
    }
  }
  return ds;
}

}  // namespace cim::nn
