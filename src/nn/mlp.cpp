#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace cim::nn {

Dense::Dense(std::size_t out, std::size_t in, util::Rng& rng)
    : w(out, in), b(out, 0.0) {
  // He initialization for ReLU networks.
  const double scale = std::sqrt(2.0 / static_cast<double>(in));
  for (double& v : w.flat()) v = rng.normal(0.0, scale);
}

std::vector<double> Dense::forward(std::span<const double> x) const {
  auto y = w.matvec(x);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += b[i];
  return y;
}

std::vector<double> softmax(std::span<const double> logits) {
  std::vector<double> p(logits.begin(), logits.end());
  const double mx = *std::max_element(p.begin(), p.end());
  double sum = 0.0;
  for (double& v : p) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : p) v /= sum;
  return p;
}

Mlp::Mlp(std::vector<std::size_t> dims, util::Rng& rng) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need >= 2 dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    layers_.emplace_back(dims[i + 1], dims[i], rng);
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
  std::vector<double> act(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    act = layers_[l].forward(act);
    if (l + 1 < layers_.size())
      for (double& v : act) v = std::max(0.0, v);
  }
  return act;
}

int Mlp::predict(std::span<const double> x) const {
  const auto logits = forward(x);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double Mlp::train_epoch(const Dataset& data, double lr, util::Rng& rng) {
  if (data.size() == 0) throw std::invalid_argument("train_epoch: empty data");
  double total_loss = 0.0;
  const auto order = rng.permutation(data.size());

  for (const std::size_t idx : order) {
    const auto x = data.features.row(idx);
    const int label = data.labels[idx];

    // Forward pass, keeping per-layer activations.
    std::vector<std::vector<double>> acts;  // acts[0] = input
    acts.emplace_back(x.begin(), x.end());
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      auto z = layers_[l].forward(acts.back());
      if (l + 1 < layers_.size())
        for (double& v : z) v = std::max(0.0, v);
      acts.push_back(std::move(z));
    }

    // Softmax cross-entropy loss and gradient at the output.
    auto probs = softmax(acts.back());
    total_loss += -std::log(std::max(1e-12, probs[static_cast<std::size_t>(label)]));
    std::vector<double> delta = probs;
    delta[static_cast<std::size_t>(label)] -= 1.0;

    // Backward pass with immediate SGD updates.
    for (std::size_t li = layers_.size(); li > 0; --li) {
      const std::size_t l = li - 1;
      Dense& layer = layers_[l];
      const auto& input = acts[l];

      std::vector<double> delta_prev;
      if (l > 0) {
        delta_prev = layer.w.matvec_transposed(delta);
        // ReLU derivative w.r.t. the *post-activation* values of layer l-1.
        for (std::size_t i = 0; i < delta_prev.size(); ++i)
          if (acts[l][i] <= 0.0) delta_prev[i] = 0.0;
      }

      for (std::size_t o = 0; o < layer.out_dim(); ++o) {
        const double d = delta[o];
        layer.b[o] -= lr * d;
        auto wrow = layer.w.row(o);
        for (std::size_t i = 0; i < layer.in_dim(); ++i)
          wrow[i] -= lr * d * input[i];
      }
      delta = std::move(delta_prev);
    }
  }
  return total_loss / static_cast<double>(data.size());
}

std::vector<int> Mlp::predict_batch(const Dataset& data,
                                    util::ThreadPool* pool) const {
  CIM_OBS_SPAN("nn.mlp.predict_batch", obs::Component::kDigital);
  std::vector<int> preds(data.size());
  auto body = [&](std::size_t i) { preds[i] = predict(data.features.row(i)); };
  if (pool != nullptr)
    pool->parallel_for(0, data.size(), body);
  else
    for (std::size_t i = 0; i < data.size(); ++i) body(i);
  return preds;
}

double Mlp::accuracy(const Dataset& data, util::ThreadPool* pool) const {
  if (data.size() == 0) return 0.0;
  const auto preds = predict_batch(data, pool);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (preds[i] == data.labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

void Mlp::fit(const Dataset& train, std::size_t epochs, double lr,
              util::Rng& rng, double target_acc) {
  for (std::size_t e = 0; e < epochs; ++e) {
    train_epoch(train, lr, rng);
    if (accuracy(train) >= target_acc) break;
  }
}

}  // namespace cim::nn
