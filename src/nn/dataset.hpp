/// \file dataset.hpp
/// \brief Procedurally generated 8x8 digit-classification dataset.
///
/// Substitute for the ImageNet/MNIST workloads of the accuracy-under-fault
/// studies the paper cites (Section III intro, [38]): the cited result is a
/// *trend* — classification accuracy versus stuck-at fault density — which
/// any trained classifier mapped onto crossbars reproduces. Samples are
/// noisy, jittered renderings of fixed 8x8 glyph templates for digits 0-9.
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace cim::nn {

/// A labelled dataset: `features` is (n x 64) with pixels in [0, 1].
struct Dataset {
  util::Matrix features;
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
};

/// Number of classes (digits 0..9).
inline constexpr int kClasses = 10;
/// Flattened image size (8 x 8).
inline constexpr std::size_t kPixels = 64;

/// The clean 8x8 template of a digit (row-major, values 0/1).
std::vector<double> digit_template(int digit);

/// Generates `n` samples: a random digit template, shifted by up to one
/// pixel in each direction, with Gaussian pixel noise of `noise` stddev.
Dataset generate_digits(std::size_t n, util::Rng& rng, double noise = 0.15);

}  // namespace cim::nn
