#include "nn/bnn.hpp"

#include <bit>
#include <stdexcept>

namespace cim::nn {

BitVector::BitVector(std::size_t n) : words((n + 63) / 64, 0), bits(n) {}

void BitVector::set(std::size_t i, bool v) {
  if (i >= bits) throw std::out_of_range("BitVector::set");
  const std::uint64_t mask = 1ULL << (i % 64);
  if (v)
    words[i / 64] |= mask;
  else
    words[i / 64] &= ~mask;
}

bool BitVector::get(std::size_t i) const {
  if (i >= bits) throw std::out_of_range("BitVector::get");
  return (words[i / 64] >> (i % 64)) & 1ULL;
}

BitVector binarize(std::span<const double> x) {
  BitVector b(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) b.set(i, x[i] >= 0.0);
  return b;
}

std::size_t xnor_popcount(const BitVector& a, const BitVector& b) {
  if (a.bits != b.bits) throw std::invalid_argument("xnor_popcount: size mismatch");
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.words.size(); ++w) {
    std::uint64_t x = ~(a.words[w] ^ b.words[w]);
    // Mask the tail beyond `bits` in the last word.
    if (w + 1 == a.words.size() && a.bits % 64 != 0)
      x &= (1ULL << (a.bits % 64)) - 1;
    count += static_cast<std::size_t>(std::popcount(x));
  }
  return count;
}

BinaryDense::BinaryDense(const util::Matrix& w) : in_(w.cols()) {
  if (w.empty()) throw std::invalid_argument("BinaryDense: empty weights");
  rows_.reserve(w.rows());
  for (std::size_t o = 0; o < w.rows(); ++o) {
    rows_.push_back(binarize(w.row(o)));
  }
}

std::vector<int> BinaryDense::forward(const BitVector& x) const {
  if (x.size() != in_) throw std::invalid_argument("BinaryDense: dim mismatch");
  std::vector<int> y(rows_.size());
  for (std::size_t o = 0; o < rows_.size(); ++o) {
    const auto agree = xnor_popcount(rows_[o], x);
    y[o] = 2 * static_cast<int>(agree) - static_cast<int>(in_);
  }
  return y;
}

BinaryMlp::BinaryMlp(const Mlp& mlp) {
  for (const auto& layer : mlp.layers()) layers_.emplace_back(layer.w);
}

int BinaryMlp::predict(std::span<const double> x) const {
  // Binarize the input against its mean so dark/bright images both work.
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  BitVector act(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) act.set(i, x[i] >= mean);

  std::vector<int> y;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    y = layers_[l].forward(act);
    if (l + 1 < layers_.size()) {
      act = BitVector(y.size());
      for (std::size_t i = 0; i < y.size(); ++i) act.set(i, y[i] >= 0);
    }
  }
  int best = 0;
  for (std::size_t i = 1; i < y.size(); ++i)
    if (y[i] > y[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
  return best;
}

double BinaryMlp::accuracy(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (predict(data.features.row(i)) == data.labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace cim::nn
