#include "nn/threshold_logic.hpp"

#include <stdexcept>

namespace cim::nn {

bool ThresholdGate::eval(const std::vector<bool>& x) const {
  if (x.size() != weights.size())
    throw std::invalid_argument("ThresholdGate: input size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x[i]) acc += weights[i];
  return acc >= theta;
}

ThresholdGate threshold_and(std::size_t n) {
  return {std::vector<double>(n, 1.0), static_cast<double>(n)};
}

ThresholdGate threshold_or(std::size_t n) {
  return {std::vector<double>(n, 1.0), 1.0};
}

ThresholdGate threshold_majority(std::size_t n) {
  return {std::vector<double>(n, 1.0),
          static_cast<double>(n / 2) + 1.0};
}

ThresholdGate threshold_at_least(std::size_t n, std::size_t k) {
  return {std::vector<double>(n, 1.0), static_cast<double>(k)};
}

CrossbarThresholdLayer::CrossbarThresholdLayer(
    std::vector<ThresholdGate> gates, CrossbarLinearConfig array_cfg)
    : gates_(std::move(gates)) {
  if (gates_.empty())
    throw std::invalid_argument("CrossbarThresholdLayer: no gates");
  inputs_ = gates_.front().weights.size();
  for (const auto& g : gates_)
    if (g.weights.size() != inputs_)
      throw std::invalid_argument("CrossbarThresholdLayer: ragged gates");

  // Weight matrix (gates x inputs); the VMM computes all weighted sums.
  util::Matrix w(gates_.size(), inputs_);
  for (std::size_t g = 0; g < gates_.size(); ++g)
    for (std::size_t i = 0; i < inputs_; ++i) w(g, i) = gates_[g].weights[i];
  layer_ = std::make_unique<CrossbarLinear>(w, std::vector<double>{},
                                            array_cfg);
  layer_->set_x_max(1.0);
}

std::vector<bool> CrossbarThresholdLayer::eval(const std::vector<bool>& x) {
  if (x.size() != inputs_)
    throw std::invalid_argument("CrossbarThresholdLayer: input size");
  std::vector<double> xv(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xv[i] = x[i] ? 1.0 : 0.0;
  const auto sums = layer_->forward(xv);
  std::vector<bool> y(gates_.size());
  // Sense-amp comparison: reference midway between theta-1 and theta keeps
  // the margin symmetric for integer-weight gates.
  for (std::size_t g = 0; g < gates_.size(); ++g)
    y[g] = sums[g] >= gates_[g].theta - 0.5;
  return y;
}

std::vector<bool> CrossbarThresholdLayer::eval_reference(
    const std::vector<bool>& x) const {
  std::vector<bool> y(gates_.size());
  for (std::size_t g = 0; g < gates_.size(); ++g) y[g] = gates_[g].eval(x);
  return y;
}

void ThresholdNetwork::add_layer(std::vector<ThresholdGate> gates,
                                 CrossbarLinearConfig array_cfg) {
  if (!layers_.empty() && gates.front().weights.size() != layers_.back().gates())
    throw std::invalid_argument("ThresholdNetwork: layer width mismatch");
  array_cfg.array.seed ^= 0x9e37 * (layers_.size() + 1);
  layers_.emplace_back(std::move(gates), array_cfg);
}

std::vector<bool> ThresholdNetwork::eval(const std::vector<bool>& x) {
  std::vector<bool> act = x;
  for (auto& layer : layers_) act = layer.eval(act);
  return act;
}

std::vector<bool> ThresholdNetwork::eval_reference(
    const std::vector<bool>& x) const {
  std::vector<bool> act = x;
  for (const auto& layer : layers_) act = layer.eval_reference(act);
  return act;
}

double ThresholdNetwork::energy_pj() const {
  double e = 0.0;
  for (const auto& layer : layers_) e += layer.energy_pj();
  return e;
}

ThresholdNetwork ThresholdNetwork::parity(std::size_t n,
                                          CrossbarLinearConfig array_cfg) {
  if (n == 0) throw std::invalid_argument("parity: n >= 1");
  ThresholdNetwork net;
  // Layer 1: gates "at least k of n" for k = 1..n.
  std::vector<ThresholdGate> first;
  for (std::size_t k = 1; k <= n; ++k) first.push_back(threshold_at_least(n, k));
  net.add_layer(std::move(first), array_cfg);
  // Layer 2: parity = sum_k (-1)^(k+1) [at-least-k] >= 1.
  ThresholdGate out;
  out.weights.resize(n);
  for (std::size_t k = 1; k <= n; ++k)
    out.weights[k - 1] = (k % 2 == 1) ? 1.0 : -1.0;
  out.theta = 1.0;
  net.add_layer({out}, array_cfg);
  return net;
}

}  // namespace cim::nn
