/// \file mlp.hpp
/// \brief Small multi-layer perceptron with SGD training.
///
/// Provides the trained models that get mapped onto crossbars for the
/// accuracy-versus-yield experiment (Section III) and onto FeRFET arrays
/// (Section V.D, binary networks). Deliberately minimal: dense layers,
/// ReLU, softmax cross-entropy, plain SGD.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/dataset.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cim::nn {

/// One dense layer: y = W x + b with W of shape (out x in).
struct Dense {
  util::Matrix w;
  std::vector<double> b;

  Dense(std::size_t out, std::size_t in, util::Rng& rng);

  std::size_t in_dim() const { return w.cols(); }
  std::size_t out_dim() const { return w.rows(); }

  std::vector<double> forward(std::span<const double> x) const;
};

/// Feed-forward MLP: dense layers with ReLU between them, softmax at the end.
class Mlp {
 public:
  /// `dims` = {in, hidden..., out}; at least two entries.
  Mlp(std::vector<std::size_t> dims, util::Rng& rng);

  std::size_t in_dim() const { return layers_.front().in_dim(); }
  std::size_t out_dim() const { return layers_.back().out_dim(); }
  const std::vector<Dense>& layers() const { return layers_; }
  std::vector<Dense>& layers() { return layers_; }

  /// Class scores (pre-softmax logits).
  std::vector<double> forward(std::span<const double> x) const;

  /// argmax class.
  int predict(std::span<const double> x) const;

  /// Batched argmax over every sample of `data`; samples fan out across
  /// `pool` (serial when null). forward() is pure, so the result matches
  /// per-sample predict() exactly for any thread count.
  std::vector<int> predict_batch(const Dataset& data,
                                 util::ThreadPool* pool = nullptr) const;

  /// One SGD epoch over the dataset in shuffled order; returns mean
  /// cross-entropy loss.
  double train_epoch(const Dataset& data, double lr, util::Rng& rng);

  /// Classification accuracy on a dataset; with a pool, inference batches
  /// over samples (bit-identical to the serial path).
  double accuracy(const Dataset& data, util::ThreadPool* pool = nullptr) const;

  /// Trains until `epochs` or until train accuracy reaches `target_acc`.
  void fit(const Dataset& train, std::size_t epochs, double lr, util::Rng& rng,
           double target_acc = 0.999);

 private:
  std::vector<Dense> layers_;
};

/// Numerically stable softmax.
std::vector<double> softmax(std::span<const double> logits);

}  // namespace cim::nn
