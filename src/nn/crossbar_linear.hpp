/// \file crossbar_linear.hpp
/// \brief Maps a trained dense layer onto ReRAM crossbars (Fig. 4a).
///
/// Signed weights use the standard differential-pair scheme: two crossbars
/// G+ and G- hold the positive and negative weight magnitudes; the layer
/// output is recovered from the bitline current difference
///   y_c  proportional to  I+_c - I-_c.
/// Inputs are scaled into the read-voltage range; outputs optionally pass
/// through an ADC model, making quantization error part of the inference
/// path (Section II.E).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"
#include "periphery/adc.hpp"
#include "util/matrix.hpp"
#include "util/thread_pool.hpp"

namespace cim::nn {

/// Mapping options.
struct CrossbarLinearConfig {
  crossbar::CrossbarConfig array;   ///< template; rows/cols set by the layer
  bool use_adc = false;             ///< digitize bitline currents
  int adc_bits = 8;
  bool program_verify = true;       ///< program-and-verify weight writes
};

/// A dense layer executed on a differential crossbar pair.
class CrossbarLinear {
 public:
  /// `w` has shape (out x in); bias is added digitally after readout.
  CrossbarLinear(const util::Matrix& w, std::span<const double> bias,
                 CrossbarLinearConfig cfg);

  std::size_t in_dim() const { return in_; }
  std::size_t out_dim() const { return out_; }

  /// Analog forward pass; `x` entries are expected in [0, x_max]. `tier`
  /// selects the crossbar fidelity (see crossbar/fidelity.hpp); the
  /// cheaper tiers also fuse the ADC round-trip into the readout loop.
  std::vector<double> forward(
      std::span<const double> x,
      crossbar::FidelityTier tier = crossbar::FidelityTier::kFull);

  /// Batched forward pass: row b of `x` is one sample; returns (batch x
  /// out). Rides the crossbars' `vmm_batch`, so samples fan out across
  /// `pool` (global pool when null) with bit-identical results for any
  /// thread count. Internal voltage/current buffers are reused across
  /// calls.
  util::Matrix forward_batch(
      const util::Matrix& x, util::ThreadPool* pool = nullptr,
      crossbar::FidelityTier tier = crossbar::FidelityTier::kFull);

  /// Re-programs the arrays with updated weights/bias (same shape). Stuck
  /// cells silently keep their value — the mechanism fault-tolerant
  /// retraining (ref. [38]) works around.
  void reprogram(const util::Matrix& w, std::span<const double> bias);

  /// Injects fault maps into the positive / negative arrays.
  void apply_faults(const fault::FaultMap& plus, const fault::FaultMap& minus);

  /// Convenience: same yield on both arrays with stuck-at mix.
  void apply_yield(double yield, util::Rng& rng);

  const crossbar::Crossbar& plus_array() const { return *plus_; }
  const crossbar::Crossbar& minus_array() const { return *minus_; }

  /// Total energy consumed by both arrays so far (pJ).
  double energy_pj() const;

  /// Full-scale input value mapped to v_read.
  double x_max() const { return x_max_; }
  void set_x_max(double x_max);

 private:
  std::size_t in_ = 0;
  std::size_t out_ = 0;
  CrossbarLinearConfig cfg_;
  std::unique_ptr<crossbar::Crossbar> plus_;
  std::unique_ptr<crossbar::Crossbar> minus_;
  std::vector<double> bias_;
  double w_max_ = 1.0;   ///< |W| value mapped to full conductance swing
  double x_max_ = 1.0;
  std::optional<periphery::Adc> adc_;

  // Reused batch buffers (forward_batch).
  util::Matrix batch_volts_;
  util::Matrix batch_plus_;
  util::Matrix batch_minus_;

  // Reused single-sample buffers (forward): steady-state inference does not
  // touch the allocator between the input copy and the returned logits.
  std::vector<double> volts_scratch_;
  std::vector<double> i_plus_scratch_;
  std::vector<double> i_minus_scratch_;
};

}  // namespace cim::nn
