/// \file bnn.hpp
/// \brief Binary neural network layers (XNOR-net style).
///
/// Section V.D singles out binary neural networks as the target application
/// for FeRFET CIM: "the very efficient XOR and XNOR implementation enabled
/// by the RFET base technology is suitable ... for this type of computing
/// paradigm". A BNN dense layer with weights/activations in {-1, +1}
/// computes  y_o = sum_i w_oi * x_i = 2 * popcount(XNOR(w_o, x)) - n,
/// i.e. exactly the XNOR-popcount primitive the FeRFET NOR-array executes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/mlp.hpp"

namespace cim::nn {

/// Bit-packed binary vector: bit=1 encodes +1, bit=0 encodes -1.
struct BitVector {
  std::vector<std::uint64_t> words;
  std::size_t bits = 0;

  explicit BitVector(std::size_t n = 0);
  void set(std::size_t i, bool v);
  bool get(std::size_t i) const;
  std::size_t size() const { return bits; }
};

/// Binarizes a real vector by sign (>= 0 -> +1).
BitVector binarize(std::span<const double> x);

/// popcount(XNOR(a, b)): the number of agreeing positions.
std::size_t xnor_popcount(const BitVector& a, const BitVector& b);

/// Binary dense layer: weight rows are bit-packed; output is the integer
/// dot product in {-n, ..., +n}.
class BinaryDense {
 public:
  /// Binarizes the sign pattern of a real weight matrix (out x in).
  explicit BinaryDense(const util::Matrix& w);

  std::size_t in_dim() const { return in_; }
  std::size_t out_dim() const { return rows_.size(); }
  const BitVector& weight_row(std::size_t o) const { return rows_.at(o); }

  /// Integer outputs: y_o = 2*popcount(XNOR(w_o, x)) - in_dim.
  std::vector<int> forward(const BitVector& x) const;

 private:
  std::size_t in_;
  std::vector<BitVector> rows_;
};

/// A fully binarized MLP built from a trained float MLP: every layer's sign
/// pattern is kept, activations binarize between layers, and the (real)
/// first-layer input is binarized against its mean.
class BinaryMlp {
 public:
  explicit BinaryMlp(const Mlp& mlp);

  int predict(std::span<const double> x) const;
  double accuracy(const Dataset& data) const;
  const std::vector<BinaryDense>& layers() const { return layers_; }

 private:
  std::vector<BinaryDense> layers_;
};

}  // namespace cim::nn
