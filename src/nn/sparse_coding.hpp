/// \file sparse_coding.hpp
/// \brief Sparse coding on crossbars (Section II.D.2).
///
/// "Sparse coding of information is a powerful mean to perform feature
/// extraction on high dimensional data ... Since sparse coding mainly
/// relies on bulky matrix-vector multiplication, it can directly benefit
/// from CIM to accelerate the matrix-vector multiplication."
///
/// Realization: ISTA (iterative shrinkage-thresholding) for
///     min_a 0.5 ||x - D a||^2 + lambda ||a||_1
/// with the two dominant matrix-vector products — D a (reconstruction) and
/// D^T r (correlation) — executed on crossbar pairs holding D and D^T.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "nn/crossbar_linear.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace cim::nn {

/// A sparse-coding problem instance: dictionary + synthetic sparse signals.
struct SparseProblem {
  util::Matrix dictionary;           ///< (signal_dim x atoms), unit columns
  util::Matrix signals;              ///< (n x signal_dim)
  std::vector<std::vector<double>> true_codes;  ///< ground-truth sparse codes
};

/// Generates a random unit-norm dictionary and `n` signals, each a sparse
/// combination of `sparsity` atoms plus Gaussian noise.
SparseProblem generate_sparse_problem(std::size_t signal_dim,
                                      std::size_t atoms, std::size_t n,
                                      std::size_t sparsity, double noise,
                                      util::Rng& rng);

/// ISTA configuration.
struct IstaConfig {
  std::size_t iterations = 40;
  double step = 0.2;      ///< gradient step eta
  double lambda = 0.05;   ///< l1 weight (soft threshold = step * lambda)
};

/// Result of encoding one signal.
struct SparseCode {
  std::vector<double> code;
  double reconstruction_error = 0.0;  ///< ||x - D a|| / ||x||
  std::size_t nonzeros = 0;
};

/// Sparse coder executing ISTA's matrix products on crossbars.
class CrossbarSparseCoder {
 public:
  CrossbarSparseCoder(const util::Matrix& dictionary,
                      CrossbarLinearConfig array_cfg = {});

  std::size_t signal_dim() const { return signal_dim_; }
  std::size_t atoms() const { return atoms_; }

  /// Runs ISTA on the crossbars.
  SparseCode encode(std::span<const double> x, const IstaConfig& cfg = {});

  /// Software float reference (same algorithm, exact arithmetic).
  SparseCode encode_reference(std::span<const double> x,
                              const IstaConfig& cfg = {}) const;

  /// Energy consumed by the arrays so far (pJ).
  double energy_pj() const;

 private:
  std::vector<double> reconstruct(std::span<const double> a, bool analog);
  std::vector<double> correlate(std::span<const double> r, bool analog);

  std::size_t signal_dim_;
  std::size_t atoms_;
  util::Matrix dict_;      ///< (signal_dim x atoms)
  util::Matrix dict_t_;    ///< (atoms x signal_dim)
  std::unique_ptr<CrossbarLinear> forward_;   ///< computes D a
  std::unique_ptr<CrossbarLinear> backward_;  ///< computes D^T r
};

/// Fraction of the true support recovered in the estimated code's top-k.
double support_recovery(std::span<const double> estimated,
                        std::span<const double> truth, std::size_t k);

}  // namespace cim::nn
