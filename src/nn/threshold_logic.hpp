/// \file threshold_logic.hpp
/// \brief Threshold logic on crossbars (Section II.D.3).
///
/// "A threshold gate takes n inputs (x1..xn) and generates a single output
/// y. A threshold logic has a threshold theta and each input x_i is
/// associated with a weight w_i. Since weighted sum operation is the core
/// operation involved in threshold logic, it can be easily accelerated
/// using CIM."
///
/// A gate fires iff sum_i w_i x_i >= theta. Weighted sums are evaluated on
/// a differential crossbar pair; the comparison against theta is the sense
/// amplifier's reference current. Gates compose into feed-forward threshold
/// networks (e.g. the two-level parity network in the tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/crossbar_linear.hpp"

namespace cim::nn {

/// One threshold gate: fires iff w . x >= theta.
struct ThresholdGate {
  std::vector<double> weights;
  double theta = 0.0;

  bool eval(const std::vector<bool>& x) const;
};

/// Named constructors for the classic gates.
ThresholdGate threshold_and(std::size_t n);
ThresholdGate threshold_or(std::size_t n);
ThresholdGate threshold_majority(std::size_t n);
/// Fires iff at least k of n inputs are 1.
ThresholdGate threshold_at_least(std::size_t n, std::size_t k);

/// A layer of threshold gates over a shared input, evaluated on a crossbar:
/// the weighted sums of all gates are one analog VMM; each column's sense
/// amplifier compares against that gate's theta.
class CrossbarThresholdLayer {
 public:
  explicit CrossbarThresholdLayer(std::vector<ThresholdGate> gates,
                                  CrossbarLinearConfig array_cfg = {});

  std::size_t inputs() const { return inputs_; }
  std::size_t gates() const { return gates_.size(); }

  /// Analog evaluation: VMM + per-column threshold comparison.
  std::vector<bool> eval(const std::vector<bool>& x);

  /// Exact reference.
  std::vector<bool> eval_reference(const std::vector<bool>& x) const;

  double energy_pj() const { return layer_->energy_pj(); }

 private:
  std::size_t inputs_;
  std::vector<ThresholdGate> gates_;
  std::unique_ptr<CrossbarLinear> layer_;
};

/// A feed-forward network of threshold layers (a threshold circuit).
class ThresholdNetwork {
 public:
  void add_layer(std::vector<ThresholdGate> gates,
                 CrossbarLinearConfig array_cfg = {});

  std::size_t layers() const { return layers_.size(); }

  std::vector<bool> eval(const std::vector<bool>& x);
  std::vector<bool> eval_reference(const std::vector<bool>& x) const;
  double energy_pj() const;

  /// The classic depth-2 threshold circuit for n-input parity:
  /// first layer computes "at least k" for k = 1..n, the output gate
  /// combines them with alternating +/- weights.
  static ThresholdNetwork parity(std::size_t n,
                                 CrossbarLinearConfig array_cfg = {});

 private:
  std::vector<CrossbarThresholdLayer> layers_;
};

}  // namespace cim::nn
