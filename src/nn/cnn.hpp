/// \file cnn.hpp
/// \brief A small convolutional network on crossbars.
///
/// The accuracy-under-fault study the paper cites ([38]) evaluates CNNs;
/// this module provides the in-repo equivalent: conv3x3 -> ReLU ->
/// maxpool2x2 -> dense, trained with SGD. Crossbar inference lowers the
/// convolution to im2col patches so that both the conv and the classifier
/// run as crossbar VMMs — the standard CIM mapping (ISAAC-style).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "nn/crossbar_linear.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"

namespace cim::nn {

/// 3x3 valid convolution over a single-channel square image.
struct Conv2d {
  std::size_t channels = 4;  ///< output feature maps
  std::size_t ksize = 3;
  util::Matrix w;            ///< (channels x ksize*ksize)
  std::vector<double> b;

  Conv2d(std::size_t channels, std::size_t ksize, util::Rng& rng);
};

/// conv3x3(C) -> ReLU -> maxpool2x2 -> dense(classes), for 8x8 inputs.
class SmallCnn {
 public:
  SmallCnn(std::size_t channels, util::Rng& rng);

  std::size_t channels() const { return conv_.channels; }
  const Conv2d& conv() const { return conv_; }
  const Dense& fc() const { return fc_; }

  /// Class logits for one flattened 8x8 image.
  std::vector<double> forward(std::span<const double> image) const;
  int predict(std::span<const double> image) const;
  /// With a pool, inference fans out over samples (forward is pure, so the
  /// result is identical to the serial path for any thread count).
  double accuracy(const Dataset& data, util::ThreadPool* pool = nullptr) const;

  /// One SGD epoch (backprop through pool and conv via im2col).
  double train_epoch(const Dataset& data, double lr, util::Rng& rng);
  void fit(const Dataset& data, std::size_t epochs, double lr, util::Rng& rng,
           double target_acc = 0.995);

  /// The im2col patch matrix of an image: (positions x ksize*ksize).
  static util::Matrix im2col(std::span<const double> image, std::size_t side,
                             std::size_t ksize);

 private:
  struct ForwardState;
  ForwardState forward_full(std::span<const double> image) const;

  Conv2d conv_;
  Dense fc_;
};

/// CNN inference with both the conv and the dense layer on crossbars.
class CrossbarCnn {
 public:
  CrossbarCnn(const SmallCnn& cnn, CrossbarLinearConfig array_cfg = {});

  /// The conv layer evaluates all im2col patches of the image as one
  /// crossbar `vmm_batch` — the batched-VMM hot path. `tier` selects the
  /// analog fidelity of every VMM on the path (crossbar/fidelity.hpp).
  int predict(std::span<const double> image, util::ThreadPool* pool = nullptr,
              crossbar::FidelityTier tier = crossbar::FidelityTier::kFull);
  double accuracy(const Dataset& data, util::ThreadPool* pool = nullptr,
                  crossbar::FidelityTier tier = crossbar::FidelityTier::kFull);

  /// Stuck-at fault injection on both layers' arrays.
  void apply_yield(double yield, util::Rng& rng);

  double energy_pj() const;

 private:
  std::size_t channels_;
  std::unique_ptr<CrossbarLinear> conv_layer_;  ///< (channels x 9) weights
  std::unique_ptr<CrossbarLinear> fc_layer_;
};

}  // namespace cim::nn
