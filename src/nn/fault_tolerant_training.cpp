#include "nn/fault_tolerant_training.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cim::nn {
namespace {

/// One analog forward pass returning hidden (post-ReLU) and logits.
struct AnalogForward {
  std::vector<double> hidden;
  std::vector<double> logits;
};

AnalogForward analog_forward(CrossbarLinear& l0, CrossbarLinear& l1,
                             std::span<const double> x,
                             crossbar::FidelityTier tier) {
  AnalogForward f;
  f.hidden = l0.forward(x, tier);
  for (double& v : f.hidden) v = std::max(0.0, v);
  double hmax = 1e-9;
  for (const double v : f.hidden) hmax = std::max(hmax, v);
  l1.set_x_max(hmax);
  f.logits = l1.forward(f.hidden, tier);
  return f;
}

/// The weight matrix the faulty arrays actually implement: each cell's
/// conductance target is computed as the mapping would program it, stuck
/// cells are pinned to their extreme, and the differential pair is decoded
/// back into a weight. This is the deterministic fault model the
/// fault-masked retraining of [38]/[42] trains against.
util::Matrix effective_weights(const CrossbarLinear& layer,
                               const util::Matrix& w) {
  const auto& tech = layer.plus_array().tech();
  const double g_off = tech.g_off_us();
  const double g_on = tech.g_on_us();
  const double g_range = g_on - g_off;

  double w_max = 1e-12;
  for (const double v : w.flat()) w_max = std::max(w_max, std::abs(v));

  const auto& faults_p = layer.plus_array().faults();
  const auto& faults_m = layer.minus_array().faults();

  auto pin = [&](double g, std::optional<fault::FaultDescriptor> fd) {
    if (!fd) return g;
    switch (fd->kind) {
      case fault::FaultKind::kStuckAtZero:
        return g_off;
      case fault::FaultKind::kStuckAtOne:
      case fault::FaultKind::kOverForming:
      case fault::FaultKind::kEnduranceWearout:
        return g_on;
      default:
        return g;  // soft faults average out; model only the hard pins
    }
  };

  util::Matrix w_eff(w.rows(), w.cols());
  for (std::size_t o = 0; o < w.rows(); ++o) {
    for (std::size_t i = 0; i < w.cols(); ++i) {
      const double v = w(o, i);
      const double mag = std::min(1.0, std::abs(v) / w_max);
      double gp = g_off, gm = g_off;
      if (v >= 0.0)
        gp = g_off + mag * g_range;
      else
        gm = g_off + mag * g_range;
      gp = pin(gp, faults_p.cell_fault(i, o));
      gm = pin(gm, faults_m.cell_fault(i, o));
      w_eff(o, i) = (gp - gm) * w_max / g_range;
    }
  }
  return w_eff;
}

}  // namespace

double crossbar_accuracy(CrossbarLinear& l0, CrossbarLinear& l1,
                         const Dataset& data, crossbar::FidelityTier tier) {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto f = analog_forward(l0, l1, data.features.row(i), tier);
    const int pred = static_cast<int>(
        std::max_element(f.logits.begin(), f.logits.end()) - f.logits.begin());
    if (pred == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

RetrainResult fault_tolerant_retrain(Mlp& net, CrossbarLinear& l0,
                                     CrossbarLinear& l1, const Dataset& train,
                                     const Dataset& eval,
                                     const RetrainConfig& cfg, util::Rng& rng) {
  if (net.layers().size() != 2)
    throw std::invalid_argument("fault_tolerant_retrain: expects 2 layers");
  if (net.layers()[0].in_dim() != l0.in_dim() ||
      net.layers()[0].out_dim() != l0.out_dim() ||
      net.layers()[1].in_dim() != l1.in_dim() ||
      net.layers()[1].out_dim() != l1.out_dim())
    throw std::invalid_argument("fault_tolerant_retrain: shape mismatch");

  RetrainResult res;
  res.accuracy_before = crossbar_accuracy(l0, l1, eval);

  auto& d0 = net.layers()[0];
  auto& d1 = net.layers()[1];

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto order = rng.permutation(train.size());
    for (const std::size_t idx : order) {
      const auto x = train.features.row(idx);
      const int label = train.labels[idx];

      // Deterministic fault-masked model of what the hardware would
      // implement for the *current* software weights.
      const auto w0_eff = effective_weights(l0, d0.w);
      const auto w1_eff = effective_weights(l1, d1.w);

      // Forward through the fault-masked weights.
      auto hidden = w0_eff.matvec(x);
      for (std::size_t h = 0; h < hidden.size(); ++h) hidden[h] += d0.b[h];
      for (double& v : hidden) v = std::max(0.0, v);
      auto logits = w1_eff.matvec(hidden);
      for (std::size_t o = 0; o < logits.size(); ++o) logits[o] += d1.b[o];

      auto probs = softmax(logits);
      std::vector<double> delta1 = probs;
      delta1[static_cast<std::size_t>(label)] -= 1.0;

      // Straight-through: gradients flow through the effective weights,
      // updates land on the programmable (software) weights — stuck cells
      // simply never realize their update.
      auto delta0 = w1_eff.matvec_transposed(delta1);
      for (std::size_t h = 0; h < delta0.size(); ++h)
        if (hidden[h] <= 0.0) delta0[h] = 0.0;

      for (std::size_t o = 0; o < d1.out_dim(); ++o) {
        d1.b[o] -= cfg.lr * delta1[o];
        auto wrow = d1.w.row(o);
        for (std::size_t h = 0; h < d1.in_dim(); ++h)
          wrow[h] -= cfg.lr * delta1[o] * hidden[h];
      }
      for (std::size_t h = 0; h < d0.out_dim(); ++h) {
        d0.b[h] -= cfg.lr * delta0[h];
        auto wrow = d0.w.row(h);
        for (std::size_t i = 0; i < d0.in_dim(); ++i)
          wrow[i] -= cfg.lr * delta0[h] * x[i];
      }
    }
    // Chip update: re-program the arrays; stuck cells refuse the write.
    l0.reprogram(d0.w, d0.b);
    l1.reprogram(d1.w, d1.b);
    ++res.epochs_run;
  }

  res.accuracy_after = crossbar_accuracy(l0, l1, eval);
  return res;
}

}  // namespace cim::nn
