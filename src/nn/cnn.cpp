#include "nn/cnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/kernels.hpp"

namespace cim::nn {
namespace {
constexpr std::size_t kSide = 8;        // input image side
constexpr std::size_t kConvOut = 6;     // valid conv output side
constexpr std::size_t kPoolOut = 3;     // after 2x2 max pooling
}  // namespace

Conv2d::Conv2d(std::size_t channels_, std::size_t ksize_, util::Rng& rng)
    : channels(channels_), ksize(ksize_), w(channels_, ksize_ * ksize_),
      b(channels_, 0.0) {
  const double scale = std::sqrt(2.0 / static_cast<double>(ksize_ * ksize_));
  for (double& v : w.flat()) v = rng.normal(0.0, scale);
}

util::Matrix SmallCnn::im2col(std::span<const double> image, std::size_t side,
                              std::size_t ksize) {
  if (image.size() != side * side)
    throw std::invalid_argument("im2col: image size mismatch");
  const std::size_t out = side - ksize + 1;
  util::Matrix patches(out * out, ksize * ksize);
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < out; ++c)
      for (std::size_t kr = 0; kr < ksize; ++kr)
        for (std::size_t kc = 0; kc < ksize; ++kc)
          patches(r * out + c, kr * ksize + kc) =
              image[(r + kr) * side + (c + kc)];
  return patches;
}

SmallCnn::SmallCnn(std::size_t channels, util::Rng& rng)
    : conv_(channels, 3, rng),
      fc_(kClasses, channels * kPoolOut * kPoolOut, rng) {}

struct SmallCnn::ForwardState {
  util::Matrix patches;                 // (36 x 9)
  std::vector<double> conv_pre;         // channels * 36 (pre-ReLU)
  std::vector<double> pooled;           // channels * 9
  std::vector<std::size_t> pool_argmax; // index into conv grid per pooled el
  std::vector<double> logits;
};

SmallCnn::ForwardState SmallCnn::forward_full(
    std::span<const double> image) const {
  ForwardState st;
  st.patches = im2col(image, kSide, conv_.ksize);
  const std::size_t positions = st.patches.rows();  // 36
  st.conv_pre.assign(conv_.channels * positions, 0.0);
  for (std::size_t ch = 0; ch < conv_.channels; ++ch) {
    const auto wrow = conv_.w.row(ch);
    for (std::size_t p = 0; p < positions; ++p) {
      const auto patch = st.patches.row(p);
      // kernels::dot reassociates (per-ISA accumulators): fine here — the
      // logits feed an argmax and training tolerates ulp drift. Anything
      // needing cross-ISA bit-exactness must use kernels::dot_serial.
      st.conv_pre[ch * positions + p] =
          conv_.b[ch] +
          util::kernels::dot(wrow.data(), patch.data(), patch.size());
    }
  }

  // ReLU + 2x2 max pooling over the 6x6 grid per channel.
  st.pooled.assign(conv_.channels * kPoolOut * kPoolOut, 0.0);
  st.pool_argmax.assign(st.pooled.size(), 0);
  for (std::size_t ch = 0; ch < conv_.channels; ++ch) {
    for (std::size_t pr = 0; pr < kPoolOut; ++pr) {
      for (std::size_t pc = 0; pc < kPoolOut; ++pc) {
        double best = 0.0;  // ReLU floor
        std::size_t best_idx = ch * 36 + (2 * pr) * kConvOut + 2 * pc;
        for (std::size_t dr = 0; dr < 2; ++dr) {
          for (std::size_t dc = 0; dc < 2; ++dc) {
            const std::size_t idx =
                ch * 36 + (2 * pr + dr) * kConvOut + (2 * pc + dc);
            const double v = std::max(0.0, st.conv_pre[idx]);
            if (v > best) {
              best = v;
              best_idx = idx;
            }
          }
        }
        const std::size_t out_idx = ch * kPoolOut * kPoolOut + pr * kPoolOut + pc;
        st.pooled[out_idx] = best;
        st.pool_argmax[out_idx] = best_idx;
      }
    }
  }

  st.logits = fc_.forward(st.pooled);
  return st;
}

std::vector<double> SmallCnn::forward(std::span<const double> image) const {
  return forward_full(image).logits;
}

int SmallCnn::predict(std::span<const double> image) const {
  const auto logits = forward(image);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double SmallCnn::accuracy(const Dataset& data, util::ThreadPool* pool) const {
  if (data.size() == 0) return 0.0;
  std::vector<std::uint8_t> hit(data.size(), 0);
  auto body = [&](std::size_t i) {
    hit[i] = predict(data.features.row(i)) == data.labels[i] ? 1 : 0;
  };
  if (pool != nullptr)
    pool->parallel_for(0, data.size(), body);
  else
    for (std::size_t i = 0; i < data.size(); ++i) body(i);
  std::size_t correct = 0;
  for (const auto h : hit) correct += h;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double SmallCnn::train_epoch(const Dataset& data, double lr, util::Rng& rng) {
  if (data.size() == 0) throw std::invalid_argument("train_epoch: empty data");
  double total_loss = 0.0;
  const auto order = rng.permutation(data.size());

  for (const std::size_t idx : order) {
    const auto image = data.features.row(idx);
    const int label = data.labels[idx];
    auto st = forward_full(image);

    auto probs = softmax(st.logits);
    total_loss += -std::log(std::max(1e-12, probs[static_cast<std::size_t>(label)]));
    std::vector<double> delta_fc = probs;
    delta_fc[static_cast<std::size_t>(label)] -= 1.0;

    // FC backward + update.
    auto delta_pool = fc_.w.matvec_transposed(delta_fc);
    for (std::size_t o = 0; o < fc_.out_dim(); ++o) {
      fc_.b[o] -= lr * delta_fc[o];
      auto wrow = fc_.w.row(o);
      for (std::size_t i = 0; i < fc_.in_dim(); ++i)
        wrow[i] -= lr * delta_fc[o] * st.pooled[i];
    }

    // Pool backward: the gradient routes to the argmax conv cell (and dies
    // where the ReLU floored the window to zero).
    std::vector<double> delta_conv(conv_.channels * 36, 0.0);
    for (std::size_t k = 0; k < delta_pool.size(); ++k) {
      if (st.pooled[k] <= 0.0) continue;  // ReLU-dead window
      delta_conv[st.pool_argmax[k]] += delta_pool[k];
    }

    // Conv backward: dW[ch] = sum_p delta(ch, p) * patch(p).
    for (std::size_t ch = 0; ch < conv_.channels; ++ch) {
      auto wrow = conv_.w.row(ch);
      for (std::size_t p = 0; p < 36; ++p) {
        const double d = delta_conv[ch * 36 + p];
        if (d == 0.0) continue;
        conv_.b[ch] -= lr * d;
        const auto patch = st.patches.row(p);
        for (std::size_t k = 0; k < patch.size(); ++k)
          wrow[k] -= lr * d * patch[k];
      }
    }
  }
  return total_loss / static_cast<double>(data.size());
}

void SmallCnn::fit(const Dataset& data, std::size_t epochs, double lr,
                   util::Rng& rng, double target_acc) {
  for (std::size_t e = 0; e < epochs; ++e) {
    train_epoch(data, lr, rng);
    if (accuracy(data) >= target_acc) break;
  }
}

CrossbarCnn::CrossbarCnn(const SmallCnn& cnn, CrossbarLinearConfig array_cfg)
    : channels_(cnn.channels()) {
  auto cfg_conv = array_cfg;
  cfg_conv.array.seed ^= 0xC0;
  conv_layer_ = std::make_unique<CrossbarLinear>(cnn.conv().w, cnn.conv().b,
                                                 cfg_conv);
  auto cfg_fc = array_cfg;
  cfg_fc.array.seed ^= 0xFC;
  fc_layer_ =
      std::make_unique<CrossbarLinear>(cnn.fc().w, cnn.fc().b, cfg_fc);
}

int CrossbarCnn::predict(std::span<const double> image,
                         util::ThreadPool* pool,
                         crossbar::FidelityTier tier) {
  CIM_OBS_SPAN("nn.cnn.predict", obs::Component::kArray);
  const auto patches = SmallCnn::im2col(image, kSide, 3);
  const std::size_t positions = patches.rows();

  // Conv as one batched crossbar VMM over all im2col patches (inputs are
  // pixels in [0,1]).
  conv_layer_->set_x_max(1.0);
  const auto patch_out = conv_layer_->forward_batch(patches, pool, tier);
  std::vector<double> conv_out(channels_ * positions);
  for (std::size_t p = 0; p < positions; ++p)
    for (std::size_t ch = 0; ch < channels_; ++ch)
      conv_out[ch * positions + p] = patch_out(p, ch);

  // ReLU + pool (digital periphery).
  std::vector<double> pooled(channels_ * kPoolOut * kPoolOut, 0.0);
  for (std::size_t ch = 0; ch < channels_; ++ch)
    for (std::size_t pr = 0; pr < kPoolOut; ++pr)
      for (std::size_t pc = 0; pc < kPoolOut; ++pc) {
        double best = 0.0;
        for (std::size_t dr = 0; dr < 2; ++dr)
          for (std::size_t dc = 0; dc < 2; ++dc)
            best = std::max(best,
                            conv_out[ch * 36 + (2 * pr + dr) * kConvOut +
                                     (2 * pc + dc)]);
        pooled[ch * kPoolOut * kPoolOut + pr * kPoolOut + pc] = best;
      }

  double pmax = 1e-9;
  for (const double v : pooled) pmax = std::max(pmax, v);
  fc_layer_->set_x_max(pmax);
  const auto logits = fc_layer_->forward(pooled, tier);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double CrossbarCnn::accuracy(const Dataset& data, util::ThreadPool* pool,
                             crossbar::FidelityTier tier) {
  if (data.size() == 0) return 0.0;
  // Samples stay serial (the arrays are stateful); the per-sample conv
  // batch fans out over the pool.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (predict(data.features.row(i), pool, tier) == data.labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

void CrossbarCnn::apply_yield(double yield, util::Rng& rng) {
  conv_layer_->apply_yield(yield, rng);
  fc_layer_->apply_yield(yield, rng);
}

double CrossbarCnn::energy_pj() const {
  return conv_layer_->energy_pj() + fc_layer_->energy_pj();
}

}  // namespace cim::nn
