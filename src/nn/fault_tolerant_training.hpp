/// \file fault_tolerant_training.hpp
/// \brief Fault-tolerant (re)training with known faults — the recovery half
///        of Xia et al., DAC'17 [38] ("Fault-tolerant training with on-line
///        fault detection for RRAM-based neural computing systems").
///
/// Chip-in-the-loop retraining for a two-layer MLP mapped onto crossbars:
/// the forward pass runs through the *faulty analog arrays*, gradients are
/// computed with the software weight copies (the standard approximation),
/// and updated weights are re-programmed each epoch — stuck cells simply
/// refuse the write, so the surviving cells learn to compensate.
#pragma once

#include <cstddef>

#include "nn/crossbar_linear.hpp"
#include "nn/mlp.hpp"

namespace cim::nn {

/// Retraining hyperparameters.
struct RetrainConfig {
  std::size_t epochs = 10;
  double lr = 0.02;
};

/// Accuracy before/after retraining (measured through the faulty arrays).
struct RetrainResult {
  double accuracy_before = 0.0;
  double accuracy_after = 0.0;
  std::size_t epochs_run = 0;
};

/// Classification accuracy of a 2-layer crossbar-mapped network: layer0 ->
/// ReLU -> layer1 -> argmax (hidden activations rescaled into layer1's
/// input range). `tier` selects the analog fidelity of every VMM on the
/// path (crossbar/fidelity.hpp).
double crossbar_accuracy(
    CrossbarLinear& l0, CrossbarLinear& l1, const Dataset& data,
    crossbar::FidelityTier tier = crossbar::FidelityTier::kFull);

/// Retrains `net` (must be a 2-layer MLP matching l0/l1 shapes) through the
/// faulty arrays. `net`'s software weights are updated in place and
/// re-programmed into the arrays each epoch.
RetrainResult fault_tolerant_retrain(Mlp& net, CrossbarLinear& l0,
                                     CrossbarLinear& l1, const Dataset& train,
                                     const Dataset& eval,
                                     const RetrainConfig& cfg, util::Rng& rng);

}  // namespace cim::nn
