#include "nn/crossbar_linear.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace cim::nn {

CrossbarLinear::CrossbarLinear(const util::Matrix& w,
                               std::span<const double> bias,
                               CrossbarLinearConfig cfg)
    : in_(w.cols()), out_(w.rows()), cfg_(cfg),
      bias_(bias.begin(), bias.end()) {
  if (w.empty()) throw std::invalid_argument("CrossbarLinear: empty weights");
  if (!bias_.empty() && bias_.size() != out_)
    throw std::invalid_argument("CrossbarLinear: bias size mismatch");
  if (bias_.empty()) bias_.assign(out_, 0.0);

  cfg_.array.rows = in_;
  cfg_.array.cols = out_;
  cfg_.array.verified_writes = cfg_.program_verify;
  plus_ = std::make_unique<crossbar::Crossbar>(cfg_.array);
  auto minus_cfg = cfg_.array;
  minus_cfg.seed ^= 0x5bd1e995u;  // independent stochastic stream
  minus_ = std::make_unique<crossbar::Crossbar>(minus_cfg);

  reprogram(w, bias);

  if (cfg_.use_adc) {
    // Full scale: all `in_` cells at g_on conducting at v_read.
    const auto& tech = plus_->tech();
    const double full_scale =
        tech.v_read * tech.g_on_us() * static_cast<double>(in_);
    adc_.emplace(periphery::AdcConfig{.bits = cfg_.adc_bits,
                                      .kind = periphery::AdcKind::kSar,
                                      .sample_rate_gsps = 1.28,
                                      .full_scale_ua = full_scale});
  }
}

void CrossbarLinear::reprogram(const util::Matrix& w,
                               std::span<const double> bias) {
  if (w.rows() != out_ || w.cols() != in_)
    throw std::invalid_argument("reprogram: weight shape mismatch");
  if (!bias.empty()) {
    if (bias.size() != out_)
      throw std::invalid_argument("reprogram: bias size mismatch");
    bias_.assign(bias.begin(), bias.end());
  }

  w_max_ = 1e-12;
  for (double v : w.flat()) w_max_ = std::max(w_max_, std::abs(v));

  const auto& tech = plus_->tech();
  const double g_off = tech.g_off_us();
  const double g_range = tech.g_on_us() - g_off;

  util::Matrix g_plus(in_, out_, g_off);
  util::Matrix g_minus(in_, out_, g_off);
  for (std::size_t o = 0; o < out_; ++o) {
    for (std::size_t i = 0; i < in_; ++i) {
      const double v = w(o, i);
      const double mag = std::min(1.0, std::abs(v) / w_max_);
      if (v >= 0.0)
        g_plus(i, o) = g_off + mag * g_range;
      else
        g_minus(i, o) = g_off + mag * g_range;
    }
  }
  plus_->program_conductances(g_plus);
  minus_->program_conductances(g_minus);
}

void CrossbarLinear::set_x_max(double x_max) {
  if (x_max <= 0.0) throw std::invalid_argument("set_x_max: x_max > 0");
  x_max_ = x_max;
}

std::vector<double> CrossbarLinear::forward(std::span<const double> x,
                                            crossbar::FidelityTier tier) {
  if (x.size() != in_) throw std::invalid_argument("CrossbarLinear: dim mismatch");
  CIM_OBS_SPAN("nn.linear.forward", obs::Component::kArray);
  const auto& tech = plus_->tech();
  const double v_read = tech.v_read;

  volts_scratch_.resize(in_);
  auto& volts = volts_scratch_;
  for (std::size_t i = 0; i < in_; ++i)
    volts[i] = std::clamp(x[i] / x_max_, 0.0, 1.0) * v_read;

  i_plus_scratch_.resize(out_);
  i_minus_scratch_.resize(out_);
  auto& i_plus = i_plus_scratch_;
  auto& i_minus = i_minus_scratch_;
  plus_->vmm(volts, i_plus, tier);
  minus_->vmm(volts, i_minus, tier);

  // Undo the conductance/voltage scaling:
  //   I+ - I- = sum_i v_i * (w_i / w_max) * g_range
  //           = (v_read / x_max) * (g_range / w_max) * sum_i x_i w_i
  const double g_range = tech.g_on_us() - tech.g_off_us();
  const double scale = w_max_ * x_max_ / (v_read * g_range);

  std::vector<double> y(out_);
  if (tier != crossbar::FidelityTier::kFull && adc_) {
    // Fast tiers fuse the ADC round-trip into the readout loop: one pass
    // over the currents instead of a quantize pass plus a combine pass.
    // Same per-element math as the staged path below.
    for (std::size_t o = 0; o < out_; ++o) {
      const double ip = adc_->dequantize(adc_->quantize(i_plus[o]));
      const double im = adc_->dequantize(adc_->quantize(i_minus[o]));
      y[o] = (ip - im) * scale + bias_[o];
    }
    return y;
  }
  if (adc_) {
    for (auto* vec : {&i_plus, &i_minus})
      for (double& i : *vec) i = adc_->dequantize(adc_->quantize(i));
  }
  for (std::size_t o = 0; o < out_; ++o)
    y[o] = (i_plus[o] - i_minus[o]) * scale + bias_[o];
  return y;
}

util::Matrix CrossbarLinear::forward_batch(const util::Matrix& x,
                                           util::ThreadPool* pool,
                                           crossbar::FidelityTier tier) {
  if (x.cols() != in_)
    throw std::invalid_argument("CrossbarLinear: dim mismatch");
  CIM_OBS_SPAN("nn.linear.forward_batch", obs::Component::kArray);
  const std::size_t batch = x.rows();
  const auto& tech = plus_->tech();
  const double v_read = tech.v_read;

  if (batch_volts_.rows() != batch || batch_volts_.cols() != in_)
    batch_volts_ = util::Matrix(batch, in_);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto xi = x.row(b);
    auto vi = batch_volts_.row(b);
    for (std::size_t i = 0; i < in_; ++i)
      vi[i] = std::clamp(xi[i] / x_max_, 0.0, 1.0) * v_read;
  }

  plus_->vmm_batch(batch_volts_, batch_plus_, pool, tier);
  minus_->vmm_batch(batch_volts_, batch_minus_, pool, tier);

  const double g_range = tech.g_on_us() - tech.g_off_us();
  const double scale = w_max_ * x_max_ / (v_read * g_range);

  util::Matrix y(batch, out_);
  if (tier != crossbar::FidelityTier::kFull && adc_) {
    // Fused ADC round-trip (see forward()): one pass per sample.
    for (std::size_t b = 0; b < batch; ++b) {
      const auto ip = batch_plus_.row(b);
      const auto im = batch_minus_.row(b);
      auto yb = y.row(b);
      for (std::size_t o = 0; o < out_; ++o) {
        const double p = adc_->dequantize(adc_->quantize(ip[o]));
        const double m = adc_->dequantize(adc_->quantize(im[o]));
        yb[o] = (p - m) * scale + bias_[o];
      }
    }
    return y;
  }
  if (adc_) {
    for (auto* m : {&batch_plus_, &batch_minus_})
      for (double& i : m->flat()) i = adc_->dequantize(adc_->quantize(i));
  }
  for (std::size_t b = 0; b < batch; ++b) {
    const auto ip = batch_plus_.row(b);
    const auto im = batch_minus_.row(b);
    auto yb = y.row(b);
    for (std::size_t o = 0; o < out_; ++o)
      yb[o] = (ip[o] - im[o]) * scale + bias_[o];
  }
  return y;
}

void CrossbarLinear::apply_faults(const fault::FaultMap& plus,
                                  const fault::FaultMap& minus) {
  plus_->apply_faults(plus);
  minus_->apply_faults(minus);
}

void CrossbarLinear::apply_yield(double yield, util::Rng& rng) {
  const auto mix = fault::FaultMix::stuck_at_only();
  apply_faults(fault::FaultMap::from_yield(in_, out_, yield, mix, rng),
               fault::FaultMap::from_yield(in_, out_, yield, mix, rng));
}

double CrossbarLinear::energy_pj() const {
  return plus_->stats().energy_pj + minus_->stats().energy_pj;
}

}  // namespace cim::nn
