/// \file tile_pool.hpp
/// \brief Pool of replicated CIM tile systems — the serving backend the
///        memory controller routes requests onto.
///
/// One pool serves one programmed weight matrix (a dense classifier layer /
/// VMM operand); each replica is a complete `core::CimSystem` (tile grid +
/// periphery) with its own independent RNG streams, so replicas execute
/// concurrently on the thread pool without sharing mutable state — the
/// CIMFlow-style request -> tile dispatch abstraction.
///
/// The pool also derives the per-replica **health scores** wear/drift-aware
/// routing consumes: a normalized scalar folding endurance wear (writes),
/// disturb events, in-field wear-outs and accumulated |drift| read from the
/// arrays' `obs::HealthMonitor`s (PR 5). Scores are read at controller-run
/// granularity; successive runs therefore see the health the previous
/// traffic epoch produced (HybridSim's aging-aware scheduling shape).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cim_system.hpp"
#include "util/matrix.hpp"

namespace cim::serve {

struct TilePoolConfig {
  std::size_t replicas = 4;
  core::CimSystemConfig system{};  ///< template for every replica
  /// Base seed; replica r derives its device randomness from counter
  /// sub-stream r, so the pool is reproducible and replicas independent.
  std::uint64_t seed = 99;
};

class TilePool {
 public:
  /// Programs `w_int` (out x in) onto every replica.
  TilePool(const util::Matrix& w_int, TilePoolConfig cfg);

  std::size_t size() const { return replicas_.size(); }
  core::CimSystem& replica(std::size_t i) { return *replicas_.at(i); }
  const core::CimSystem& replica(std::size_t i) const {
    return *replicas_.at(i);
  }

  std::size_t in_dim() const { return replicas_.front()->in_dim(); }
  std::size_t out_dim() const { return replicas_.front()->out_dim(); }

  /// Per-request service latency (ns) for `input_bits`-bit inputs —
  /// identical across replicas (same geometry), data-independent.
  double request_latency_ns(int input_bits) const {
    return replicas_.front()->request_latency_ns(input_bits);
  }

  /// Bit-serial / digital-reduce split of request_latency_ns (the two
  /// service components of the per-request latency decomposition).
  core::CimSystem::RequestLatencyParts request_latency_parts(
      int input_bits) const {
    return replicas_.front()->request_latency_parts(input_bits);
  }

  /// Health score per replica, normalized to [0, 1] by the worst replica
  /// (all zeros when no replica has any recorded health events). Raw score
  /// = writes + disturbs + sum |drift| (uS) + 100 * worn-out cells, summed
  /// over both arrays of every tile: a monotone "how consumed is this
  /// resource" proxy, not a lifetime model.
  std::vector<double> health_scores() const;

 private:
  std::vector<std::unique_ptr<core::CimSystem>> replicas_;
};

}  // namespace cim::serve
