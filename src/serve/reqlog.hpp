/// \file reqlog.hpp
/// \brief `cim-reqlog-v1`: crash-safe JSONL export of a serving run's
///        per-request lifecycle records, and its parser.
///
/// The reqlog is the serving layer's post-hoc analysis substrate: one JSON
/// object per line — a versioned header, then every completion (timing
/// triple + exact latency decomposition, no result payloads) and every
/// rejection, both sorted by request id. Doubles are printed with %.17g so
/// a parse -> dump round trip is byte-identical (the fixpoint the format
/// tests gate); the file itself is written via `obs::write_file_atomic`,
/// so an interrupted run never leaves a truncated log. `tools/cim_reqlog`
/// turns a reqlog into decomposition tables and top-k slow-request
/// attribution.
///
/// Caveat: request ids round-trip through the JSON number domain and are
/// therefore exact only below 2^53 — far beyond any simulated stream, but
/// a contract worth stating.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/controller.hpp"
#include "serve/request.hpp"

namespace cim::serve {

/// Parsed reqlog: completions carry every dumped field (results are not
/// logged, so `result` is empty and `batch_size`/`replica` are as dumped).
struct ReqLog {
  std::vector<Completion> completions;  ///< sorted by id
  std::vector<Rejection> rejections;    ///< sorted by id
};

/// Streams the cim-reqlog-v1 text for `report` (header + one line per
/// completion, then per rejection, both in id order).
void write_reqlog(std::ostream& os, const ServeReport& report);

/// Crash-safe file export (temp + rename). Returns false on I/O failure.
bool write_reqlog_file(const std::string& path, const ServeReport& report);

/// Parses a cim-reqlog-v1 stream. Tolerates CRLF line endings, trailing
/// whitespace and blank lines; throws std::runtime_error with a 1-based
/// line number on malformed input.
ReqLog read_reqlog(std::istream& is);
ReqLog read_reqlog_file(const std::string& path);

/// Re-dumps a parsed reqlog (the fixpoint side: dump(parse(x)) == x for
/// any dump-produced x).
void write_reqlog(std::ostream& os, const ReqLog& log);

/// Env hook: writes the reqlog to CIM_OBS_REQLOG_FILE when set and
/// telemetry is enabled (CIM_OBS). Called at the end of Controller::run.
void export_reqlog_if_requested(const ServeReport& report);

}  // namespace cim::serve
