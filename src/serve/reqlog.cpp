#include "serve/reqlog.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace cim::serve {

namespace {

constexpr const char* kHeaderFormat = "cim-reqlog-v1";

/// %.17g: shortest-or-exact round trip for IEEE doubles — the fixpoint
/// contract of the format (and of cim-trace-v1, trace_io.cpp).
void num(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void write_completion_line(std::ostream& os, const Completion& c) {
  os << "{\"event\":\"done\",\"id\":" << c.id << ",\"kind\":\""
     << kind_name(c.kind) << "\",\"tier\":\"" << crossbar::tier_name(c.tier)
     << "\",\"escalated\":" << (c.escalated ? "true" : "false")
     << ",\"replica\":" << c.replica << ",\"batch\":" << c.batch_size
     << ",\"label\":" << c.label;
  const std::pair<const char*, double> fields[] = {
      {"arrival_ns", c.arrival_ns},       {"dispatch_ns", c.dispatch_ns},
      {"done_ns", c.done_ns},             {"batch_wait_ns", c.batch_wait_ns},
      {"queue_wait_ns", c.queue_wait_ns}, {"issue_wait_ns", c.issue_wait_ns},
      {"bitserial_ns", c.bitserial_ns},   {"reduce_ns", c.reduce_ns}};
  for (const auto& [k, v] : fields) {
    os << ",\"" << k << "\":";
    num(os, v);
  }
  os << "}\n";
}

void write_rejection_line(std::ostream& os, const Rejection& r) {
  os << "{\"event\":\"rejected\",\"id\":" << r.id << ",\"kind\":\""
     << kind_name(r.kind) << "\",\"arrival_ns\":";
  num(os, r.arrival_ns);
  os << "}\n";
}

void write_lines(std::ostream& os, const std::vector<Completion>& completions,
                 const std::vector<Rejection>& rejections) {
  os << "{\"format\":\"" << kHeaderFormat
     << "\",\"completions\":" << completions.size()
     << ",\"rejections\":" << rejections.size() << "}\n";
  for (const Completion& c : completions) write_completion_line(os, c);
  for (const Rejection& r : rejections) write_rejection_line(os, r);
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("cim-reqlog-v1: line " + std::to_string(line_no) +
                           ": " + what);
}

double get_num(const obs::json::Value& v, const char* key,
               std::size_t line_no) {
  if (!v.contains(key)) fail(line_no, std::string("missing '") + key + "'");
  return v.at(key).as_number();
}

RequestKind parse_kind(const std::string& s, std::size_t line_no) {
  if (s == "vmm") return RequestKind::kVmm;
  if (s == "infer") return RequestKind::kInference;
  fail(line_no, "unknown kind '" + s + "'");
}

crossbar::FidelityTier parse_tier(const std::string& s, std::size_t line_no) {
  if (s == "full") return crossbar::FidelityTier::kFull;
  if (s == "calibrated") return crossbar::FidelityTier::kCalibrated;
  if (s == "ideal") return crossbar::FidelityTier::kIdeal;
  fail(line_no, "unknown tier '" + s + "'");
}

}  // namespace

void write_reqlog(std::ostream& os, const ServeReport& report) {
  write_lines(os, report.completions, report.rejections);
}

void write_reqlog(std::ostream& os, const ReqLog& log) {
  write_lines(os, log.completions, log.rejections);
}

bool write_reqlog_file(const std::string& path, const ServeReport& report) {
  return obs::write_file_atomic(
      path, [&](std::ostream& os) { write_reqlog(os, report); });
}

ReqLog read_reqlog(std::istream& is) {
  ReqLog log;
  std::string line;
  std::size_t line_no = 0;
  bool seen_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    // Tolerate CRLF line endings and trailing whitespace: reqlogs survive
    // transfer through windows editors and clipboard round trips.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
      line.pop_back();
    if (line.empty()) continue;
    obs::json::Value v;
    try {
      v = obs::json::parse(line);
    } catch (const std::exception& e) {
      fail(line_no, e.what());
    }
    if (!v.is_object()) fail(line_no, "expected a JSON object");
    if (!seen_header) {
      if (!v.contains("format") || v.at("format").as_string() != kHeaderFormat)
        fail(line_no, std::string("expected header {\"format\":\"") +
                          kHeaderFormat + "\"}");
      seen_header = true;
      continue;
    }
    if (!v.contains("event")) fail(line_no, "missing 'event'");
    const std::string& event = v.at("event").as_string();
    if (event == "done") {
      Completion c;
      c.id = static_cast<std::uint64_t>(get_num(v, "id", line_no));
      c.kind = parse_kind(v.at("kind").as_string(), line_no);
      c.tier = parse_tier(v.at("tier").as_string(), line_no);
      c.escalated = v.contains("escalated") && v.at("escalated").as_bool();
      c.replica = static_cast<std::size_t>(get_num(v, "replica", line_no));
      c.batch_size = static_cast<std::size_t>(get_num(v, "batch", line_no));
      c.label = static_cast<int>(get_num(v, "label", line_no));
      c.arrival_ns = get_num(v, "arrival_ns", line_no);
      c.dispatch_ns = get_num(v, "dispatch_ns", line_no);
      c.done_ns = get_num(v, "done_ns", line_no);
      c.batch_wait_ns = get_num(v, "batch_wait_ns", line_no);
      c.queue_wait_ns = get_num(v, "queue_wait_ns", line_no);
      c.issue_wait_ns = get_num(v, "issue_wait_ns", line_no);
      c.bitserial_ns = get_num(v, "bitserial_ns", line_no);
      c.reduce_ns = get_num(v, "reduce_ns", line_no);
      log.completions.push_back(std::move(c));
    } else if (event == "rejected") {
      Rejection r;
      r.id = static_cast<std::uint64_t>(get_num(v, "id", line_no));
      r.kind = parse_kind(v.at("kind").as_string(), line_no);
      r.arrival_ns = get_num(v, "arrival_ns", line_no);
      log.rejections.push_back(r);
    } else {
      fail(line_no, "unknown event '" + event + "'");
    }
  }
  if (!seen_header) fail(line_no == 0 ? 1 : line_no, "empty reqlog (no header)");
  return log;
}

ReqLog read_reqlog_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("cim-reqlog-v1: cannot open '" + path + "'");
  return read_reqlog(f);
}

void export_reqlog_if_requested(const ServeReport& report) {
  if (!obs::enabled()) return;
  if (const char* path = std::getenv("CIM_OBS_REQLOG_FILE");
      path != nullptr && *path != '\0')
    write_reqlog_file(path, report);
}

}  // namespace cim::serve
