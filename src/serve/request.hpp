/// \file request.hpp
/// \brief Open-loop serving vocabulary: the request a traffic source emits
///        and the completion record the memory controller produces.
///
/// Every bench before PR 8 was a closed loop over one workload; the serving
/// layer (ROADMAP item 1) instead models *traffic*: an open-loop stream of
/// timestamped requests (Poisson / MMPP arrivals or a replayed trace file,
/// serve/traffic.hpp) feeding a CIM memory controller
/// (serve/controller.hpp) that queues, coalesces and dispatches them onto a
/// pool of tile replicas. All timestamps are **simulated** nanoseconds on
/// the same clock the tiles account their bit-serial cycles in, so latency
/// distributions are bit-identical for any host speed and thread count —
/// the repo-wide determinism contract extended to queueing.
#pragma once

#include <cstdint>
#include <vector>

#include "crossbar/fidelity.hpp"

namespace cim::serve {

/// What the requester wants back. Both kinds execute the same tile-grid
/// VMM; an inference request additionally reduces the logits to an argmax
/// class digitally (the Mlp-forward contract of a dense classifier layer).
enum class RequestKind : int {
  kVmm = 0,        ///< raw integer VMM: result = output vector
  kInference = 1,  ///< classifier forward: result = logits + argmax label
};

constexpr const char* kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::kVmm: return "vmm";
    case RequestKind::kInference: return "infer";
  }
  return "unknown";
}

/// One open-loop request, timestamped in simulated ns.
struct Request {
  std::uint64_t id = 0;
  double arrival_ns = 0.0;
  RequestKind kind = RequestKind::kVmm;
  int input_bits = 4;  ///< bit-serial input precision (1..16)
  /// Fidelity the requester asked for; the controller may escalate a
  /// kFull request to kCalibrated under overload (load shedding).
  crossbar::FidelityTier tier = crossbar::FidelityTier::kFull;
  std::vector<std::uint32_t> input;  ///< length = pool in_dim
};

/// Per-request completion record: the timing triple the SLO metrics are
/// derived from, the exact lifecycle latency decomposition, and the
/// executed result. The request id doubles as the trace id: it is the flow
/// id of the Chrome-trace arrows and the join key of the reqlog.
struct Completion {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kVmm;
  double arrival_ns = 0.0;
  double dispatch_ns = 0.0;  ///< batch issue time on the serving tile
  double done_ns = 0.0;      ///< bit-serial execution finished
  std::size_t replica = 0;   ///< tile replica that served the request
  std::size_t batch_size = 0;  ///< size of the coalesced batch it rode in
  crossbar::FidelityTier tier = crossbar::FidelityTier::kFull;  ///< as served
  bool escalated = false;    ///< tier downgraded by overload shedding
  std::vector<long> result;  ///< VMM output / logits
  int label = -1;            ///< argmax class (kInference only)

  /// Exact latency decomposition (simulated ns). The controller constructs
  /// `done_ns = arrival_ns + decomposition_sum()`, so the five components
  /// sum to the end-to-end latency **bitwise**, per request:
  ///  - batch_wait_ns: arrival -> batch seal (size-or-deadline coalescing);
  ///  - queue_wait_ns: seal -> own service start (replica backlog plus the
  ///    in-batch serialization behind earlier batch members);
  ///  - issue_wait_ns: the full per-dispatch issue overhead this request
  ///    sat through; its *amortized* share is issue_wait_ns / batch_size
  ///    (what aggregate attribution reports — the batching win);
  ///  - bitserial_ns: own worst-tile bit-serial array+ADC time;
  ///  - reduce_ns: own digital reduction-tree transfer time.
  double batch_wait_ns = 0.0;
  double queue_wait_ns = 0.0;
  double issue_wait_ns = 0.0;
  double bitserial_ns = 0.0;
  double reduce_ns = 0.0;

  double latency_ns() const { return done_ns - arrival_ns; }
  double queue_ns() const { return dispatch_ns - arrival_ns; }
  /// Left-to-right sum, the exact construction order of done_ns.
  double decomposition_sum() const {
    return ((((batch_wait_ns + queue_wait_ns) + issue_wait_ns) +
             bitserial_ns) +
            reduce_ns);
  }
};

/// A request shed at admission (queue over capacity): the only lifecycle
/// record a rejected request leaves.
struct Rejection {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kVmm;
  double arrival_ns = 0.0;
};

}  // namespace cim::serve
