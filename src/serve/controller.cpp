#include "serve/controller.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/prom.hpp"
#include "obs/trace_events.hpp"
#include "serve/reqlog.hpp"

namespace cim::serve {

namespace {

/// Latency histogram bounds (ns): geometric 2x ladder from 250 ns to ~4 ms,
/// wide enough for sub-us tile service times and deep overload queues.
std::vector<double> latency_bounds() {
  std::vector<double> b;
  for (double v = 250.0; v <= 4.0e6; v *= 2.0) b.push_back(v);
  return b;
}

/// Exact q-quantile of a sorted sample (nearest-rank; the per-request
/// records are all in hand, unlike the scrape-side histogram estimate).
double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

int argmax_label(const std::vector<long>& logits) {
  if (logits.empty()) return -1;
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

/// One flushed batch: everything phase 2 needs to execute it and the
/// request indices whose completions it fills.
struct PlannedBatch {
  std::size_t replica = 0;
  int input_bits = 4;
  crossbar::FidelityTier tier = crossbar::FidelityTier::kFull;
  std::vector<std::size_t> members;  ///< indices into the request span
};

/// Batch-coalescing queue for one (input_bits, requested tier) class.
struct PendingClass {
  std::vector<std::size_t> members;
  double oldest_arrival_ns = 0.0;
};

/// One sealed batch's controller decision, kept for the flight recorder
/// (the "what did the controller do right before the breach" half of the
/// post-mortem ring).
struct BatchDecision {
  double seal_ns = 0.0;   ///< flush time (size or deadline trigger)
  double start_ns = 0.0;  ///< dispatch start on the chosen replica
  std::size_t replica = 0;
  std::size_t size = 0;
  int input_bits = 4;
  crossbar::FidelityTier tier = crossbar::FidelityTier::kFull;
  bool escalated = false;
};

std::string flight_completion_line(const Completion& c) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"event\":\"done\",\"id\":%llu,\"replica\":%zu,"
                "\"batch\":%zu,\"tier\":\"%s\",\"arrival_ns\":%.17g,"
                "\"done_ns\":%.17g,\"latency_ns\":%.17g,\"queue_wait_ns\":"
                "%.17g}",
                static_cast<unsigned long long>(c.id), c.replica, c.batch_size,
                crossbar::tier_name(c.tier), c.arrival_ns, c.done_ns,
                c.latency_ns(), c.queue_wait_ns);
  return buf;
}

std::string flight_rejection_line(const Rejection& r) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "{\"event\":\"rejected\",\"id\":%llu,\"arrival_ns\":%.17g}",
                static_cast<unsigned long long>(r.id), r.arrival_ns);
  return buf;
}

std::string flight_batch_line(const BatchDecision& b) {
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "{\"event\":\"batch\",\"seal_ns\":%.17g,\"start_ns\":%.17g,"
                "\"replica\":%zu,\"size\":%zu,\"bits\":%d,\"tier\":\"%s\","
                "\"escalated\":%s}",
                b.seal_ns, b.start_ns, b.replica, b.size, b.input_bits,
                crossbar::tier_name(b.tier), b.escalated ? "true" : "false");
  return buf;
}

}  // namespace

Controller::Controller(TilePool& pool, ControllerConfig cfg)
    : pool_(pool), cfg_(cfg) {
  if (cfg_.max_batch == 0)
    throw std::invalid_argument("Controller: max_batch must be >= 1");
  if (cfg_.queue_capacity == 0)
    throw std::invalid_argument("Controller: queue_capacity must be >= 1");
  obs::maybe_start_prometheus_from_env();
}

ServeReport Controller::run(std::span<const Request> requests,
                            util::ThreadPool* tp) {
  auto& reg = obs::Registry::global();
  auto& m_requests = reg.counter("serve.requests");
  auto& m_rejected = reg.counter("serve.rejected");
  auto& m_dispatches = reg.counter("serve.dispatches");
  auto& m_escalated = reg.counter("serve.escalated");
  static const std::vector<double> kLatencyBounds = latency_bounds();
  auto& m_latency = reg.histogram("serve.latency_ns", kLatencyBounds);
  auto& m_batch_wait = reg.histogram("serve.batch_wait_ns", kLatencyBounds);
  auto& m_queue_wait = reg.histogram("serve.queue_wait_ns", kLatencyBounds);
  auto& g_queue = reg.gauge("serve.queue_depth");
  auto& g_inflight = reg.gauge("serve.inflight");

  const std::size_t n = requests.size();
  const std::size_t replicas = pool_.size();

  ServeReport report;
  report.stats.offered = n;
  report.stats.per_replica_requests.assign(replicas, 0);
  report.stats.per_replica_utilization.assign(replicas, 0.0);
  if (n == 0) return report;

  // ---- Phase 1: serial event-driven schedule (simulated time) -------------
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (requests[a].arrival_ns != requests[b].arrival_ns)
      return requests[a].arrival_ns < requests[b].arrival_ns;
    return requests[a].id < requests[b].id;
  });

  // Health scores are read once per run: routing reacts to the wear the
  // previous traffic epochs produced, not to in-flight execution.
  std::vector<double> health(replicas, 0.0);
  if (cfg_.routing == RoutingPolicy::kWearAware) health = pool_.health_scores();

  std::vector<Completion> completions(n);
  std::vector<char> completed(n, 0);
  std::vector<PlannedBatch> plan;
  std::vector<double> busy_until(replicas, 0.0);
  std::vector<double> busy_ns(replicas, 0.0);

  // Coalescing state: one queue per compatibility class, deterministic
  // iteration via std::map ordering.
  std::map<std::pair<int, int>, PendingClass> pending;
  std::size_t pending_total = 0;

  // Occupancy tracking. A dispatched request still *queues* until its
  // batch's start time (it sits in the chosen replica's backlog), then is
  // *in flight* until its done time. Queue depth — the quantity admission
  // control and tier escalation react to — is therefore
  // pending (coalescing) + dispatched-but-unstarted.
  using MinHeap =
      std::priority_queue<double, std::vector<double>, std::greater<>>;
  MinHeap start_heap;  ///< batch start times of dispatched requests
  MinHeap done_heap;   ///< completion times of dispatched requests
  auto queue_depth_now = [&]() { return pending_total + start_heap.size(); };
  // Executing = started but not done (done implies started, so the heap
  // sizes difference counts exactly the in-service requests).
  auto inflight_now = [&]() { return done_heap.size() - start_heap.size(); };

  std::size_t rejected = 0;
  std::size_t escalated = 0;
  std::size_t dispatches = 0;
  double queue_depth_sum = 0.0;
  double inflight_sum = 0.0;
  std::size_t samples = 0;
  std::size_t max_queue_depth = 0;

  auto sample_occupancy = [&]() {
    const std::size_t depth = queue_depth_now();
    queue_depth_sum += static_cast<double>(depth);
    inflight_sum += static_cast<double>(inflight_now());
    max_queue_depth = std::max(max_queue_depth, depth);
    ++samples;
  };
  // Advances the occupancy clock to `now`, taking a sample at every
  // completion event on the way: arrival-only sampling never observes the
  // drain intervals between bursts and biases MMPP occupancy low.
  auto advance_to = [&](double now) {
    while (!done_heap.empty() && done_heap.top() <= now) {
      const double t = done_heap.top();
      while (!start_heap.empty() && start_heap.top() <= t) start_heap.pop();
      done_heap.pop();
      sample_occupancy();
    }
    while (!start_heap.empty() && start_heap.top() <= now) start_heap.pop();
  };

  struct ServiceParts {
    bool set = false;
    core::CimSystem::RequestLatencyParts parts;
    double total_ns = 0.0;
  };
  std::vector<ServiceParts> service_by_bits(17);
  auto service_parts = [&](int bits) -> const ServiceParts& {
    ServiceParts& s = service_by_bits.at(static_cast<std::size_t>(bits));
    if (!s.set) {
      s.parts = pool_.request_latency_parts(bits);
      s.total_ns = s.parts.bitserial_ns + s.parts.reduce_ns;
      s.set = true;
    }
    return s;
  };
  auto service_ns = [&](int bits) { return service_parts(bits).total_ns; };

  auto route = [&](double now) -> std::size_t {
    switch (cfg_.routing) {
      case RoutingPolicy::kRoundRobin: {
        const std::size_t r = rr_next_ % replicas;
        ++rr_next_;
        return r;
      }
      case RoutingPolicy::kLeastLoaded:
      case RoutingPolicy::kWearAware: {
        std::size_t best = 0;
        double best_cost = 0.0;
        for (std::size_t r = 0; r < replicas; ++r) {
          double cost = std::max(busy_until[r] - now, 0.0);
          if (cfg_.routing == RoutingPolicy::kWearAware)
            cost += cfg_.wear_penalty_ns * health[r];
          if (r == 0 || cost < best_cost) {
            best = r;
            best_cost = cost;
          }
        }
        return best;
      }
    }
    return 0;
  };

  // Request-lifecycle observability state (all cheap no-ops when off).
  const bool windows_on = cfg_.window_ns > 0.0;
  const bool slo_on = windows_on && cfg_.slo_target_ns > 0.0;
  const bool flight_on = !cfg_.flight_dump_path.empty();
  const bool trace_on = obs::trace_enabled();
  std::vector<BatchDecision> batch_log;
  std::vector<Rejection> rejections;

  auto flush = [&](std::map<std::pair<int, int>, PendingClass>::iterator it,
                   double now) {
    PendingClass& cls = it->second;
    const int bits = it->first.first;
    auto tier = static_cast<crossbar::FidelityTier>(it->first.second);
    bool batch_escalated = false;

    // Load shedding: under a deep queue, downgrade full-fidelity batches to
    // the calibrated tier (PR 7's cheaper read path).
    if (cfg_.tier_escalation && tier == crossbar::FidelityTier::kFull &&
        queue_depth_now() >= cfg_.escalation_queue_depth) {
      tier = crossbar::FidelityTier::kCalibrated;
      escalated += cls.members.size();
      batch_escalated = true;
    }

    const std::size_t replica = route(now);
    const double start = std::max(now, busy_until[replica]);
    const ServiceParts& sp = service_parts(bits);
    const double s = sp.total_ns;
    const std::size_t b = cls.members.size();

    for (std::size_t j = 0; j < b; ++j) {
      const std::size_t idx = cls.members[j];
      Completion& c = completions[idx];
      c.id = requests[idx].id;
      c.kind = requests[idx].kind;
      c.arrival_ns = requests[idx].arrival_ns;
      c.dispatch_ns = start;
      c.replica = replica;
      c.batch_size = b;
      c.tier = tier;
      c.escalated = batch_escalated;
      // Exact lifecycle decomposition. Requests in a coalesced batch still
      // execute bit-serially one after another; the win is paying the
      // issue overhead once. done_ns is *constructed* as arrival +
      // decomposition_sum() (same left-to-right order), so the components
      // sum to the end-to-end latency bitwise.
      c.batch_wait_ns = now - c.arrival_ns;
      c.queue_wait_ns = (start - now) + static_cast<double>(j) * s;
      c.issue_wait_ns = cfg_.issue_overhead_ns;
      c.bitserial_ns = sp.parts.bitserial_ns;
      c.reduce_ns = sp.parts.reduce_ns;
      c.done_ns = c.arrival_ns + c.decomposition_sum();
      completed[idx] = 1;
      start_heap.push(start);
      done_heap.push(c.done_ns);

      if (trace_on) {
        // Simulated-time lanes (pid 2): the coalesce/backlog wait on lane 0,
        // the request's own service slice on its replica's lane, joined by
        // a flow arrow keyed on the request id (the trace id).
        obs::detail::TraceEvent wait;
        wait.name = "req.wait";
        wait.ph = 'X';
        wait.pid = 2;
        wait.tid = 0;
        wait.ts_ns = static_cast<std::uint64_t>(c.arrival_ns);
        wait.dur_ns = static_cast<std::uint64_t>(
            (start + cfg_.issue_overhead_ns + static_cast<double>(j) * s) -
            c.arrival_ns);
        obs::detail::record_trace_event(wait, /*keep_tid=*/true);

        obs::detail::TraceEvent exec;
        exec.name = "req.exec";
        exec.ph = 'X';
        exec.pid = 2;
        exec.tid = 1 + static_cast<std::uint32_t>(replica);
        exec.ts_ns = static_cast<std::uint64_t>(
            start + cfg_.issue_overhead_ns + static_cast<double>(j) * s);
        exec.dur_ns = static_cast<std::uint64_t>(s);
        obs::detail::record_trace_event(exec, /*keep_tid=*/true);

        obs::detail::TraceEvent fs = wait;
        fs.name = "req.flow";
        fs.ph = 's';
        fs.flow_id = c.id;
        fs.dur_ns = 0;
        obs::detail::record_trace_event(fs, /*keep_tid=*/true);
        obs::detail::TraceEvent ff = exec;
        ff.name = "req.flow";
        ff.ph = 'f';
        ff.flow_id = c.id;
        ff.dur_ns = 0;
        obs::detail::record_trace_event(ff, /*keep_tid=*/true);
      }
    }
    if (flight_on || trace_on) {
      BatchDecision bd;
      bd.seal_ns = now;
      bd.start_ns = start;
      bd.replica = replica;
      bd.size = b;
      bd.input_bits = bits;
      bd.tier = tier;
      bd.escalated = batch_escalated;
      if (flight_on) batch_log.push_back(bd);
      if (trace_on) {
        obs::detail::TraceEvent batch_ev;
        batch_ev.name = "serve.batch";
        batch_ev.ph = 'X';
        batch_ev.pid = 2;
        batch_ev.tid = 1 + static_cast<std::uint32_t>(replica);
        batch_ev.ts_ns = static_cast<std::uint64_t>(start);
        batch_ev.dur_ns = static_cast<std::uint64_t>(
            cfg_.issue_overhead_ns + static_cast<double>(b) * s);
        obs::detail::record_trace_event(batch_ev, /*keep_tid=*/true);
      }
    }

    const double busy = cfg_.issue_overhead_ns + static_cast<double>(b) * s;
    busy_until[replica] = start + busy;
    busy_ns[replica] += busy;
    report.stats.per_replica_requests[replica] += b;

    PlannedBatch pb;
    pb.replica = replica;
    pb.input_bits = bits;
    pb.tier = tier;
    pb.members = std::move(cls.members);
    plan.push_back(std::move(pb));

    pending_total -= b;
    ++dispatches;
    pending.erase(it);
  };

  // Earliest deadline across the pending classes (map scan: the class count
  // is tiny — distinct (bits, tier) pairs in flight).
  auto next_deadline = [&]() {
    auto best = pending.end();
    for (auto it = pending.begin(); it != pending.end(); ++it)
      if (best == pending.end() ||
          it->second.oldest_arrival_ns < best->second.oldest_arrival_ns)
        best = it;
    return best;
  };

  for (const std::size_t idx : order) {
    const Request& req = requests[idx];
    const double now = req.arrival_ns;

    // Deadline flushes that fire before this arrival.
    for (auto it = next_deadline(); it != pending.end(); it = next_deadline()) {
      const double deadline = it->second.oldest_arrival_ns +
                              cfg_.batch_deadline_ns;
      if (deadline > now) break;
      advance_to(deadline);
      flush(it, deadline);
    }
    advance_to(now);

    if (queue_depth_now() >= cfg_.queue_capacity) {
      ++rejected;
      rejections.push_back({req.id, req.kind, now});
    } else {
      const auto key = std::make_pair(req.input_bits,
                                      static_cast<int>(req.tier));
      auto [it, inserted] = pending.try_emplace(key);
      if (inserted) it->second.oldest_arrival_ns = now;
      it->second.members.push_back(idx);
      ++pending_total;
      if (it->second.members.size() >= cfg_.max_batch) flush(it, now);
    }

    sample_occupancy();
    g_queue.set(static_cast<double>(queue_depth_now()));
    g_inflight.set(static_cast<double>(inflight_now()));
  }

  // Drain: remaining classes flush at their deadlines (the controller never
  // learns the stream ended — open loop), then the occupancy clock runs to
  // the last completion so the tail drain is sampled too.
  for (auto it = next_deadline(); it != pending.end(); it = next_deadline()) {
    const double deadline =
        it->second.oldest_arrival_ns + cfg_.batch_deadline_ns;
    advance_to(deadline);
    flush(it, deadline);
  }
  advance_to(std::numeric_limits<double>::infinity());
  g_queue.set(0.0);
  g_inflight.set(0.0);

  // ---- Phase 2: execute the plan, one lane per replica --------------------
  // Per-replica batch lists preserve flush order, so each replica's device
  // state (noise streams, disturb, caches) evolves exactly as the schedule
  // says — independent of how many lanes actually run.
  std::vector<std::vector<std::size_t>> by_replica(replicas);
  for (std::size_t p = 0; p < plan.size(); ++p)
    by_replica[plan[p].replica].push_back(p);

  auto execute_replica = [&](std::size_t r) {
    core::CimSystem& sys = pool_.replica(r);
    for (const std::size_t p : by_replica[r]) {
      const PlannedBatch& pb = plan[p];
      std::vector<std::vector<std::uint32_t>> inputs;
      inputs.reserve(pb.members.size());
      for (const std::size_t idx : pb.members)
        inputs.push_back(requests[idx].input);
      auto results = sys.vmm_int_batch(inputs, pb.input_bits, nullptr, pb.tier);
      for (std::size_t j = 0; j < pb.members.size(); ++j) {
        Completion& c = completions[pb.members[j]];
        c.result = std::move(results[j]);
        if (c.kind == RequestKind::kInference) c.label = argmax_label(c.result);
      }
    }
  };
  if (tp != nullptr) {
    tp->parallel_for(0, replicas, execute_replica);
  } else {
    for (std::size_t r = 0; r < replicas; ++r) execute_replica(r);
  }

  // ---- Aggregate SLO metrics ----------------------------------------------
  ServeStats& st = report.stats;
  st.rejected = rejected;
  st.dispatches = dispatches;
  st.escalated = escalated;

  report.completions.reserve(n - rejected);
  for (std::size_t i = 0; i < n; ++i)
    if (completed[i] != 0) report.completions.push_back(std::move(completions[i]));
  std::sort(report.completions.begin(), report.completions.end(),
            [](const Completion& a, const Completion& b) { return a.id < b.id; });
  st.completed = report.completions.size();
  report.rejections = std::move(rejections);
  std::sort(report.rejections.begin(), report.rejections.end(),
            [](const Rejection& a, const Rejection& b) { return a.id < b.id; });

  if (st.completed > 0) {
    double first_arrival = report.completions.front().arrival_ns;
    double last_done = 0.0;
    std::vector<double> lat;
    lat.reserve(st.completed);
    double lat_sum = 0.0;
    double batch_wait_sum = 0.0;
    double queue_wait_sum = 0.0;
    double issue_share_sum = 0.0;
    double bitserial_sum = 0.0;
    double reduce_sum = 0.0;
    for (const Completion& c : report.completions) {
      first_arrival = std::min(first_arrival, c.arrival_ns);
      last_done = std::max(last_done, c.done_ns);
      const double l = c.latency_ns();
      lat.push_back(l);
      lat_sum += l;
      m_latency.observe(l);
      m_batch_wait.observe(c.batch_wait_ns);
      m_queue_wait.observe(c.queue_wait_ns);
      batch_wait_sum += c.batch_wait_ns;
      queue_wait_sum += c.queue_wait_ns;
      issue_share_sum +=
          c.issue_wait_ns / static_cast<double>(c.batch_size);
      bitserial_sum += c.bitserial_ns;
      reduce_sum += c.reduce_ns;
    }
    std::sort(lat.begin(), lat.end());
    st.makespan_ns = last_done - first_arrival;
    // A <= 1-request run has no meaningful makespan: one completion makes
    // throughput 1/latency and utilization busy/latency — nonsense rates
    // a downstream gate would trip over. Report 0 instead.
    const bool rate_defined = st.completed > 1 && st.makespan_ns > 0.0;
    st.throughput_rps = rate_defined ? static_cast<double>(st.completed) /
                                           (st.makespan_ns * 1e-9)
                                     : 0.0;
    st.mean_batch = dispatches > 0
                        ? static_cast<double>(st.completed) /
                              static_cast<double>(dispatches)
                        : 0.0;
    const double inv = 1.0 / static_cast<double>(st.completed);
    st.mean_ns = lat_sum * inv;
    st.mean_batch_wait_ns = batch_wait_sum * inv;
    st.mean_queue_wait_ns = queue_wait_sum * inv;
    st.mean_issue_share_ns = issue_share_sum * inv;
    st.mean_bitserial_ns = bitserial_sum * inv;
    st.mean_reduce_ns = reduce_sum * inv;
    st.p50_ns = exact_quantile(lat, 0.50);
    st.p99_ns = exact_quantile(lat, 0.99);
    st.p999_ns = exact_quantile(lat, 0.999);
    st.max_ns = lat.back();
    for (std::size_t r = 0; r < replicas; ++r)
      st.per_replica_utilization[r] =
          rate_defined ? busy_ns[r] / st.makespan_ns : 0.0;
  }
  if (samples > 0) {
    st.mean_queue_depth = queue_depth_sum / static_cast<double>(samples);
    st.mean_inflight = inflight_sum / static_cast<double>(samples);
  }
  st.max_queue_depth = max_queue_depth;
  st.occupancy_samples = samples;

  // ---- Windowed series, SLO accounting, flight recorder -------------------
  if (windows_on || flight_on) {
    // Replay the run's lifecycle events in simulated-time order: batch
    // decisions at seal time, rejections at arrival time, completions at
    // done time. A pure post-pass over the serial schedule, so the series
    // (and any flight dump) is bit-identical at any CIM_THREADS.
    struct Event {
      double t_ns;
      int type;  ///< 0 batch, 1 rejection, 2 completion (tie order)
      std::size_t idx;
    };
    std::vector<Event> events;
    events.reserve(batch_log.size() + report.rejections.size() +
                   report.completions.size());
    for (std::size_t i = 0; i < batch_log.size(); ++i)
      events.push_back({batch_log[i].seal_ns, 0, i});
    for (std::size_t i = 0; i < report.rejections.size(); ++i)
      events.push_back({report.rejections[i].arrival_ns, 1, i});
    for (std::size_t i = 0; i < report.completions.size(); ++i)
      events.push_back({report.completions[i].done_ns, 2, i});
    std::sort(events.begin(), events.end(), [&](const Event& a,
                                                const Event& b) {
      if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
      if (a.type != b.type) return a.type < b.type;
      return a.idx < b.idx;
    });

    const double W = windows_on ? cfg_.window_ns : 0.0;
    std::map<std::uint64_t, WindowStat> wmap;
    auto window_row = [&](std::uint64_t index) -> WindowStat& {
      WindowStat& row = wmap[index];
      row.index = index;
      row.start_ns = static_cast<double>(index) * W;
      return row;
    };

    obs::WindowedHistogram lat_w(windows_on ? W : 1.0, kLatencyBounds);
    obs::WindowedCounter rej_w(windows_on ? W : 1.0);
    obs::WindowedCounter viol_w(windows_on ? W : 1.0);
    const auto lat_close = [&](const obs::WindowHistogramSnap& w) {
      WindowStat& row = window_row(w.index);
      row.completed = w.hist.count;
      row.rate_rps = static_cast<double>(w.hist.count) / (W * 1e-9);
      row.p50_ns = w.hist.p50();
      row.p99_ns = w.hist.p99();
      row.p999_ns = w.hist.p999();
    };
    const auto rej_close = [&](const obs::WindowCount& w) {
      window_row(w.index).rejected = w.count;
    };
    const auto viol_close = [&](const obs::WindowCount& w) {
      window_row(w.index).slo_violations = w.count;
    };

    obs::SloConfig slo_cfg;
    slo_cfg.target_ns = slo_on ? cfg_.slo_target_ns : 1.0;
    slo_cfg.objective = cfg_.slo_objective;
    slo_cfg.window_ns = windows_on ? W : 1.0;
    slo_cfg.fast_windows = cfg_.slo_fast_windows;
    slo_cfg.slow_windows = cfg_.slo_slow_windows;
    slo_cfg.fast_burn_threshold = cfg_.slo_fast_burn;
    slo_cfg.slow_burn_threshold = cfg_.slo_slow_burn;
    obs::SloTracker tracker(slo_cfg);

    obs::FlightRecorder flight(cfg_.flight_capacity);
    bool flight_dumped = false;
    std::size_t slo_rows_seen = 0;
    std::uint64_t cur_rej_window = 0;
    std::uint64_t cur_rej_count = 0;
    auto dump_flight = [&](const char* reason, double t_ns) {
      if (!flight_on || flight_dumped) return;
      char at[64];
      std::snprintf(at, sizeof at, "%.17g", t_ns);
      if (flight.dump(cfg_.flight_dump_path, reason, {{"t_ns", at}}))
        ++st.flight_dumps;
      flight_dumped = true;  // first trigger wins; one post-mortem per run
    };
    // New SLO rows appear as the tracker closes windows; a fast-burn onset
    // is the breach moment — the flight ring holds what led up to it.
    auto check_slo_rows = [&]() {
      const auto& rows = tracker.windows();
      for (; slo_rows_seen < rows.size(); ++slo_rows_seen)
        if (rows[slo_rows_seen].fast_alert)
          dump_flight("slo-fast-burn", rows[slo_rows_seen].start_ns);
    };

    for (const Event& e : events) {
      switch (e.type) {
        case 0:
          if (flight_on)
            flight.record(flight_batch_line(batch_log[e.idx]));
          break;
        case 1: {
          const Rejection& r = report.rejections[e.idx];
          if (flight_on) flight.record(flight_rejection_line(r));
          if (windows_on) {
            rej_w.add(r.arrival_ns, 1, rej_close);
            viol_w.add(r.arrival_ns, 1, viol_close);
            // Shed-spike trigger: N rejections inside one window.
            const std::uint64_t wi = rej_w.window_index(r.arrival_ns);
            if (wi != cur_rej_window) {
              cur_rej_window = wi;
              cur_rej_count = 0;
            }
            if (++cur_rej_count == cfg_.flight_shed_spike)
              dump_flight("shed-spike", r.arrival_ns);
          }
          if (slo_on) {
            tracker.record_rejected(r.arrival_ns);
            check_slo_rows();
          }
          break;
        }
        case 2: {
          const Completion& c = report.completions[e.idx];
          if (flight_on) flight.record(flight_completion_line(c));
          if (windows_on) {
            lat_w.observe(c.done_ns, c.latency_ns(), lat_close);
            if (slo_on && c.latency_ns() > cfg_.slo_target_ns)
              viol_w.add(c.done_ns, 1, viol_close);
          }
          if (slo_on) {
            tracker.observe(c.done_ns, c.latency_ns());
            check_slo_rows();
          }
          break;
        }
      }
    }

    if (windows_on) {
      lat_w.finalize(lat_close);
      rej_w.finalize(rej_close);
      viol_w.finalize(viol_close);
    }
    if (slo_on) {
      st.slo = tracker.finalize();
      check_slo_rows();
      if (st.slo.breached) dump_flight("slo-breach", st.slo.first_breach_ns);
      for (const obs::SloWindow& row : tracker.windows())
        if (auto it = wmap.find(row.index); it != wmap.end())
          it->second.burn_rate = row.burn_rate;
    }
    st.windows.reserve(wmap.size());
    for (auto& [index, row] : wmap) st.windows.push_back(row);

    // Surface the run's windowed/SLO state through the registry so the
    // Prometheus/snapshot exporters carry it without serve-specific wiring.
    if (windows_on && !st.windows.empty()) {
      const WindowStat& lastw = st.windows.back();
      reg.gauge("serve.window.p50_ns").set(lastw.p50_ns);
      reg.gauge("serve.window.p99_ns").set(lastw.p99_ns);
      reg.gauge("serve.window.p999_ns").set(lastw.p999_ns);
      reg.gauge("serve.window.rate_rps").set(lastw.rate_rps);
    }
    if (slo_on) {
      reg.counter("serve.slo.good").add(st.slo.good);
      reg.counter("serve.slo.bad").add(st.slo.bad);
      reg.counter("serve.slo.fast_alerts").add(st.slo.fast_alerts);
      reg.counter("serve.slo.slow_alerts").add(st.slo.slow_alerts);
      reg.gauge("serve.slo.budget_consumed").set(st.slo.budget_consumed);
    }
    reg.counter("serve.flight.dumps").add(st.flight_dumps);
  }

  m_requests.add(n);
  m_rejected.add(rejected);
  m_dispatches.add(dispatches);
  m_escalated.add(escalated);
  export_reqlog_if_requested(report);
  return report;
}

namespace {

bool env_double(const char* name, double& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0') return false;
  out = d;
  return true;
}

bool env_size(const char* name, std::size_t& out) {
  double d = 0.0;
  if (!env_double(name, d) || d < 0.0) return false;
  out = static_cast<std::size_t>(d);
  return true;
}

}  // namespace

void apply_env_overrides(TrafficConfig& traffic, ControllerConfig& ctl) {
  env_size("CIM_SERVE_REQUESTS", traffic.requests);
  env_double("CIM_SERVE_RATE_RPS", traffic.rate_rps);
  if (const char* v = std::getenv("CIM_SERVE_PROCESS"); v != nullptr) {
    const std::string s = v;
    if (s == "poisson") traffic.process = ArrivalProcess::kPoisson;
    if (s == "mmpp") traffic.process = ArrivalProcess::kMmpp;
  }
  env_size("CIM_SERVE_BATCH", ctl.max_batch);
  env_double("CIM_SERVE_DEADLINE_NS", ctl.batch_deadline_ns);
  if (const char* v = std::getenv("CIM_SERVE_POLICY"); v != nullptr) {
    const std::string s = v;
    if (s == "rr") ctl.routing = RoutingPolicy::kRoundRobin;
    if (s == "least") ctl.routing = RoutingPolicy::kLeastLoaded;
    if (s == "wear") ctl.routing = RoutingPolicy::kWearAware;
  }
  if (const char* v = std::getenv("CIM_SERVE_ESCALATE"); v != nullptr) {
    const std::string s = v;
    ctl.tier_escalation = (s == "1" || s == "on" || s == "true");
  }
  env_double("CIM_SERVE_WINDOW_NS", ctl.window_ns);
  env_double("CIM_SERVE_SLO_TARGET_NS", ctl.slo_target_ns);
  if (double obj = 0.0;
      env_double("CIM_SERVE_SLO_OBJECTIVE", obj) && obj > 0.0 && obj < 1.0)
    ctl.slo_objective = obj;
  if (const char* v = std::getenv("CIM_SERVE_FLIGHT_FILE");
      v != nullptr && *v != '\0')
    ctl.flight_dump_path = v;
}

}  // namespace cim::serve
