#include "serve/controller.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "obs/prom.hpp"

namespace cim::serve {

namespace {

/// Latency histogram bounds (ns): geometric 2x ladder from 250 ns to ~4 ms,
/// wide enough for sub-us tile service times and deep overload queues.
std::vector<double> latency_bounds() {
  std::vector<double> b;
  for (double v = 250.0; v <= 4.0e6; v *= 2.0) b.push_back(v);
  return b;
}

/// Exact q-quantile of a sorted sample (nearest-rank; the per-request
/// records are all in hand, unlike the scrape-side histogram estimate).
double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

int argmax_label(const std::vector<long>& logits) {
  if (logits.empty()) return -1;
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

/// One flushed batch: everything phase 2 needs to execute it and the
/// request indices whose completions it fills.
struct PlannedBatch {
  std::size_t replica = 0;
  int input_bits = 4;
  crossbar::FidelityTier tier = crossbar::FidelityTier::kFull;
  std::vector<std::size_t> members;  ///< indices into the request span
};

/// Batch-coalescing queue for one (input_bits, requested tier) class.
struct PendingClass {
  std::vector<std::size_t> members;
  double oldest_arrival_ns = 0.0;
};

}  // namespace

Controller::Controller(TilePool& pool, ControllerConfig cfg)
    : pool_(pool), cfg_(cfg) {
  if (cfg_.max_batch == 0)
    throw std::invalid_argument("Controller: max_batch must be >= 1");
  if (cfg_.queue_capacity == 0)
    throw std::invalid_argument("Controller: queue_capacity must be >= 1");
  obs::maybe_start_prometheus_from_env();
}

ServeReport Controller::run(std::span<const Request> requests,
                            util::ThreadPool* tp) {
  auto& reg = obs::Registry::global();
  auto& m_requests = reg.counter("serve.requests");
  auto& m_rejected = reg.counter("serve.rejected");
  auto& m_dispatches = reg.counter("serve.dispatches");
  auto& m_escalated = reg.counter("serve.escalated");
  static const std::vector<double> kLatencyBounds = latency_bounds();
  auto& m_latency = reg.histogram("serve.latency_ns", kLatencyBounds);
  auto& g_queue = reg.gauge("serve.queue_depth");
  auto& g_inflight = reg.gauge("serve.inflight");

  const std::size_t n = requests.size();
  const std::size_t replicas = pool_.size();

  ServeReport report;
  report.stats.offered = n;
  report.stats.per_replica_requests.assign(replicas, 0);
  report.stats.per_replica_utilization.assign(replicas, 0.0);
  if (n == 0) return report;

  // ---- Phase 1: serial event-driven schedule (simulated time) -------------
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (requests[a].arrival_ns != requests[b].arrival_ns)
      return requests[a].arrival_ns < requests[b].arrival_ns;
    return requests[a].id < requests[b].id;
  });

  // Health scores are read once per run: routing reacts to the wear the
  // previous traffic epochs produced, not to in-flight execution.
  std::vector<double> health(replicas, 0.0);
  if (cfg_.routing == RoutingPolicy::kWearAware) health = pool_.health_scores();

  std::vector<Completion> completions(n);
  std::vector<char> completed(n, 0);
  std::vector<PlannedBatch> plan;
  std::vector<double> busy_until(replicas, 0.0);
  std::vector<double> busy_ns(replicas, 0.0);

  // Coalescing state: one queue per compatibility class, deterministic
  // iteration via std::map ordering.
  std::map<std::pair<int, int>, PendingClass> pending;
  std::size_t pending_total = 0;

  // Occupancy tracking. A dispatched request still *queues* until its
  // batch's start time (it sits in the chosen replica's backlog), then is
  // *in flight* until its done time. Queue depth — the quantity admission
  // control and tier escalation react to — is therefore
  // pending (coalescing) + dispatched-but-unstarted.
  using MinHeap =
      std::priority_queue<double, std::vector<double>, std::greater<>>;
  MinHeap start_heap;  ///< batch start times of dispatched requests
  MinHeap done_heap;   ///< completion times of dispatched requests
  auto advance_to = [&](double now) {
    while (!start_heap.empty() && start_heap.top() <= now) start_heap.pop();
    while (!done_heap.empty() && done_heap.top() <= now) done_heap.pop();
  };
  auto queue_depth_now = [&]() { return pending_total + start_heap.size(); };
  // Executing = started but not done (done implies started, so the heap
  // sizes difference counts exactly the in-service requests).
  auto inflight_now = [&]() { return done_heap.size() - start_heap.size(); };

  std::size_t rejected = 0;
  std::size_t escalated = 0;
  std::size_t dispatches = 0;
  double queue_depth_sum = 0.0;
  double inflight_sum = 0.0;
  std::size_t samples = 0;
  std::size_t max_queue_depth = 0;

  const double service_cache_unset = -1.0;
  std::vector<double> service_ns_by_bits(17, service_cache_unset);
  auto service_ns = [&](int bits) {
    double& s = service_ns_by_bits.at(static_cast<std::size_t>(bits));
    if (s == service_cache_unset) s = pool_.request_latency_ns(bits);
    return s;
  };

  auto route = [&](double now) -> std::size_t {
    switch (cfg_.routing) {
      case RoutingPolicy::kRoundRobin: {
        const std::size_t r = rr_next_ % replicas;
        ++rr_next_;
        return r;
      }
      case RoutingPolicy::kLeastLoaded:
      case RoutingPolicy::kWearAware: {
        std::size_t best = 0;
        double best_cost = 0.0;
        for (std::size_t r = 0; r < replicas; ++r) {
          double cost = std::max(busy_until[r] - now, 0.0);
          if (cfg_.routing == RoutingPolicy::kWearAware)
            cost += cfg_.wear_penalty_ns * health[r];
          if (r == 0 || cost < best_cost) {
            best = r;
            best_cost = cost;
          }
        }
        return best;
      }
    }
    return 0;
  };

  auto flush = [&](std::map<std::pair<int, int>, PendingClass>::iterator it,
                   double now) {
    PendingClass& cls = it->second;
    const int bits = it->first.first;
    auto tier = static_cast<crossbar::FidelityTier>(it->first.second);

    // Load shedding: under a deep queue, downgrade full-fidelity batches to
    // the calibrated tier (PR 7's cheaper read path).
    if (cfg_.tier_escalation && tier == crossbar::FidelityTier::kFull &&
        queue_depth_now() >= cfg_.escalation_queue_depth) {
      tier = crossbar::FidelityTier::kCalibrated;
      escalated += cls.members.size();
    }

    const std::size_t replica = route(now);
    const double start = std::max(now, busy_until[replica]);
    const double s = service_ns(bits);
    const std::size_t b = cls.members.size();

    for (std::size_t j = 0; j < b; ++j) {
      const std::size_t idx = cls.members[j];
      Completion& c = completions[idx];
      c.id = requests[idx].id;
      c.kind = requests[idx].kind;
      c.arrival_ns = requests[idx].arrival_ns;
      c.dispatch_ns = start;
      // Requests in a coalesced batch still execute bit-serially one after
      // another; the win is paying the issue overhead once.
      c.done_ns = start + cfg_.issue_overhead_ns +
                  static_cast<double>(j + 1) * s;
      c.replica = replica;
      c.batch_size = b;
      c.tier = tier;
      completed[idx] = 1;
      start_heap.push(start);
      done_heap.push(c.done_ns);
    }

    const double busy = cfg_.issue_overhead_ns + static_cast<double>(b) * s;
    busy_until[replica] = start + busy;
    busy_ns[replica] += busy;
    report.stats.per_replica_requests[replica] += b;

    PlannedBatch pb;
    pb.replica = replica;
    pb.input_bits = bits;
    pb.tier = tier;
    pb.members = std::move(cls.members);
    plan.push_back(std::move(pb));

    pending_total -= b;
    ++dispatches;
    pending.erase(it);
  };

  // Earliest deadline across the pending classes (map scan: the class count
  // is tiny — distinct (bits, tier) pairs in flight).
  auto next_deadline = [&]() {
    auto best = pending.end();
    for (auto it = pending.begin(); it != pending.end(); ++it)
      if (best == pending.end() ||
          it->second.oldest_arrival_ns < best->second.oldest_arrival_ns)
        best = it;
    return best;
  };

  for (const std::size_t idx : order) {
    const Request& req = requests[idx];
    const double now = req.arrival_ns;

    // Deadline flushes that fire before this arrival.
    for (auto it = next_deadline(); it != pending.end(); it = next_deadline()) {
      const double deadline = it->second.oldest_arrival_ns +
                              cfg_.batch_deadline_ns;
      if (deadline > now) break;
      advance_to(deadline);
      flush(it, deadline);
    }
    advance_to(now);

    if (queue_depth_now() >= cfg_.queue_capacity) {
      ++rejected;
    } else {
      const auto key = std::make_pair(req.input_bits,
                                      static_cast<int>(req.tier));
      auto [it, inserted] = pending.try_emplace(key);
      if (inserted) it->second.oldest_arrival_ns = now;
      it->second.members.push_back(idx);
      ++pending_total;
      if (it->second.members.size() >= cfg_.max_batch) flush(it, now);
    }

    const std::size_t depth = queue_depth_now();
    queue_depth_sum += static_cast<double>(depth);
    inflight_sum += static_cast<double>(inflight_now());
    max_queue_depth = std::max(max_queue_depth, depth);
    ++samples;
    g_queue.set(static_cast<double>(depth));
    g_inflight.set(static_cast<double>(inflight_now()));
  }

  // Drain: remaining classes flush at their deadlines (the controller never
  // learns the stream ended — open loop).
  for (auto it = next_deadline(); it != pending.end(); it = next_deadline()) {
    const double deadline =
        it->second.oldest_arrival_ns + cfg_.batch_deadline_ns;
    advance_to(deadline);
    flush(it, deadline);
  }
  g_queue.set(0.0);
  g_inflight.set(0.0);

  // ---- Phase 2: execute the plan, one lane per replica --------------------
  // Per-replica batch lists preserve flush order, so each replica's device
  // state (noise streams, disturb, caches) evolves exactly as the schedule
  // says — independent of how many lanes actually run.
  std::vector<std::vector<std::size_t>> by_replica(replicas);
  for (std::size_t p = 0; p < plan.size(); ++p)
    by_replica[plan[p].replica].push_back(p);

  auto execute_replica = [&](std::size_t r) {
    core::CimSystem& sys = pool_.replica(r);
    for (const std::size_t p : by_replica[r]) {
      const PlannedBatch& pb = plan[p];
      std::vector<std::vector<std::uint32_t>> inputs;
      inputs.reserve(pb.members.size());
      for (const std::size_t idx : pb.members)
        inputs.push_back(requests[idx].input);
      auto results = sys.vmm_int_batch(inputs, pb.input_bits, nullptr, pb.tier);
      for (std::size_t j = 0; j < pb.members.size(); ++j) {
        Completion& c = completions[pb.members[j]];
        c.result = std::move(results[j]);
        if (c.kind == RequestKind::kInference) c.label = argmax_label(c.result);
      }
    }
  };
  if (tp != nullptr) {
    tp->parallel_for(0, replicas, execute_replica);
  } else {
    for (std::size_t r = 0; r < replicas; ++r) execute_replica(r);
  }

  // ---- Aggregate SLO metrics ----------------------------------------------
  ServeStats& st = report.stats;
  st.rejected = rejected;
  st.dispatches = dispatches;
  st.escalated = escalated;

  report.completions.reserve(n - rejected);
  for (std::size_t i = 0; i < n; ++i)
    if (completed[i] != 0) report.completions.push_back(std::move(completions[i]));
  std::sort(report.completions.begin(), report.completions.end(),
            [](const Completion& a, const Completion& b) { return a.id < b.id; });
  st.completed = report.completions.size();

  if (st.completed > 0) {
    double first_arrival = report.completions.front().arrival_ns;
    double last_done = 0.0;
    std::vector<double> lat;
    lat.reserve(st.completed);
    double lat_sum = 0.0;
    for (const Completion& c : report.completions) {
      first_arrival = std::min(first_arrival, c.arrival_ns);
      last_done = std::max(last_done, c.done_ns);
      const double l = c.latency_ns();
      lat.push_back(l);
      lat_sum += l;
      m_latency.observe(l);
    }
    std::sort(lat.begin(), lat.end());
    st.makespan_ns = last_done - first_arrival;
    st.throughput_rps = st.makespan_ns > 0.0
                            ? static_cast<double>(st.completed) /
                                  (st.makespan_ns * 1e-9)
                            : 0.0;
    st.mean_batch = dispatches > 0
                        ? static_cast<double>(st.completed) /
                              static_cast<double>(dispatches)
                        : 0.0;
    st.mean_ns = lat_sum / static_cast<double>(st.completed);
    st.p50_ns = exact_quantile(lat, 0.50);
    st.p99_ns = exact_quantile(lat, 0.99);
    st.p999_ns = exact_quantile(lat, 0.999);
    st.max_ns = lat.back();
    for (std::size_t r = 0; r < replicas; ++r)
      st.per_replica_utilization[r] =
          st.makespan_ns > 0.0 ? busy_ns[r] / st.makespan_ns : 0.0;
  }
  if (samples > 0) {
    st.mean_queue_depth = queue_depth_sum / static_cast<double>(samples);
    st.mean_inflight = inflight_sum / static_cast<double>(samples);
  }
  st.max_queue_depth = max_queue_depth;

  m_requests.add(n);
  m_rejected.add(rejected);
  m_dispatches.add(dispatches);
  m_escalated.add(escalated);
  return report;
}

namespace {

bool env_double(const char* name, double& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0') return false;
  out = d;
  return true;
}

bool env_size(const char* name, std::size_t& out) {
  double d = 0.0;
  if (!env_double(name, d) || d < 0.0) return false;
  out = static_cast<std::size_t>(d);
  return true;
}

}  // namespace

void apply_env_overrides(TrafficConfig& traffic, ControllerConfig& ctl) {
  env_size("CIM_SERVE_REQUESTS", traffic.requests);
  env_double("CIM_SERVE_RATE_RPS", traffic.rate_rps);
  if (const char* v = std::getenv("CIM_SERVE_PROCESS"); v != nullptr) {
    const std::string s = v;
    if (s == "poisson") traffic.process = ArrivalProcess::kPoisson;
    if (s == "mmpp") traffic.process = ArrivalProcess::kMmpp;
  }
  env_size("CIM_SERVE_BATCH", ctl.max_batch);
  env_double("CIM_SERVE_DEADLINE_NS", ctl.batch_deadline_ns);
  if (const char* v = std::getenv("CIM_SERVE_POLICY"); v != nullptr) {
    const std::string s = v;
    if (s == "rr") ctl.routing = RoutingPolicy::kRoundRobin;
    if (s == "least") ctl.routing = RoutingPolicy::kLeastLoaded;
    if (s == "wear") ctl.routing = RoutingPolicy::kWearAware;
  }
  if (const char* v = std::getenv("CIM_SERVE_ESCALATE"); v != nullptr) {
    const std::string s = v;
    ctl.tier_escalation = (s == "1" || s == "on" || s == "true");
  }
}

}  // namespace cim::serve
