/// \file trace_io.hpp
/// \brief `cim-trace-v1`: the request-trace text format (HybridSim-style
///        trace replay for the serving layer).
///
/// A trace file captures an open-loop request stream so a serving run can
/// be replayed exactly — across processes, hosts, and code versions — and
/// so external workloads can be fed to the controller without the
/// synthetic generator. Mirrors the `cim-prog-v1` conventions
/// (eda/verify/program_io): line-oriented text, `#` comments, a versioned
/// header, parse errors carry the 1-based line number, and
/// dump -> parse -> dump is a fixpoint (round-trip gated by
/// tests/serve/test_trace_io.cpp against the tests/data fixture).
///
/// Grammar (one request per line, fields space-separated):
///
///   cim-trace-v1
///   # comment / blank lines anywhere after the header
///   req <id> <arrival_ns> <vmm|infer> <input_bits> <full|calibrated|ideal>
///       <n> <v_0> ... <v_{n-1}>
///
/// `arrival_ns` is printed with 17 significant digits so the double
/// round-trips bit-exactly; arrivals must be non-decreasing in file order.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace cim::serve {

/// Writes `requests` as cim-trace-v1 (header + one `req` line each).
void dump_trace(std::ostream& os, std::span<const Request> requests);

/// Parses a cim-trace-v1 stream. On failure returns nullopt and, when
/// `error` is non-null, a "line N: ..." message; a malformed line never
/// yields a partial trace.
std::optional<std::vector<Request>> parse_trace(std::istream& is,
                                                std::string* error = nullptr);

}  // namespace cim::serve
