#include "serve/trace_io.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

namespace cim::serve {

namespace {

constexpr const char* kHeader = "cim-trace-v1";

bool parse_kind(const std::string& tok, RequestKind& out) {
  if (tok == "vmm") {
    out = RequestKind::kVmm;
    return true;
  }
  if (tok == "infer") {
    out = RequestKind::kInference;
    return true;
  }
  return false;
}

bool parse_tier(const std::string& tok, crossbar::FidelityTier& out) {
  using crossbar::FidelityTier;
  for (const FidelityTier t :
       {FidelityTier::kFull, FidelityTier::kCalibrated, FidelityTier::kIdeal})
    if (tok == crossbar::tier_name(t)) {
      out = t;
      return true;
    }
  return false;
}

std::optional<std::vector<Request>> fail(std::string* error, std::size_t line,
                                         const std::string& msg) {
  if (error != nullptr)
    *error = "line " + std::to_string(line) + ": " + msg;
  return std::nullopt;
}

/// Strips the trailing CR of CRLF-translated traces plus trailing
/// spaces/tabs, so files that crossed a Windows checkout or an editor that
/// pads lines still parse. Leading whitespace stays significant.
void strip_trailing(std::string& line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                           line.back() == '\t'))
    line.pop_back();
}

}  // namespace

void dump_trace(std::ostream& os, std::span<const Request> requests) {
  os << kHeader << '\n';
  char arrival[64];
  for (const Request& r : requests) {
    // 17 significant digits round-trip an IEEE double exactly.
    std::snprintf(arrival, sizeof(arrival), "%.17g", r.arrival_ns);
    os << "req " << r.id << ' ' << arrival << ' ' << kind_name(r.kind) << ' '
       << r.input_bits << ' ' << crossbar::tier_name(r.tier) << ' '
       << r.input.size();
    for (const std::uint32_t v : r.input) os << ' ' << v;
    os << '\n';
  }
}

std::optional<std::vector<Request>> parse_trace(std::istream& is,
                                                std::string* error) {
  std::string line;
  std::size_t lineno = 0;

  // Header must be the first non-blank, non-comment line.
  bool have_header = false;
  while (!have_header && std::getline(is, line)) {
    ++lineno;
    strip_trailing(line);
    if (line.empty() || line[0] == '#') continue;
    if (line != kHeader)
      return fail(error, lineno,
                  std::string("expected header '") + kHeader + "', got '" +
                      line + "'");
    have_header = true;
  }
  if (!have_header) return fail(error, lineno, "missing cim-trace-v1 header");

  std::vector<Request> out;
  double prev_arrival = 0.0;
  while (std::getline(is, line)) {
    ++lineno;
    strip_trailing(line);
    if (line.empty() || line[0] == '#') continue;

    std::istringstream fields(line);
    std::string op;
    fields >> op;
    if (op != "req")
      return fail(error, lineno, "unknown record '" + op + "'");

    Request req;
    std::string kind_tok;
    std::string tier_tok;
    std::size_t n = 0;
    if (!(fields >> req.id >> req.arrival_ns >> kind_tok >> req.input_bits >>
          tier_tok >> n))
      return fail(error, lineno, "malformed req record");
    if (!parse_kind(kind_tok, req.kind))
      return fail(error, lineno, "unknown request kind '" + kind_tok + "'");
    if (!parse_tier(tier_tok, req.tier))
      return fail(error, lineno, "unknown fidelity tier '" + tier_tok + "'");
    if (req.input_bits < 1 || req.input_bits > 16)
      return fail(error, lineno, "input_bits must be in [1,16]");
    if (req.arrival_ns < prev_arrival)
      return fail(error, lineno, "arrival_ns decreased (trace must be sorted)");
    prev_arrival = req.arrival_ns;

    req.input.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      if (!(fields >> req.input[i]))
        return fail(error, lineno,
                    "req declares " + std::to_string(n) + " inputs but has " +
                        std::to_string(i));
    std::string extra;
    if (fields >> extra)
      return fail(error, lineno, "trailing fields after input vector");
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace cim::serve
