#include "serve/traffic.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace cim::serve {

namespace {

/// Exponential variate with the given mean (inverse-CDF over uniform()).
double exponential(util::Rng& rng, double mean) {
  // uniform() is in [0, 1); 1-u is in (0, 1] so the log is finite.
  return -mean * std::log(1.0 - rng.uniform());
}

}  // namespace

std::vector<Request> generate(const TrafficConfig& cfg) {
  if (cfg.rate_rps <= 0.0)
    throw std::invalid_argument("traffic: rate_rps must be positive");
  if (cfg.in_dim == 0)
    throw std::invalid_argument("traffic: in_dim must be positive");
  if (cfg.input_bits < 1 || cfg.input_bits > 16)
    throw std::invalid_argument("traffic: input_bits in [1,16]");
  if (cfg.process == ArrivalProcess::kMmpp &&
      (cfg.burst_rate_mult < 1.0 || cfg.burst_dwell_ns <= 0.0 ||
       cfg.idle_dwell_ns <= 0.0))
    throw std::invalid_argument("traffic: malformed MMPP burst structure");

  // Arrival clock: one serial stream (sub-stream 0 of the seed).
  util::Rng arrivals = util::Rng::stream(cfg.seed, 0);

  // MMPP base (idle) rate solved so the stationary mean equals rate_rps:
  // the chain spends burst_dwell/(burst_dwell+idle_dwell) of the time in
  // the burst state, where the rate is burst_rate_mult * idle rate.
  double idle_rate = cfg.rate_rps;
  if (cfg.process == ArrivalProcess::kMmpp) {
    const double f_burst =
        cfg.burst_dwell_ns / (cfg.burst_dwell_ns + cfg.idle_dwell_ns);
    idle_rate = cfg.rate_rps / (1.0 + (cfg.burst_rate_mult - 1.0) * f_burst);
  }

  bool bursting = false;
  double dwell_left_ns =
      cfg.process == ArrivalProcess::kMmpp
          ? exponential(arrivals, cfg.idle_dwell_ns)
          : 0.0;

  std::vector<Request> out;
  out.reserve(cfg.requests);
  const std::uint32_t input_max = (1u << cfg.input_bits) - 1u;
  double now_ns = 0.0;

  for (std::uint64_t id = 0; id < cfg.requests; ++id) {
    // Next arrival. For MMPP, a candidate inter-arrival beyond the state's
    // remaining dwell is discarded at the switch (memorylessness makes the
    // resample in the new state exact).
    if (cfg.process == ArrivalProcess::kPoisson) {
      now_ns += exponential(arrivals, 1.0e9 / cfg.rate_rps);
    } else {
      for (;;) {
        const double rate = bursting ? idle_rate * cfg.burst_rate_mult
                                     : idle_rate;
        const double dt = exponential(arrivals, 1.0e9 / rate);
        if (dt <= dwell_left_ns) {
          now_ns += dt;
          dwell_left_ns -= dt;
          break;
        }
        now_ns += dwell_left_ns;
        bursting = !bursting;
        dwell_left_ns = exponential(
            arrivals, bursting ? cfg.burst_dwell_ns : cfg.idle_dwell_ns);
      }
    }

    // Payload: a pure function of (seed, id) — sub-streams 1..n so the
    // arrival stream above stays sub-stream 0.
    util::Rng payload = util::Rng::stream(cfg.seed, id + 1);
    Request req;
    req.id = id;
    req.arrival_ns = now_ns;
    req.kind = payload.bernoulli(cfg.inference_frac) ? RequestKind::kInference
                                                     : RequestKind::kVmm;
    req.input_bits = cfg.input_bits;
    req.tier = cfg.tier;
    req.input.resize(cfg.in_dim);
    for (auto& v : req.input)
      v = static_cast<std::uint32_t>(payload.uniform_int(input_max + 1ull));
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace cim::serve
