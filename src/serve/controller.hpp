/// \file controller.hpp
/// \brief SLO-aware batching CIM memory controller: admission queue,
///        adaptive batch coalescing, health-aware routing, and open-loop
///        latency accounting over a tile-replica pool.
///
/// The controller is a deterministic event-driven simulation in two phases
/// (the shape of trace-driven memory-controller simulators — HybridSim's
/// `Controller`/`Trace` layers):
///
///  1. **Schedule** (serial): walk the arrival stream in simulated time,
///     admit requests into per-compatibility-class batch queues, flush a
///     batch when it reaches `max_batch` *or* its oldest request has waited
///     `batch_deadline_ns` (size-or-deadline coalescing), route each flush
///     to a replica by policy, and account start/finish times against the
///     replicas' busy horizons. Per-request service time is the tile
///     model's closed-form `request_latency_ns` (data-independent), so the
///     entire timing plan needs no execution — and is bit-identical at any
///     `CIM_THREADS`.
///  2. **Execute** (parallel): replay the planned batches replica-by-
///     replica across the thread pool via `CimSystem::vmm_int_batch` — one
///     lane per replica, per-replica batches in flush order, so device
///     state (noise streams, disturb, caches) evolves deterministically
///     and per-request results are bit-identical for any pool size.
///
/// **Why batching wins** (the headline perf story): every dispatch onto a
/// tile pays `issue_overhead_ns` — operand staging into the DAC buffers,
/// tile arbitration and control-word setup — before the bit-serial cycles
/// start, the CIM analogue of a DRAM row activation amortized over a
/// burst. Request-at-a-time serving pays it per request; a coalesced batch
/// pays it once, lifting per-replica capacity from 1/(o + s) to
/// B/(o + B*s) requests per second.
///
/// **SLO policies**: routing kRoundRobin / kLeastLoaded / kWearAware (the
/// latter biases the least-loaded choice by the pool's normalized health
/// scores — traffic steers away from worn/drifting replicas, HybridSim's
/// aging-aware scheduling); optional fidelity escalation downgrades kFull
/// requests to kCalibrated while the admission queue is above a threshold
/// (load shedding via the PR 7 fidelity dial); admission beyond
/// `queue_capacity` rejects (open-loop overload must shed, not buffer
/// unboundedly).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/window.hpp"
#include "serve/request.hpp"
#include "serve/tile_pool.hpp"
#include "serve/traffic.hpp"
#include "util/thread_pool.hpp"

namespace cim::serve {

enum class RoutingPolicy : int {
  kRoundRobin = 0,   ///< cyclic, load- and health-blind
  kLeastLoaded = 1,  ///< smallest busy backlog at flush time
  kWearAware = 2,    ///< backlog + wear_penalty_ns * normalized health score
};

constexpr const char* policy_name(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kRoundRobin: return "rr";
    case RoutingPolicy::kLeastLoaded: return "least";
    case RoutingPolicy::kWearAware: return "wear";
  }
  return "unknown";
}

struct ControllerConfig {
  /// Flush a batch at this many coalesced requests. 1 = request-at-a-time
  /// dispatch (the baseline the serving bench gates against).
  std::size_t max_batch = 16;
  /// Flush when the oldest queued request of a batch has waited this long
  /// (ns, simulated) — bounds the coalescing latency cost at low load.
  double batch_deadline_ns = 2000.0;
  /// Fixed per-dispatch cost (ns): operand staging + tile arbitration +
  /// control setup, paid once per batch before its bit-serial cycles.
  double issue_overhead_ns = 600.0;
  RoutingPolicy routing = RoutingPolicy::kLeastLoaded;
  /// Weight (ns of equivalent backlog) of a health score of 1.0 under
  /// kWearAware: how much extra queueing a dispatch will absorb before it
  /// lands on the most-worn replica.
  double wear_penalty_ns = 50000.0;
  /// Downgrade kFull requests to kCalibrated while the admission queue is
  /// at or above `escalation_queue_depth` (off by default).
  bool tier_escalation = false;
  std::size_t escalation_queue_depth = 64;
  /// Admission-queue capacity; arrivals beyond it are rejected.
  std::size_t queue_capacity = 8192;

  // --- Request-lifecycle observability (all off by default) -----------------
  /// Simulated-time window width for the live per-window latency/rate
  /// series (ServeStats::windows). 0 disables windowed aggregation.
  double window_ns = 0.0;
  /// SLO latency target; > 0 (with window_ns > 0) enables the SloTracker
  /// (error budget + fast/slow burn-rate alerts over `window_ns` windows).
  double slo_target_ns = 0.0;
  /// Required good fraction of the SLO, in (0, 1).
  double slo_objective = 0.999;
  std::size_t slo_fast_windows = 1;   ///< fast burn-alert trailing span
  std::size_t slo_slow_windows = 12;  ///< slow burn-alert trailing span
  double slo_fast_burn = 14.4;        ///< fast alert threshold (x budget rate)
  double slo_slow_burn = 6.0;         ///< slow alert threshold
  /// Flight-recorder ring capacity (most recent request records and
  /// controller decisions retained for post-mortems).
  std::size_t flight_capacity = 256;
  /// Rejections within one window that count as a shed spike (the second
  /// flight-dump trigger besides a fast-burn SLO alert).
  std::size_t flight_shed_spike = 16;
  /// When non-empty, the flight recorder auto-dumps here (crash-safe
  /// atomic write) on the first SLO fast-burn alert or shed spike.
  std::string flight_dump_path;
};

/// One closed simulated-time window of a run (ControllerConfig::window_ns):
/// the live view end-of-run aggregates cannot give — *when* the tail blew
/// up, not just that it did.
struct WindowStat {
  std::uint64_t index = 0;   ///< window number (floor(t / window_ns))
  double start_ns = 0.0;     ///< index * window_ns
  std::uint64_t completed = 0;  ///< completions whose done time fell here
  std::uint64_t rejected = 0;   ///< admissions shed in this window
  double rate_rps = 0.0;     ///< completed / window (simulated)
  double p50_ns = 0.0;       ///< within-window latency quantiles
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  std::uint64_t slo_violations = 0;  ///< latency > target + rejections
  double burn_rate = 0.0;    ///< this window's budget burn multiple
};

/// Aggregate SLO metrics of one controller run (all times simulated ns).
struct ServeStats {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t dispatches = 0;   ///< batches issued
  std::size_t escalated = 0;    ///< requests downgraded to kCalibrated
  double makespan_ns = 0.0;     ///< last completion - first arrival
  double throughput_rps = 0.0;  ///< completed / makespan (simulated)
  double mean_batch = 0.0;      ///< completed / dispatches

  // Latency distribution (exact, from the per-request records).
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;

  // Queue/in-flight occupancy sampled at every arrival *and* completion
  // event (arrival-only sampling biases occupancy low on bursty traffic:
  // the deep-queue intervals between bursts would never be sampled).
  double mean_queue_depth = 0.0;
  std::size_t max_queue_depth = 0;
  double mean_inflight = 0.0;
  std::size_t occupancy_samples = 0;

  // Mean latency decomposition across completions (simulated ns). The
  // issue term is the *amortized* share (issue_wait_ns / batch_size), so
  // the five means sum to mean_ns only up to the amortization gap; the
  // per-request sums are exact (Completion::decomposition_sum).
  double mean_batch_wait_ns = 0.0;
  double mean_queue_wait_ns = 0.0;
  double mean_issue_share_ns = 0.0;
  double mean_bitserial_ns = 0.0;
  double mean_reduce_ns = 0.0;

  // Per-replica traffic split and utilization (busy / makespan).
  std::vector<std::size_t> per_replica_requests;
  std::vector<double> per_replica_utilization;

  // Windowed series + SLO accounting (empty / disabled unless
  // ControllerConfig::window_ns and slo_target_ns enable them).
  std::vector<WindowStat> windows;
  obs::SloSummary slo;
  std::size_t flight_dumps = 0;  ///< auto-dumps triggered this run
};

struct ServeReport {
  ServeStats stats;
  std::vector<Completion> completions;  ///< completed requests, by id
  std::vector<Rejection> rejections;    ///< shed requests, by id
};

class Controller {
 public:
  /// The pool must outlive the controller. Starts the process-wide
  /// Prometheus endpoint when CIM_OBS_PROM_PORT asks for it (idempotent).
  Controller(TilePool& pool, ControllerConfig cfg);

  const ControllerConfig& config() const { return cfg_; }

  /// Runs the open-loop simulation over `requests` (any order; scheduled
  /// by arrival time) and executes every planned batch on `tp` (serial
  /// when null). Deterministic: same pool seed + same request stream give
  /// bit-identical completions and stats at any thread count. Latency
  /// histograms and queue gauges land in the obs registry
  /// (serve.latency_ns, serve.queue_depth, serve.inflight, serve.*_total)
  /// for the Prometheus / snapshot exporters.
  ServeReport run(std::span<const Request> requests,
                  util::ThreadPool* tp = nullptr);

 private:
  TilePool& pool_;
  ControllerConfig cfg_;
  std::size_t rr_next_ = 0;  ///< round-robin cursor (persists across runs)
};

/// Applies the CIM_SERVE_* environment overrides (documented in README):
/// CIM_SERVE_REQUESTS, CIM_SERVE_RATE_RPS, CIM_SERVE_PROCESS, CIM_SERVE_BATCH,
/// CIM_SERVE_DEADLINE_NS, CIM_SERVE_POLICY, CIM_SERVE_ESCALATE, plus the
/// observability knobs CIM_SERVE_WINDOW_NS, CIM_SERVE_SLO_TARGET_NS,
/// CIM_SERVE_SLO_OBJECTIVE, CIM_SERVE_FLIGHT_FILE. Unset or malformed
/// variables leave the fields untouched.
void apply_env_overrides(TrafficConfig& traffic, ControllerConfig& ctl);

}  // namespace cim::serve
