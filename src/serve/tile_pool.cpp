#include "serve/tile_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "crossbar/crossbar.hpp"
#include "obs/health.hpp"
#include "util/rng.hpp"

namespace cim::serve {

TilePool::TilePool(const util::Matrix& w_int, TilePoolConfig cfg) {
  if (cfg.replicas == 0)
    throw std::invalid_argument("TilePool: need at least one replica");
  replicas_.reserve(cfg.replicas);
  for (std::size_t r = 0; r < cfg.replicas; ++r) {
    auto sys_cfg = cfg.system;
    sys_cfg.tile.seed = util::Rng::stream_seed(cfg.seed, r);
    replicas_.push_back(std::make_unique<core::CimSystem>(w_int, sys_cfg));
  }
}

std::vector<double> TilePool::health_scores() const {
  std::vector<double> raw(replicas_.size(), 0.0);
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    // health_monitor() attaches lazily and needs mutable access; the scores
    // are pure reads of the snapshots.
    auto& sys = const_cast<core::CimSystem&>(*replicas_[r]);
    for (std::size_t b = 0; b < sys.tile_count(); ++b) {
      auto& tile = sys.tile(b);
      for (crossbar::Crossbar* xb : {&tile.plus_array(), &tile.minus_array()}) {
        const auto s = xb->health_monitor().snapshot();
        raw[r] += static_cast<double>(s.total_writes) +
                  static_cast<double>(s.total_disturbs) +
                  s.mean_abs_drift_us *
                      static_cast<double>(s.rows * s.cols) +
                  100.0 * static_cast<double>(s.worn_cells);
      }
    }
  }
  const double worst = *std::max_element(raw.begin(), raw.end());
  if (worst > 0.0)
    for (double& v : raw) v /= worst;
  return raw;
}

}  // namespace cim::serve
