/// \file traffic.hpp
/// \brief Deterministic open-loop traffic generation: Poisson and bursty
///        MMPP arrival processes over the counter-based Rng streams.
///
/// The generator separates *when* requests arrive from *what* they carry:
/// arrival timestamps come from one serial generator (inter-arrival times
/// are inherently sequential), while each request's payload (input vector,
/// kind) is drawn from `Rng::stream(seed, id)` — a pure function of the
/// seed and the request id. Two configs with the same seed therefore
/// produce identical streams on any host, and changing only the arrival
/// process keeps every payload bit-identical (the controlled-variable
/// property the serving bench's batched-vs-single comparison rests on).
///
/// MMPP (Markov-modulated Poisson process, 2 states) models bursty "flash
/// crowd" traffic: an idle state at a base rate and a burst state at
/// `burst_rate_mult` times that rate, with exponentially distributed state
/// dwell times. The base rate is solved so the long-run mean offered load
/// equals `rate_rps` — an MMPP sweep is directly comparable to a Poisson
/// sweep at the same nominal load.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace cim::serve {

enum class ArrivalProcess : int {
  kPoisson = 0,  ///< memoryless arrivals at a constant mean rate
  kMmpp = 1,     ///< 2-state Markov-modulated Poisson (bursty)
};

constexpr const char* process_name(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kMmpp: return "mmpp";
  }
  return "unknown";
}

/// Shape of one synthetic request stream.
struct TrafficConfig {
  std::size_t requests = 1000;
  double rate_rps = 2.0e6;  ///< mean offered load (requests / simulated s)
  ArrivalProcess process = ArrivalProcess::kPoisson;

  // MMPP burst structure (ignored for kPoisson).
  double burst_rate_mult = 8.0;   ///< burst-state rate / idle-state rate
  double burst_dwell_ns = 5.0e4;  ///< mean dwell in the burst state
  double idle_dwell_ns = 2.0e5;   ///< mean dwell in the idle state

  // Payload shape.
  std::size_t in_dim = 64;      ///< input vector length (= pool in_dim)
  int input_bits = 4;           ///< values uniform in [0, 2^input_bits)
  double inference_frac = 0.5;  ///< fraction of kInference requests
  crossbar::FidelityTier tier = crossbar::FidelityTier::kFull;

  std::uint64_t seed = 1;
};

/// Generates the stream: `requests` entries, ids 0..n-1, arrival times
/// strictly non-decreasing from 0. Deterministic in `cfg` alone.
std::vector<Request> generate(const TrafficConfig& cfg);

}  // namespace cim::serve
