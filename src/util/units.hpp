/// \file units.hpp
/// \brief Unit conventions and conversion helpers used across cimlib.
///
/// All analog quantities are carried as plain `double` with a documented
/// canonical unit; helper constants make the unit explicit at the call site
/// (e.g. `0.5 * units::kV` reads as 0.5 volts).
///
/// Canonical units:
///   time    : nanoseconds  (ns)
///   energy  : picojoules   (pJ)
///   power   : milliwatts   (mW)   [pJ / ns]
///   area    : square micrometres (um^2)
///   voltage : volts        (V)
///   current : microamperes (uA)
///   resistance  : kiloohms (kOhm)  [V / mA; with uA pairs to mV — see note]
///   conductance : microsiemens (uS) so that  I[uA] = G[uS] * V[V]
#pragma once

namespace cim::units {

// --- time (canonical: ns) ---
inline constexpr double kPs = 1e-3;  ///< picosecond in ns
inline constexpr double kNs = 1.0;   ///< nanosecond (canonical)
inline constexpr double kUs = 1e3;   ///< microsecond in ns
inline constexpr double kMs = 1e6;   ///< millisecond in ns

// --- energy (canonical: pJ) ---
inline constexpr double kFJ = 1e-3;  ///< femtojoule in pJ
inline constexpr double kPJ = 1.0;   ///< picojoule (canonical)
inline constexpr double kNJ = 1e3;   ///< nanojoule in pJ
inline constexpr double kUJ = 1e6;   ///< microjoule in pJ

// --- power (canonical: mW == pJ/ns) ---
inline constexpr double kUW = 1e-3;  ///< microwatt in mW
inline constexpr double kMW = 1.0;   ///< milliwatt (canonical)
inline constexpr double kW = 1e3;    ///< watt in mW

// --- area (canonical: um^2) ---
inline constexpr double kUm2 = 1.0;   ///< square micrometre (canonical)
inline constexpr double kMm2 = 1e6;   ///< square millimetre in um^2

// --- voltage (canonical: V) ---
inline constexpr double kMV = 1e-3;  ///< millivolt in V
inline constexpr double kV = 1.0;    ///< volt (canonical)

// --- current (canonical: uA) ---
inline constexpr double kNA = 1e-3;  ///< nanoampere in uA
inline constexpr double kUA = 1.0;   ///< microampere (canonical)
inline constexpr double kMA = 1e3;   ///< milliampere in uA

// --- conductance (canonical: uS; I[uA] = G[uS] * V[V]) ---
inline constexpr double kUS = 1.0;   ///< microsiemens (canonical)
inline constexpr double kMS = 1e3;   ///< millisiemens in uS

// --- resistance (canonical: kOhm; G[uS] = 1e3 / R[kOhm]) ---
inline constexpr double kKOhm = 1.0;  ///< kiloohm (canonical)
inline constexpr double kMOhm = 1e3;  ///< megaohm in kOhm

/// Conductance (uS) of a resistance given in kOhm.
constexpr double conductance_us(double r_kohm) { return 1e3 / r_kohm; }
/// Resistance (kOhm) of a conductance given in uS.
constexpr double resistance_kohm(double g_us) { return 1e3 / g_us; }

}  // namespace cim::units
