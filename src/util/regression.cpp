#include "util/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace cim::util {
namespace {

/// In-place Cholesky factorization A = L L^T for a symmetric positive
/// definite matrix stored row-major; returns false if not SPD.
bool cholesky(std::vector<double>& a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        if (sum <= 0.0) return false;
        a[i * n + j] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
  return true;
}

/// Solves L L^T x = b given the Cholesky factor in `a`'s lower triangle.
void cholesky_solve(const std::vector<double>& a, std::size_t n,
                    std::vector<double>& b) {
  // Forward: L y = b
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= a[i * n + k] * b[k];
    b[i] = sum / a[i * n + i];
  }
  // Backward: L^T x = y
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[k * n + i] * b[k];
    b[i] = sum / a[i * n + i];
  }
}

}  // namespace

void RidgeRegression::fit(std::span<const double> features,
                          std::span<const double> targets, std::size_t dim) {
  if (dim == 0) throw std::invalid_argument("RidgeRegression: dim == 0");
  if (features.size() % dim != 0)
    throw std::invalid_argument("RidgeRegression: features not a multiple of dim");
  const std::size_t n = features.size() / dim;
  if (n != targets.size() || n < 2)
    throw std::invalid_argument("RidgeRegression: bad sample count");

  // Standardize features.
  mean_.assign(dim, 0.0);
  scale_.assign(dim, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < dim; ++c) mean_[c] += features[r * dim + c];
  for (double& m : mean_) m /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = features[r * dim + c] - mean_[c];
      scale_[c] += d * d;
    }
  for (double& s : scale_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s <= 0.0) s = 1.0;  // constant feature: standardizes to zero
  }

  const double ymean = [&] {
    double acc = 0.0;
    for (double y : targets) acc += y;
    return acc / static_cast<double>(n);
  }();

  // Normal equations on standardized features and centered targets:
  // (X^T X + lambda n I) w = X^T (y - ymean)
  std::vector<double> xtx(dim * dim, 0.0);
  std::vector<double> xty(dim, 0.0);
  std::vector<double> z(dim);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < dim; ++c)
      z[c] = (features[r * dim + c] - mean_[c]) / scale_[c];
    const double yc = targets[r] - ymean;
    for (std::size_t i = 0; i < dim; ++i) {
      xty[i] += z[i] * yc;
      for (std::size_t j = 0; j <= i; ++j) xtx[i * dim + j] += z[i] * z[j];
    }
  }
  // Symmetrize and regularize.
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = i + 1; j < dim; ++j) xtx[i * dim + j] = xtx[j * dim + i];
    xtx[i * dim + i] += lambda_ * static_cast<double>(n);
  }

  if (!cholesky(xtx, dim))
    throw std::runtime_error("RidgeRegression: normal equations not SPD");
  cholesky_solve(xtx, dim, xty);
  weights_ = std::move(xty);
  bias_ = ymean;
}

double RidgeRegression::predict(std::span<const double> row) const {
  if (row.size() != weights_.size())
    throw std::invalid_argument("RidgeRegression::predict: dim mismatch");
  double acc = bias_;
  for (std::size_t c = 0; c < row.size(); ++c)
    acc += weights_[c] * (row[c] - mean_[c]) / scale_[c];
  return acc;
}

double RidgeRegression::r2(std::span<const double> features,
                           std::span<const double> targets) const {
  const std::size_t dim = weights_.size();
  const std::size_t n = targets.size();
  if (dim == 0 || n == 0 || features.size() != n * dim) return 0.0;
  double ymean = 0.0;
  for (double y : targets) ymean += y;
  ymean /= static_cast<double>(n);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double pred = predict(features.subspan(r * dim, dim));
    ss_res += (targets[r] - pred) * (targets[r] - pred);
    ss_tot += (targets[r] - ymean) * (targets[r] - ymean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace cim::util
