/// \file kernels_avx512.cpp
/// \brief AVX-512 F/DQ/VL kernel variants (512-bit lanes).
///
/// Compiled with -mavx512f -mavx512dq -mavx512vl -mfma -ffp-contract=off
/// (src/util/CMakeLists.txt). Same contract split as the AVX2 TU: the
/// element-wise kernels use separate multiply and add so they stay
/// bit-identical to the scalar baseline; only the dot reduction uses FMA,
/// and the vmm_row energy reduction runs in eight per-lane partials
/// reduced once at the end.
#include "util/kernels_impl.hpp"

#if CIM_SIMD_X86 && defined(__AVX512F__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace cim::util::kernels::detail {

double dot_avx512(const double* a, const double* b, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  __m512d acc2 = _mm512_setzero_pd();
  __m512d acc3 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8),
                           _mm512_loadu_pd(b + i + 8), acc1);
    acc2 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 16),
                           _mm512_loadu_pd(b + i + 16), acc2);
    acc3 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 24),
                           _mm512_loadu_pd(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8)
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
  const __m512d sum =
      _mm512_add_pd(_mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3));
  double r = _mm512_reduce_add_pd(sum);
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

void axpy_avx512(double a, const double* x, double* y, std::size_t n) {
  const __m512d va = _mm512_set1_pd(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d y0 = _mm512_add_pd(
        _mm512_loadu_pd(y + i), _mm512_mul_pd(va, _mm512_loadu_pd(x + i)));
    const __m512d y1 =
        _mm512_add_pd(_mm512_loadu_pd(y + i + 8),
                      _mm512_mul_pd(va, _mm512_loadu_pd(x + i + 8)));
    _mm512_storeu_pd(y + i, y0);
    _mm512_storeu_pd(y + i + 8, y1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m512d y0 = _mm512_add_pd(
        _mm512_loadu_pd(y + i), _mm512_mul_pd(va, _mm512_loadu_pd(x + i)));
    _mm512_storeu_pd(y + i, y0);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void vmm_row_accumulate_avx512(double v, const double* g, double* currents,
                               double* noise_var, double noise_frac,
                               double t_read_ns, std::size_t n,
                               double& energy) {
  const __m512d vv = _mm512_set1_pd(v);
  const __m512d vnf = _mm512_set1_pd(noise_frac);
  const __m512d vt = _mm512_set1_pd(t_read_ns);
  const __m512d vmilli = _mm512_set1_pd(1e-3);
  __m512d e_acc = _mm512_setzero_pd();
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m512d gi = _mm512_loadu_pd(g + c);
    const __m512d icur = _mm512_mul_pd(vv, gi);
    _mm512_storeu_pd(currents + c,
                     _mm512_add_pd(_mm512_loadu_pd(currents + c), icur));
    const __m512d cell_noise = _mm512_mul_pd(vnf, icur);
    _mm512_storeu_pd(noise_var + c,
                     _mm512_add_pd(_mm512_loadu_pd(noise_var + c),
                                   _mm512_mul_pd(cell_noise, cell_noise)));
    // Same per-element term shape as the scalar chain: |v*i| * t * 1e-3.
    const __m512d vi = _mm512_abs_pd(_mm512_mul_pd(vv, icur));
    e_acc = _mm512_add_pd(e_acc,
                          _mm512_mul_pd(_mm512_mul_pd(vi, vt), vmilli));
  }
  double e = energy + _mm512_reduce_add_pd(e_acc);
  for (; c < n; ++c) {
    const double i = v * g[c];
    currents[c] += i;
    const double cell_noise = noise_frac * i;
    noise_var[c] += cell_noise * cell_noise;
    e += std::abs(v * i) * t_read_ns * 1e-3;
  }
  energy = e;
}

namespace {
// Identical blocking to the scalar gemm (kernels_scalar.cpp): only the
// inner axpy is widened, so C accumulates in the same k-order with the
// same per-element rounding — bit-identical across tables.
constexpr std::size_t kKc = 64;
constexpr std::size_t kNc = 256;
}  // namespace

void gemm_accumulate_avx512(const double* a, std::size_t lda, const double* b,
                            std::size_t ldb, double* c, std::size_t ldc,
                            std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t k1 = std::min(k, k0 + kKc);
    for (std::size_t n0 = 0; n0 < n; n0 += kNc) {
      const std::size_t n1 = std::min(n, n0 + kNc);
      const std::size_t nb = n1 - n0;
      for (std::size_t r = 0; r < m; ++r) {
        const double* a_row = a + r * lda;
        double* c_row = c + r * ldc + n0;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double av = a_row[kk];
          if (av == 0.0) continue;
          axpy_avx512(av, b + kk * ldb + n0, c_row, nb);
        }
      }
    }
  }
}

}  // namespace cim::util::kernels::detail

#endif  // CIM_SIMD_X86 && __AVX512F__ && __AVX512DQ__ && __AVX512VL__
