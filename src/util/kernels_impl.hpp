/// \file kernels_impl.hpp
/// \brief Internal: per-ISA kernel variant declarations wired into the
///        dispatch tables of simd_dispatch.cpp. Not part of the public
///        util::kernels API — call through kernels.hpp (dispatched) or
///        simd::table_for() (conformance tests) instead.
#pragma once

#include <cstddef>

// The AVX variants are compiled only when the toolchain can target them
// (per-TU -m flags from src/util/CMakeLists.txt, which also passes
// CIM_SIMD_HAVE_AVX2 / CIM_SIMD_HAVE_AVX512 to simd_dispatch.cpp so its
// tables only reference symbols that were actually built).
#if defined(__x86_64__) || defined(_M_X64)
#define CIM_SIMD_X86 1
#else
#define CIM_SIMD_X86 0
#endif

#ifndef CIM_SIMD_HAVE_AVX2
#define CIM_SIMD_HAVE_AVX2 0
#endif
#ifndef CIM_SIMD_HAVE_AVX512
#define CIM_SIMD_HAVE_AVX512 0
#endif

namespace cim::util::kernels::detail {

// Portable scalar variants: bit-identical to the historical inline kernels
// (same expression shapes, same accumulation order).
double dot_scalar(const double* a, const double* b, std::size_t n);
void axpy_scalar(double a, const double* x, double* y, std::size_t n);
void gemm_accumulate_scalar(const double* a, std::size_t lda, const double* b,
                            std::size_t ldb, double* c, std::size_t ldc,
                            std::size_t m, std::size_t k, std::size_t n);
void vmm_row_accumulate_scalar(double v, const double* g, double* currents,
                               double* noise_var, double noise_frac,
                               double t_read_ns, std::size_t n,
                               double& energy);

#if CIM_SIMD_HAVE_AVX2
double dot_avx2(const double* a, const double* b, std::size_t n);
void axpy_avx2(double a, const double* x, double* y, std::size_t n);
void gemm_accumulate_avx2(const double* a, std::size_t lda, const double* b,
                          std::size_t ldb, double* c, std::size_t ldc,
                          std::size_t m, std::size_t k, std::size_t n);
void vmm_row_accumulate_avx2(double v, const double* g, double* currents,
                             double* noise_var, double noise_frac,
                             double t_read_ns, std::size_t n, double& energy);
#endif  // CIM_SIMD_HAVE_AVX2

#if CIM_SIMD_HAVE_AVX512
double dot_avx512(const double* a, const double* b, std::size_t n);
void axpy_avx512(double a, const double* x, double* y, std::size_t n);
void gemm_accumulate_avx512(const double* a, std::size_t lda, const double* b,
                            std::size_t ldb, double* c, std::size_t ldc,
                            std::size_t m, std::size_t k, std::size_t n);
void vmm_row_accumulate_avx512(double v, const double* g, double* currents,
                               double* noise_var, double noise_frac,
                               double t_read_ns, std::size_t n,
                               double& energy);
#endif  // CIM_SIMD_HAVE_AVX512

}  // namespace cim::util::kernels::detail
