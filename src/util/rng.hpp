/// \file rng.hpp
/// \brief Deterministic, seedable pseudo-random number generation.
///
/// cimlib avoids std::mt19937 in hot paths and instead uses xoshiro256++,
/// which is small, fast and has well-understood statistical quality. All
/// stochastic components of the framework (device variation, fault
/// injection, workload generation) take a `Rng&` so experiments are exactly
/// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace cim::util {

/// xoshiro256++ generator with SplitMix64 seeding.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also be
/// handed to <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal: exp(N(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Splits off an independently seeded child generator. Useful for giving
  /// each subsystem its own stream while keeping one experiment seed.
  /// NOTE: this consumes parent state, so the child depends on *when* the
  /// split happens. For parallel work use the counter-based `stream()`.
  Rng split();

  /// Counter-based sub-stream seed: mixes (seed, stream) through two
  /// SplitMix64 rounds. Pure function of its arguments — task i of a
  /// parallel loop gets `stream(master, i)` and sees the same numbers
  /// regardless of which thread runs it or in what order, which is the
  /// backbone of the repo's "bit-identical for any thread count" contract.
  static std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream);

  /// Generator over sub-stream `stream` of `seed` (see `stream_seed`).
  static Rng stream(std::uint64_t seed, std::uint64_t stream_index);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cim::util
