/// \file rng.hpp
/// \brief Deterministic, seedable pseudo-random number generation.
///
/// cimlib avoids std::mt19937 in hot paths and instead uses xoshiro256++,
/// which is small, fast and has well-understood statistical quality. All
/// stochastic components of the framework (device variation, fault
/// injection, workload generation) take a `Rng&` so experiments are exactly
/// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace cim::util {

/// xoshiro256++ generator with SplitMix64 seeding.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also be
/// handed to <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Cheap moment-matched approximate standard normal: the sum of four
  /// uniforms, shifted and scaled to mean 0 / variance 1 (Irwin-Hall CLT).
  /// Exact first and second moments, support limited to ±2*sqrt(3) sigma —
  /// ~4-6x cheaper than Box-Muller (no log/sqrt/trig). Used by calibrated
  /// fast paths where the consumer is validated statistically, not
  /// tail-by-tail (crossbar FidelityTier::kCalibrated).
  double normal_approx();

  /// Approximate normal with given mean and standard deviation.
  double normal_approx(double mean, double stddev);

  /// Counter-based approximate standard normal: a pure function of
  /// (key, ctr), so N draws need only ONE generator advance for the key —
  /// the per-draw cost is a single SplitMix64 finalizer instead of four
  /// xoshiro steps. The mixed 64-bit word is split into four 16-bit lanes
  /// and summed (Irwin-Hall n = 4, same shape as normal_approx()); the
  /// result is moment-matched to N(0, 1) up to the 2^-32 lattice-variance
  /// deficit (std = sqrt(1 - 2^-32)). Support ±2*sqrt(3) sigma. Distinct
  /// ctr values give independent draws (full-avalanche mix). Inline by
  /// design: hot tier-1 crossbar paths draw this per column.
  static double normal_hash(std::uint64_t key, std::uint64_t ctr) {
    std::uint64_t z = key + (ctr + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double s = static_cast<double>(z & 0xffff) +
                     static_cast<double>((z >> 16) & 0xffff) +
                     static_cast<double>((z >> 32) & 0xffff) +
                     static_cast<double>(z >> 48);
    // Lanes are uniform on {0..65535}: sum mean 2*65535, scale sqrt(3)/2^16.
    return (s - 131070.0) * (1.7320508075688772 / 65536.0);
  }

  /// Lognormal: exp(N(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Splits off an independently seeded child generator. Useful for giving
  /// each subsystem its own stream while keeping one experiment seed.
  /// NOTE: this consumes parent state, so the child depends on *when* the
  /// split happens. For parallel work use the counter-based `stream()`.
  Rng split();

  /// Counter-based sub-stream seed: mixes (seed, stream) through two
  /// SplitMix64 rounds. Pure function of its arguments — task i of a
  /// parallel loop gets `stream(master, i)` and sees the same numbers
  /// regardless of which thread runs it or in what order, which is the
  /// backbone of the repo's "bit-identical for any thread count" contract.
  ///
  /// NESTED SPLITTING: composing this with itself —
  /// `stream_seed(stream_seed(s, a), b)` — is NOT collision-free by
  /// construction. The outer call folds its 64-bit seed argument through
  /// the same Weyl-step + SplitMix64 mix, so two distinct (a, b) pairs can
  /// in principle land on the same final seed (a birthday bound of
  /// ~2^-64 per pair, but nothing *structural* rules it out, and a
  /// collision silently correlates two "independent" Monte-Carlo trials).
  /// Callers that need a two-level split (parameter cell x replication,
  /// as in the cim::exp campaign engine) should use `stream_seed2`, which
  /// mixes both indices into the state in one pass; the campaign key
  /// space is additionally collision-audited by
  /// tests/exp/test_seed_audit.cpp.
  static std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream);

  /// Two-index sub-stream seed for nested splits: a pure function of
  /// (seed, hi, lo) that feeds both indices through *independent* Weyl
  /// constants before the double SplitMix64 finalizer, instead of chaining
  /// two stream_seed calls. Use for cell x replication style key spaces;
  /// `stream_seed2(s, 0, i) != stream_seed(s, i)` in general (the two
  /// families are distinct by design, so mixing them in one experiment
  /// cannot alias).
  static std::uint64_t stream_seed2(std::uint64_t seed, std::uint64_t hi,
                                    std::uint64_t lo);

  /// Generator over sub-stream `stream` of `seed` (see `stream_seed`).
  static Rng stream(std::uint64_t seed, std::uint64_t stream_index);

  /// Generator over the two-index sub-stream (see `stream_seed2`).
  static Rng stream2(std::uint64_t seed, std::uint64_t hi, std::uint64_t lo);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cim::util
