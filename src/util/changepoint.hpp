/// \file changepoint.hpp
/// \brief Changepoint detection on streaming time series.
///
/// The on-line fault-detection method of Liu et al. (ITC'20), summarized in
/// Section III.C / Fig. 7 of the paper, monitors the dynamic power
/// consumption of every ReRAM crossbar and flags a fault event when a
/// *changepoint* appears in the monitored series. We provide:
///   - a two-sided CUSUM detector (the classic low-cost streaming choice),
///   - an offline single-changepoint locator (max mean-shift likelihood)
///     used to post-hoc estimate where the change actually happened.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

namespace cim::util {

/// Streaming two-sided CUSUM detector for mean shifts.
///
/// The detector is calibrated on the first `warmup` samples (assumed
/// in-control), estimating mu0/sigma0. Afterwards it accumulates
///   S+ = max(0, S+ + (z - k)),   S- = max(0, S- - (z + k))
/// with z the standardized observation, slack `k` (in sigmas) and alarm
/// threshold `h` (in sigmas). An alarm latches until reset().
class CusumDetector {
 public:
  struct Config {
    std::size_t warmup = 200;  ///< samples used to estimate the in-control mean/sd
    double k = 0.75;           ///< slack, in units of sigma
    double h = 10.0;           ///< decision threshold, in units of sigma
  };

  CusumDetector();
  explicit CusumDetector(Config cfg);

  /// Feeds one observation; returns true iff this sample *triggers* the alarm
  /// (transitions the detector into the alarmed state).
  bool update(double x);

  bool alarmed() const { return alarmed_; }
  /// Index (0-based sample number) at which the alarm fired, if any.
  std::optional<std::size_t> alarm_index() const { return alarm_index_; }
  /// Number of samples consumed so far.
  std::size_t samples() const { return n_; }
  /// In-control mean estimated during warmup (0 before warmup completes).
  double mu0() const { return mu0_; }
  double sigma0() const { return sigma0_; }

  /// Clears alarm and statistics; keeps configuration.
  void reset();

 private:
  Config cfg_;
  std::size_t n_ = 0;
  // Warmup accumulation.
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double mu0_ = 0.0;
  double sigma0_ = 0.0;
  // CUSUM state.
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
  bool alarmed_ = false;
  std::optional<std::size_t> alarm_index_;
};

/// Offline maximum-likelihood single changepoint locator for a mean shift.
///
/// Returns the index t (1 <= t < n) that maximizes the between-segment
/// variance reduction, or nullopt when n < 4 or the series is constant.
std::optional<std::size_t> locate_mean_shift(std::span<const double> xs);

}  // namespace cim::util
