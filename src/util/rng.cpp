#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace cim::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded generation is overkill here;
  // rejection sampling keeps the distribution exactly uniform.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 strictly in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_cached_normal_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::normal_approx() {
  // Irwin-Hall with n = 4: sum of four U(0,1) has mean 2, variance 4/12, so
  // (sum - 2) * sqrt(3) is moment-matched to N(0, 1).
  const double sum = uniform() + uniform() + uniform() + uniform();
  return (sum - 2.0) * 1.7320508075688772;  // sqrt(3)
}

double Rng::normal_approx(double mean, double stddev) {
  return mean + stddev * normal_approx();
}

double Rng::lognormal(double mu_log, double sigma_log) {
  return std::exp(normal(mu_log, sigma_log));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = uniform_int(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() { return Rng((*this)()); }

std::uint64_t Rng::stream_seed(std::uint64_t seed, std::uint64_t stream) {
  // Weyl-step the stream index so streams 0,1,2,... land far apart in the
  // SplitMix64 sequence, then mix twice for full avalanche.
  std::uint64_t x = seed ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  (void)splitmix64(x);
  return splitmix64(x);
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_index) {
  return Rng(stream_seed(seed, stream_index));
}

std::uint64_t Rng::stream_seed2(std::uint64_t seed, std::uint64_t hi,
                                std::uint64_t lo) {
  // Independent odd Weyl constants for the two indices (golden-ratio and
  // stream_seed's increment) keep (hi, lo) -> state injective modulo 2^64
  // before the avalanche rounds; a distinct xor constant separates this
  // family from single-index stream_seed outputs.
  std::uint64_t x = seed ^ 0x6a09e667f3bcc909ULL;  // sqrt(2) fraction bits
  x ^= hi * 0x9e3779b97f4a7c15ULL + 0x165667b19e3779f9ULL;
  x += lo * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL;
  (void)splitmix64(x);
  return splitmix64(x);
}

Rng Rng::stream2(std::uint64_t seed, std::uint64_t hi, std::uint64_t lo) {
  return Rng(stream_seed2(seed, hi, lo));
}

}  // namespace cim::util
