#include "util/kernels.hpp"

#include <algorithm>

namespace cim::util::kernels {

namespace {
// Block sizes sized for a ~32 KiB L1d: one B panel (kKc x kNc doubles) plus
// the C row slice stay resident while the k-loop streams over it.
constexpr std::size_t kKc = 64;
constexpr std::size_t kNc = 256;
}  // namespace

void gemm_accumulate(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t k1 = std::min(k, k0 + kKc);
    for (std::size_t n0 = 0; n0 < n; n0 += kNc) {
      const std::size_t n1 = std::min(n, n0 + kNc);
      const std::size_t nb = n1 - n0;
      for (std::size_t r = 0; r < m; ++r) {
        const double* a_row = a + r * lda;
        double* c_row = c + r * ldc + n0;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double av = a_row[kk];
          if (av == 0.0) continue;
          axpy(av, b + kk * ldb + n0, c_row, nb);
        }
      }
    }
  }
}

}  // namespace cim::util::kernels
