/// \file simd_dispatch.hpp
/// \brief Runtime ISA dispatch for the util::kernels micro-kernels.
///
/// The numeric kernels (dot, axpy, gemm_accumulate, vmm_row_accumulate)
/// exist in up to three implementations — portable scalar, AVX2+FMA, and
/// AVX-512 — compiled into separate translation units with per-file ISA
/// flags. At startup the best table supported by both the build and the
/// CPU (CPUID) is selected, overridable with the `CIM_SIMD` environment
/// variable (`scalar`, `avx2`, `avx512`, `auto`); requests the host cannot
/// honour are clamped down with a one-time stderr notice. The hot path is
/// one relaxed atomic load of the active table pointer.
///
/// Bit-exactness contract across tables (tested by tests/util
/// /test_simd_kernels.cpp, enforced by compiling the SIMD TUs with
/// -ffp-contract=off so mul+add never silently fuses):
///  - `axpy`, `gemm_accumulate`, and the `currents` / `noise_var` outputs
///    of `vmm_row_accumulate` are **bit-identical** on every table: all are
///    element-wise mul-then-add updates in the same element order, and the
///    SIMD variants use separate multiply and add (no FMA) for them.
///  - `dot` and the `energy` reduction of `vmm_row_accumulate` are
///    *reductions*: each table reassociates them differently (scalar: the
///    historical 4-way / serial chains; SIMD: per-lane partials reduced at
///    the end). Deterministic per table, ulp-level drift between tables.
///
/// This module deliberately depends on nothing else in the repo so both
/// cim_util (the kernels) and cim_obs (build-info stamping) can link it.
#pragma once

#include <cstddef>
#include <vector>

namespace cim::util::simd {

/// Dispatchable instruction-set tiers, ordered by capability.
enum class Isa : int {
  kScalar = 0,  ///< portable C++, bit-identical to the historical kernels
  kAvx2 = 1,    ///< AVX2 + FMA, 256-bit lanes
  kAvx512 = 2,  ///< AVX-512 F/DQ/VL, 512-bit lanes
};

constexpr const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

/// One resolved implementation set. All four entry points share layout and
/// contracts with util::kernels (see kernels.hpp for the semantics).
struct KernelTable {
  Isa isa = Isa::kScalar;
  double (*dot)(const double* a, const double* b, std::size_t n) = nullptr;
  void (*axpy)(double a, const double* x, double* y, std::size_t n) = nullptr;
  void (*gemm_accumulate)(const double* a, std::size_t lda, const double* b,
                          std::size_t ldb, double* c, std::size_t ldc,
                          std::size_t m, std::size_t k,
                          std::size_t n) = nullptr;
  void (*vmm_row_accumulate)(double v, const double* g, double* currents,
                             double* noise_var, double noise_frac,
                             double t_read_ns, std::size_t n,
                             double& energy) = nullptr;
};

/// The active kernel table: one relaxed load; first call resolves CPUID +
/// the CIM_SIMD override.
const KernelTable& active();

/// ISA of the active table.
Isa active_isa();

/// Name of the active table's ISA ("scalar" / "avx2" / "avx512").
const char* active_isa_name();

/// Best ISA both this build and this CPU support.
Isa max_supported_isa();

/// Every ISA this process can execute, ascending (always contains kScalar).
std::vector<Isa> supported_isas();

/// Forces the active table (tests / benches / the CIM_SIMD matrix). A
/// request above max_supported_isa() is clamped; returns the ISA actually
/// selected. Thread-safe (atomic pointer swap), but callers racing kernels
/// get an arbitrary mix of old/new tables — switch only at quiesce points.
Isa set_isa(Isa requested);

/// Table for one specific ISA (conformance tests sweep these directly).
/// Requests above max_supported_isa() clamp down to the best available
/// table, so the result is always executable on this host.
const KernelTable& table_for(Isa isa);

}  // namespace cim::util::simd
