/// \file table.hpp
/// \brief ASCII table / CSV emission for benchmark reports.
///
/// Every bench binary regenerating one of the paper's tables or figures
/// prints its rows through this formatter so outputs are uniform and easy to
/// diff against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cim::util {

/// Column-aligned text table with an optional title, plus CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  void set_title(std::string title) { title_ = std::move(title); }
  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Renders the aligned ASCII table (with separators) to `os`.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void print_csv(std::ostream& os) const;

  /// Formats a double with `prec` significant-looking decimals, trimming
  /// trailing zeros ("3.25", "12", "0.001").
  static std::string num(double v, int prec = 3);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cim::util
