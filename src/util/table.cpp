#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace cim::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto hline = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t i = row[c].size(); i < width[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  hline();
  print_row(header_);
  hline();
  for (const auto& row : rows_) print_row(row);
  hline();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const bool needs_quote =
          cell.find_first_of(",\"\n") != std::string::npos;
      if (c) os << ',';
      if (needs_quote) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int prec) {
  if (!std::isfinite(v)) return std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

}  // namespace cim::util
