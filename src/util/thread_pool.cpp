#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/obs.hpp"

namespace cim::util {

namespace {
// Depth of parallel_for bodies executing on this thread: a nested call must
// run inline instead of re-entering the (single-job) pool.
thread_local int tls_body_depth = 0;

// Lane index for per-worker utilization telemetry: workers get 1..n-1 in
// worker_loop, submitters default to lane 0 (the caller participates).
thread_local std::size_t tls_lane = 0;

// Cumulative ns this lane spent executing chunk bodies. Lane is fixed per
// thread, so the registry counter resolves once per thread.
obs::Counter& lane_busy_counter() {
  thread_local obs::Counter* counter = &obs::Registry::global().counter(
      "threadpool.lane" + std::to_string(tls_lane) + ".busy_ns");
  return *counter;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  for (std::size_t i = 1; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::parse_threads(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long n = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0') return 0;
  return static_cast<std::size_t>(std::min(n, 1024ul));
}

std::size_t ThreadPool::default_threads() {
  if (const std::size_t n = parse_threads(std::getenv("CIM_THREADS")); n > 0)
    return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_threads());
  return pool;
}

void ThreadPool::run_inline(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t)>& body) {
  ++tls_body_depth;
  try {
    for (std::size_t i = begin; i < end; ++i) body(i);
  } catch (...) {
    --tls_body_depth;
    throw;
  }
  --tls_body_depth;
}

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    const std::size_t start =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (start >= job.count) return;
    const std::size_t span = std::min(job.chunk, job.count - start);
    if (!job.cancelled.load(std::memory_order_relaxed)) {
      const bool timed = obs::enabled();
      const std::uint64_t chunk_t0 = timed ? obs::detail::now_ns() : 0;
      ++tls_body_depth;
      for (std::size_t i = 0; i < span; ++i) {
        try {
          (*job.body)(job.begin + start + i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> g(job.error_mu);
            if (!job.error) job.error = std::current_exception();
          }
          job.cancelled.store(true, std::memory_order_relaxed);
          break;
        }
      }
      --tls_body_depth;
      if (timed) {
        lane_busy_counter().add(obs::detail::now_ns() - chunk_t0);
        obs::Registry::global().counter("threadpool.chunks").add(1);
      }
    }
    // Claimed indices count as done whether executed or cancelled-skipped;
    // the cursor keeps draining, so `done` provably reaches `count`.
    if (job.done.fetch_add(span, std::memory_order_acq_rel) + span ==
        job.count) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(std::size_t lane) {
  tls_lane = lane;
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || job_epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = job_epoch_;
    Job* job = job_;
    if (job == nullptr) continue;
    ++active_runners_;
    lk.unlock();
    run_chunks(*job);
    lk.lock();
    if (--active_runners_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (workers_.empty() || n == 1 || tls_body_depth > 0) {
    run_inline(begin, end, body);
    return;
  }

  if (obs::enabled()) {
    obs::Registry::global().counter("threadpool.jobs").add(1);
    obs::Registry::global()
        .gauge("threadpool.threads")
        .set(static_cast<double>(thread_count()));
  }

  std::lock_guard<std::mutex> submit(submit_mu_);
  Job job;
  job.begin = begin;
  job.count = n;
  job.chunk = std::max<std::size_t>(1, n / (4 * thread_count()));
  job.body = &body;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++job_epoch_;
  }
  work_cv_.notify_all();
  run_chunks(job);
  {
    // Wait for every claimed index AND for all workers to leave run_chunks
    // before the stack-allocated job goes out of scope.
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return job.done.load(std::memory_order_acquire) == n &&
             active_runners_ == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace cim::util
