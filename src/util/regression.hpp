/// \file regression.hpp
/// \brief Small dense ridge regression used to train the ML-based fault-rate
///        estimator of Section III.C (power-profile statistics -> estimated
///        fraction of faulty cells).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cim::util {

/// Ridge (L2-regularized) linear regression solved by normal equations with
/// Cholesky factorization. Features are standardized internally so lambda is
/// scale-free; a bias term is always included (and not regularized).
class RidgeRegression {
 public:
  explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {}

  /// Fits on `n` rows of `dim`-dimensional features. `features` is row-major
  /// with n*dim entries; `targets` has n entries.
  void fit(std::span<const double> features, std::span<const double> targets,
           std::size_t dim);

  /// Predicts a single row of `dim` features (dim must match fit()).
  double predict(std::span<const double> row) const;

  bool fitted() const { return !weights_.empty(); }
  std::size_t dim() const { return weights_.size(); }
  /// Coefficient of determination on a dataset (row-major features).
  double r2(std::span<const double> features, std::span<const double> targets) const;

 private:
  double lambda_;
  std::vector<double> weights_;  // in standardized feature space
  std::vector<double> mean_;
  std::vector<double> scale_;
  double bias_ = 0.0;
};

}  // namespace cim::util
