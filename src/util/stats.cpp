#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cim::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  RunningStats rs;
  for (double x : xs) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);

  if (s.stddev > 0.0 && xs.size() > 2) {
    double m3 = 0.0;
    double m4 = 0.0;
    for (double x : xs) {
      const double z = (x - s.mean) / s.stddev;
      m3 += z * z * z;
      m4 += z * z * z * z;
    }
    const double n = static_cast<double>(xs.size());
    s.skewness = m3 / n;
    s.kurtosis = m4 / n - 3.0;
  }
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  RunningStats sx, sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

double mean_abs_error(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("mean_abs_error: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

double rms_error(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("rms_error: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::bin_center(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

}  // namespace cim::util
