/// \file perf_counters.hpp
/// \brief Process-wide performance counters for the hot simulator paths.
///
/// The per-instance `CrossbarStats` counters tell one array's story; these
/// process-wide aggregates let the bench harness (bench_common.hpp) stamp
/// every BENCH_JSON line with the total conductance-cache maintenance work
/// of the whole run — across every crossbar any subsystem constructed —
/// without threading stats objects through the bench code.
///
/// Counters are relaxed atomics: they are monotonically increasing event
/// counts with no ordering relationship to any other data, and the hot
/// paths must not pay a fence for them. Safe to increment from
/// ThreadPool::parallel_for bodies (Monte-Carlo trials own private
/// crossbars but share these aggregates).
#pragma once

#include <atomic>
#include <cstdint>

namespace cim::util::perf {

/// Whole-array conductance-cache rebuilds (O(rows*cols) each).
inline std::atomic<std::uint64_t> cache_full_rebuilds{0};

/// Dirty-list delta updates (O(|dirty|) each) that replaced a full rebuild.
inline std::atomic<std::uint64_t> cache_delta_updates{0};

}  // namespace cim::util::perf
