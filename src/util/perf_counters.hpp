/// \file perf_counters.hpp
/// \brief Process-wide performance counters for the hot simulator paths.
///
/// The per-instance `CrossbarStats` counters tell one array's story; these
/// process-wide aggregates let the bench harness (bench_common.hpp) stamp
/// every BENCH_JSON line with the total conductance-cache maintenance work
/// of the whole run — across every crossbar any subsystem constructed —
/// without threading stats objects through the bench code.
///
/// Storage now lives in the cim::obs metrics registry ("cache.full_rebuilds"
/// and "cache.delta_updates"); the objects here are thin views that keep the
/// historical `fetch_add`/`load` call sites compiling unchanged. The
/// registry counters are sharded relaxed atomics, so the concurrency
/// contract is the same as before: monotonically increasing event counts
/// with no ordering relationship to any other data, safe to bump from
/// ThreadPool::parallel_for bodies. These counters are *always on* — they
/// are storage, not telemetry, so they do not consult the CIM_OBS mode.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/obs.hpp"

namespace cim::util::perf {

/// Thin view over a registry counter, API-compatible with the
/// std::atomic<std::uint64_t> it replaced (the subset actually used:
/// fetch_add / load / operator++ / store(0) for reset).
class PerfCounter {
 public:
  explicit PerfCounter(const char* registry_name) : name_(registry_name) {}

  std::uint64_t fetch_add(std::uint64_t v,
                          std::memory_order = std::memory_order_relaxed) {
    obs::Counter& c = counter();
    const std::uint64_t prev = c.value();
    c.add(v);
    return prev;  // approximate under contention, like any sharded read
  }
  std::uint64_t load(std::memory_order = std::memory_order_relaxed) const {
    return counter().value();
  }
  void store(std::uint64_t v,
             std::memory_order = std::memory_order_relaxed) {
    obs::Counter& c = counter();
    c.reset();
    if (v != 0) c.add(v);
  }
  std::uint64_t operator++() { return fetch_add(1) + 1; }

 private:
  obs::Counter& counter() const {
    obs::Counter* c = cached_.load(std::memory_order_acquire);
    if (c == nullptr) {
      c = &obs::Registry::global().counter(name_);
      cached_.store(c, std::memory_order_release);
    }
    return *c;
  }

  const char* name_;
  mutable std::atomic<obs::Counter*> cached_{nullptr};
};

/// Whole-array conductance-cache rebuilds (O(rows*cols) each).
inline PerfCounter cache_full_rebuilds{"cache.full_rebuilds"};

/// Dirty-list delta updates (O(|dirty|) each) that replaced a full rebuild.
inline PerfCounter cache_delta_updates{"cache.delta_updates"};

}  // namespace cim::util::perf
