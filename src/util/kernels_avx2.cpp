/// \file kernels_avx2.cpp
/// \brief AVX2+FMA kernel variants (256-bit lanes).
///
/// Compiled with -mavx2 -mfma -ffp-contract=off (src/util/CMakeLists.txt):
/// contraction is disabled so the element-wise kernels (axpy, gemm's inner
/// axpy, vmm_row_accumulate's currents/noise_var updates) keep the separate
/// multiply-then-add rounding of the scalar baseline and stay bit-identical
/// to it. FMA is used only where the contract already permits
/// reassociation: the dot reduction. The energy reduction of
/// vmm_row_accumulate runs in four per-lane partial sums (columns c, c+4,
/// ... per lane) reduced once at the end — deterministic, but reassociated
/// relative to the scalar serial chain.
#include "util/kernels_impl.hpp"

#if CIM_SIMD_X86 && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace cim::util::kernels::detail {

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4)
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  const __m256d sum =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, sum);
  double r = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

void axpy_avx2(double a, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d y0 = _mm256_add_pd(
        _mm256_loadu_pd(y + i), _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    const __m256d y1 =
        _mm256_add_pd(_mm256_loadu_pd(y + i + 4),
                      _mm256_mul_pd(va, _mm256_loadu_pd(x + i + 4)));
    _mm256_storeu_pd(y + i, y0);
    _mm256_storeu_pd(y + i + 4, y1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d y0 = _mm256_add_pd(
        _mm256_loadu_pd(y + i), _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, y0);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void vmm_row_accumulate_avx2(double v, const double* g, double* currents,
                             double* noise_var, double noise_frac,
                             double t_read_ns, std::size_t n, double& energy) {
  const __m256d vv = _mm256_set1_pd(v);
  const __m256d vnf = _mm256_set1_pd(noise_frac);
  const __m256d vt = _mm256_set1_pd(t_read_ns);
  const __m256d vmilli = _mm256_set1_pd(1e-3);
  const __m256d abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(
      static_cast<long long>(0x7fffffffffffffffULL)));
  __m256d e_acc = _mm256_setzero_pd();
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256d gi = _mm256_loadu_pd(g + c);
    const __m256d icur = _mm256_mul_pd(vv, gi);
    _mm256_storeu_pd(currents + c,
                     _mm256_add_pd(_mm256_loadu_pd(currents + c), icur));
    const __m256d cell_noise = _mm256_mul_pd(vnf, icur);
    _mm256_storeu_pd(noise_var + c,
                     _mm256_add_pd(_mm256_loadu_pd(noise_var + c),
                                   _mm256_mul_pd(cell_noise, cell_noise)));
    // Same per-element term shape as the scalar chain: |v*i| * t * 1e-3.
    const __m256d vi = _mm256_and_pd(_mm256_mul_pd(vv, icur), abs_mask);
    e_acc = _mm256_add_pd(e_acc,
                          _mm256_mul_pd(_mm256_mul_pd(vi, vt), vmilli));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, e_acc);
  double e = energy + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
  for (; c < n; ++c) {
    const double i = v * g[c];
    currents[c] += i;
    const double cell_noise = noise_frac * i;
    noise_var[c] += cell_noise * cell_noise;
    e += std::abs(v * i) * t_read_ns * 1e-3;
  }
  energy = e;
}

namespace {
// Identical blocking to the scalar gemm (kernels_scalar.cpp): only the
// inner axpy is widened, so C accumulates in the same k-order with the
// same per-element rounding — bit-identical across tables.
constexpr std::size_t kKc = 64;
constexpr std::size_t kNc = 256;
}  // namespace

void gemm_accumulate_avx2(const double* a, std::size_t lda, const double* b,
                          std::size_t ldb, double* c, std::size_t ldc,
                          std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t k1 = std::min(k, k0 + kKc);
    for (std::size_t n0 = 0; n0 < n; n0 += kNc) {
      const std::size_t n1 = std::min(n, n0 + kNc);
      const std::size_t nb = n1 - n0;
      for (std::size_t r = 0; r < m; ++r) {
        const double* a_row = a + r * lda;
        double* c_row = c + r * ldc + n0;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double av = a_row[kk];
          if (av == 0.0) continue;
          axpy_avx2(av, b + kk * ldb + n0, c_row, nb);
        }
      }
    }
  }
}

}  // namespace cim::util::kernels::detail

#endif  // CIM_SIMD_X86 && __AVX2__ && __FMA__
