/// \file simd_dispatch.cpp
/// \brief Runtime resolution of the active kernel table (CPUID + CIM_SIMD).
#include "util/simd_dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/kernels_impl.hpp"

namespace cim::util::simd {
namespace {

using namespace cim::util::kernels::detail;

const KernelTable kScalarTable{Isa::kScalar, &dot_scalar, &axpy_scalar,
                               &gemm_accumulate_scalar,
                               &vmm_row_accumulate_scalar};

#if CIM_SIMD_HAVE_AVX2
const KernelTable kAvx2Table{Isa::kAvx2, &dot_avx2, &axpy_avx2,
                             &gemm_accumulate_avx2, &vmm_row_accumulate_avx2};
#endif
#if CIM_SIMD_HAVE_AVX512
const KernelTable kAvx512Table{Isa::kAvx512, &dot_avx512, &axpy_avx512,
                               &gemm_accumulate_avx512,
                               &vmm_row_accumulate_avx512};
#endif

Isa detect_max_isa() {
#if CIM_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
#if CIM_SIMD_HAVE_AVX512
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return Isa::kAvx512;
  }
#endif
#if CIM_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::kAvx2;
  }
#endif
#endif
  return Isa::kScalar;
}

Isa clamp_to_supported(Isa requested, const char* origin) {
  const Isa max = max_supported_isa();
  if (static_cast<int>(requested) <= static_cast<int>(max)) return requested;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "[cim] %s requested SIMD tier '%s' but this host/build "
                 "supports at most '%s'; clamping.\n",
                 origin, isa_name(requested), isa_name(max));
  }
  return max;
}

/// Resolves the startup table: CPUID best, overridden by CIM_SIMD.
Isa resolve_startup_isa() {
  Isa isa = max_supported_isa();
  const char* env = std::getenv("CIM_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0)
    return isa;
  if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
  if (std::strcmp(env, "avx2") == 0)
    return clamp_to_supported(Isa::kAvx2, "CIM_SIMD");
  if (std::strcmp(env, "avx512") == 0)
    return clamp_to_supported(Isa::kAvx512, "CIM_SIMD");
  std::fprintf(stderr,
               "[cim] unrecognised CIM_SIMD value '%s' "
               "(want scalar|avx2|avx512|auto); using '%s'.\n",
               env, isa_name(isa));
  return isa;
}

std::atomic<const KernelTable*>& active_slot() {
  static std::atomic<const KernelTable*> slot{
      &table_for(resolve_startup_isa())};
  return slot;
}

}  // namespace

Isa max_supported_isa() {
  static const Isa max = detect_max_isa();
  return max;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> out{Isa::kScalar};
  const int max = static_cast<int>(max_supported_isa());
  if (max >= static_cast<int>(Isa::kAvx2)) out.push_back(Isa::kAvx2);
  if (max >= static_cast<int>(Isa::kAvx512)) out.push_back(Isa::kAvx512);
  return out;
}

const KernelTable& table_for(Isa isa) {
  const Isa max = max_supported_isa();
  if (static_cast<int>(isa) > static_cast<int>(max)) isa = max;
#if CIM_SIMD_HAVE_AVX512
  if (isa == Isa::kAvx512) return kAvx512Table;
#endif
#if CIM_SIMD_HAVE_AVX2
  if (isa == Isa::kAvx2) return kAvx2Table;
#endif
  (void)isa;
  return kScalarTable;
}

const KernelTable& active() {
  return *active_slot().load(std::memory_order_relaxed);
}

Isa active_isa() { return active().isa; }

const char* active_isa_name() { return isa_name(active_isa()); }

Isa set_isa(Isa requested) {
  const Isa granted = clamp_to_supported(requested, "set_isa");
  active_slot().store(&table_for(granted), std::memory_order_relaxed);
  return granted;
}

}  // namespace cim::util::simd
