/// \file stats.hpp
/// \brief Streaming and batch statistics used by the power monitor, the
///        fault-rate estimator and the benchmark reporters.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cim::util {

/// Welford-style streaming accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample: moments plus order statistics.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  /// Skewness (third standardized moment); 0 for degenerate samples.
  double skewness = 0.0;
  /// Excess kurtosis; 0 for degenerate samples.
  double kurtosis = 0.0;
};

/// Computes a full summary of `xs` (copies for the quantile sort).
Summary summarize(std::span<const double> xs);

/// Linear interpolation quantile of a *sorted* sample, q in [0,1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Pearson correlation coefficient; 0 if either side is degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Mean absolute error between two equally sized vectors.
double mean_abs_error(std::span<const double> a, std::span<const double> b);

/// Root mean square error between two equally sized vectors.
double rms_error(std::span<const double> a, std::span<const double> b);

/// Fixed-width histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Center of bin i.
  double bin_center(std::size_t i) const;
  /// Count of samples outside [lo, hi).
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace cim::util
