#include "util/changepoint.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cim::util {

CusumDetector::CusumDetector() : CusumDetector(Config{}) {}

CusumDetector::CusumDetector(Config cfg) : cfg_(cfg) {
  if (cfg_.warmup < 2) cfg_.warmup = 2;
}

bool CusumDetector::update(double x) {
  ++n_;
  if (n_ <= cfg_.warmup) {
    sum_ += x;
    sumsq_ += x * x;
    if (n_ == cfg_.warmup) {
      const double n = static_cast<double>(cfg_.warmup);
      mu0_ = sum_ / n;
      const double var = std::max(0.0, sumsq_ / n - mu0_ * mu0_);
      sigma0_ = std::sqrt(var);
      // A perfectly constant warmup would make every later deviation an
      // infinite z-score; use a tiny floor relative to the mean instead.
      if (sigma0_ <= 0.0) sigma0_ = std::max(1e-12, std::abs(mu0_) * 1e-9);
    }
    return false;
  }
  if (alarmed_) return false;

  const double z = (x - mu0_) / sigma0_;
  s_pos_ = std::max(0.0, s_pos_ + z - cfg_.k);
  s_neg_ = std::max(0.0, s_neg_ - z - cfg_.k);
  if (s_pos_ > cfg_.h || s_neg_ > cfg_.h) {
    alarmed_ = true;
    alarm_index_ = n_ - 1;
    return true;
  }
  return false;
}

void CusumDetector::reset() {
  n_ = 0;
  sum_ = sumsq_ = 0.0;
  mu0_ = sigma0_ = 0.0;
  s_pos_ = s_neg_ = 0.0;
  alarmed_ = false;
  alarm_index_.reset();
}

std::optional<std::size_t> locate_mean_shift(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 4) return std::nullopt;

  // Prefix sums for O(n) scan over split points.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + xs[i];
  const double total = prefix[n];

  // Total sum of squares: the gain is compared against it so numerically
  // constant series do not report spurious changepoints.
  double sst = 0.0;
  {
    const double grand = total / static_cast<double>(n);
    for (const double x : xs) sst += (x - grand) * (x - grand);
  }
  if (sst <= 1e-12 * std::abs(total)) return std::nullopt;

  double best_gain = 0.0;
  std::optional<std::size_t> best_t;
  for (std::size_t t = 1; t < n; ++t) {
    const double nl = static_cast<double>(t);
    const double nr = static_cast<double>(n - t);
    const double ml = prefix[t] / nl;
    const double mr = (total - prefix[t]) / nr;
    const double grand = total / static_cast<double>(n);
    // Between-segment sum of squares: the likelihood-ratio statistic for a
    // Gaussian mean shift is monotone in this quantity.
    const double gain =
        nl * (ml - grand) * (ml - grand) + nr * (mr - grand) * (mr - grand);
    if (gain > best_gain) {
      best_gain = gain;
      best_t = t;
    }
  }
  return best_gain > 0.0 ? best_t : std::nullopt;
}

}  // namespace cim::util
