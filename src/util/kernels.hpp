/// \file kernels.hpp
/// \brief Blocked, FMA-friendly numeric micro-kernels for the simulator's
///        inner loops (crossbar VMM, dense matvec/GEMM, im2col conv).
///
/// These are the tight loops NeuroSim/MNSIM-class frameworks spend their
/// time in. Layout assumptions are uniform across the repo: dense row-major
/// `double` storage (util::Matrix, the crossbar conductance caches), so the
/// kernels take raw pointers + lengths and leave bounds checking to the
/// callers.
///
/// Accumulation contracts:
///  - `dot` / `gemm_accumulate` use multi-accumulator reassociation: they
///    are FMA/SIMD-friendly but NOT bitwise-equal to a serial left-to-right
///    sum. Use them where consumers tolerate ulp-level drift (NN layers,
///    dense linear algebra).
///  - `vmm_row_accumulate` preserves the exact element order and expression
///    shapes of the historical crossbar VMM loop — the crossbar's
///    bit-identical output contract (serial vmm == batched vmm == the
///    pre-incremental-cache behaviour) depends on it. Do not reassociate.
#pragma once

#include <cmath>
#include <cstddef>

namespace cim::util::kernels {

/// Dot product with 4-way accumulator splitting. The four independent
/// chains keep the FMA pipeline full; the compiler is free to vectorize.
inline double dot(const double* a, const double* b, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

/// y[i] += a * x[i]. Element-wise, so reassociation-free by construction.
inline void axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

/// Fused crossbar-VMM row update over one wordline:
///
///   i            = v * g[c]
///   currents[c] += i
///   noise_var[c] += (noise_frac * i)^2
///   energy      += |v * i| * t_read_ns * 1e-3        (pJ)
///
/// Element order and expression shapes replicate the historical
/// Crossbar::accumulate_currents loop exactly (see accumulation contract
/// above): `energy` is carried through sequentially so the running sum sees
/// the same rounding sequence.
inline void vmm_row_accumulate(double v, const double* g, double* currents,
                               double* noise_var, double noise_frac,
                               double t_read_ns, std::size_t n,
                               double& energy) {
  double e = energy;
  for (std::size_t c = 0; c < n; ++c) {
    const double i = v * g[c];
    currents[c] += i;
    const double cell_noise = noise_frac * i;
    noise_var[c] += cell_noise * cell_noise;
    e += std::abs(v * i) * t_read_ns * 1e-3;
  }
  energy = e;
}

/// C (m x n) += A (m x k) * B (k x n), all row-major with the given leading
/// strides. Blocked over k and n to keep the B panel and C row in cache;
/// the inner update is an axpy, so each C element accumulates in k-order.
void gemm_accumulate(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t m, std::size_t k, std::size_t n);

}  // namespace cim::util::kernels
