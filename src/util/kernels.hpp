/// \file kernels.hpp
/// \brief Runtime-dispatched numeric micro-kernels for the simulator's
///        inner loops (crossbar VMM, dense matvec/GEMM, im2col conv).
///
/// These are the tight loops NeuroSim/MNSIM-class frameworks spend their
/// time in. Layout assumptions are uniform across the repo: dense row-major
/// `double` storage (util::Matrix, the crossbar conductance caches), so the
/// kernels take raw pointers + lengths and leave bounds checking to the
/// callers.
///
/// Each entry point forwards through the active simd::KernelTable (one
/// relaxed atomic load), selected at startup from CPUID and the `CIM_SIMD`
/// environment variable — see simd_dispatch.hpp for the selection rules
/// and the full cross-ISA bit-exactness contract.
///
/// Accumulation contracts:
///  - `dot` / `gemm_accumulate` tolerate reassociation: `dot` uses
///    multi-accumulator splitting (4-way scalar, per-lane FMA on SIMD
///    tables) and is deterministic per table but drifts by ulps across
///    tables. `gemm_accumulate` accumulates each C element in k-order with
///    separate mul+add on every table, so it is in fact bit-identical
///    across tables — but callers should still only rely on the weaker
///    per-table determinism.
///  - `vmm_row_accumulate`'s `currents` / `noise_var` outputs preserve the
///    exact element order and expression shapes of the historical crossbar
///    VMM loop on every table — the crossbar's bit-identical output
///    contract (serial vmm == batched vmm == any CIM_SIMD setting) depends
///    on it. Only its `energy` reduction reassociates across tables.
///  - `dot_serial` is the order-preserving escape hatch: strict
///    left-to-right summation, never dispatched, bit-identical everywhere.
///    Route callers that require reproducible sums across ISA settings
///    through it.
#pragma once

#include <cmath>
#include <cstddef>

#include "util/simd_dispatch.hpp"

namespace cim::util::kernels {

/// Dot product via the active table (4-way scalar splitting or per-lane
/// FMA accumulators). Deterministic for a fixed table; reassociated —
/// NOT bitwise-stable across CIM_SIMD settings. Callers needing that use
/// dot_serial().
inline double dot(const double* a, const double* b, std::size_t n) {
  return simd::active().dot(a, b, n);
}

/// Strict left-to-right dot product. Never dispatched: bit-identical on
/// every host, thread count, and CIM_SIMD setting. Slower than dot() —
/// one dependent add chain — so reserve it for bit-exactness-dependent
/// callers (golden files, cross-run replay checks).
inline double dot_serial(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// y[i] += a * x[i]. Element-wise separate mul+add on every table:
/// bit-identical across CIM_SIMD settings.
inline void axpy(double a, const double* x, double* y, std::size_t n) {
  simd::active().axpy(a, x, y, n);
}

/// Fused crossbar-VMM row update over one wordline:
///
///   i            = v * g[c]
///   currents[c] += i
///   noise_var[c] += (noise_frac * i)^2
///   energy      += |v * i| * t_read_ns * 1e-3        (pJ)
///
/// `currents` / `noise_var` replicate the historical per-element rounding
/// on every table (bit-identical across CIM_SIMD settings). `energy` is a
/// reduction: serial chain on scalar, per-lane partials on SIMD tables —
/// deterministic per table, ulp drift across tables.
inline void vmm_row_accumulate(double v, const double* g, double* currents,
                               double* noise_var, double noise_frac,
                               double t_read_ns, std::size_t n,
                               double& energy) {
  simd::active().vmm_row_accumulate(v, g, currents, noise_var, noise_frac,
                                    t_read_ns, n, energy);
}

/// C (m x n) += A (m x k) * B (k x n), all row-major with the given leading
/// strides. Blocked over k and n to keep the B panel and C row in cache;
/// the inner update is an axpy, so each C element accumulates in k-order
/// with separate mul+add on every table.
inline void gemm_accumulate(const double* a, std::size_t lda, const double* b,
                            std::size_t ldb, double* c, std::size_t ldc,
                            std::size_t m, std::size_t k, std::size_t n) {
  simd::active().gemm_accumulate(a, lda, b, ldb, c, ldc, m, k, n);
}

}  // namespace cim::util::kernels
