/// \file thread_pool.hpp
/// \brief Fixed-size thread pool with a deterministic `parallel_for`.
///
/// The simulator's heavy loops — batched VMM, Monte-Carlo trial sweeps,
/// per-tile execution — are embarrassingly parallel: every index touches
/// disjoint state. This pool exploits that without sacrificing the
/// repo-wide reproducibility contract: `parallel_for(begin, end, body)`
/// partitions the *index space*, never the RNG streams, so as long as the
/// body derives any randomness from the index (see `Rng::stream`) the
/// result is bit-identical for any pool size — including 1.
///
/// Design choices, deliberately boring:
///  - fixed worker count, no work stealing: chunks are claimed from a
///    single atomic cursor, which load-balances uneven bodies well enough
///    and keeps the scheduler trivially auditable;
///  - the calling thread participates, so a pool of size n uses exactly
///    n lanes and a size-1 pool degenerates to the plain serial loop;
///  - nested `parallel_for` from inside a body runs inline (serial) rather
///    than deadlocking on the pool;
///  - the first exception thrown by a body cancels the remaining chunks
///    and is rethrown on the calling thread.
///
/// The process-wide pool (`ThreadPool::global()`) is sized by the
/// `CIM_THREADS` environment variable, falling back to the hardware
/// concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cim::util {

class ThreadPool {
 public:
  /// `threads` is the total number of lanes, counting the caller;
  /// 0 means `default_threads()`.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes (worker threads + the participating caller).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs `body(i)` for every i in [begin, end) and blocks until all calls
  /// return. Bodies must only touch per-index state (or synchronize
  /// themselves). Empty ranges return immediately; calls from inside a
  /// body run inline.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide pool, sized once from `default_threads()`.
  static ThreadPool& global();

  /// CIM_THREADS if set to a positive integer, else hardware concurrency
  /// (at least 1).
  static std::size_t default_threads();

  /// Parses a CIM_THREADS-style value; returns 0 when unset/invalid so the
  /// caller can fall back (separated out for testability).
  static std::size_t parse_threads(const char* value);

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t count = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> cancelled{false};
    const std::function<void(std::size_t)>* body = nullptr;
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void worker_loop(std::size_t lane);
  void run_chunks(Job& job);
  void run_inline(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< wakes workers on a new job
  std::condition_variable done_cv_;   ///< wakes the submitter on completion
  Job* job_ = nullptr;
  std::uint64_t job_epoch_ = 0;
  std::size_t active_runners_ = 0;    ///< workers currently inside run_chunks
  bool stop_ = false;
  std::mutex submit_mu_;              ///< serializes concurrent submitters
};

}  // namespace cim::util
