/// \file matrix.hpp
/// \brief Minimal dense row-major matrix used by the crossbar simulator and
///        the neural-network substrate. Header-only, value semantics.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/kernels.hpp"

namespace cim::util {

/// Dense row-major matrix of doubles with bounds-checked element access.
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged init");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    check(r, 0);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    check(r, 0);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  /// y = A x   (x.size() == cols, result has rows entries)
  std::vector<double> matvec(std::span<const double> x) const {
    if (x.size() != cols_) throw std::invalid_argument("matvec: dim mismatch");
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
      y[r] = kernels::dot(data_.data() + r * cols_, x.data(), cols_);
    return y;
  }

  /// y = A^T x   (x.size() == rows, result has cols entries)
  std::vector<double> matvec_transposed(std::span<const double> x) const {
    if (x.size() != rows_) throw std::invalid_argument("matvec_transposed: dim mismatch");
    std::vector<double> y(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
      kernels::axpy(x[r], data_.data() + r * cols_, y.data(), cols_);
    return y;
  }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  Matrix multiply(const Matrix& other) const {
    if (cols_ != other.rows_) throw std::invalid_argument("multiply: dim mismatch");
    Matrix out(rows_, other.cols_);
    kernels::gemm_accumulate(data_.data(), cols_, other.data_.data(),
                             other.cols_, out.data_.data(), other.cols_,
                             rows_, cols_, other.cols_);
    return out;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix index");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace cim::util
