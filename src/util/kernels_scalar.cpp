/// \file kernels_scalar.cpp
/// \brief Portable scalar kernel variants — the dispatch baseline.
///
/// These are the historical util::kernels implementations moved verbatim
/// (same expression shapes, same accumulation order), so dispatch forced to
/// `scalar` reproduces the pre-dispatch simulator bit-for-bit. Compiled
/// without any -m ISA flags: the baseline x86-64 / portable code the repo
/// always produced.
#include <algorithm>
#include <cmath>

#include "util/kernels_impl.hpp"

namespace cim::util::kernels::detail {

double dot_scalar(const double* a, const double* b, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

void axpy_scalar(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void vmm_row_accumulate_scalar(double v, const double* g, double* currents,
                               double* noise_var, double noise_frac,
                               double t_read_ns, std::size_t n,
                               double& energy) {
  double e = energy;
  for (std::size_t c = 0; c < n; ++c) {
    const double i = v * g[c];
    currents[c] += i;
    const double cell_noise = noise_frac * i;
    noise_var[c] += cell_noise * cell_noise;
    e += std::abs(v * i) * t_read_ns * 1e-3;
  }
  energy = e;
}

namespace {
// Block sizes sized for a ~32 KiB L1d: one B panel (kKc x kNc doubles) plus
// the C row slice stay resident while the k-loop streams over it.
constexpr std::size_t kKc = 64;
constexpr std::size_t kNc = 256;
}  // namespace

void gemm_accumulate_scalar(const double* a, std::size_t lda, const double* b,
                            std::size_t ldb, double* c, std::size_t ldc,
                            std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t k1 = std::min(k, k0 + kKc);
    for (std::size_t n0 = 0; n0 < n; n0 += kNc) {
      const std::size_t n1 = std::min(n, n0 + kNc);
      const std::size_t nb = n1 - n0;
      for (std::size_t r = 0; r < m; ++r) {
        const double* a_row = a + r * lda;
        double* c_row = c + r * ldc + n0;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double av = a_row[kk];
          if (av == 0.0) continue;
          axpy_scalar(av, b + kk * ldb + n0, c_row, nb);
        }
      }
    }
  }
}

}  // namespace cim::util::kernels::detail
