#include "core/quantized_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cim::core {
namespace {

/// Quantizes an activation vector to unsigned codes of `bits` given the
/// calibrated ceiling.
std::vector<std::uint32_t> quantize_acts(std::span<const double> x,
                                         double ceiling, int bits) {
  const double qmax = static_cast<double>((1u << bits) - 1);
  std::vector<std::uint32_t> q(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = std::clamp(x[i], 0.0, ceiling);
    q[i] = static_cast<std::uint32_t>(std::lround(v / ceiling * qmax));
  }
  return q;
}

}  // namespace

QuantizedMlp QuantizedMlp::from_mlp(const nn::Mlp& mlp, int weight_bits,
                                    int act_bits, const nn::Dataset& calib) {
  if (weight_bits < 2 || weight_bits > 8 || act_bits < 1 || act_bits > 8)
    throw std::invalid_argument("QuantizedMlp: bits out of range");
  QuantizedMlp q;
  q.weight_bits = weight_bits;
  q.act_bits = act_bits;

  // Calibrate activation ceilings layer by layer on the calibration set.
  std::vector<double> ceilings(mlp.layers().size() + 1, 1e-9);
  for (std::size_t s = 0; s < calib.size(); ++s) {
    std::vector<double> act(calib.features.row(s).begin(),
                            calib.features.row(s).end());
    for (double v : act)
      ceilings[0] = std::max(ceilings[0], v);
    for (std::size_t l = 0; l < mlp.layers().size(); ++l) {
      act = mlp.layers()[l].forward(act);
      if (l + 1 < mlp.layers().size())
        for (double& v : act) v = std::max(0.0, v);
      for (double v : act) ceilings[l + 1] = std::max(ceilings[l + 1], v);
    }
  }

  const double wq_max = static_cast<double>((1 << (weight_bits - 1)) - 1);
  const double aq_max = static_cast<double>((1u << act_bits) - 1);
  for (std::size_t l = 0; l < mlp.layers().size(); ++l) {
    const auto& d = mlp.layers()[l];
    QuantizedLayer ql;
    double wmax = 1e-12;
    for (const double v : d.w.flat()) wmax = std::max(wmax, std::abs(v));
    ql.w_scale = wmax / wq_max;
    ql.w_int = util::Matrix(d.w.rows(), d.w.cols());
    for (std::size_t r = 0; r < d.w.rows(); ++r)
      for (std::size_t c = 0; c < d.w.cols(); ++c)
        ql.w_int(r, c) = std::round(d.w(r, c) / ql.w_scale);
    ql.bias = d.b;
    ql.act_max = ceilings[l];
    ql.in_scale = ceilings[l] / aq_max;
    q.layers.push_back(std::move(ql));
  }
  return q;
}

int QuantizedMlp::predict_reference(std::span<const double> x) const {
  std::vector<double> act(x.begin(), x.end());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const auto& ql = layers[l];
    const auto q_in = quantize_acts(act, ql.act_max, act_bits);

    std::vector<double> out(ql.w_int.rows());
    for (std::size_t o = 0; o < ql.w_int.rows(); ++o) {
      long acc = 0;
      for (std::size_t i = 0; i < ql.w_int.cols(); ++i)
        acc += static_cast<long>(ql.w_int(o, i)) *
               static_cast<long>(q_in[i]);
      out[o] = static_cast<double>(acc) * ql.w_scale * ql.in_scale +
               ql.bias[o];
    }
    if (l + 1 < layers.size())
      for (double& v : out) v = std::max(0.0, v);
    act = std::move(out);
  }
  return static_cast<int>(
      std::max_element(act.begin(), act.end()) - act.begin());
}

double QuantizedMlp::accuracy_reference(const nn::Dataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (predict_reference(data.features.row(i)) == data.labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

CimMlpRunner::CimMlpRunner(const QuantizedMlp& qmlp, CimSystemConfig cfg)
    : qmlp_(qmlp) {
  if (qmlp.layers.empty())
    throw std::invalid_argument("CimMlpRunner: empty network");
  cfg.tile.weight_bits = qmlp.weight_bits;
  std::uint64_t seed = cfg.tile.seed;
  for (const auto& layer : qmlp_.layers) {
    auto layer_cfg = cfg;
    layer_cfg.tile.seed = seed += 101;
    systems_.push_back(std::make_unique<CimSystem>(layer.w_int, layer_cfg));
  }
}

int CimMlpRunner::predict(std::span<const double> x) {
  std::vector<double> act(x.begin(), x.end());
  for (std::size_t l = 0; l < qmlp_.layers.size(); ++l) {
    const auto& ql = qmlp_.layers[l];
    const auto q_in = quantize_acts(act, ql.act_max, qmlp_.act_bits);
    const auto y_int = systems_[l]->vmm_int(q_in, qmlp_.act_bits, pool_);
    std::vector<double> out(y_int.size());
    for (std::size_t o = 0; o < y_int.size(); ++o)
      out[o] = static_cast<double>(y_int[o]) * ql.w_scale * ql.in_scale +
               ql.bias[o];
    if (l + 1 < qmlp_.layers.size())
      for (double& v : out) v = std::max(0.0, v);
    act = std::move(out);
  }
  return static_cast<int>(
      std::max_element(act.begin(), act.end()) - act.begin());
}

double CimMlpRunner::accuracy(const nn::Dataset& data) {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (predict(data.features.row(i)) == data.labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

CimMlpRunner::Totals CimMlpRunner::totals() const {
  Totals t;
  for (const auto& sys : systems_) {
    t.time_ns += sys->stats().time_ns;
    t.energy_pj += sys->stats().energy_pj;
    t.area_um2 += sys->stats().area_um2;
    t.tiles += sys->tile_count();
  }
  return t;
}

}  // namespace cim::core
