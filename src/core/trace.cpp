#include "core/trace.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>

#include "obs/obs.hpp"

namespace cim::core {

std::string_view op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kProgramCell: return "program";
    case OpKind::kRowActivate: return "row-activate";
    case OpKind::kSenseColumns: return "sense";
    case OpKind::kShiftAdd: return "shift-add";
    case OpKind::kLogicStep: return "logic";
    case OpKind::kTileTransfer: return "transfer";
  }
  return "unknown";
}

namespace {

/// Forwards a trace entry into the obs registry as a `trace.<kind>` span
/// aggregate. Per-kind SpanStat pointers are resolved once and cached.
void forward_to_obs(const TraceEntry& entry) {
  struct KindSink {
    const char* span_name;
    obs::Component comp;
  };
  static constexpr std::array<KindSink, kOpKindCount> kSinks{{
      {"trace.program", obs::Component::kArray},
      {"trace.row_activate", obs::Component::kDac},
      {"trace.sense", obs::Component::kAdc},
      {"trace.shift_add", obs::Component::kDigital},
      {"trace.logic", obs::Component::kArray},
      {"trace.transfer", obs::Component::kInterconnect},
  }};
  static std::array<std::atomic<obs::SpanStat*>, kOpKindCount> cache{};

  const auto k = static_cast<std::size_t>(entry.kind);
  if (k >= kOpKindCount) return;
  obs::SpanStat* stat = cache[k].load(std::memory_order_acquire);
  if (stat == nullptr) {
    stat = &obs::Registry::global().span_stat(kSinks[k].span_name,
                                              kSinks[k].comp);
    cache[k].store(stat, std::memory_order_release);
  }
  stat->count.add(1);
  stat->sim_time_ns.add(entry.time_ns);
  stat->energy_pj.add(entry.energy_pj);
}

}  // namespace

Trace::Trace(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  entries_.reserve(capacity_);
}

void Trace::record(TraceEntry entry) {
  ++total_;
  ++kind_totals_[static_cast<std::size_t>(entry.kind) % kOpKindCount];
  if (obs::enabled()) forward_to_obs(entry);
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    return;
  }
  // Ring behaviour: overwrite the oldest entry. After `total_` records the
  // newest lives at (total_ - 1) % capacity_, the oldest at
  // total_ % capacity_.
  entries_[static_cast<std::size_t>((total_ - 1) % capacity_)] = entry;
}

std::vector<TraceEntry> Trace::window() const {
  std::vector<TraceEntry> out;
  out.reserve(entries_.size());
  if (total_ <= capacity_) {
    out = entries_;
    return out;
  }
  const std::size_t oldest = static_cast<std::size_t>(total_ % capacity_);
  for (std::size_t k = 0; k < entries_.size(); ++k)
    out.push_back(entries_[(oldest + k) % capacity_]);
  return out;
}

std::vector<std::pair<OpKind, std::size_t>> Trace::histogram() const {
  std::vector<std::pair<OpKind, std::size_t>> out;
  for (std::size_t k = 0; k < kOpKindCount; ++k)
    if (kind_totals_[k] != 0)
      out.emplace_back(static_cast<OpKind>(k),
                       static_cast<std::size_t>(kind_totals_[k]));
  return out;
}

void Trace::print(std::ostream& os, std::size_t last_n) const {
  const std::vector<TraceEntry> win = window();
  const std::size_t n = std::min(last_n, win.size());
  os << "trace: " << total_ << " ops total (window of last " << win.size()
     << " retained), showing last " << n << "\n";
  for (std::size_t i = win.size() - n; i < win.size(); ++i) {
    const auto& e = win[i];
    os << "  [" << e.cycle << "] tile " << e.tile << " "
       << op_kind_name(e.kind) << " t=" << e.time_ns << "ns e=" << e.energy_pj
       << "pJ\n";
  }
}

void Trace::clear() {
  entries_.clear();
  total_ = 0;
  kind_totals_.fill(0);
}

}  // namespace cim::core
