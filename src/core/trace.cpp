#include "core/trace.hpp"

#include <map>
#include <ostream>

namespace cim::core {

std::string_view op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kProgramCell: return "program";
    case OpKind::kRowActivate: return "row-activate";
    case OpKind::kSenseColumns: return "sense";
    case OpKind::kShiftAdd: return "shift-add";
    case OpKind::kLogicStep: return "logic";
    case OpKind::kTileTransfer: return "transfer";
  }
  return "unknown";
}

Trace::Trace(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  entries_.reserve(capacity_);
}

void Trace::record(TraceEntry entry) {
  ++total_;
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    return;
  }
  // Ring behaviour: overwrite oldest.
  entries_[static_cast<std::size_t>(total_ % capacity_)] = entry;
}

std::vector<std::pair<OpKind, std::size_t>> Trace::histogram() const {
  std::map<OpKind, std::size_t> counts;
  for (const auto& e : entries_) ++counts[e.kind];
  return {counts.begin(), counts.end()};
}

void Trace::print(std::ostream& os, std::size_t last_n) const {
  const std::size_t n = std::min(last_n, entries_.size());
  os << "trace: " << total_ << " ops total, showing last " << n << "\n";
  for (std::size_t i = entries_.size() - n; i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    os << "  [" << e.cycle << "] tile " << e.tile << " "
       << op_kind_name(e.kind) << " t=" << e.time_ns << "ns e=" << e.energy_pj
       << "pJ\n";
  }
}

void Trace::clear() {
  entries_.clear();
  total_ = 0;
}

}  // namespace cim::core
