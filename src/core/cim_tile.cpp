#include "core/cim_tile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "periphery/dac.hpp"

namespace cim::core {

namespace {
crossbar::CrossbarConfig make_array_cfg(const CimTileConfig& cfg, bool minus) {
  auto a = cfg.array;
  a.rows = cfg.tile.rows;
  a.cols = cfg.tile.cols;
  a.tech = cfg.tile.tech;
  a.levels = std::min(1 << cfg.weight_bits,
                      device::technology_params(cfg.tile.tech).max_levels);
  a.verified_writes = true;
  a.seed = cfg.seed ^ (minus ? 0x9e3779b9ULL : 0ULL);
  return a;
}
}  // namespace

CimTile::CimTile(CimTileConfig cfg)
    : cfg_(cfg),
      plus_(std::make_unique<crossbar::Crossbar>(make_array_cfg(cfg, false))),
      minus_(std::make_unique<crossbar::Crossbar>(make_array_cfg(cfg, true))),
      adc_(periphery::AdcConfig{
          .bits = cfg.tile.adc_bits,
          .kind = cfg.tile.adc_kind,
          .sample_rate_gsps = 1.28,
          .full_scale_ua = plus_->tech().v_read * plus_->tech().g_on_us() *
                           static_cast<double>(cfg.tile.rows)}),
      weights_(cfg.tile.cols, cfg.tile.rows) {}

std::size_t CimTile::rows() const { return cfg_.tile.rows; }
std::size_t CimTile::cols() const { return cfg_.tile.cols; }

obs::HealthMonitor& CimTile::health_monitor() {
  if (health_ == nullptr)
    health_ = obs::HealthRegistry::global().monitor(
        obs::next_health_name("tile"), 1, cols());
  return *health_;
}

void CimTile::program_weights(const util::Matrix& w_int) {
  if (w_int.rows() != cols() || w_int.cols() != rows())
    throw std::invalid_argument("program_weights: shape must be (out x in)");
  weights_ = w_int;

  const auto& sch = plus_->scheme();
  const int max_level = sch.levels() - 1;
  util::Matrix g_plus(rows(), cols(), sch.g_min_us());
  util::Matrix g_minus(rows(), cols(), sch.g_min_us());
  for (std::size_t o = 0; o < cols(); ++o) {
    for (std::size_t i = 0; i < rows(); ++i) {
      const auto w = static_cast<long>(w_int(o, i));
      const int level =
          std::clamp(static_cast<int>(std::labs(w)), 0, max_level);
      const double g = sch.level_conductance_us(level);
      if (w >= 0)
        g_plus(i, o) = g;
      else
        g_minus(i, o) = g;
    }
  }
  plus_->program_conductances(g_plus);
  minus_->program_conductances(g_minus);
  trace_.record({OpKind::kProgramCell, 0, cycle_, 0.0, 0.0});
}

double CimTile::decode_level_sum(double current_ua,
                                 double active_inputs) const {
  const auto& tech = plus_->tech();
  const auto& sch = plus_->scheme();
  return (current_ua / tech.v_read - active_inputs * sch.g_min_us()) /
         sch.step_us();
}

std::vector<long> CimTile::vmm_int(std::span<const std::uint32_t> inputs,
                                   int input_bits,
                                   crossbar::FidelityTier tier) {
  if (inputs.size() != rows())
    throw std::invalid_argument("vmm_int: input size != rows");
  if (input_bits < 1 || input_bits > 16)
    throw std::invalid_argument("vmm_int: input_bits in [1,16]");
  CIM_OBS_SPAN_NAMED(span, "tile.vmm_int", obs::Component::kDigital);

  const auto& tech = plus_->tech();
  const double v = tech.v_read;
  const periphery::Dac dac({.bits = cfg_.tile.dac_bits});

  std::vector<double> acc(cols(), 0.0);
  std::vector<double> volts(rows());

  const double adc_conversions_per_cycle =
      2.0 * std::ceil(static_cast<double>(cols()) /
                      static_cast<double>(cfg_.tile.adcs));

  for (int b = 0; b < input_bits; ++b) {
    double active = 0.0;
    for (std::size_t r = 0; r < rows(); ++r) {
      const bool on = (inputs[r] >> b) & 1u;
      volts[r] = on ? v : 0.0;
      if (on) active += 1.0;
    }

    const double e_before =
        plus_->stats().energy_pj + minus_->stats().energy_pj;
    auto i_plus = plus_->vmm(volts, tier);
    auto i_minus = minus_->vmm(volts, tier);
    const double e_array =
        plus_->stats().energy_pj + minus_->stats().energy_pj - e_before;

    const bool health = obs::health_enabled();
    for (std::size_t c = 0; c < cols(); ++c) {
      const double ip = adc_.dequantize(adc_.quantize(i_plus[c]));
      const double im = adc_.dequantize(adc_.quantize(i_minus[c]));
      if (health) {
        // Two conversions per column per bit cycle (differential pair);
        // clipping means the bitline current fell outside full scale.
        auto& h = health_monitor();
        h.record_adc_sample(c, adc_.clips(i_plus[c]));
        h.record_adc_sample(c, adc_.clips(i_minus[c]));
      }
      const double sum =
          decode_level_sum(ip, active) - decode_level_sum(im, active);
      acc[c] += std::ldexp(sum, b);
    }

    // Cost accounting for the cycle.
    const double t_cycle =
        tech.t_read_ns + (adc_conversions_per_cycle / 2.0) * adc_.latency_ns();
    const double e_adc =
        adc_conversions_per_cycle * adc_.energy_per_sample_pj();
    const double e_dac =
        2.0 * static_cast<double>(rows()) * dac.energy_per_conversion_pj();
    const double e_dig = 0.2 * tech.t_read_ns;  // shift&add power * window

    stats_.time_ns += t_cycle;
    stats_.energy_pj += e_array + e_adc + e_dac + e_dig;
    stats_.array_energy_pj += e_array;
    stats_.adc_energy_pj += e_adc;
    stats_.dac_energy_pj += e_dac;
    stats_.digital_energy_pj += e_dig;
    ++stats_.cycles;
    ++cycle_;
    if (obs::enabled()) {
      // Periphery attribution per bit-serial cycle; the crossbars already
      // attributed e_array to kArray inside charge().
      const double t_adc = (adc_conversions_per_cycle / 2.0) * adc_.latency_ns();
      obs::attribute(obs::Component::kAdc, t_adc, e_adc);
      obs::attribute(obs::Component::kDac, 0.0, e_dac);
      obs::attribute(obs::Component::kDigital, 0.0, e_dig);
      span.add_sim_time_ns(t_cycle);
      span.add_energy_pj(e_array + e_adc + e_dac + e_dig);
    }
    trace_.record({OpKind::kRowActivate, 0, cycle_, tech.t_read_ns, e_dac});
    trace_.record({OpKind::kSenseColumns, 0, cycle_,
                   t_cycle - tech.t_read_ns, e_adc});
    trace_.record({OpKind::kShiftAdd, 0, cycle_, 0.0, e_dig});
  }

  ++stats_.vmm_ops;
  std::vector<long> y(cols());
  for (std::size_t c = 0; c < cols(); ++c)
    y[c] = std::lround(acc[c]);
  return y;
}

double CimTile::vmm_latency_ns(int input_bits) const {
  // Mirrors the per-cycle accounting in vmm_int(): one wordline read plus
  // ceil(cols/adcs) conversion slots (the differential pair's two
  // conversions per column share a slot across the two arrays).
  const double adc_conversions_per_cycle =
      2.0 * std::ceil(static_cast<double>(cols()) /
                      static_cast<double>(cfg_.tile.adcs));
  const double t_cycle = plus_->tech().t_read_ns +
                         (adc_conversions_per_cycle / 2.0) * adc_.latency_ns();
  return static_cast<double>(input_bits) * t_cycle;
}

std::vector<long> CimTile::ideal_vmm_int(
    std::span<const std::uint32_t> inputs) const {
  if (inputs.size() != rows())
    throw std::invalid_argument("ideal_vmm_int: input size != rows");
  std::vector<long> y(cols(), 0);
  for (std::size_t o = 0; o < cols(); ++o) {
    long acc = 0;
    for (std::size_t i = 0; i < rows(); ++i)
      acc += static_cast<long>(weights_(o, i)) *
             static_cast<long>(inputs[i]);
    y[o] = acc;
  }
  return y;
}

void CimTile::apply_faults(const fault::FaultMap& plus,
                           const fault::FaultMap& minus) {
  plus_->apply_faults(plus);
  minus_->apply_faults(minus);
}

double CimTile::area_um2() const {
  auto blocks = periphery::tile_breakdown(cfg_.tile);
  double total = periphery::total_cost(blocks).area_um2;
  // Differential pair: the crossbar block exists twice.
  for (const auto& b : blocks)
    if (b.name == "crossbar") total += b.area_um2;
  return total;
}

}  // namespace cim::core
