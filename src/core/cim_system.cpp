#include "core/cim_system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/prom.hpp"

namespace cim::core {

CimSystem::CimSystem(const util::Matrix& w_int, CimSystemConfig cfg)
    : in_(w_int.cols()), out_(w_int.rows()), cfg_(cfg), weights_(w_int) {
  if (w_int.empty()) throw std::invalid_argument("CimSystem: empty weights");
  // Long-running system processes expose the scrape endpoint when asked
  // (CIM_OBS_PROM_PORT); idempotent, off unless telemetry is enabled.
  obs::maybe_start_prometheus_from_env();
  const std::size_t tr = cfg.tile.tile.rows;
  const std::size_t tc = cfg.tile.tile.cols;
  if (tr == 0 || tc == 0) throw std::invalid_argument("CimSystem: empty tile");

  std::uint64_t seed = cfg.tile.seed;
  for (std::size_t r0 = 0; r0 < in_; r0 += tr) {
    for (std::size_t c0 = 0; c0 < out_; c0 += tc) {
      Block blk;
      blk.row0 = r0;
      blk.col0 = c0;
      blk.rows = std::min(tr, in_ - r0);
      blk.cols = std::min(tc, out_ - c0);

      auto tile_cfg = cfg.tile;
      tile_cfg.tile.rows = blk.rows;
      tile_cfg.tile.cols = blk.cols;
      tile_cfg.seed = ++seed * 0x9e3779b97f4a7c15ULL;
      blk.tile = std::make_unique<CimTile>(tile_cfg);

      util::Matrix sub(blk.cols, blk.rows);
      for (std::size_t o = 0; o < blk.cols; ++o)
        for (std::size_t i = 0; i < blk.rows; ++i)
          sub(o, i) = w_int(c0 + o, r0 + i);
      blk.tile->program_weights(sub);
      tiles_.push_back(std::move(blk));
    }
  }
  for (const auto& blk : tiles_) stats_.area_um2 += blk.tile->area_um2();
}

std::vector<long> CimSystem::vmm_int(std::span<const std::uint32_t> inputs,
                                     int input_bits, util::ThreadPool* pool,
                                     crossbar::FidelityTier tier) {
  if (inputs.size() != in_) throw std::invalid_argument("CimSystem: dim");
  CIM_OBS_SPAN_NAMED(span, "system.vmm_int", obs::Component::kInterconnect);
  std::vector<long> y(out_, 0);

  // Each tile owns its crossbars/RNG, so blocks execute independently; the
  // per-block results land in slots and reduce serially in block order.
  struct BlockResult {
    std::vector<long> part;
    double dt = 0.0;
    double de = 0.0;
  };
  std::vector<BlockResult> results(tiles_.size());
  auto run_block = [&](std::size_t b) {
    auto& blk = tiles_[b];
    const double t0 = blk.tile->stats().time_ns;
    const double e0 = blk.tile->stats().energy_pj;
    results[b].part =
        blk.tile->vmm_int(inputs.subspan(blk.row0, blk.rows), input_bits,
                          tier);
    results[b].dt = blk.tile->stats().time_ns - t0;
    results[b].de = blk.tile->stats().energy_pj - e0;
  };
  if (pool != nullptr)
    pool->parallel_for(0, tiles_.size(), run_block);
  else
    for (std::size_t b = 0; b < tiles_.size(); ++b) run_block(b);

  double worst_tile_time = 0.0;
  double tile_energy = 0.0;
  std::size_t transfers = 0;
  for (std::size_t b = 0; b < tiles_.size(); ++b) {
    const auto& blk = tiles_[b];
    worst_tile_time = std::max(worst_tile_time, results[b].dt);
    tile_energy += results[b].de;
    for (std::size_t c = 0; c < blk.cols; ++c)
      y[blk.col0 + c] += results[b].part[c];
    transfers += blk.cols;
  }

  // Tiles operate in parallel; the reduction tree adds hop latency
  // logarithmic in the number of row-blocks feeding each output.
  const std::size_t row_blocks =
      (in_ + cfg_.tile.tile.rows - 1) / cfg_.tile.tile.rows;
  const double reduce_hops =
      row_blocks > 1 ? std::ceil(std::log2(static_cast<double>(row_blocks))) : 0.0;
  const double move_energy =
      static_cast<double>(transfers) * cfg_.transfer_energy_pj_per_word;

  stats_.time_ns +=
      worst_tile_time + reduce_hops * cfg_.transfer_latency_ns_per_hop;
  stats_.energy_pj += tile_energy + move_energy;
  stats_.movement_energy_pj += move_energy;
  ++stats_.vmm_ops;
  if (obs::enabled()) {
    const double reduce_time = reduce_hops * cfg_.transfer_latency_ns_per_hop;
    obs::attribute(obs::Component::kInterconnect, reduce_time, move_energy);
    span.add_sim_time_ns(worst_tile_time + reduce_time);
    span.add_energy_pj(tile_energy + move_energy);
  }
  return y;
}

std::vector<std::vector<long>> CimSystem::vmm_int_batch(
    std::span<const std::vector<std::uint32_t>> inputs, int input_bits,
    util::ThreadPool* pool, crossbar::FidelityTier tier) {
  std::vector<std::vector<long>> out;
  out.reserve(inputs.size());
  for (const auto& x : inputs)
    out.push_back(vmm_int(x, input_bits, pool, tier));
  return out;
}

CimSystem::RequestLatencyParts CimSystem::request_latency_parts(
    int input_bits) const {
  RequestLatencyParts p;
  for (const auto& blk : tiles_)
    p.bitserial_ns =
        std::max(p.bitserial_ns, blk.tile->vmm_latency_ns(input_bits));
  const std::size_t row_blocks =
      (in_ + cfg_.tile.tile.rows - 1) / cfg_.tile.tile.rows;
  const double reduce_hops =
      row_blocks > 1 ? std::ceil(std::log2(static_cast<double>(row_blocks)))
                     : 0.0;
  p.reduce_ns = reduce_hops * cfg_.transfer_latency_ns_per_hop;
  return p;
}

double CimSystem::request_latency_ns(int input_bits) const {
  const RequestLatencyParts p = request_latency_parts(input_bits);
  return p.bitserial_ns + p.reduce_ns;
}

std::vector<long> CimSystem::ideal_vmm_int(
    std::span<const std::uint32_t> inputs) const {
  if (inputs.size() != in_) throw std::invalid_argument("CimSystem: dim");
  std::vector<long> y(out_, 0);
  for (std::size_t o = 0; o < out_; ++o) {
    long acc = 0;
    for (std::size_t i = 0; i < in_; ++i)
      acc += static_cast<long>(weights_(o, i)) * static_cast<long>(inputs[i]);
    y[o] = acc;
  }
  return y;
}

const CimSystemStats& CimSystem::stats() const { return stats_; }

eda::verify::TilePool CimSystem::hazard_tile_pool() const {
  eda::verify::TilePool pool;
  pool.tiles.reserve(tiles_.size());
  for (const auto& blk : tiles_) {
    eda::verify::TileInfo info;
    info.rows = blk.rows;
    info.cols = blk.cols;
    // The ADC count is a per-tile periphery resource; blocks inherit the
    // template's channel count even when their array is edge-clipped.
    info.adc_channels = std::max<std::size_t>(1, cfg_.tile.tile.adcs);
    pool.tiles.push_back(info);
  }
  return pool;
}

}  // namespace cim::core
