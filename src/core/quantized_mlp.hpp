/// \file quantized_mlp.hpp
/// \brief End-to-end quantized MLP inference on the digital CIM tile path.
///
/// While `nn::CrossbarLinear` models the *analog* mapping, production CIM
/// accelerators (ISAAC, PRIME) expose a digital-in/digital-out contract:
/// integer weights in conductance levels, bit-serial integer activations,
/// ADC + shift-add reassembly. This module quantizes a trained MLP and runs
/// it on `CimSystem` tiles, with calibrated requantization between layers —
/// the full accelerator story of Section II.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/cim_system.hpp"
#include "nn/mlp.hpp"

namespace cim::core {

/// A layer quantized to signed integer weights + float bias/scales.
struct QuantizedLayer {
  util::Matrix w_int;          ///< (out x in), |w| < 2^(weight_bits-1)
  std::vector<double> bias;    ///< float bias, applied digitally
  double w_scale = 1.0;        ///< real_w = w_int * w_scale
  double in_scale = 1.0;       ///< real_in = q_in * in_scale
  double act_max = 1.0;        ///< calibrated activation ceiling (pre-quant)
};

/// A quantized two-or-more-layer MLP.
struct QuantizedMlp {
  int weight_bits = 4;
  int act_bits = 4;
  std::vector<QuantizedLayer> layers;

  /// Quantizes a trained float MLP; activation ceilings are calibrated on
  /// `calib` (per-layer max of post-ReLU activations).
  static QuantizedMlp from_mlp(const nn::Mlp& mlp, int weight_bits,
                               int act_bits, const nn::Dataset& calib);

  /// Integer-exact software reference (same arithmetic the tiles target).
  int predict_reference(std::span<const double> x) const;
  double accuracy_reference(const nn::Dataset& data) const;
};

/// Runs a QuantizedMlp on CimSystem tiles.
class CimMlpRunner {
 public:
  CimMlpRunner(const QuantizedMlp& qmlp, CimSystemConfig cfg);

  /// Tiles of each layer's CimSystem execute concurrently on `pool`
  /// (serial when null; see CimSystem::vmm_int for the determinism
  /// contract).
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }

  int predict(std::span<const double> x);
  double accuracy(const nn::Dataset& data);

  /// Aggregated tile statistics across all layers.
  struct Totals {
    double time_ns = 0.0;
    double energy_pj = 0.0;
    double area_um2 = 0.0;
    std::size_t tiles = 0;
  };
  Totals totals() const;

 private:
  QuantizedMlp qmlp_;
  std::vector<std::unique_ptr<CimSystem>> systems_;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace cim::core
