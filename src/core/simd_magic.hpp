/// \file simd_magic.hpp
/// \brief SIMD execution of single-row MAGIC programs (Section IV.C,
///        Ben-Hur et al., TCAD'19 [70]).
///
/// "Optimal and heuristic solutions to map Boolean functions from NOR/NOT
/// netlist onto a single row was proposed, with the goal of optimizing
/// throughput by Single Instruction Multiple Data (SIMD) like operations."
///
/// Because every instruction of a single-row MAGIC program addresses only
/// columns, the same instruction can fire on all rows of a crossbar in one
/// device cycle: R independent evaluations of the same function proceed in
/// lockstep, so batch latency equals ONE program's delay while throughput
/// scales with the row count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "eda/magic_mapper.hpp"

namespace cim::core {

/// Cost summary of one SIMD batch.
struct SimdBatchStats {
  std::size_t rows = 0;            ///< lanes executed
  std::size_t instructions = 0;    ///< program length
  double latency_ns = 0.0;         ///< lockstep latency (one program)
  double energy_pj = 0.0;          ///< total array energy of the batch
  double throughput_per_us = 0.0;  ///< evaluations per microsecond
};

/// A crossbar executing one compiled MAGIC program across many rows.
class SimdMagicUnit {
 public:
  /// Builds an array of `rows` lanes wide enough for the program.
  SimdMagicUnit(eda::MagicProgram program, std::size_t rows,
                std::uint64_t seed = 7);

  std::size_t rows() const { return rows_; }
  const eda::MagicProgram& program() const { return program_; }

  /// Executes the program on up to rows() assignments in lockstep; returns
  /// the per-lane outputs. Fewer assignments than rows leave lanes idle.
  std::vector<std::vector<bool>> execute_batch(
      std::span<const std::uint64_t> assignments);

  /// Stats of the most recent batch.
  const SimdBatchStats& last_batch() const { return last_; }

 private:
  eda::MagicProgram program_;
  std::size_t rows_;
  std::unique_ptr<crossbar::Crossbar> xbar_;
  SimdBatchStats last_;
};

}  // namespace cim::core
