/// \file cim_system.hpp
/// \brief Multi-tile CIM accelerator: partitions large matrices across
///        tiles, aggregates partial sums digitally, and reports end-to-end
///        time/energy/area — the system-level view the architecture
///        comparison (Table I / Fig. 1 benches) executes against.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "arch/arch_class.hpp"
#include "core/cim_tile.hpp"
#include "eda/verify/hazard.hpp"
#include "util/matrix.hpp"
#include "util/thread_pool.hpp"

namespace cim::core {

/// System configuration: tile template + aggregation costs.
struct CimSystemConfig {
  CimTileConfig tile{};
  /// Energy to move one partial-sum word between tiles and the reduction
  /// tree (on-chip interconnect).
  double transfer_energy_pj_per_word = 0.8;
  double transfer_latency_ns_per_hop = 0.5;
};

/// Aggregated execution report.
struct CimSystemStats {
  std::uint64_t vmm_ops = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
  double movement_energy_pj = 0.0;  ///< inter-tile partial-sum movement
  double area_um2 = 0.0;
};

/// A grid of CIM tiles implementing one large signed-integer matrix.
class CimSystem {
 public:
  /// `w_int` is (out x in); the system instantiates ceil(in/tile_rows) x
  /// ceil(out/tile_cols) tiles and programs the blocks.
  CimSystem(const util::Matrix& w_int, CimSystemConfig cfg);

  std::size_t in_dim() const { return in_; }
  std::size_t out_dim() const { return out_; }
  std::size_t tile_count() const { return tiles_.size(); }

  /// The tile executing block `i` (block order). Exposed for health
  /// consumers — wear/drift-aware routing reads the tiles' array monitors.
  CimTile& tile(std::size_t i) { return *tiles_.at(i).tile; }
  const CimTile& tile(std::size_t i) const { return *tiles_.at(i).tile; }

  /// y = W x over the tile grid, with digital partial-sum reduction.
  /// Independent tiles execute concurrently on `pool` (serial when null);
  /// every tile owns its crossbars and RNG streams, and the partial-sum
  /// reduction runs serially in block order, so results are bit-identical
  /// for any thread count.
  std::vector<long> vmm_int(
      std::span<const std::uint32_t> inputs, int input_bits,
      util::ThreadPool* pool = nullptr,
      crossbar::FidelityTier tier = crossbar::FidelityTier::kFull);

  /// Batched execution path for coalesced request dispatch: runs every
  /// input vector of `inputs` through the tile grid in order, exactly as
  /// back-to-back vmm_int() calls would (array state — noise streams, read
  /// disturb, caches — evolves across samples identically, so result b is
  /// bit-identical to the b'th sequential call). One dispatch onto the
  /// system serves the whole batch; the serving controller amortizes its
  /// per-dispatch issue overhead across these samples.
  std::vector<std::vector<long>> vmm_int_batch(
      std::span<const std::vector<std::uint32_t>> inputs, int input_bits,
      util::ThreadPool* pool = nullptr,
      crossbar::FidelityTier tier = crossbar::FidelityTier::kFull);

  /// Simulated service latency of one vmm_int of `input_bits` bits (ns):
  /// the slowest tile's bit-serial time plus the reduction-tree hops. Data
  /// independent and an exact closed form of the per-call stats().time_ns
  /// increment — what the serving controller schedules against without
  /// executing the request.
  double request_latency_ns(int input_bits) const;

  /// The two physical phases of request_latency_ns, split for per-request
  /// latency decomposition: the slowest tile's bit-serial array+ADC time
  /// and the digital reduction-tree transfer time. Invariant:
  /// `bitserial_ns + reduce_ns == request_latency_ns(bits)` bitwise (the
  /// total is computed as exactly that sum).
  struct RequestLatencyParts {
    double bitserial_ns = 0.0;
    double reduce_ns = 0.0;
  };
  RequestLatencyParts request_latency_parts(int input_bits) const;

  /// Exact oracle.
  std::vector<long> ideal_vmm_int(std::span<const std::uint32_t> inputs) const;

  const CimSystemStats& stats() const;

  /// The system's tile resources as a static-analysis pool: one entry per
  /// block (its array geometry and physical ADC channel count), in block
  /// order. Micro-op schedules dispatched across the system are checked
  /// against this pool with `eda::verify::analyze_hazards`.
  eda::verify::TilePool hazard_tile_pool() const;

  /// The Fig. 2 class this system realizes (analog compute in the array,
  /// result produced at the periphery ADCs -> CIM-P).
  static arch::ArchClass arch_class() { return arch::ArchClass::kCimPeriphery; }

 private:
  struct Block {
    std::unique_ptr<CimTile> tile;
    std::size_t row0 = 0;  ///< input offset
    std::size_t col0 = 0;  ///< output offset
    std::size_t rows = 0;
    std::size_t cols = 0;
  };

  std::size_t in_;
  std::size_t out_;
  CimSystemConfig cfg_;
  util::Matrix weights_;
  std::vector<Block> tiles_;
  mutable CimSystemStats stats_;
};

}  // namespace cim::core
