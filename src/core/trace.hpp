/// \file trace.hpp
/// \brief Instruction trace of a CIM core's controller (Section II.B.2:
///        the control block "needs to deal with complex instructions such
///        as handling intricacies of multi-operand VMM operations").
///
/// The trace doubles as a telemetry source: when CIM_OBS is enabled every
/// recorded entry is forwarded to the cim::obs registry as a
/// `trace.<kind>` span aggregate (simulated time + energy), so controller
/// activity shows up in snapshots and breakdowns next to the span data.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <utility>
#include <vector>

namespace cim::core {

/// Controller-level operations.
enum class OpKind {
  kProgramCell,
  kRowActivate,   ///< DAC drive of a wordline set
  kSenseColumns,  ///< ADC conversion batch
  kShiftAdd,
  kLogicStep,     ///< stateful-logic instruction
  kTileTransfer,  ///< partial-sum movement between tiles
};
inline constexpr std::size_t kOpKindCount = 6;

std::string_view op_kind_name(OpKind kind);

/// One traced instruction.
struct TraceEntry {
  OpKind kind = OpKind::kRowActivate;
  std::size_t tile = 0;
  std::uint64_t cycle = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
};

/// Bounded instruction trace (keeps the most recent `capacity` entries;
/// per-kind counts cover *all* recorded entries, not just the window).
class Trace {
 public:
  explicit Trace(std::size_t capacity = 4096);

  void record(TraceEntry entry);
  std::size_t size() const { return entries_.size(); }
  std::uint64_t total_recorded() const { return total_; }
  /// Raw ring storage — NOT chronological once the ring has wrapped; use
  /// window() for ordered entries.
  const std::vector<TraceEntry>& entries() const { return entries_; }

  /// The retained window (up to `capacity` most recent entries) in
  /// chronological order, oldest first.
  std::vector<TraceEntry> window() const;

  /// Ops per kind over every entry ever recorded (total_recorded()),
  /// sorted by kind. Survives ring wraparound.
  std::vector<std::pair<OpKind, std::size_t>> histogram() const;

  void print(std::ostream& os, std::size_t last_n = 20) const;
  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEntry> entries_;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kOpKindCount> kind_totals_{};
};

}  // namespace cim::core
