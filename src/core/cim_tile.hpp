/// \file cim_tile.hpp
/// \brief One complete CIM core: crossbar array + periphery + controller
///        (Fig. 4b). The tile executes digital-in / digital-out VMM through
///        the full analog path — DAC-driven bit-serial inputs, crossbar
///        currents, ADC conversion, shift-and-add accumulation — so ADC
///        resolution, device variation and faults all shape the result.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/trace.hpp"
#include "crossbar/crossbar.hpp"
#include "fault/fault_map.hpp"
#include "periphery/adc.hpp"
#include "periphery/tile_cost.hpp"
#include "util/matrix.hpp"

namespace cim::core {

/// Tile configuration: geometry + periphery provisioning + array behaviour.
struct CimTileConfig {
  periphery::TileConfig tile{};            ///< rows/cols/ADC/DAC provisioning
  crossbar::CrossbarConfig array{};        ///< non-ideality knobs
  int weight_bits = 4;                     ///< signed weight magnitude bits
  std::uint64_t seed = 1234;
};

/// Accumulated execution statistics of one tile.
struct CimTileStats {
  std::uint64_t vmm_ops = 0;
  std::uint64_t cycles = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
  double array_energy_pj = 0.0;
  double adc_energy_pj = 0.0;
  double dac_energy_pj = 0.0;
  double digital_energy_pj = 0.0;
};

/// A CIM tile executing signed integer VMMs on a differential crossbar pair.
class CimTile {
 public:
  explicit CimTile(CimTileConfig cfg);

  std::size_t rows() const;  ///< input dimension
  std::size_t cols() const;  ///< output dimension

  /// Programs signed integer weights, shape (out x in), |w| < 2^weight_bits.
  void program_weights(const util::Matrix& w_int);

  /// Executes y = W x for unsigned integer inputs of `input_bits` bits,
  /// streamed bit-serially. Returns signed integer outputs (subject to ADC
  /// quantization and analog non-idealities). `tier` selects the array
  /// fidelity of every bit-serial VMM cycle (crossbar/fidelity.hpp); the
  /// bit-sliced wordline voltages are exactly the uniform-|v| inputs the
  /// tier-1 noise calibration is exact for.
  std::vector<long> vmm_int(
      std::span<const std::uint32_t> inputs, int input_bits,
      crossbar::FidelityTier tier = crossbar::FidelityTier::kFull);

  /// Exact reference result (oracle).
  std::vector<long> ideal_vmm_int(std::span<const std::uint32_t> inputs) const;

  /// Simulated latency of one vmm_int of `input_bits` bits on this tile
  /// (ns). The bit-serial pipeline's cycle time is data-independent
  /// (wordline read + ADC conversions), so this is an exact closed form of
  /// the per-call stats().time_ns increment — the quantity the serving
  /// controller schedules against without executing the request.
  double vmm_latency_ns(int input_bits) const;

  /// Injects faults into the positive/negative arrays.
  void apply_faults(const fault::FaultMap& plus, const fault::FaultMap& minus);

  const CimTileStats& stats() const { return stats_; }
  Trace& trace() { return trace_; }

  /// Static area of the tile (um^2), from the periphery cost model
  /// (doubled array for the differential pair).
  double area_um2() const;

  const CimTileConfig& config() const { return cfg_; }

  /// Per-column periphery health monitor ("tile.<n>" in the registry; rows
  /// = 1, cols = tile cols): ADC conversion/saturation counts for the
  /// differential pair. The crossbars attach their own spatial monitors.
  obs::HealthMonitor& health_monitor();

  /// The differential crossbar pair backing this tile. Exposed so health
  /// consumers (wear/drift-aware request routing, exporters) can read the
  /// arrays' spatial monitors; mutating the arrays directly bypasses the
  /// tile's weight bookkeeping.
  crossbar::Crossbar& plus_array() { return *plus_; }
  crossbar::Crossbar& minus_array() { return *minus_; }

 private:
  double decode_level_sum(double current_ua, double active_inputs) const;

  CimTileConfig cfg_;
  std::unique_ptr<crossbar::Crossbar> plus_;
  std::unique_ptr<crossbar::Crossbar> minus_;
  periphery::Adc adc_;
  util::Matrix weights_;  ///< programmed integer weights (oracle copy)
  CimTileStats stats_;
  Trace trace_;
  std::uint64_t cycle_ = 0;
  std::shared_ptr<obs::HealthMonitor> health_;
};

}  // namespace cim::core
