/// \file bulk_bitwise.hpp
/// \brief Bulk bitwise operations in the periphery (Section II.A cites
///        Pinatubo [21]: "a processing-in-memory architecture for bulk
///        bitwise operations in emerging non-volatile memories", the
///        canonical CIM-P workload of Table I).
///
/// Memory rows hold data words; activating two rows at once lets the
/// modified sense amplifiers latch AND/OR/XOR of the whole word in a single
/// sense cycle (Scouting-logic reads), and the result row is written back
/// in one write cycle. The COM-F baseline must stream both operands over
/// the memory bus, compute in the ALU and stream the result back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "crossbar/crossbar.hpp"

namespace cim::core {

/// Cost report of a bulk operation.
struct BulkOpStats {
  std::size_t ops = 0;           ///< row-ops executed
  double lockstep_time_ns = 0.0; ///< sense + write-back cycles (row-parallel)
  double energy_pj = 0.0;        ///< array energy
};

/// Pinatubo-style bulk bitwise engine: one word per crossbar row.
class BulkBitwiseEngine {
 public:
  /// `words` rows of `bits` columns.
  BulkBitwiseEngine(std::size_t words, std::size_t bits,
                    std::uint64_t seed = 5);

  std::size_t words() const { return words_; }
  std::size_t bits() const { return bits_; }

  /// Stores a word (LSB in column 0).
  void store(std::size_t word, std::uint64_t value);
  std::uint64_t load(std::size_t word);

  /// dest <- r1 op r2, computed in the sense amplifiers (one sense cycle)
  /// and written back (one write cycle).
  void op_rows(std::size_t dest, std::size_t r1, std::size_t r2,
               crossbar::ScoutOp op);

  /// Stats accumulated since construction / reset.
  const BulkOpStats& stats() const { return stats_; }
  void reset_stats();

  /// COM-F cost model for the same operation stream: every operand word
  /// crosses the DDR boundary twice (2 loads + 1 store per op).
  struct ComFBaseline {
    double time_ns = 0.0;
    double energy_pj = 0.0;
  };
  ComFBaseline com_f_baseline(std::size_t ops) const;

 private:
  std::size_t words_;
  std::size_t bits_;
  std::unique_ptr<crossbar::Crossbar> xbar_;
  BulkOpStats stats_;
};

}  // namespace cim::core
