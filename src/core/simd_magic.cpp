#include "core/simd_magic.hpp"

#include <stdexcept>

namespace cim::core {

SimdMagicUnit::SimdMagicUnit(eda::MagicProgram program, std::size_t rows,
                             std::uint64_t seed)
    : program_(std::move(program)), rows_(rows) {
  if (rows == 0) throw std::invalid_argument("SimdMagicUnit: zero rows");
  crossbar::CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = std::max<std::size_t>(1, program_.num_cells);
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.seed = seed;
  xbar_ = std::make_unique<crossbar::Crossbar>(cfg);
}

std::vector<std::vector<bool>> SimdMagicUnit::execute_batch(
    std::span<const std::uint64_t> assignments) {
  if (assignments.size() > rows_)
    throw std::invalid_argument("execute_batch: more assignments than rows");
  const std::size_t lanes = assignments.size();
  const auto stats0 = xbar_->stats();

  // Input load: column-parallel writes, one device cycle per input column.
  for (std::size_t lane = 0; lane < lanes; ++lane)
    for (std::size_t i = 0; i < program_.num_inputs; ++i)
      xbar_->write_bit(lane, i, (assignments[lane] >> i) & 1ULL);

  // Lockstep execution: each instruction fires on every lane.
  for (const auto& ins : program_.instrs) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (ins.kind == eda::MagicInstr::Kind::kSet)
        xbar_->write_bit(lane, ins.out_cell, true);
      else
        xbar_->magic_nor(lane, ins.in_cells, ins.out_cell);
    }
  }

  std::vector<std::vector<bool>> out(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    out[lane].reserve(program_.output_cells.size());
    for (std::size_t k = 0; k < program_.output_cells.size(); ++k) {
      if (program_.output_is_const[k])
        out[lane].push_back(program_.const_values[k]);
      else
        out[lane].push_back(xbar_->read_bit(lane, program_.output_cells[k]));
    }
  }

  const auto stats1 = xbar_->stats();
  last_.rows = lanes;
  last_.instructions = program_.instrs.size();
  // Lockstep: all lanes advance together, so wall-clock latency is one
  // program (input columns + instructions + output reads), not lanes x that.
  const auto& tech = xbar_->tech();
  last_.latency_ns =
      static_cast<double>(program_.num_inputs) * tech.t_write_ns +
      static_cast<double>(program_.instrs.size()) * tech.t_write_ns +
      static_cast<double>(program_.output_cells.size()) * tech.t_read_ns;
  last_.energy_pj = stats1.energy_pj - stats0.energy_pj;
  last_.throughput_per_us =
      last_.latency_ns > 0.0
          ? static_cast<double>(lanes) / (last_.latency_ns / 1e3)
          : 0.0;
  return out;
}

}  // namespace cim::core
