#include "core/bulk_bitwise.hpp"

#include <stdexcept>

namespace cim::core {

BulkBitwiseEngine::BulkBitwiseEngine(std::size_t words, std::size_t bits,
                                     std::uint64_t seed)
    : words_(words), bits_(bits) {
  if (words == 0 || bits == 0 || bits > 64)
    throw std::invalid_argument("BulkBitwiseEngine: words>=1, bits in [1,64]");
  crossbar::CrossbarConfig cfg;
  cfg.rows = words;
  cfg.cols = bits;
  cfg.tech = device::Technology::kReRamHfOx;  // large on/off for clean sums
  cfg.levels = 2;
  cfg.model_ir_drop = false;
  cfg.verified_writes = true;
  cfg.seed = seed;
  xbar_ = std::make_unique<crossbar::Crossbar>(cfg);
}

void BulkBitwiseEngine::store(std::size_t word, std::uint64_t value) {
  if (word >= words_) throw std::out_of_range("BulkBitwiseEngine::store");
  for (std::size_t b = 0; b < bits_; ++b)
    xbar_->write_bit(word, b, (value >> b) & 1ULL);
}

std::uint64_t BulkBitwiseEngine::load(std::size_t word) {
  if (word >= words_) throw std::out_of_range("BulkBitwiseEngine::load");
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < bits_; ++b)
    if (xbar_->read_bit(word, b)) v |= 1ULL << b;
  return v;
}

void BulkBitwiseEngine::op_rows(std::size_t dest, std::size_t r1,
                                std::size_t r2, crossbar::ScoutOp op) {
  if (dest >= words_ || r1 >= words_ || r2 >= words_)
    throw std::out_of_range("BulkBitwiseEngine::op_rows");
  const auto& tech = xbar_->tech();
  const double e0 = xbar_->stats().energy_pj;

  // All columns sense in parallel (one cycle) and write back in one write
  // cycle; the per-column loop below is simulation bookkeeping only.
  for (std::size_t b = 0; b < bits_; ++b) {
    const bool r = xbar_->scout_read(r1, r2, b, op);
    xbar_->write_bit(dest, b, r);
  }
  ++stats_.ops;
  stats_.lockstep_time_ns += tech.t_read_ns + tech.t_write_ns;
  stats_.energy_pj += xbar_->stats().energy_pj - e0;
}

void BulkBitwiseEngine::reset_stats() { stats_ = BulkOpStats{}; }

BulkBitwiseEngine::ComFBaseline BulkBitwiseEngine::com_f_baseline(
    std::size_t ops) const {
  // DDR channel: 25.6 GB/s, ~20 pJ/byte end to end; ALU cost negligible by
  // comparison. Per op: 2 operand loads + 1 result store.
  const double bytes_per_op = 3.0 * static_cast<double>(bits_) / 8.0;
  ComFBaseline base;
  base.time_ns = static_cast<double>(ops) * bytes_per_op / 25.6;
  base.energy_pj = static_cast<double>(ops) * bytes_per_op * 20.0;
  return base;
}

}  // namespace cim::core
