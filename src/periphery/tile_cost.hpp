/// \file tile_cost.hpp
/// \brief Area/power aggregation of a CIM tile's design blocks — the model
///        behind Fig. 5 ("Area and Power share of CIM design blocks"),
///        which shows the ADC dominating die area and power.
///
/// A tile = crossbar array + row drivers (DACs) + column ADCs (possibly
/// shared across columns) + sample-and-hold + shift-and-add + row decoder +
/// control. Constants are anchored to the ISAAC tile (Shafiee et al.,
/// ISCA'16 — reference [32] of the paper).
#pragma once

#include <string>
#include <vector>

#include "device/technology.hpp"
#include "periphery/adc.hpp"
#include "periphery/dac.hpp"

namespace cim::periphery {

/// Geometry and periphery provisioning of one CIM tile.
struct TileConfig {
  std::size_t rows = 128;
  std::size_t cols = 128;
  device::Technology tech = device::Technology::kReRamHfOx;
  int adc_bits = 8;
  AdcKind adc_kind = AdcKind::kSar;
  /// Number of physical ADCs in the tile; columns time-multiplex onto them.
  std::size_t adcs = 1;
  int dac_bits = 1;        ///< per-row driver resolution
  int input_bits = 8;      ///< operand precision streamed bit-serially
};

/// Area/power of one named design block.
struct BlockCost {
  std::string name;
  double area_um2 = 0.0;
  double power_mw = 0.0;
};

/// Full per-block breakdown of a tile. Blocks: "crossbar", "DAC drivers",
/// "ADC", "sample&hold", "shift&add", "decoder", "control".
std::vector<BlockCost> tile_breakdown(const TileConfig& cfg);

/// Sums a breakdown.
BlockCost total_cost(const std::vector<BlockCost>& blocks);

/// Share (0..1) of the named block in total area / power.
double area_share(const std::vector<BlockCost>& blocks, const std::string& name);
double power_share(const std::vector<BlockCost>& blocks, const std::string& name);

/// VMM latency of the tile (ns): bit-serial input streaming plus
/// time-multiplexed ADC conversion of all columns.
double tile_vmm_latency_ns(const TileConfig& cfg);

/// Per-component energy of one full VMM on the tile (pJ). The analytic
/// counterpart of the measured obs::breakdown() — same component
/// vocabulary, so the two can be cross-checked (tests/obs).
struct TileVmmEnergyBreakdown {
  double array_pj = 0.0;
  double dac_pj = 0.0;
  double adc_pj = 0.0;
  double digital_pj = 0.0;
  double total_pj() const { return array_pj + dac_pj + adc_pj + digital_pj; }
};
TileVmmEnergyBreakdown tile_vmm_energy_breakdown(const TileConfig& cfg);

/// Energy of one full VMM on the tile (pJ): array + DAC + ADC + digital.
double tile_vmm_energy_pj(const TileConfig& cfg);

}  // namespace cim::periphery
