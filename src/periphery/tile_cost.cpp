#include "periphery/tile_cost.hpp"

#include <cmath>
#include <stdexcept>

namespace cim::periphery {
namespace {

// ISAAC-flavoured constants for the digital helper blocks (per tile).
constexpr double kSampleHoldAreaUm2PerCol = 0.31;   // S&H capacitor + switch
constexpr double kSampleHoldPowerMwPerCol = 0.00008;
constexpr double kShiftAddAreaUm2 = 240.0;          // accumulator register file
constexpr double kShiftAddPowerMw = 0.2;
constexpr double kControlAreaUm2 = 400.0;           // FSM + instruction buffer
constexpr double kControlPowerMw = 0.25;
// Multi-row-capable decoder: cost per row, with a CIM complexity factor
// (Section II.B.2: "row-decoder becomes complex as it involves enabling
// several rows in parallel").
constexpr double kDecoderAreaUm2PerRow = 0.9;
constexpr double kDecoderPowerMwPerRow = 0.0006;

}  // namespace

std::vector<BlockCost> tile_breakdown(const TileConfig& cfg) {
  if (cfg.rows == 0 || cfg.cols == 0)
    throw std::invalid_argument("tile_breakdown: empty tile");
  if (cfg.adcs == 0) throw std::invalid_argument("tile_breakdown: adcs >= 1");

  const auto tech = device::technology_params(cfg.tech);
  const Adc adc({.bits = cfg.adc_bits, .kind = cfg.adc_kind});
  const Dac dac({.bits = cfg.dac_bits});

  std::vector<BlockCost> blocks;

  // Crossbar array: cells are tiny (4F^2 crosspoints).
  {
    BlockCost b{"crossbar", 0.0, 0.0};
    b.area_um2 = tech.cell_area_um2() *
                 static_cast<double>(cfg.rows) * static_cast<double>(cfg.cols);
    // Array read power: all cells conducting at v_read for the duty cycle;
    // assume half the cells at mean conductance.
    const double g_mean = 0.5 * (tech.g_on_us() + tech.g_off_us());
    const double i_total_ua = 0.5 * static_cast<double>(cfg.rows) *
                              static_cast<double>(cfg.cols) * tech.v_read *
                              g_mean * 1e-3;  // scaled duty
    b.power_mw = tech.v_read * i_total_ua * 1e-3;  // V * uA = uW -> mW
    blocks.push_back(b);
  }

  // Row drivers / DACs: one per row.
  blocks.push_back({"DAC drivers",
                    dac.area_um2() * static_cast<double>(cfg.rows),
                    dac.power_mw() * static_cast<double>(cfg.rows)});

  // ADCs: cfg.adcs physical converters.
  blocks.push_back({"ADC", adc.area_um2() * static_cast<double>(cfg.adcs),
                    adc.power_mw() * static_cast<double>(cfg.adcs)});

  // Sample & hold: one per column (parks the column current while the
  // shared ADC scans).
  blocks.push_back({"sample&hold",
                    kSampleHoldAreaUm2PerCol * static_cast<double>(cfg.cols),
                    kSampleHoldPowerMwPerCol * static_cast<double>(cfg.cols)});

  // Shift & add for bit-serial input accumulation.
  blocks.push_back({"shift&add", kShiftAddAreaUm2, kShiftAddPowerMw});

  // Multi-row decoder.
  blocks.push_back({"decoder",
                    kDecoderAreaUm2PerRow * static_cast<double>(cfg.rows),
                    kDecoderPowerMwPerRow * static_cast<double>(cfg.rows)});

  // Controller.
  blocks.push_back({"control", kControlAreaUm2, kControlPowerMw});

  return blocks;
}

BlockCost total_cost(const std::vector<BlockCost>& blocks) {
  BlockCost t{"total", 0.0, 0.0};
  for (const auto& b : blocks) {
    t.area_um2 += b.area_um2;
    t.power_mw += b.power_mw;
  }
  return t;
}

double area_share(const std::vector<BlockCost>& blocks, const std::string& name) {
  const auto t = total_cost(blocks);
  if (t.area_um2 <= 0.0) return 0.0;
  for (const auto& b : blocks)
    if (b.name == name) return b.area_um2 / t.area_um2;
  return 0.0;
}

double power_share(const std::vector<BlockCost>& blocks, const std::string& name) {
  const auto t = total_cost(blocks);
  if (t.power_mw <= 0.0) return 0.0;
  for (const auto& b : blocks)
    if (b.name == name) return b.power_mw / t.power_mw;
  return 0.0;
}

double tile_vmm_latency_ns(const TileConfig& cfg) {
  const auto tech = device::technology_params(cfg.tech);
  const Adc adc({.bits = cfg.adc_bits, .kind = cfg.adc_kind});
  // Bit-serial input: input_bits array read cycles; after each cycle every
  // column must be digitized through the shared ADCs.
  const double cycles = static_cast<double>(cfg.input_bits) /
                        static_cast<double>(std::max(1, cfg.dac_bits));
  const double conversions_per_cycle =
      std::ceil(static_cast<double>(cfg.cols) / static_cast<double>(cfg.adcs));
  return cycles * (tech.t_read_ns + conversions_per_cycle * adc.latency_ns());
}

TileVmmEnergyBreakdown tile_vmm_energy_breakdown(const TileConfig& cfg) {
  const auto tech = device::technology_params(cfg.tech);
  const Adc adc({.bits = cfg.adc_bits, .kind = cfg.adc_kind});
  const Dac dac({.bits = cfg.dac_bits});
  const double cycles = static_cast<double>(cfg.input_bits) /
                        static_cast<double>(std::max(1, cfg.dac_bits));
  // Array: half the cells at mean conductance conducting during each cycle.
  const double g_mean = 0.5 * (tech.g_on_us() + tech.g_off_us());
  TileVmmEnergyBreakdown e;
  e.array_pj = cycles * 0.5 * static_cast<double>(cfg.rows) *
               static_cast<double>(cfg.cols) * tech.v_read * tech.v_read *
               g_mean * tech.t_read_ns * 1e-3;
  e.dac_pj =
      cycles * dac.energy_per_conversion_pj() * static_cast<double>(cfg.rows);
  e.adc_pj =
      cycles * adc.energy_per_sample_pj() * static_cast<double>(cfg.cols);
  e.digital_pj = cycles * kShiftAddPowerMw * tech.t_read_ns;
  return e;
}

double tile_vmm_energy_pj(const TileConfig& cfg) {
  return tile_vmm_energy_breakdown(cfg).total_pj();
}

}  // namespace cim::periphery
