#include "periphery/dac.hpp"

#include <cmath>
#include <stdexcept>

namespace cim::periphery {

Dac::Dac(DacConfig cfg) : cfg_(cfg) {
  if (cfg_.bits < 1 || cfg_.bits > 12)
    throw std::invalid_argument("Dac: bits in [1,12]");
  if (cfg_.v_max <= 0.0) throw std::invalid_argument("Dac: v_max > 0");
}

double Dac::to_voltage(std::uint32_t code) const {
  if (code > max_code()) code = max_code();
  if (cfg_.bits == 1) return code ? cfg_.v_max : 0.0;
  return cfg_.v_max * static_cast<double>(code) /
         static_cast<double>(max_code());
}

std::vector<double> Dac::bit_serial_pulses(std::uint32_t value, int bits,
                                           double v_on) {
  if (bits < 1 || bits > 32)
    throw std::invalid_argument("bit_serial_pulses: bits in [1,32]");
  std::vector<double> pulses(static_cast<std::size_t>(bits));
  for (int b = 0; b < bits; ++b)
    pulses[static_cast<std::size_t>(b)] = ((value >> b) & 1u) ? v_on : 0.0;
  return pulses;
}

double Dac::area_um2() const {
  // 1-bit driver ~1.7 um^2 (ISAAC: 0.00017 mm^2 for a tile's 128 drivers is
  // of this order); resistor-string DACs double per added bit.
  return 1.7 * std::pow(2.0, cfg_.bits - 1);
}

double Dac::power_mw() const {
  return 0.0039 * std::pow(2.0, cfg_.bits - 1);
}

double Dac::energy_per_conversion_pj() const {
  // One conversion per array read cycle (~1 ns window).
  return power_mw() * 1.0;
}

}  // namespace cim::periphery
