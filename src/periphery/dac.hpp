/// \file dac.hpp
/// \brief Digital-to-analog converter / wordline driver model.
///
/// "1-bit row or word-line drivers are now replaced by digital-to-analog
/// converters (DACs) that convert multi-bit VMM operands into an array of
/// analog voltages" (Section II.B.2). In practice most CIM designs (ISAAC,
/// PRIME) keep 1-bit drivers and stream operands bit-serially; both modes
/// are supported here.
#pragma once

#include <cstdint>
#include <vector>

namespace cim::periphery {

/// Configuration of one row DAC / driver.
struct DacConfig {
  int bits = 1;             ///< 1 = bit-serial wordline driver
  double v_max = 1.0;       ///< full-scale output voltage (V)
};

/// Behavioural + cost model of a row driver DAC.
class Dac {
 public:
  explicit Dac(DacConfig cfg);

  const DacConfig& config() const { return cfg_; }
  int bits() const { return cfg_.bits; }
  std::uint32_t max_code() const { return (1u << cfg_.bits) - 1; }

  /// Converts a digital code to the output voltage (V).
  double to_voltage(std::uint32_t code) const;

  /// Decomposes a multi-bit operand into the bit-serial voltage pulses a
  /// 1-bit driver would apply, LSB first (used by bit-serial VMM).
  static std::vector<double> bit_serial_pulses(std::uint32_t value, int bits,
                                               double v_on);

  // --- cost model (per driver; ISAAC-like constants) ------------------------
  double area_um2() const;
  double power_mw() const;
  double energy_per_conversion_pj() const;

 private:
  DacConfig cfg_;
};

}  // namespace cim::periphery
