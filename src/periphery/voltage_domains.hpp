/// \file voltage_domains.hpp
/// \brief Read/write voltage-domain overhead (Conclusions, point 4):
///        "the unavoidable requirement of different voltages for read and
///        write can lead to excessive power requirements. Further, this
///        skewed voltage for read and write also requires different voltage
///        drivers and can put extra burden on the physical resources."
///
/// Model: each distinct supply rail above the core VDD needs a charge pump
/// (area and conversion loss grow with the boost ratio) and every wordline
/// needs a level shifter per extra domain. The analysis yields the per-tile
/// area/power burden as a function of the read/write/program voltage split.
#pragma once

#include <cstddef>
#include <vector>

namespace cim::periphery {

/// The voltage rails a CIM tile must provide.
struct VoltagePlan {
  double vdd = 1.0;        ///< core logic supply (V)
  double v_read = 0.2;     ///< array read voltage
  double v_write = 2.0;    ///< SET/RESET magnitude
  double v_program = 0.0;  ///< optional third rail (e.g. FeRFET 2-3x vdd)
};

/// Cost of supporting one extra rail.
struct RailCost {
  double voltage = 0.0;
  double pump_area_um2 = 0.0;
  double pump_efficiency = 1.0;  ///< fraction of input power delivered
  double shifter_area_um2 = 0.0; ///< total level shifters for `rows` lines
};

/// Full voltage-domain overhead report for a tile.
struct VoltageDomainReport {
  std::vector<RailCost> rails;        ///< rails above vdd needing pumps
  double total_area_um2 = 0.0;
  /// Effective multiplier on write energy due to conversion losses.
  double write_energy_multiplier = 1.0;
};

/// Analyzes a voltage plan for a tile with `rows` driven lines.
VoltageDomainReport analyze_voltage_domains(const VoltagePlan& plan,
                                            std::size_t rows);

}  // namespace cim::periphery
