#include "periphery/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cim::periphery {
namespace {
// ISAAC design point: 8-bit SAR, 1.28 GS/s, ~0.0012 mm^2, ~2 mW.
constexpr double kRefBits = 8.0;
constexpr double kRefAreaUm2 = 1200.0;
constexpr double kRefPowerMw = 2.0;
constexpr double kRefRateGsps = 1.28;
}  // namespace

Adc::Adc(AdcConfig cfg) : cfg_(cfg) {
  if (cfg_.bits < 1 || cfg_.bits > 14)
    throw std::invalid_argument("Adc: bits in [1,14]");
  if (cfg_.sample_rate_gsps <= 0.0 || cfg_.full_scale_ua <= 0.0)
    throw std::invalid_argument("Adc: positive rate and full scale required");
}

std::uint32_t Adc::quantize(double current_ua) const {
  const double clipped = std::clamp(current_ua, 0.0, cfg_.full_scale_ua);
  const double scaled =
      clipped / cfg_.full_scale_ua * static_cast<double>(max_code());
  return static_cast<std::uint32_t>(std::lround(scaled));
}

bool Adc::clips(double current_ua) const {
  return current_ua < 0.0 || current_ua > cfg_.full_scale_ua;
}

double Adc::dequantize(std::uint32_t code) const {
  const std::uint32_t c = std::min(code, max_code());
  return static_cast<double>(c) / static_cast<double>(max_code()) *
         cfg_.full_scale_ua;
}

double Adc::lsb_ua() const {
  return cfg_.full_scale_ua / static_cast<double>(max_code());
}

double Adc::area_um2() const {
  // SAR: capacitive DAC array doubles per bit -> area ~ 2^bits.
  // Flash: 2^bits comparators plus resistor ladder -> steeper constant.
  const double scale = std::pow(2.0, cfg_.bits - kRefBits);
  const double style = (cfg_.kind == AdcKind::kFlash) ? 2.5 : 1.0;
  return kRefAreaUm2 * scale * style;
}

double Adc::power_mw() const {
  const double scale = std::pow(2.0, cfg_.bits - kRefBits);
  const double rate = cfg_.sample_rate_gsps / kRefRateGsps;
  const double style = (cfg_.kind == AdcKind::kFlash) ? 3.0 : 1.0;
  return kRefPowerMw * scale * rate * style;
}

double Adc::latency_ns() const {
  if (cfg_.kind == AdcKind::kFlash) return 1.0 / cfg_.sample_rate_gsps;
  // SAR resolves one bit per internal cycle; at the reference resolution one
  // conversion fits exactly in one sample period, and latency scales
  // linearly with resolution from there.
  return (static_cast<double>(cfg_.bits) / kRefBits) / cfg_.sample_rate_gsps;
}

double Adc::energy_per_sample_pj() const {
  // P[mW] * t[ns] = pJ ; one conversion occupies 1/rate ns of the pipeline.
  return power_mw() / cfg_.sample_rate_gsps;
}

}  // namespace cim::periphery
