#include "periphery/voltage_domains.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cim::periphery {
namespace {
// A Dickson-style charge pump needs ceil(boost) - 1 stages; each stage
// costs flying-capacitor area and loses efficiency.
constexpr double kPumpStageAreaUm2 = 180.0;
constexpr double kPumpStageEfficiency = 0.88;
constexpr double kLevelShifterAreaUm2 = 0.6;  // per driven line per domain
}  // namespace

VoltageDomainReport analyze_voltage_domains(const VoltagePlan& plan,
                                            std::size_t rows) {
  if (plan.vdd <= 0.0)
    throw std::invalid_argument("analyze_voltage_domains: vdd > 0");
  VoltageDomainReport rep;

  auto add_rail = [&](double v) {
    if (v <= plan.vdd) return;  // served by the core supply
    RailCost rail;
    rail.voltage = v;
    const int stages =
        std::max(1, static_cast<int>(std::ceil(v / plan.vdd)) - 1);
    rail.pump_area_um2 = kPumpStageAreaUm2 * stages;
    rail.pump_efficiency = std::pow(kPumpStageEfficiency, stages);
    rail.shifter_area_um2 =
        kLevelShifterAreaUm2 * static_cast<double>(rows);
    rep.rails.push_back(rail);
  };

  add_rail(std::abs(plan.v_write));
  if (plan.v_program > 0.0) add_rail(plan.v_program);
  // Read voltages below vdd need no pump (resistive divider/reference).

  for (const auto& rail : rep.rails)
    rep.total_area_um2 += rail.pump_area_um2 + rail.shifter_area_um2;

  // Write pulses draw through the pump: energy multiplies by 1/efficiency
  // of the write rail (the first one added).
  if (!rep.rails.empty())
    rep.write_energy_multiplier = 1.0 / rep.rails.front().pump_efficiency;
  return rep;
}

}  // namespace cim::periphery
