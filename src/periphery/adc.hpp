/// \file adc.hpp
/// \brief Analog-to-digital converter model (Section II.B.2 / II.E).
///
/// The paper singles the ADC out as *the* critical periphery block: analog
/// column currents must be digitized, quantization error grows as resolution
/// drops, and "area/power increases drastically" with the number of levels
/// — Fig. 5 shows ADCs dominating CIM die area and power. This model covers
/// both the behaviour (mid-tread uniform quantization with configurable
/// clipping) and the cost (area/power/latency scaling with resolution,
/// anchored to the ISAAC 8-bit 1.28 GS/s SAR design point).
#pragma once

#include <cstdint>

namespace cim::periphery {

/// ADC circuit style; affects the resolution scaling of cost.
enum class AdcKind {
  kSar,    ///< successive approximation: latency grows linearly with bits
  kFlash,  ///< flash: 2^bits comparators, fastest but costliest
};

/// Configuration of one ADC instance.
struct AdcConfig {
  int bits = 8;                  ///< resolution (1..14)
  AdcKind kind = AdcKind::kSar;
  double sample_rate_gsps = 1.28;///< samples per ns (GS/s)
  double full_scale_ua = 1000.0; ///< input current mapped to full code
};

/// Behavioural + cost model of an ADC.
class Adc {
 public:
  explicit Adc(AdcConfig cfg);

  const AdcConfig& config() const { return cfg_; }
  int bits() const { return cfg_.bits; }
  std::uint32_t max_code() const { return (1u << cfg_.bits) - 1; }

  /// Quantizes a current (uA) to a code; clips outside [0, full_scale].
  std::uint32_t quantize(double current_ua) const;

  /// True when `current_ua` falls outside the converter's input range, i.e.
  /// quantize() would clip it. The per-column saturation signal fed to the
  /// device-health monitors: persistent clipping on a column usually means
  /// drifted/stuck LRS cells or sneak-path background pushing the bitline
  /// current past full scale.
  bool clips(double current_ua) const;

  /// Code back to the current at the reconstruction level (uA).
  double dequantize(std::uint32_t code) const;

  /// One quantization step in uA.
  double lsb_ua() const;

  /// Worst-case quantization error (uA) = LSB/2 inside the range.
  double max_quantization_error_ua() const { return 0.5 * lsb_ua(); }

  // --- cost model (anchored at ISAAC's 8-bit SAR: 1200 um^2, 2 mW) ---------
  double area_um2() const;
  double power_mw() const;
  /// Conversion latency for one sample (ns).
  double latency_ns() const;
  /// Energy for one conversion (pJ).
  double energy_per_sample_pj() const;

 private:
  AdcConfig cfg_;
};

}  // namespace cim::periphery
