#include "exp/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "exp/worker.hpp"

namespace cim::exp {

namespace {

std::string cell_label(const CampaignConfig& cfg, std::size_t c) {
  if (c < cfg.cell_names.size() && !cfg.cell_names[c].empty())
    return cfg.cell_names[c];
  return "cell" + std::to_string(c);
}

/// Canonical block evaluation: sequential Welford adds in rep order, each
/// trial seeded purely from (seed, cell, rep). Every execution path —
/// serial, thread pool, worker process — reduces to this function, which
/// is what makes the sharded results bit-identical.
obs::StreamStat run_block(const TrialFn& trial, std::uint64_t seed,
                          const WorkerTask& t) {
  obs::StreamStat st;
  for (std::uint64_t r = 0; r < t.rep_count; ++r) {
    const std::uint64_t rep = t.rep_begin + r;
    util::Rng rng(trial_seed(seed, t.cell, rep));
    st.add(trial(t.cell, rep, rng));
  }
  return st;
}

void run_many(util::ThreadPool* pool, std::size_t n,
              const std::function<void(std::size_t)>& body) {
  if (pool != nullptr)
    pool->parallel_for(0, n, body);
  else
    for (std::size_t i = 0; i < n; ++i) body(i);
}

double cell_target(const CampaignConfig& cfg, const obs::StreamStat& s) {
  return std::max(cfg.ci_target, cfg.ci_rel_target * std::fabs(s.mean));
}

/// Sticky freeze: once a cell stops receiving trials its stats never
/// change, so a frozen cell stays frozen and the pass is deterministic.
void freeze_pass(const CampaignConfig& cfg, double z,
                 std::vector<CellCheckpoint>& st) {
  const std::uint64_t fixed =
      cfg.fixed_trials > 0 ? cfg.fixed_trials : cfg.max_trials;
  for (CellCheckpoint& c : st) {
    if (c.frozen) continue;
    const std::uint64_t n = c.stat.n;
    if (!cfg.adaptive) {
      if (n >= fixed) c.frozen = true;
      continue;
    }
    const double target = cell_target(cfg, c.stat);
    if (n >= cfg.min_trials && target > 0.0 &&
        c.stat.ci_half_width(z) <= target) {
      c.frozen = true;
    } else if (n >= cfg.max_trials) {
      c.frozen = true;
      c.capped = true;
    }
  }
}

/// How many more trials this cell wants, before per-round clamping. Pure
/// function of the merged summary (and the config), so the allocation —
/// and therefore the whole campaign — replays identically after a resume.
std::uint64_t desired_new(const CampaignConfig& cfg, double z,
                          const CellCheckpoint& c) {
  const std::uint64_t n = c.stat.n;
  if (!cfg.adaptive) {
    const std::uint64_t fixed =
        cfg.fixed_trials > 0 ? cfg.fixed_trials : cfg.max_trials;
    return n < fixed ? fixed - n : 0;
  }
  if (n >= cfg.max_trials) return 0;
  std::uint64_t needed = n < cfg.min_trials ? cfg.min_trials - n : 0;
  const double target = cell_target(cfg, c.stat);
  const double sd = c.stat.stddev();
  if (n >= 2 && target > 0.0 && sd > 0.0) {
    // Sample size for ci_half <= target under the normal approximation:
    // n_req = (z * sd / target)^2, using the current variance estimate.
    const double zs = z * sd / target;
    const double req = std::ceil(zs * zs);
    const std::uint64_t n_req =
        req >= static_cast<double>(cfg.max_trials)
            ? cfg.max_trials
            : static_cast<std::uint64_t>(req);
    needed = std::max(needed, n_req > n ? n_req - n : cfg.block);
  } else if (needed == 0) {
    needed = cfg.block;  // no usable variance estimate yet: probe one block
  }
  return std::min(needed, cfg.max_trials - n);
}

/// Emits this round's task list (block granularity, cell-index order) and
/// advances the replication cursors. High-variance cells get up to
/// `max_blocks_per_round` blocks; nearly-converged cells get one.
std::vector<WorkerTask> schedule_round(const CampaignConfig& cfg, double z,
                                       std::vector<CellCheckpoint>& st,
                                       std::uint64_t round,
                                       std::vector<Decision>& decisions) {
  std::vector<WorkerTask> tasks;
  const std::uint64_t cap =
      !cfg.adaptive && cfg.fixed_trials > 0 ? cfg.fixed_trials
                                            : cfg.max_trials;
  for (std::size_t c = 0; c < st.size(); ++c) {
    CellCheckpoint& cell = st[c];
    if (cell.frozen) continue;
    const std::uint64_t needed = desired_new(cfg, z, cell);
    if (needed == 0) continue;
    std::uint64_t blocks = (needed + cfg.block - 1) / cfg.block;
    blocks = std::min(std::max<std::uint64_t>(blocks, 1),
                      cfg.max_blocks_per_round);
    std::uint64_t alloc =
        std::min(blocks * cfg.block, cap - cell.stat.n);
    while (alloc > 0) {
      const std::uint64_t cnt = std::min(cfg.block, alloc);
      tasks.push_back({c, cell.cursor, cnt});
      decisions.push_back({round, c, cell.cursor, cnt});
      cell.cursor += cnt;
      alloc -= cnt;
    }
  }
  return tasks;
}

/// Runs one round's tasks across the active shards and fills `results` by
/// task index. On any worker-pipe failure the parent recomputes the lost
/// shards in-process — bit-identical by construction — and demotes the
/// campaign to in-process execution for the remaining rounds.
void execute_tasks(const CampaignConfig& cfg, const TrialFn& trial,
                   const std::vector<WorkerTask>& tasks,
                   std::vector<obs::StreamStat>& results, WorkerPool& wpool,
                   bool& use_workers) {
  results.assign(tasks.size(), obs::StreamStat{});
  const auto compute = [&](std::size_t i) {
    results[i] = run_block(trial, cfg.seed, tasks[i]);
  };

  const std::size_t shards = use_workers ? wpool.children() + 1 : 1;
  if (shards <= 1) {
    run_many(cfg.pool, tasks.size(), compute);
    return;
  }

  std::vector<std::vector<WorkerTask>> child_tasks(shards - 1);
  std::vector<std::vector<std::size_t>> child_idx(shards - 1);
  std::vector<std::size_t> mine;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::size_t shard = i % shards;
    if (shard == 0) {
      mine.push_back(i);
    } else {
      child_tasks[shard - 1].push_back(tasks[i]);
      child_idx[shard - 1].push_back(i);
    }
  }

  bool ok = true;
  for (std::size_t c = 0; c < child_tasks.size() && ok; ++c)
    ok = wpool.send_tasks(c, child_tasks[c]);

  // The parent is shard 0 and chews its own blocks while children work.
  run_many(cfg.pool, mine.size(),
           [&](std::size_t j) { compute(mine[j]); });

  if (ok) {
    for (std::size_t c = 0; c < child_tasks.size() && ok; ++c) {
      std::vector<obs::StreamStat> stats;
      ok = wpool.read_stats(c, child_tasks[c].size(), stats);
      if (ok)
        for (std::size_t j = 0; j < stats.size(); ++j)
          results[child_idx[c][j]] = stats[j];
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "[cim-exp] %s: worker pool failed mid-round; recomputing "
                 "in-process\n",
                 cfg.name.c_str());
    wpool.shutdown();
    use_workers = false;
    std::vector<std::size_t> lost;
    for (const auto& idx : child_idx)
      lost.insert(lost.end(), idx.begin(), idx.end());
    run_many(cfg.pool, lost.size(),
             [&](std::size_t j) { compute(lost[j]); });
  }
}

CampaignManifest make_manifest(const CampaignConfig& cfg, std::uint64_t fp,
                               const std::vector<CellCheckpoint>& st,
                               std::uint64_t rounds, std::uint64_t trials) {
  CampaignManifest m;
  m.name = cfg.name;
  m.seed = cfg.seed;
  m.cells = cfg.cells;
  m.block = cfg.block;
  m.fingerprint = fp;
  m.rounds = rounds;
  m.total_trials = trials;
  m.cell_state = st;
  return m;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* e = std::getenv(name); e != nullptr && *e != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(e, &end, 10);
    if (end != e && *end == '\0' && v > 0) return v;
  }
  return fallback;
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t seed, std::size_t cell,
                         std::uint64_t rep) {
  return util::Rng::stream_seed2(seed, cell, rep);
}

CampaignConfig apply_env(CampaignConfig cfg) {
  cfg.workers = static_cast<std::size_t>(
      env_u64("CIM_EXP_WORKERS", cfg.workers));
  cfg.max_trials = env_u64("CIM_EXP_MAX_TRIALS", cfg.max_trials);
  cfg.checkpoint_every_rounds =
      env_u64("CIM_EXP_CHECKPOINT_EVERY", cfg.checkpoint_every_rounds);
  if (const char* e = std::getenv("CIM_EXP_CI_TARGET");
      e != nullptr && *e != '\0') {
    char* end = nullptr;
    const double v = std::strtod(e, &end);
    if (end != e && *end == '\0' && v > 0.0) cfg.ci_target = v;
  }
  if (const char* e = std::getenv("CIM_EXP_CHECKPOINT");
      e != nullptr && *e != '\0')
    cfg.checkpoint_path = e;
  if (const char* e = std::getenv("CIM_EXP_CONV_FILE");
      e != nullptr && *e != '\0')
    cfg.convergence_csv = e;
  if (const char* e = std::getenv("CIM_EXP_PROGRESS"); e != nullptr) {
    const std::string_view v(e);
    cfg.progress = !(v == "0" || v == "off" || v == "");
  }
  return cfg;
}

CampaignResult run_campaign(const CampaignConfig& cfg_in,
                            const TrialFn& trial) {
  CampaignConfig cfg = cfg_in;
  if (cfg.cells == 0) throw std::invalid_argument("campaign: cells == 0");
  if (cfg.block == 0) throw std::invalid_argument("campaign: block == 0");
  if (cfg.name.empty() ||
      cfg.name.find_first_of(" \t\r\n") != std::string::npos)
    throw std::invalid_argument(
        "campaign: name must be non-empty without whitespace");
  if (cfg.max_trials == 0) cfg.max_trials = 1;
  if (cfg.min_trials < 2) cfg.min_trials = 2;
  if (cfg.min_trials > cfg.max_trials) cfg.min_trials = cfg.max_trials;
  if (cfg.max_blocks_per_round == 0) cfg.max_blocks_per_round = 1;
  if (cfg.checkpoint_every_rounds == 0) cfg.checkpoint_every_rounds = 1;
  if (cfg.workers == 0) cfg.workers = 1;

  const std::uint64_t fp =
      campaign_fingerprint(cfg.name, cfg.seed, cfg.cells, cfg.block);

  // A worker child turns into a protocol server at its first campaign and
  // never comes back; the fingerprint handshake rejects campaigns other
  // than the one its parent is running.
  if (in_worker_mode())
    serve_worker(fp, [&](const WorkerTask& t) {
      return run_block(trial, cfg.seed, t);
    });

  const double z = obs::z_for_confidence(cfg.ci_confidence);
  CampaignResult res;
  std::vector<CellCheckpoint> st(cfg.cells);

  if (!cfg.checkpoint_path.empty() &&
      std::filesystem::exists(cfg.checkpoint_path)) {
    CampaignManifest m;
    std::string err;
    if (!load_manifest(cfg.checkpoint_path, m, &err))
      throw std::runtime_error("campaign '" + cfg.name +
                               "': cannot resume: " + err);
    if (m.fingerprint != fp)
      throw std::runtime_error(
          "campaign '" + cfg.name + "': checkpoint '" + cfg.checkpoint_path +
          "' belongs to a different campaign (fingerprint mismatch)");
    st = m.cell_state;
    res.rounds = m.rounds;
    res.total_trials = m.total_trials;
    res.resumed = true;
  }

  WorkerPool wpool;
  bool use_workers = false;
  if (cfg.workers > 1) {
    if (wpool.start(cfg.workers - 1, fp)) {
      use_workers = true;
    } else {
      std::fprintf(stderr,
                   "[cim-exp] %s: could not start %zu worker processes; "
                   "running in-process\n",
                   cfg.name.c_str(), cfg.workers - 1);
    }
  }

  obs::Registry& reg = obs::Registry::global();
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t trials_at_start = res.total_trials;
  std::vector<std::string> conv_rows;

  for (;;) {
    freeze_pass(cfg, z, st);
    std::size_t frozen = 0;
    for (const CellCheckpoint& c : st) frozen += c.frozen ? 1 : 0;
    reg.gauge("exp.cells_frozen").set(static_cast<double>(frozen));
    reg.gauge("exp.cells_total").set(static_cast<double>(cfg.cells));
    if (frozen == cfg.cells) break;

    const std::uint64_t round = res.rounds;
    std::vector<WorkerTask> tasks =
        schedule_round(cfg, z, st, round, res.decisions);
    if (tasks.empty()) break;  // unschedulable: freeze_pass will cap next

    std::vector<obs::StreamStat> results;
    execute_tasks(cfg, trial, tasks, results, wpool, use_workers);

    // Merge in task-enumeration order: the determinism linchpin.
    std::uint64_t round_trials = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      st[tasks[i].cell].stat.merge(results[i]);
      round_trials += tasks[i].rep_count;
    }
    res.total_trials += round_trials;
    res.rounds += 1;

    reg.counter("exp.trials_done").add(round_trials);
    reg.counter("exp.rounds").add(1);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double rate =
        elapsed_s > 0.0
            ? static_cast<double>(res.total_trials - trials_at_start) /
                  elapsed_s
            : 0.0;
    std::uint64_t remaining = 0;
    for (const CellCheckpoint& c : st)
      if (!c.frozen) remaining += desired_new(cfg, z, c);
    reg.gauge("exp.trials_per_s").set(rate);
    reg.gauge("exp.eta_s")
        .set(rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0);

    for (std::size_t c = 0; c < st.size(); ++c) {
      const std::string label = cell_label(cfg, c);
      const double ci = st[c].stat.ci_half_width(z);
      reg.gauge("exp.cell.trials." + label)
          .set(static_cast<double>(st[c].stat.n));
      reg.gauge("exp.cell.ci_half." + label).set(ci);
      char row[256];
      std::snprintf(row, sizeof(row), "%llu,%zu,%s,%llu,%.17g,%.17g,%d\n",
                    static_cast<unsigned long long>(round), c, label.c_str(),
                    static_cast<unsigned long long>(st[c].stat.n),
                    st[c].stat.mean, ci, st[c].frozen ? 1 : 0);
      conv_rows.emplace_back(row);
    }

    if (cfg.progress)
      std::fprintf(stderr,
                   "\r[exp] %s round %llu trials=%llu frozen=%zu/%zu "
                   "rate=%.0f/s eta=%.1fs   ",
                   cfg.name.c_str(),
                   static_cast<unsigned long long>(res.rounds),
                   static_cast<unsigned long long>(res.total_trials), frozen,
                   cfg.cells, rate,
                   rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0);

    if (!cfg.checkpoint_path.empty() &&
        res.rounds % cfg.checkpoint_every_rounds == 0)
      save_manifest(cfg.checkpoint_path,
                    make_manifest(cfg, fp, st, res.rounds, res.total_trials));
  }

  if (cfg.progress) std::fputc('\n', stderr);

  // Final manifest doubles as the result export for tools/cim_campaign.
  if (!cfg.checkpoint_path.empty())
    save_manifest(cfg.checkpoint_path,
                  make_manifest(cfg, fp, st, res.rounds, res.total_trials));

  if (!cfg.convergence_csv.empty())
    obs::write_file_atomic(cfg.convergence_csv, [&](std::ostream& os) {
      os << "round,cell,name,n,mean,ci_half,frozen\n";
      for (const std::string& row : conv_rows) os << row;
    });

  res.worker_shards = use_workers ? wpool.children() + 1 : 1;
  if (use_workers) {
    for (std::size_t c = 0; c < wpool.children(); ++c) {
      std::string json;
      obs::Snapshot snap;
      if (wpool.collect_snapshot(c, json) &&
          obs::parse_snapshot_json(json, snap)) {
        const obs::MergeStats ms = obs::absorb_snapshot(snap, 0);
        res.worker_telemetry.counters_added += ms.counters_added;
        res.worker_telemetry.gauges_taken += ms.gauges_taken;
        res.worker_telemetry.histograms_merged += ms.histograms_merged;
        res.worker_telemetry.bound_conflicts += ms.bound_conflicts;
        res.worker_telemetry.spans_merged += ms.spans_merged;
      }
    }
    wpool.end_campaign();
    wpool.shutdown();
  }

  res.cells.reserve(cfg.cells);
  for (std::size_t c = 0; c < st.size(); ++c) {
    CellResult r;
    r.name = cell_label(cfg, c);
    r.stat = st[c].stat;
    r.frozen = st[c].frozen;
    r.capped = st[c].capped;
    res.summary.absorb(r.name, r.stat);
    res.cells.push_back(std::move(r));
  }
  return res;
}

}  // namespace cim::exp
