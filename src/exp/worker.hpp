/// \file worker.hpp
/// \brief Process-level campaign sharding: fork/exec worker pool + protocol.
///
/// The campaign engine shards trial blocks across OS processes as well as
/// threads. A worker is this same executable re-exec'd (`/proc/self/exe`)
/// with `CIM_EXP_WORKER_FDS=<read_fd>,<write_fd>` in its environment and a
/// cosmetic `--cim-exp-worker` argv tag: the child re-runs its own `main`
/// until it reaches `run_campaign`, which detects the environment variable
/// and turns into a protocol server (`serve_worker`) that never returns.
/// Re-exec'ing the host binary is what lets the child rebuild the exact
/// `TrialFn` closure — there is no serialization of work, only of results.
///
/// The wire protocol is line-based over a dedicated pipe pair (stdin/stdout
/// are NOT used — the child's stdout is redirected to /dev/null so a bench
/// parent still prints exactly one BENCH_JSON line):
///
///   parent -> child    begin <fingerprint-hex>     child -> ack | nack
///   parent -> child    task <cell> <rep_begin> <rep_count>   (repeated)
///   parent -> child    run
///   child  -> parent   stat <n> <mean> <m2> <min> <max>  (one per task,
///                      in task order, doubles at %.17g), then:  done
///   parent -> child    snapshot
///   child  -> parent   snapshot <len>\n<len JSON bytes>\n
///   parent -> child    end        (campaign over; child awaits next begin)
///   parent -> child    quit       (or EOF: child _exits 0)
///
/// A `nack` (the child's own campaign config has a different fingerprint —
/// possible when the host main builds a different campaign first) or any
/// spawn/handshake failure makes the parent fall back to in-process
/// execution; results are bit-identical either way because block summaries
/// are pure functions of (seed, cell, rep range) and %.17g round-trips
/// doubles exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "obs/dataset.hpp"

namespace cim::exp {

/// One unit of sharded work: a contiguous replication block of one cell.
struct WorkerTask {
  std::size_t cell = 0;
  std::uint64_t rep_begin = 0;
  std::uint64_t rep_count = 0;
};

/// Name of the fd-pair environment variable that marks a worker process.
extern const char* const kWorkerFdsEnv;

/// True when this process was spawned as a campaign worker.
bool in_worker_mode();

/// Parent-side handle on a set of spawned worker processes.
class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool() { shutdown(); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns `children` workers and runs the `begin` handshake against
  /// `fingerprint`. On any spawn or handshake failure every child is
  /// reaped and false is returned (caller falls back to in-process).
  bool start(std::size_t children, std::uint64_t fingerprint);

  std::size_t children() const { return procs_.size(); }

  /// Ships one round's task list for `child`, terminated by `run`.
  bool send_tasks(std::size_t child, const std::vector<WorkerTask>& tasks);

  /// Reads back exactly `expect` block summaries (in task order) + `done`.
  bool read_stats(std::size_t child, std::size_t expect,
                  std::vector<obs::StreamStat>& out);

  /// Requests the child's telemetry snapshot (flat JSON text).
  bool collect_snapshot(std::size_t child, std::string& json_out);

  /// Signals end-of-campaign to every child (they await a new `begin`).
  void end_campaign();

  /// Sends `quit`, closes pipes and reaps every child. Idempotent.
  void shutdown();

 private:
  struct Proc {
    pid_t pid = -1;
    int to_child = -1;    ///< parent writes protocol lines here
    int from_child = -1;  ///< parent reads replies here
    std::string rdbuf;    ///< partial-line buffer for from_child
  };

  bool write_line(Proc& p, const std::string& line);
  bool read_line(Proc& p, std::string& out);
  bool read_exact(Proc& p, std::string& out, std::size_t n);

  std::vector<Proc> procs_;
};

/// Child-side protocol server. `run_block` computes one task's summary
/// (it must be a pure function of the task — it is called from a thread
/// pool). Resets the telemetry registry on entry so the snapshot shipped
/// back covers exactly the work done here. Never returns.
[[noreturn]] void serve_worker(
    std::uint64_t fingerprint,
    const std::function<obs::StreamStat(const WorkerTask&)>& run_block);

}  // namespace cim::exp
