#include "exp/worker.hpp"

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

extern char** environ;

namespace cim::exp {

const char* const kWorkerFdsEnv = "CIM_EXP_WORKER_FDS";

bool in_worker_mode() { return std::getenv(kWorkerFdsEnv) != nullptr; }

namespace {

/// Full write with EINTR retry; SIGPIPE is ignored so a dead peer surfaces
/// as EPIPE instead of killing the process.
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool write_all(int fd, const std::string& s) {
  return write_all(fd, s.data(), s.size());
}

/// Buffered line reader over a raw fd. Returns false on EOF/error with no
/// complete line pending.
bool read_line_fd(int fd, std::string& buf, std::string& out) {
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      out.assign(buf, 0, nl);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    buf.append(chunk, static_cast<std::size_t>(r));
  }
}

bool read_exact_fd(int fd, std::string& buf, std::string& out,
                   std::size_t n) {
  while (buf.size() < n) {
    char chunk[4096];
    const ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    buf.append(chunk, static_cast<std::size_t>(r));
  }
  out.assign(buf, 0, n);
  buf.erase(0, n);
  return true;
}

/// %.17g round-trips every finite double exactly (the same contract the
/// snapshot exporter and cim-campaign-v1 manifests rely on).
void append_g17(std::string& s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s += buf;
}

bool parse_stat_line(std::string_view line, obs::StreamStat& st) {
  // "stat <n> <mean> <m2> <min> <max>"
  std::string tmp(line);
  char* cur = tmp.data();
  if (std::strncmp(cur, "stat ", 5) != 0) return false;
  cur += 5;
  char* end = nullptr;
  errno = 0;
  st.n = std::strtoull(cur, &end, 10);
  if (end == cur) return false;
  double* fields[4] = {&st.mean, &st.m2, &st.min, &st.max};
  for (double* f : fields) {
    cur = end;
    *f = std::strtod(cur, &end);
    if (end == cur) return false;
  }
  while (*end == ' ') ++end;
  return *end == '\0';
}

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

}  // namespace

// --- parent side -------------------------------------------------------------

bool WorkerPool::write_line(Proc& p, const std::string& line) {
  return write_all(p.to_child, line + "\n");
}

bool WorkerPool::read_line(Proc& p, std::string& out) {
  return read_line_fd(p.from_child, p.rdbuf, out);
}

bool WorkerPool::read_exact(Proc& p, std::string& out, std::size_t n) {
  return read_exact_fd(p.from_child, p.rdbuf, out, n);
}

bool WorkerPool::start(std::size_t children, std::uint64_t fingerprint) {
  if (!procs_.empty() || children == 0) return false;
  ignore_sigpipe();

  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) return false;
  exe[n] = '\0';

  char fp_hex[20];
  std::snprintf(fp_hex, sizeof(fp_hex), "%016" PRIx64, fingerprint);
  const std::string begin_line = std::string("begin ") + fp_hex;

  for (std::size_t i = 0; i < children; ++i) {
    int down[2];  // parent -> child
    int up[2];    // child -> parent
    if (::pipe(down) != 0) {
      shutdown();
      return false;
    }
    if (::pipe(up) != 0) {
      ::close(down[0]);
      ::close(down[1]);
      shutdown();
      return false;
    }

    // The environment block must be assembled BEFORE fork: the parent may
    // have live thread-pool threads, so the child can only use
    // async-signal-safe calls between fork and exec.
    std::string fds_kv = std::string(kWorkerFdsEnv) + "=" +
                         std::to_string(down[0]) + "," +
                         std::to_string(up[1]);
    std::vector<char*> envp;
    const std::size_t kv_len = std::strlen(kWorkerFdsEnv);
    for (char** e = environ; *e != nullptr; ++e) {
      if (std::strncmp(*e, kWorkerFdsEnv, kv_len) == 0 && (*e)[kv_len] == '=')
        continue;
      envp.push_back(*e);
    }
    envp.push_back(fds_kv.data());
    envp.push_back(nullptr);
    char arg_tag[] = "--cim-exp-worker";
    char* argv[] = {exe, arg_tag, nullptr};

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(down[0]);
      ::close(down[1]);
      ::close(up[0]);
      ::close(up[1]);
      shutdown();
      return false;
    }
    if (pid == 0) {
      // Child: silence stdout (the parent owns the single BENCH_JSON line),
      // drop parent-side pipe ends, exec ourselves.
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        ::close(devnull);
      }
      ::close(down[1]);
      ::close(up[0]);
      ::execve(exe, argv, envp.data());
      ::_exit(127);
    }

    // Parent: keep only its ends, and mark them close-on-exec so later
    // children don't inherit handles on this child's pipes.
    ::close(down[0]);
    ::close(up[1]);
    ::fcntl(down[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(up[0], F_SETFD, FD_CLOEXEC);
    Proc p;
    p.pid = pid;
    p.to_child = down[1];
    p.from_child = up[0];
    procs_.push_back(std::move(p));
  }

  // Handshake every child; any nack/EOF aborts the whole pool — mixed
  // in-process/worker execution would still be correct, but all-or-nothing
  // keeps the failure mode easy to reason about.
  for (Proc& p : procs_) {
    std::string reply;
    if (!write_line(p, begin_line) || !read_line(p, reply) ||
        reply != "ack") {
      shutdown();
      return false;
    }
  }
  return true;
}

bool WorkerPool::send_tasks(std::size_t child,
                            const std::vector<WorkerTask>& tasks) {
  if (child >= procs_.size()) return false;
  std::string msg;
  msg.reserve(tasks.size() * 32 + 8);
  for (const WorkerTask& t : tasks) {
    msg += "task ";
    msg += std::to_string(t.cell);
    msg += ' ';
    msg += std::to_string(t.rep_begin);
    msg += ' ';
    msg += std::to_string(t.rep_count);
    msg += '\n';
  }
  msg += "run\n";
  return write_all(procs_[child].to_child, msg);
}

bool WorkerPool::read_stats(std::size_t child, std::size_t expect,
                            std::vector<obs::StreamStat>& out) {
  if (child >= procs_.size()) return false;
  Proc& p = procs_[child];
  out.clear();
  out.reserve(expect);
  std::string line;
  for (std::size_t i = 0; i < expect; ++i) {
    obs::StreamStat st;
    if (!read_line(p, line) || !parse_stat_line(line, st)) return false;
    out.push_back(st);
  }
  return read_line(p, line) && line == "done";
}

bool WorkerPool::collect_snapshot(std::size_t child, std::string& json_out) {
  if (child >= procs_.size()) return false;
  Proc& p = procs_[child];
  if (!write_line(p, "snapshot")) return false;
  std::string line;
  if (!read_line(p, line)) return false;
  if (line.rfind("snapshot ", 0) != 0) return false;
  char* end = nullptr;
  const unsigned long long len = std::strtoull(line.c_str() + 9, &end, 10);
  if (end == line.c_str() + 9 || *end != '\0') return false;
  if (!read_exact(p, json_out, static_cast<std::size_t>(len))) return false;
  return read_line(p, line) && line.empty();
}

void WorkerPool::end_campaign() {
  for (Proc& p : procs_)
    if (p.to_child >= 0) write_all(p.to_child, std::string("end\n"));
}

void WorkerPool::shutdown() {
  for (Proc& p : procs_) {
    if (p.to_child >= 0) {
      write_all(p.to_child, std::string("quit\n"));
      ::close(p.to_child);  // EOF backs up the quit if the pipe already broke
      p.to_child = -1;
    }
    if (p.from_child >= 0) {
      ::close(p.from_child);
      p.from_child = -1;
    }
    if (p.pid > 0) {
      int status = 0;
      while (::waitpid(p.pid, &status, 0) < 0 && errno == EINTR) {
      }
      p.pid = -1;
    }
  }
  procs_.clear();
}

// --- child side --------------------------------------------------------------

[[noreturn]] void serve_worker(
    std::uint64_t fingerprint,
    const std::function<obs::StreamStat(const WorkerTask&)>& run_block) {
  ignore_sigpipe();
  int rfd = -1;
  int wfd = -1;
  if (const char* env = std::getenv(kWorkerFdsEnv); env != nullptr)
    std::sscanf(env, "%d,%d", &rfd, &wfd);
  if (rfd < 0 || wfd < 0) std::_Exit(125);

  // Telemetry from the host main's setup phase is the parent's business;
  // the snapshot shipped back should cover exactly the trials run here.
  obs::Registry::global().reset();

  std::string rdbuf;
  std::string line;
  std::vector<WorkerTask> tasks;
  bool accepted = false;

  while (read_line_fd(rfd, rdbuf, line)) {
    if (line.rfind("begin ", 0) == 0) {
      char* end = nullptr;
      const std::uint64_t fp = std::strtoull(line.c_str() + 6, &end, 16);
      accepted = (end != line.c_str() + 6 && fp == fingerprint);
      tasks.clear();
      if (!write_all(wfd, std::string(accepted ? "ack\n" : "nack\n"))) break;
    } else if (line.rfind("task ", 0) == 0) {
      if (!accepted) continue;
      WorkerTask t;
      if (std::sscanf(line.c_str() + 5, "%zu %" SCNu64 " %" SCNu64, &t.cell,
                      &t.rep_begin, &t.rep_count) == 3)
        tasks.push_back(t);
    } else if (line == "run") {
      if (!accepted) continue;
      std::vector<obs::StreamStat> results(tasks.size());
      util::ThreadPool::global().parallel_for(
          0, tasks.size(),
          [&](std::size_t i) { results[i] = run_block(tasks[i]); });
      std::string msg;
      msg.reserve(results.size() * 96 + 8);
      for (const obs::StreamStat& st : results) {
        msg += "stat ";
        msg += std::to_string(st.n);
        msg += ' ';
        append_g17(msg, st.mean);
        msg += ' ';
        append_g17(msg, st.m2);
        msg += ' ';
        append_g17(msg, st.min);
        msg += ' ';
        append_g17(msg, st.max);
        msg += '\n';
      }
      msg += "done\n";
      tasks.clear();
      if (!write_all(wfd, msg)) break;
    } else if (line == "snapshot") {
      std::ostringstream os;
      obs::write_snapshot_json(os, obs::Registry::global().snapshot());
      const std::string json = os.str();
      std::string msg = "snapshot " + std::to_string(json.size()) + "\n";
      msg += json;
      msg += '\n';
      if (!write_all(wfd, msg)) break;
    } else if (line == "end") {
      accepted = false;
      tasks.clear();
    } else if (line == "quit") {
      break;
    }
    // Unknown lines are skipped: forward compatibility for later protocol
    // revisions driving an older worker.
  }
  std::_Exit(0);
}

}  // namespace cim::exp
