/// \file checkpoint.hpp
/// \brief `cim-campaign-v1` manifests: crash-safe campaign checkpoints and
///        the final result export read by tools/cim_campaign.
///
/// A manifest records everything needed to resume a Monte-Carlo campaign
/// exactly: the campaign identity (name/seed/cells/block, condensed into an
/// FNV-1a fingerprint so a checkpoint can never be resumed against a
/// different experiment), the scheduler's progress (rounds, total trials),
/// and per cell the merged `obs::StreamStat` plus the replication cursor —
/// the next rep index the scheduler may hand out. Because every trial is a
/// pure function of (seed, cell, rep) and every scheduler decision is a
/// pure function of the merged summaries, a run resumed from a round
/// boundary converges on a final manifest bit-identical to the
/// uninterrupted run (tests/exp/test_crash_resume.cpp SIGKILLs campaigns
/// mid-flight to prove it).
///
/// The format follows the repo's text-manifest conventions (serve/trace_io):
/// a magic first line, one record per line, doubles at %.17g so
/// dump -> parse -> dump is a fixpoint, atomic writes via
/// obs::write_file_atomic so readers only ever see a complete file.
///
///   cim-campaign-v1
///   campaign <name> seed <u64> cells <n> block <u64> fingerprint <hex16>
///   state rounds <u64> trials <u64>
///   cell <i> count <u64> mean <g> m2 <g> min <g> max <g> cursor <u64>
///        frozen <0|1> capped <0|1>   (one line per cell)
///   end
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/dataset.hpp"

namespace cim::exp {

/// Per-cell resumable state: merged trial summary, the next replication
/// index to schedule, and the scheduler's terminal flags.
struct CellCheckpoint {
  obs::StreamStat stat;
  std::uint64_t cursor = 0;  ///< next rep index this cell may be assigned
  bool frozen = false;       ///< scheduler stopped assigning trials
  bool capped = false;       ///< frozen by hitting max_trials, CI target unmet
};

/// Complete `cim-campaign-v1` document.
struct CampaignManifest {
  std::string name;
  std::uint64_t seed = 0;
  std::size_t cells = 0;
  std::uint64_t block = 0;
  std::uint64_t fingerprint = 0;  ///< campaign_fingerprint() of the above
  std::uint64_t rounds = 0;
  std::uint64_t total_trials = 0;
  std::vector<CellCheckpoint> cell_state;  ///< exactly `cells` entries
};

/// FNV-1a over "name|seed|cells|block" — the identity a checkpoint is
/// bound to. Scheduler knobs (CI targets, worker counts, thread counts) are
/// deliberately excluded: they change how fast a campaign converges, never
/// what any (cell, rep) trial computes, so resuming across them is sound.
std::uint64_t campaign_fingerprint(std::string_view name, std::uint64_t seed,
                                   std::size_t cells, std::uint64_t block);

/// Serializes `m` in the format above (doubles at %.17g).
void dump_manifest(std::ostream& os, const CampaignManifest& m);
std::string manifest_to_string(const CampaignManifest& m);

/// Parses a manifest; throws std::runtime_error with a line-numbered
/// message on malformed input (bad magic, missing sections, cell-count
/// mismatch, out-of-order cell indices, fingerprint/identity mismatch).
CampaignManifest parse_manifest(std::string_view text);

/// Atomic (tmp + rename) write of `m` to `path`; false on I/O failure.
bool save_manifest(const std::string& path, const CampaignManifest& m);

/// Reads and parses `path`. Returns false with `*error` filled when the
/// file is missing, unreadable, or malformed.
bool load_manifest(const std::string& path, CampaignManifest& out,
                   std::string* error = nullptr);

}  // namespace cim::exp
