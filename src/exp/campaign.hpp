/// \file campaign.hpp
/// \brief Adaptive Monte-Carlo campaign runner (cim::exp).
///
/// A *campaign* evaluates one scalar metric over `cells` parameter-grid
/// cells by repeated randomized trials. The runner shards trials across
/// the in-process thread pool AND across worker processes (worker.hpp),
/// with a hard determinism contract:
///
///   The final per-cell summaries are bit-identical to a serial run for
///   any thread count, worker count, and any checkpoint/kill/resume
///   history.
///
/// The contract holds because the unit of scheduling is a *replication
/// block* — a contiguous rep range of one cell. Each trial derives its RNG
/// purely from (campaign seed, cell, rep) via `trial_seed` (the two-index
/// counter split, Rng::stream_seed2); each block summary is built by
/// sequential Welford adds in rep order; and block summaries are merged in
/// task-enumeration order no matter where they were computed. The
/// scheduler itself runs single-threaded in the parent and every decision
/// it makes is a pure function of the merged summaries, so resuming from a
/// `cim-campaign-v1` checkpoint (written atomically at round boundaries)
/// replays the exact remaining schedule.
///
/// Adaptive stopping closes the loop on *streaming statistics*
/// (obs/dataset.hpp): after every round each live cell's confidence
/// interval is compared against its target; converged cells freeze, and
/// the next round's blocks go where the variance is — the highest-variance
/// cells receive up to `max_blocks_per_round` blocks while nearly-converged
/// cells get one. bench_campaign gates the resulting trial savings
/// (>= 30% fewer trials than a fixed-count design at equal-or-tighter CI).
///
/// The run is observable end-to-end: `exp.*` counters/gauges stream
/// through the usual snapshot/Prometheus exporters, `progress` draws a
/// stderr status line, `convergence_csv` logs per-round per-cell CI
/// half-widths, and the final checkpoint manifest doubles as the result
/// artifact consumed by tools/cim_campaign (status / merge / diff).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "obs/dataset.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cim::exp {

/// One randomized trial: returns the metric for `cell` at replication
/// `rep`, drawing all randomness from `rng`. Must be a pure function of
/// its arguments (it runs on arbitrary threads/processes).
using TrialFn =
    std::function<double(std::size_t cell, std::uint64_t rep, util::Rng& rng)>;

struct CampaignConfig {
  std::string name;        ///< manifest identity; no whitespace
  std::uint64_t seed = 1;  ///< master seed; trials derive from (seed,cell,rep)
  std::size_t cells = 0;   ///< parameter-grid size
  std::vector<std::string> cell_names;  ///< optional labels; default cell<i>

  std::uint64_t block = 8;  ///< replication block = scheduling/merge grain

  // Adaptive stopping (adaptive == true): run until every cell's CI
  // half-width <= max(ci_target, ci_rel_target * |mean|), bounded by
  // [min_trials, max_trials]. Cells that exhaust max_trials freeze
  // "capped". With both targets 0 every cell runs to max_trials.
  bool adaptive = true;
  std::uint64_t min_trials = 16;
  std::uint64_t max_trials = 4096;
  double ci_confidence = 0.95;
  double ci_target = 0.0;      ///< absolute CI half-width target
  double ci_rel_target = 0.0;  ///< relative (fraction of |mean|) target
  std::uint64_t max_blocks_per_round = 4;  ///< reinvestment cap per cell

  /// Fixed design (adaptive == false): exactly this many trials per cell
  /// (0 means max_trials). The baseline bench_campaign compares against.
  std::uint64_t fixed_trials = 0;

  // Sharding. `workers` counts TOTAL shards including the parent (1 = no
  /// child processes); `pool` parallelizes each shard's blocks (nullptr =
  /// serial). Neither affects results — see file comment.
  std::size_t workers = 1;
  util::ThreadPool* pool = nullptr;

  // Checkpoint/resume: when `checkpoint_path` is set the runner resumes
  // from it if present (fingerprint mismatch throws) and rewrites it every
  // `checkpoint_every_rounds` rounds plus once at the end — so the final
  // file is also the result export.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every_rounds = 1;

  bool progress = false;        ///< stderr status line per round
  std::string convergence_csv;  ///< per-round per-cell CI log (atomic write)
};

/// Final per-cell outcome.
struct CellResult {
  std::string name;
  obs::StreamStat stat;
  bool frozen = false;
  bool capped = false;  ///< hit max_trials with CI target unmet
};

/// One scheduling decision: block of `rep_count` reps handed out in
/// `round`. The full log replays the allocation history deterministically.
struct Decision {
  std::uint64_t round = 0;
  std::size_t cell = 0;
  std::uint64_t rep_begin = 0;
  std::uint64_t rep_count = 0;
};

struct CampaignResult {
  std::vector<CellResult> cells;
  std::uint64_t total_trials = 0;  ///< including trials restored on resume
  std::uint64_t rounds = 0;
  bool resumed = false;            ///< state was restored from a checkpoint
  std::size_t worker_shards = 1;   ///< shards actually used (1 on fallback)
  obs::DataSet summary;            ///< per-cell stats keyed by cell name
  std::vector<Decision> decisions;  ///< this run's allocations (post-resume)
  obs::MergeStats worker_telemetry;  ///< from absorbing worker snapshots
};

/// RNG seed of one trial: Rng::stream_seed2(seed, cell, rep). Exposed so
/// tests can audit the campaign key space for collisions.
std::uint64_t trial_seed(std::uint64_t seed, std::size_t cell,
                         std::uint64_t rep);

/// Applies the CIM_EXP_* environment overrides to `cfg` (workers, CI
/// target, checkpoint path/cadence, max trials, progress, convergence
/// file). Benches call this so campaigns are steerable without a rebuild;
/// tests call run_campaign with explicit configs and stay env-immune.
CampaignConfig apply_env(CampaignConfig cfg);

/// Runs the campaign. In a worker process (in_worker_mode()) this never
/// returns — it serves the parent's protocol and exits. Throws
/// std::invalid_argument on a malformed config and std::runtime_error when
/// an existing checkpoint does not match the campaign identity.
CampaignResult run_campaign(const CampaignConfig& cfg, const TrialFn& trial);

}  // namespace cim::exp
