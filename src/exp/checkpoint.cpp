#include "exp/checkpoint.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"

namespace cim::exp {

namespace {

constexpr std::string_view kMagic = "cim-campaign-v1";

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("cim-campaign-v1: line " + std::to_string(line_no) +
                           ": " + what);
}

/// Tolerate CRLF transports: manifests are text and may cross filesystems.
std::string_view strip_trailing(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
    line.remove_suffix(1);
  return line;
}

/// Splits off the next space-separated token; empty when exhausted.
std::string_view next_token(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t sp = rest.find(' ');
  std::string_view tok = rest.substr(0, sp);
  rest = sp == std::string_view::npos ? std::string_view{}
                                      : rest.substr(sp + 1);
  return tok;
}

std::uint64_t parse_u64(std::string_view tok, std::size_t line_no,
                        const char* what, int base = 10) {
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(buf.c_str(), &end, base);
  if (buf.empty() || end != buf.c_str() + buf.size() || errno == ERANGE)
    fail(line_no, std::string("bad ") + what + " '" + buf + "'");
  return v;
}

double parse_double(std::string_view tok, std::size_t line_no,
                    const char* what) {
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (buf.empty() || end != buf.c_str() + buf.size())
    fail(line_no, std::string("bad ") + what + " '" + buf + "'");
  return v;
}

/// Expects `tok` to equal `kw`; the keyword-value line grammar is rigid so
/// the dump -> parse -> dump fixpoint is trivially checkable.
void expect_kw(std::string_view tok, std::string_view kw,
               std::size_t line_no) {
  if (tok != kw)
    fail(line_no, "expected '" + std::string(kw) + "', got '" +
                      std::string(tok) + "'");
}

/// %.17g: shortest text that round-trips any finite double exactly.
std::string g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::uint64_t campaign_fingerprint(std::string_view name, std::uint64_t seed,
                                   std::size_t cells, std::uint64_t block) {
  std::string key;
  key.reserve(name.size() + 64);
  key.append(name);
  key.push_back('|');
  key.append(std::to_string(seed));
  key.push_back('|');
  key.append(std::to_string(cells));
  key.push_back('|');
  key.append(std::to_string(block));
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

void dump_manifest(std::ostream& os, const CampaignManifest& m) {
  char fp[20];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, m.fingerprint);
  os << kMagic << '\n';
  os << "campaign " << m.name << " seed " << m.seed << " cells " << m.cells
     << " block " << m.block << " fingerprint " << fp << '\n';
  os << "state rounds " << m.rounds << " trials " << m.total_trials << '\n';
  for (std::size_t i = 0; i < m.cell_state.size(); ++i) {
    const CellCheckpoint& c = m.cell_state[i];
    os << "cell " << i << " count " << c.stat.n << " mean " << g17(c.stat.mean)
       << " m2 " << g17(c.stat.m2) << " min " << g17(c.stat.min) << " max "
       << g17(c.stat.max) << " cursor " << c.cursor << " frozen "
       << (c.frozen ? 1 : 0) << " capped " << (c.capped ? 1 : 0) << '\n';
  }
  os << "end\n";
}

std::string manifest_to_string(const CampaignManifest& m) {
  std::ostringstream os;
  dump_manifest(os, m);
  return os.str();
}

CampaignManifest parse_manifest(std::string_view text) {
  CampaignManifest m;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  bool saw_campaign = false;
  bool saw_state = false;
  bool saw_end = false;
  std::size_t next_cell = 0;

  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = strip_trailing(
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos));
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line_no == 1) {
      if (line.empty() && nl == std::string_view::npos) break;  // empty input
      if (line != kMagic)
        fail(line_no, "bad magic '" + std::string(line) + "'");
      continue;
    }
    if (line.empty()) {
      if (nl == std::string_view::npos) break;  // trailing newline
      continue;
    }
    if (saw_end) fail(line_no, "content after 'end'");

    std::string_view rest = line;
    const std::string_view kw = next_token(rest);
    if (kw == "campaign") {
      if (saw_campaign) fail(line_no, "duplicate 'campaign' line");
      m.name = std::string(next_token(rest));
      if (m.name.empty()) fail(line_no, "missing campaign name");
      expect_kw(next_token(rest), "seed", line_no);
      m.seed = parse_u64(next_token(rest), line_no, "seed");
      expect_kw(next_token(rest), "cells", line_no);
      m.cells = static_cast<std::size_t>(
          parse_u64(next_token(rest), line_no, "cell count"));
      expect_kw(next_token(rest), "block", line_no);
      m.block = parse_u64(next_token(rest), line_no, "block");
      expect_kw(next_token(rest), "fingerprint", line_no);
      m.fingerprint =
          parse_u64(next_token(rest), line_no, "fingerprint", 16);
      if (!rest.empty()) fail(line_no, "trailing tokens");
      if (m.fingerprint !=
          campaign_fingerprint(m.name, m.seed, m.cells, m.block))
        fail(line_no, "fingerprint does not match campaign identity");
      saw_campaign = true;
    } else if (kw == "state") {
      if (!saw_campaign) fail(line_no, "'state' before 'campaign'");
      if (saw_state) fail(line_no, "duplicate 'state' line");
      expect_kw(next_token(rest), "rounds", line_no);
      m.rounds = parse_u64(next_token(rest), line_no, "rounds");
      expect_kw(next_token(rest), "trials", line_no);
      m.total_trials = parse_u64(next_token(rest), line_no, "trials");
      if (!rest.empty()) fail(line_no, "trailing tokens");
      saw_state = true;
    } else if (kw == "cell") {
      if (!saw_state) fail(line_no, "'cell' before 'state'");
      const std::uint64_t idx =
          parse_u64(next_token(rest), line_no, "cell index");
      if (idx != next_cell)
        fail(line_no, "cell index " + std::to_string(idx) + ", expected " +
                          std::to_string(next_cell));
      if (idx >= m.cells) fail(line_no, "cell index out of range");
      CellCheckpoint c;
      expect_kw(next_token(rest), "count", line_no);
      c.stat.n = parse_u64(next_token(rest), line_no, "count");
      expect_kw(next_token(rest), "mean", line_no);
      c.stat.mean = parse_double(next_token(rest), line_no, "mean");
      expect_kw(next_token(rest), "m2", line_no);
      c.stat.m2 = parse_double(next_token(rest), line_no, "m2");
      expect_kw(next_token(rest), "min", line_no);
      c.stat.min = parse_double(next_token(rest), line_no, "min");
      expect_kw(next_token(rest), "max", line_no);
      c.stat.max = parse_double(next_token(rest), line_no, "max");
      expect_kw(next_token(rest), "cursor", line_no);
      c.cursor = parse_u64(next_token(rest), line_no, "cursor");
      expect_kw(next_token(rest), "frozen", line_no);
      c.frozen = parse_u64(next_token(rest), line_no, "frozen flag") != 0;
      expect_kw(next_token(rest), "capped", line_no);
      c.capped = parse_u64(next_token(rest), line_no, "capped flag") != 0;
      if (!rest.empty()) fail(line_no, "trailing tokens");
      if (c.cursor < c.stat.n)
        fail(line_no, "cursor behind trial count");
      m.cell_state.push_back(c);
      ++next_cell;
    } else if (kw == "end") {
      if (!saw_state) fail(line_no, "'end' before 'state'");
      if (!rest.empty()) fail(line_no, "trailing tokens");
      saw_end = true;
    } else {
      fail(line_no, "unknown record '" + std::string(kw) + "'");
    }
    if (nl == std::string_view::npos) break;
  }

  if (!saw_campaign) throw std::runtime_error("cim-campaign-v1: empty input");
  if (!saw_end) fail(line_no, "missing 'end' trailer");
  if (m.cell_state.size() != m.cells)
    fail(line_no, "have " + std::to_string(m.cell_state.size()) +
                      " cell lines, campaign declares " +
                      std::to_string(m.cells));
  return m;
}

bool save_manifest(const std::string& path, const CampaignManifest& m) {
  return obs::write_file_atomic(path,
                                [&](std::ostream& os) { dump_manifest(os, m); });
}

bool load_manifest(const std::string& path, CampaignManifest& out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    out = parse_manifest(buf.str());
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  return true;
}

}  // namespace cim::exp
