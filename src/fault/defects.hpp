/// \file defects.hpp
/// \brief Physical defect to fault mapping (Section III.A, citing
///        Chaudhuri et al., ITC'18: process variations, oxide pinholes and
///        design-induced coupling in memristors).
///
/// A *defect* is a physical manufacturing flaw; a *fault* is its behavioural
/// consequence at the cell/array level. This module enumerates the defects
/// the paper discusses and expands each into the FaultDescriptors it causes:
///
///   oxide pinhole       -> low-resistance short        -> SA1 on the cell
///   over-forming        -> oversized filament          -> SA1-like (over-forming)
///   forming failure     -> filament never forms        -> SA0 on the cell
///   broken wordline     -> row floats beyond the break -> SA1 on the row tail
///                          ("a broken word-line ... leads to SA1 behavior")
///   broken bitline      -> column tail unreachable     -> SA0 on the col tail
///   decoder defect      -> wrong row selected          -> address-decoder fault
///   bridge (cell-cell)  -> neighbouring cells shorted  -> coupling fault
///   narrow filament     -> unstable programming        -> write-variation fault
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "fault/fault_map.hpp"
#include "util/rng.hpp"

namespace cim::fault {

/// Physical defect classes.
enum class DefectKind {
  kOxidePinhole,
  kOverForming,
  kFormingFailure,
  kBrokenWordline,
  kBrokenBitline,
  kDecoderDefect,
  kCellBridge,
  kNarrowFilament,
};

std::string_view defect_name(DefectKind kind);
std::vector<DefectKind> all_defect_kinds();

/// One physical defect instance. For line breaks, (row, col) is the break
/// position: cells at index >= the break on that line are affected.
struct Defect {
  DefectKind kind = DefectKind::kOxidePinhole;
  std::size_t row = 0;
  std::size_t col = 0;
};

/// Expands a defect into the cell/array faults it causes on a rows x cols
/// array. `rng` supplies the victim choice for bridges and decoder aliases.
std::vector<FaultDescriptor> map_defect_to_faults(const Defect& defect,
                                                  std::size_t rows,
                                                  std::size_t cols,
                                                  util::Rng& rng);

/// Samples `n` defects uniformly over kinds and positions and returns the
/// resulting FaultMap (the Monte-Carlo yield model used by the Fig. 6 bench).
FaultMap inject_defects(std::size_t rows, std::size_t cols, std::size_t n,
                        util::Rng& rng);

}  // namespace cim::fault
