/// \file fault_model.hpp
/// \brief Fault taxonomy of Section III.A / Fig. 6.
///
/// Fig. 6 classifies ReRAM cell faults along two axes:
///
///              |  Hard                 |  Soft
///   -----------+-----------------------+--------------------------------
///   Dynamic    |  endurance limitation |  read disturbance,
///              |                       |  write disturbance,
///              |                       |  write variation
///   Static     |  fabrication defect   |  fabrication variation
///
/// plus the classic memory fault models reused from RAM testing (stuck-at,
/// transition, address-decoder, coupling) and the ReRAM-specific read
/// disturbance fault.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace cim::fault {

/// Every fault kind the framework can inject or detect.
enum class FaultKind {
  kStuckAtZero,     ///< hard: cell stuck in HRS (logic 0)
  kStuckAtOne,      ///< hard: cell stuck in LRS (logic 1)
  kTransitionUp,    ///< soft: 0->1 transition fails
  kTransitionDown,  ///< soft: 1->0 transition fails
  kReadDisturb,     ///< dynamic soft: reads bias the state towards LRS
  kWriteDisturb,    ///< dynamic soft: neighbour writes bias the state
  kWriteVariation,  ///< dynamic soft: abnormally wide programming spread
  kOverForming,     ///< static hard: forming defect, behaves as SA1
  kEnduranceWearout,///< dynamic hard: cell worn out in the field
  kAddressDecoder,  ///< array-level: row decoder selects a wrong row
  kCoupling,        ///< array-level: write to aggressor flips victim
};

/// Hard faults freeze the cell; soft faults deviate but remain tunable.
bool is_hard(FaultKind kind);
/// Static faults originate at fabrication; dynamic faults appear in the field.
bool is_static(FaultKind kind);
/// Array-level faults are not attached to a single cell's state.
bool is_array_level(FaultKind kind);

std::string_view fault_name(FaultKind kind);

/// All cell-level (non-array) fault kinds.
std::vector<FaultKind> cell_fault_kinds();
/// Every fault kind.
std::vector<FaultKind> all_fault_kinds();

/// One injected fault instance.
struct FaultDescriptor {
  FaultKind kind = FaultKind::kStuckAtZero;
  std::size_t row = 0;
  std::size_t col = 0;
  /// Secondary coordinate: for kAddressDecoder the row actually selected;
  /// for kCoupling the victim row (victim col == col).
  std::size_t aux_row = 0;
  std::size_t aux_col = 0;
  /// For kWriteVariation: multiplier on the technology's write sigma.
  double severity = 1.0;
};

}  // namespace cim::fault
