#include "fault/defects.hpp"

#include <stdexcept>

namespace cim::fault {

std::string_view defect_name(DefectKind kind) {
  switch (kind) {
    case DefectKind::kOxidePinhole: return "oxide-pinhole";
    case DefectKind::kOverForming: return "over-forming";
    case DefectKind::kFormingFailure: return "forming-failure";
    case DefectKind::kBrokenWordline: return "broken-wordline";
    case DefectKind::kBrokenBitline: return "broken-bitline";
    case DefectKind::kDecoderDefect: return "decoder-defect";
    case DefectKind::kCellBridge: return "cell-bridge";
    case DefectKind::kNarrowFilament: return "narrow-filament";
  }
  return "unknown";
}

std::vector<DefectKind> all_defect_kinds() {
  return {DefectKind::kOxidePinhole,  DefectKind::kOverForming,
          DefectKind::kFormingFailure, DefectKind::kBrokenWordline,
          DefectKind::kBrokenBitline, DefectKind::kDecoderDefect,
          DefectKind::kCellBridge,    DefectKind::kNarrowFilament};
}

std::vector<FaultDescriptor> map_defect_to_faults(const Defect& defect,
                                                  std::size_t rows,
                                                  std::size_t cols,
                                                  util::Rng& rng) {
  if (defect.row >= rows || defect.col >= cols)
    throw std::out_of_range("map_defect_to_faults: defect out of array");
  std::vector<FaultDescriptor> out;
  auto cell = [&](FaultKind kind, std::size_t r, std::size_t c,
                  double severity = 1.0) {
    FaultDescriptor fd;
    fd.kind = kind;
    fd.row = r;
    fd.col = c;
    fd.severity = severity;
    out.push_back(fd);
  };

  switch (defect.kind) {
    case DefectKind::kOxidePinhole:
      // A pinhole through the oxide shorts the MIM stack: permanent LRS.
      cell(FaultKind::kStuckAtOne, defect.row, defect.col);
      break;
    case DefectKind::kOverForming:
      cell(FaultKind::kOverForming, defect.row, defect.col);
      break;
    case DefectKind::kFormingFailure:
      // No filament ever forms: the cell never leaves HRS.
      cell(FaultKind::kStuckAtZero, defect.row, defect.col);
      break;
    case DefectKind::kBrokenWordline:
      // Cells beyond the break see a floating wordline; the paper maps this
      // to SA1 behaviour for the affected row segment.
      for (std::size_t c = defect.col; c < cols; ++c)
        cell(FaultKind::kStuckAtOne, defect.row, c);
      break;
    case DefectKind::kBrokenBitline:
      // Column segment cannot sink current: reads as HRS.
      for (std::size_t r = defect.row; r < rows; ++r)
        cell(FaultKind::kStuckAtZero, r, defect.col);
      break;
    case DefectKind::kDecoderDefect: {
      FaultDescriptor fd;
      fd.kind = FaultKind::kAddressDecoder;
      fd.row = defect.row;
      fd.col = 0;
      // Alias to a different row (wrap-around neighbour if needed).
      fd.aux_row = (defect.row + 1 + rng.uniform_int(rows - 1)) % rows;
      out.push_back(fd);
      break;
    }
    case DefectKind::kCellBridge: {
      FaultDescriptor fd;
      fd.kind = FaultKind::kCoupling;
      fd.row = defect.row;
      fd.col = defect.col;
      // Victim: horizontal neighbour (bridges form between adjacent cells).
      fd.aux_row = defect.row;
      fd.aux_col = (defect.col + 1 < cols) ? defect.col + 1 : defect.col - 1;
      out.push_back(fd);
      break;
    }
    case DefectKind::kNarrowFilament:
      cell(FaultKind::kWriteVariation, defect.row, defect.col,
           rng.uniform(3.0, 8.0));
      break;
  }
  return out;
}

FaultMap inject_defects(std::size_t rows, std::size_t cols, std::size_t n,
                        util::Rng& rng) {
  FaultMap map(rows, cols);
  const auto kinds = all_defect_kinds();
  for (std::size_t i = 0; i < n; ++i) {
    Defect d;
    d.kind = kinds[rng.uniform_int(kinds.size())];
    d.row = rng.uniform_int(rows);
    d.col = rng.uniform_int(cols);
    for (const auto& fd : map_defect_to_faults(d, rows, cols, rng)) map.add(fd);
  }
  return map;
}

}  // namespace cim::fault
