/// \file fault_map.hpp
/// \brief A set of injected faults for one crossbar array, plus generators
///        that realize a target yield / fault mix.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "fault/fault_model.hpp"
#include "util/rng.hpp"

namespace cim::fault {

/// Relative weights for sampling fault kinds when injecting by yield.
/// Defaults follow the literature's observation that stuck-at faults
/// dominate fabrication fallout (Section III.A).
struct FaultMix {
  double sa0 = 0.40;
  double sa1 = 0.25;
  double transition = 0.10;       ///< split evenly between up/down
  double write_variation = 0.15;
  double read_disturb = 0.05;
  double write_disturb = 0.05;
  double over_forming = 0.0;

  double total() const {
    return sa0 + sa1 + transition + write_variation + read_disturb +
           write_disturb + over_forming;
  }

  /// A stuck-at-only mix (used by the yield/accuracy experiment of [38]).
  static FaultMix stuck_at_only() {
    FaultMix m;
    m.sa0 = 0.6;
    m.sa1 = 0.4;
    m.transition = m.write_variation = m.read_disturb = m.write_disturb = 0.0;
    return m;
  }
};

/// Sparse description of all faults injected into a rows x cols array.
class FaultMap {
 public:
  FaultMap(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Adds one fault (bounds-checked). Cell-level faults replace any existing
  /// fault on the same cell; array-level faults accumulate.
  void add(const FaultDescriptor& fd);

  /// Cell-level fault at (r, c), if any.
  std::optional<FaultDescriptor> cell_fault(std::size_t r, std::size_t c) const;

  /// All faults (cell-level then array-level), deterministic order.
  std::vector<FaultDescriptor> all() const;

  /// Array-level address-decoder faults.
  const std::vector<FaultDescriptor>& decoder_faults() const { return decoder_; }
  /// Array-level coupling faults.
  const std::vector<FaultDescriptor>& coupling_faults() const { return coupling_; }

  std::size_t cell_fault_count() const { return cells_.size(); }
  std::size_t count(FaultKind kind) const;

  /// Fraction of cells carrying any cell-level fault.
  double faulty_cell_fraction() const;

  bool empty() const {
    return cells_.empty() && decoder_.empty() && coupling_.empty();
  }

  /// Generates a map where each cell is independently faulty with probability
  /// (1 - yield), with kinds sampled from `mix`.
  static FaultMap from_yield(std::size_t rows, std::size_t cols, double yield,
                             const FaultMix& mix, util::Rng& rng);

  /// Generates exactly `n_faults` faults on distinct cells.
  static FaultMap with_fault_count(std::size_t rows, std::size_t cols,
                                   std::size_t n_faults, const FaultMix& mix,
                                   util::Rng& rng);

 private:
  static FaultKind sample_kind(const FaultMix& mix, util::Rng& rng);

  std::size_t rows_;
  std::size_t cols_;
  std::map<std::pair<std::size_t, std::size_t>, FaultDescriptor> cells_;
  std::vector<FaultDescriptor> decoder_;
  std::vector<FaultDescriptor> coupling_;
};

}  // namespace cim::fault
