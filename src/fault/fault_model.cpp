#include "fault/fault_model.hpp"

namespace cim::fault {

bool is_hard(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAtZero:
    case FaultKind::kStuckAtOne:
    case FaultKind::kOverForming:
    case FaultKind::kEnduranceWearout:
      return true;
    default:
      return false;
  }
}

bool is_static(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAtZero:
    case FaultKind::kStuckAtOne:
    case FaultKind::kOverForming:
    case FaultKind::kAddressDecoder:
    case FaultKind::kCoupling:
    case FaultKind::kTransitionUp:
    case FaultKind::kTransitionDown:
      return true;
    case FaultKind::kReadDisturb:
    case FaultKind::kWriteDisturb:
    case FaultKind::kWriteVariation:
    case FaultKind::kEnduranceWearout:
      return false;
  }
  return false;
}

bool is_array_level(FaultKind kind) {
  return kind == FaultKind::kAddressDecoder || kind == FaultKind::kCoupling;
}

std::string_view fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAtZero: return "SA0";
    case FaultKind::kStuckAtOne: return "SA1";
    case FaultKind::kTransitionUp: return "TF-up";
    case FaultKind::kTransitionDown: return "TF-down";
    case FaultKind::kReadDisturb: return "read-disturb";
    case FaultKind::kWriteDisturb: return "write-disturb";
    case FaultKind::kWriteVariation: return "write-variation";
    case FaultKind::kOverForming: return "over-forming";
    case FaultKind::kEnduranceWearout: return "endurance-wearout";
    case FaultKind::kAddressDecoder: return "address-decoder";
    case FaultKind::kCoupling: return "coupling";
  }
  return "unknown";
}

std::vector<FaultKind> cell_fault_kinds() {
  return {FaultKind::kStuckAtZero,   FaultKind::kStuckAtOne,
          FaultKind::kTransitionUp,  FaultKind::kTransitionDown,
          FaultKind::kReadDisturb,   FaultKind::kWriteDisturb,
          FaultKind::kWriteVariation, FaultKind::kOverForming,
          FaultKind::kEnduranceWearout};
}

std::vector<FaultKind> all_fault_kinds() {
  auto kinds = cell_fault_kinds();
  kinds.push_back(FaultKind::kAddressDecoder);
  kinds.push_back(FaultKind::kCoupling);
  return kinds;
}

}  // namespace cim::fault
