#include "fault/fault_map.hpp"

#include <stdexcept>

namespace cim::fault {

FaultMap::FaultMap(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("FaultMap: empty array");
}

void FaultMap::add(const FaultDescriptor& fd) {
  if (fd.row >= rows_ || fd.col >= cols_)
    throw std::out_of_range("FaultMap::add: coordinates out of range");
  if (is_array_level(fd.kind)) {
    if (fd.kind == FaultKind::kAddressDecoder) {
      if (fd.aux_row >= rows_)
        throw std::out_of_range("FaultMap::add: decoder aux_row out of range");
      decoder_.push_back(fd);
    } else {
      if (fd.aux_row >= rows_ || fd.aux_col >= cols_)
        throw std::out_of_range("FaultMap::add: coupling victim out of range");
      coupling_.push_back(fd);
    }
    return;
  }
  cells_[{fd.row, fd.col}] = fd;
}

std::optional<FaultDescriptor> FaultMap::cell_fault(std::size_t r,
                                                    std::size_t c) const {
  auto it = cells_.find({r, c});
  if (it == cells_.end()) return std::nullopt;
  return it->second;
}

std::vector<FaultDescriptor> FaultMap::all() const {
  std::vector<FaultDescriptor> out;
  out.reserve(cells_.size() + decoder_.size() + coupling_.size());
  for (const auto& [key, fd] : cells_) out.push_back(fd);
  out.insert(out.end(), decoder_.begin(), decoder_.end());
  out.insert(out.end(), coupling_.begin(), coupling_.end());
  return out;
}

std::size_t FaultMap::count(FaultKind kind) const {
  std::size_t n = 0;
  for (const auto& [key, fd] : cells_)
    if (fd.kind == kind) ++n;
  for (const auto& fd : decoder_)
    if (fd.kind == kind) ++n;
  for (const auto& fd : coupling_)
    if (fd.kind == kind) ++n;
  return n;
}

double FaultMap::faulty_cell_fraction() const {
  return static_cast<double>(cells_.size()) /
         static_cast<double>(rows_ * cols_);
}

FaultKind FaultMap::sample_kind(const FaultMix& mix, util::Rng& rng) {
  const double total = mix.total();
  if (total <= 0.0) throw std::invalid_argument("FaultMix: all-zero weights");
  double u = rng.uniform() * total;
  if ((u -= mix.sa0) < 0.0) return FaultKind::kStuckAtZero;
  if ((u -= mix.sa1) < 0.0) return FaultKind::kStuckAtOne;
  if ((u -= mix.transition) < 0.0)
    return rng.bernoulli(0.5) ? FaultKind::kTransitionUp
                              : FaultKind::kTransitionDown;
  if ((u -= mix.write_variation) < 0.0) return FaultKind::kWriteVariation;
  if ((u -= mix.read_disturb) < 0.0) return FaultKind::kReadDisturb;
  if ((u -= mix.write_disturb) < 0.0) return FaultKind::kWriteDisturb;
  return FaultKind::kOverForming;
}

FaultMap FaultMap::from_yield(std::size_t rows, std::size_t cols, double yield,
                              const FaultMix& mix, util::Rng& rng) {
  if (yield < 0.0 || yield > 1.0)
    throw std::invalid_argument("FaultMap::from_yield: yield in [0,1]");
  FaultMap map(rows, cols);
  const double p_fault = 1.0 - yield;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (!rng.bernoulli(p_fault)) continue;
      FaultDescriptor fd;
      fd.kind = sample_kind(mix, rng);
      fd.row = r;
      fd.col = c;
      if (fd.kind == FaultKind::kWriteVariation)
        fd.severity = rng.uniform(2.0, 6.0);
      map.add(fd);
    }
  }
  return map;
}

FaultMap FaultMap::with_fault_count(std::size_t rows, std::size_t cols,
                                    std::size_t n_faults, const FaultMix& mix,
                                    util::Rng& rng) {
  if (n_faults > rows * cols)
    throw std::invalid_argument("FaultMap: more faults than cells");
  FaultMap map(rows, cols);
  auto perm = rng.permutation(rows * cols);
  for (std::size_t i = 0; i < n_faults; ++i) {
    FaultDescriptor fd;
    fd.kind = sample_kind(mix, rng);
    fd.row = perm[i] / cols;
    fd.col = perm[i] % cols;
    if (fd.kind == FaultKind::kWriteVariation) fd.severity = rng.uniform(2.0, 6.0);
    map.add(fd);
  }
  return map;
}

}  // namespace cim::fault
