/// \file fidelity.hpp
/// \brief Fidelity tiers for the analog VMM path (the accuracy/latency dial
///        the serving layer exposes per request).
///
/// Every tier is deterministic and reproducible for a fixed seed and thread
/// count; tiers 1 and 2 are validated against tier 0 within the documented
/// error budgets by tests/crossbar/test_fidelity_tiers.cpp and
/// tests/nn/test_fidelity_conformance.cpp (see DESIGN.md "SIMD dispatch and
/// fidelity tiers" for the per-tier model deltas).
#pragma once

namespace cim::crossbar {

/// How much of the analog device model a VMM pays for.
enum class FidelityTier : int {
  /// Full analog model: per-cell noise-variance accumulation, IR drop,
  /// sneak background, read disturb, health hooks. The reference tier —
  /// bit-identical to the historical Crossbar::vmm.
  kFull = 0,
  /// Calibrated fast path: same IR-drop-attenuated currents (bit-identical
  /// pre-noise to tier 0), read noise drawn from a precomputed per-column
  /// variance table (mean-field calibration from the cached conductance
  /// matrix, exact for uniform |v|), closed-form energy, no per-cell RNG,
  /// no read disturb, no health recording.
  kCalibrated = 1,
  /// Ideal/integer oracle: noiseless VMM on the *target* conductances
  /// (bit-identical to Crossbar::ideal_vmm), no IR drop, no sneak, no RNG
  /// advance at all.
  kIdeal = 2,
};

constexpr const char* tier_name(FidelityTier tier) {
  switch (tier) {
    case FidelityTier::kFull: return "full";
    case FidelityTier::kCalibrated: return "calibrated";
    case FidelityTier::kIdeal: return "ideal";
  }
  return "unknown";
}

}  // namespace cim::crossbar
