#include "crossbar/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "util/kernels.hpp"
#include "util/perf_counters.hpp"
#include "util/thread_pool.hpp"

namespace cim::crossbar {

namespace {

/// Process-wide registry mirrors of the per-instance CrossbarStats event
/// counts. Resolved once (function-local static), bumped only when
/// telemetry is enabled so the disabled hot path stays one branch.
struct ObsCounters {
  obs::Counter& vmm_ops = obs::Registry::global().counter("crossbar.vmm_ops");
  obs::Counter& bit_reads =
      obs::Registry::global().counter("crossbar.bit_reads");
  obs::Counter& bit_writes =
      obs::Registry::global().counter("crossbar.bit_writes");
  obs::Counter& analog_writes =
      obs::Registry::global().counter("crossbar.analog_writes");
  obs::Counter& logic_ops =
      obs::Registry::global().counter("crossbar.logic_ops");
  // Per-fidelity-tier VMM counts (tier 0 = vmm_ops minus the two below).
  obs::Counter& vmm_fast_ops =
      obs::Registry::global().counter("crossbar.vmm_fast_ops");
  obs::Counter& vmm_ideal_ops =
      obs::Registry::global().counter("crossbar.vmm_ideal_ops");
};

ObsCounters& obs_counters() {
  static ObsCounters counters;
  return counters;
}

}  // namespace

Crossbar::Crossbar(CrossbarConfig cfg)
    : cfg_(cfg),
      tech_(cfg.tech_override ? *cfg.tech_override
                              : device::technology_params(cfg.tech)),
      rng_(cfg.seed),
      faults_(std::max<std::size_t>(1, cfg.rows), std::max<std::size_t>(1, cfg.cols)) {
  if (cfg_.rows == 0 || cfg_.cols == 0)
    throw std::invalid_argument("Crossbar: empty array");
  cells_.reserve(cfg_.rows * cfg_.cols);
  for (std::size_t i = 0; i < cfg_.rows * cfg_.cols; ++i)
    cells_.emplace_back(tech_, cfg_.levels, rng_);
  dirty_words_per_row_ = (cfg_.cols + 63) / 64;
  dirty_bits_.assign(cfg_.rows * dirty_words_per_row_, 0);
}

void Crossbar::apply_faults(const fault::FaultMap& map) {
  if (map.rows() != cfg_.rows || map.cols() != cfg_.cols)
    throw std::invalid_argument("apply_faults: fault map size mismatch");
  invalidate_conductance_cache();
  faults_ = map;
  for (std::size_t r = 0; r < cfg_.rows; ++r) {
    for (std::size_t c = 0; c < cfg_.cols; ++c) {
      const auto fd = map.cell_fault(r, c);
      if (!fd) continue;
      auto& cl = cell(r, c);
      switch (fd->kind) {
        case fault::FaultKind::kStuckAtZero:
          cl.force_stuck(device::StuckMode::kStuckAtZero);
          break;
        case fault::FaultKind::kStuckAtOne:
        case fault::FaultKind::kOverForming:
        case fault::FaultKind::kEnduranceWearout:
          cl.force_stuck(device::StuckMode::kStuckAtOne);
          break;
        case fault::FaultKind::kTransitionUp:
          cl.force_transition_faults({.up_fails = true, .down_fails = false});
          break;
        case fault::FaultKind::kTransitionDown:
          cl.force_transition_faults({.up_fails = false, .down_fails = true});
          break;
        case fault::FaultKind::kWriteVariation:
          cl.force_write_sigma_scale(fd->severity);
          break;
        case fault::FaultKind::kReadDisturb:
          // Faulty cell is orders of magnitude more disturb-prone.
          cl.force_disturb_scales(/*read=*/1e4, /*write=*/1.0);
          break;
        case fault::FaultKind::kWriteDisturb:
          cl.force_disturb_scales(/*read=*/1.0, /*write=*/1e3);
          break;
        default:
          break;  // array-level faults handled at addressing time
      }
    }
  }
}

obs::HealthMonitor& Crossbar::health_monitor() {
  if (health_ == nullptr) {
    if (health_name_.empty()) health_name_ = obs::next_health_name("crossbar");
    health_ = obs::HealthRegistry::global().monitor(health_name_, cfg_.rows,
                                                    cfg_.cols);
  }
  return *health_;
}

void Crossbar::record_health_write(std::size_t r, std::size_t c,
                                   const device::WriteResult& res,
                                   bool was_stuck) {
  auto& h = health_monitor();
  const auto& cl = cell(r, c);
  // One wear unit per programming pulse — matches cell.write_count() exactly.
  h.record_write(r, c, static_cast<std::uint64_t>(res.attempts));
  h.record_program(r, c, cl.target_conductance_us(), cl.true_conductance_us());
  if (!was_stuck && cl.stuck() != device::StuckMode::kNone)
    h.record_wearout(r, c);
}

std::size_t Crossbar::effective_row(std::size_t r) const {
  for (const auto& fd : faults_.decoder_faults())
    if (fd.row == r) return fd.aux_row;
  return r;
}

bool Crossbar::bit_of(const device::ReRamCell& cl) const {
  const double mid = 0.5 * (tech_.g_on_us() + tech_.g_off_us());
  return cl.true_conductance_us() >= mid;
}

double Crossbar::charge(double time_ns, double energy_pj) {
  stats_.time_ns += time_ns;
  stats_.energy_pj += energy_pj;
  last_op_energy_pj_ = energy_pj;
  // Single accounting choke point: everything charged to a crossbar is
  // array-side cost (periphery is attributed by the tile/system layers).
  if (obs::enabled())
    obs::attribute(obs::Component::kArray, time_ns, energy_pj);
  return energy_pj;
}

void Crossbar::after_write(std::size_t r, std::size_t c, bool value_is_one) {
  const bool health = obs::health_enabled();
  // Coupling faults: an up-transition on the aggressor forces the victim to 1
  // (CFid-style idempotent coupling — the bridge conducts the SET pulse).
  if (value_is_one) {
    for (const auto& fd : faults_.coupling_faults()) {
      if (fd.row == r && fd.col == c) {
        auto& victim = cell(fd.aux_row, fd.aux_col);
        victim.force_conductance(tech_.g_on_us());
        mark_cell_dirty(fd.aux_row, fd.aux_col);
        if (health)
          health_monitor().record_disturb(fd.aux_row, fd.aux_col,
                                          victim.true_conductance_us());
      }
    }
  }
  // Half-select disturb on same-row / same-column neighbours. Only the
  // cells whose conductance actually moved go on the dirty list.
  if (tech_.write_disturb_prob > 0.0) {
    for (std::size_t cc = 0; cc < cfg_.cols; ++cc)
      if (cc != c && cell(r, cc).disturb_from_neighbour_write(rng_)) {
        mark_cell_dirty(r, cc);
        if (health)
          health_monitor().record_disturb(r, cc,
                                          cell(r, cc).true_conductance_us());
      }
    for (std::size_t rr = 0; rr < cfg_.rows; ++rr)
      if (rr != r && cell(rr, c).disturb_from_neighbour_write(rng_)) {
        mark_cell_dirty(rr, c);
        if (health)
          health_monitor().record_disturb(rr, c,
                                          cell(rr, c).true_conductance_us());
      }
  }
}

void Crossbar::write_bit(std::size_t row, std::size_t col, bool value) {
  if (row >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("write_bit: out of range");
  const std::size_t er = effective_row(row);
  mark_cell_dirty(er, col);
  auto& cl = cell(er, col);
  const bool was_stuck = cl.stuck() != device::StuckMode::kNone;
  const int level = value ? cl.scheme().levels() - 1 : 0;
  const auto res = cl.write_level(level, rng_, cfg_.verified_writes);
  ++stats_.bit_writes;
  if (obs::enabled()) obs_counters().bit_writes.add(1);
  if (obs::health_enabled()) record_health_write(er, col, res, was_stuck);
  charge(res.time_ns, res.energy_pj);
  after_write(er, col, value);
}

bool Crossbar::read_bit(std::size_t row, std::size_t col) {
  if (row >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("read_bit: out of range");
  const std::size_t er = effective_row(row);
  auto& cl = cell(er, col);
  // Reads can disturb (drift towards LRS): dirty-mark only when they did.
  const double g_before = cl.true_conductance_us();
  const double g = cl.read_conductance_us(rng_);
  if (cl.true_conductance_us() != g_before) {
    mark_cell_dirty(er, col);
    if (obs::health_enabled())
      health_monitor().record_disturb(er, col, cl.true_conductance_us());
  }
  ++stats_.bit_reads;
  if (obs::enabled()) obs_counters().bit_reads.add(1);
  // Read energy: V_read^2 * G * t_read ; pJ = V^2[V] * G[uS] * t[ns] * 1e-3
  const double e = tech_.v_read * tech_.v_read * g * tech_.t_read_ns * 1e-3 +
                   tech_.e_read_pj;
  charge(tech_.t_read_ns, e);
  const double mid = 0.5 * (tech_.g_on_us() + tech_.g_off_us());
  return g >= mid;
}

device::WriteResult Crossbar::program_cell_impl(std::size_t row,
                                                std::size_t col, double g_us) {
  auto& cl = cell(row, col);
  const bool was_stuck = cl.stuck() != device::StuckMode::kNone;
  const auto res = cl.write_conductance(g_us, rng_, cfg_.verified_writes);
  ++stats_.analog_writes;
  if (obs::enabled()) obs_counters().analog_writes.add(1);
  if (obs::health_enabled()) record_health_write(row, col, res, was_stuck);
  charge(res.time_ns, res.energy_pj);
  const double mid = 0.5 * (tech_.g_on_us() + tech_.g_off_us());
  after_write(row, col, g_us >= mid);
  return res;
}

device::WriteResult Crossbar::program_cell(std::size_t row, std::size_t col,
                                           double g_us) {
  if (row >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("program_cell: out of range");
  mark_cell_dirty(row, col);
  return program_cell_impl(row, col, g_us);
}

void Crossbar::program_conductances(const util::Matrix& g_us) {
  if (g_us.rows() != cfg_.rows || g_us.cols() != cfg_.cols)
    throw std::invalid_argument("program_conductances: shape mismatch");
  CIM_OBS_SPAN("crossbar.program", obs::Component::kArray);
  // Bulk write: one whole-array invalidation instead of rows*cols per-cell
  // dirty marks (which would only spill into the same rebuild anyway).
  invalidate_conductance_cache();
  for (std::size_t r = 0; r < cfg_.rows; ++r)
    for (std::size_t c = 0; c < cfg_.cols; ++c)
      program_cell_impl(r, c, g_us(r, c));
}

void Crossbar::program_levels(const util::Matrix& levels) {
  if (levels.rows() != cfg_.rows || levels.cols() != cfg_.cols)
    throw std::invalid_argument("program_levels: shape mismatch");
  CIM_OBS_SPAN("crossbar.program", obs::Component::kArray);
  const auto& sch = scheme();
  invalidate_conductance_cache();
  for (std::size_t r = 0; r < cfg_.rows; ++r)
    for (std::size_t c = 0; c < cfg_.cols; ++c) {
      const int lvl = static_cast<int>(levels(r, c));
      program_cell_impl(r, c, sch.level_conductance_us(lvl));
    }
}

double Crossbar::read_conductance(std::size_t row, std::size_t col) {
  if (row >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("read_conductance: out of range");
  auto& cl = cell(row, col);
  const double g_before = cl.true_conductance_us();  // reads can disturb
  const double g = cl.read_conductance_us(rng_);
  if (cl.true_conductance_us() != g_before) {
    mark_cell_dirty(row, col);
    if (obs::health_enabled())
      health_monitor().record_disturb(row, col, cl.true_conductance_us());
  }
  ++stats_.bit_reads;
  if (obs::enabled()) obs_counters().bit_reads.add(1);
  charge(tech_.t_read_ns,
         tech_.v_read * tech_.v_read * g * tech_.t_read_ns * 1e-3 + tech_.e_read_pj);
  return g;
}

double Crossbar::true_conductance(std::size_t row, std::size_t col) const {
  if (row >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("true_conductance: out of range");
  return cell(row, col).true_conductance_us();
}

double Crossbar::effective_conductance(std::size_t r, std::size_t c,
                                       double g_us) const {
  if (!cfg_.model_ir_drop || g_us <= 0.0) return g_us;
  // First-order IR-drop: the cell sees the wordline segment resistance up to
  // its column plus the bitline segment resistance down to the sense node in
  // series, so G_eff = 1 / (1/G + R_wire_total).
  const double segments =
      static_cast<double>(c + 1) + static_cast<double>(cfg_.rows - r);
  const double r_wire_kohm = cfg_.wire_resistance_ohm * segments * 1e-6;
  return 1.0 / (1.0 / g_us + r_wire_kohm * 1e-3);
}

void Crossbar::mark_cell_dirty(std::size_t r, std::size_t c) {
  if (g_all_dirty_ || !g_cache_built_ || !cfg_.incremental_cache) {
    g_all_dirty_ = true;  // a rebuild is already pending (or forced)
    return;
  }
  auto& word = dirty_bits_[r * dirty_words_per_row_ + (c >> 6)];
  const std::uint64_t bit = std::uint64_t{1} << (c & 63);
  if ((word & bit) != 0) return;
  if (dirty_cells_.size() >= dirty_spill_threshold()) {
    invalidate_conductance_cache();  // spill: delta no longer pays off
    return;
  }
  word |= bit;
  dirty_cells_.push_back(static_cast<std::uint32_t>(r * cfg_.cols + c));
}

void Crossbar::ensure_conductance_cache() {
  if (g_cache_built_ && !g_all_dirty_) {
    if (!dirty_cells_.empty()) apply_dirty_cells();
    return;
  }
  rebuild_conductance_cache();
}

void Crossbar::rebuild_conductance_cache() {
  CIM_OBS_SPAN("crossbar.cache.rebuild", obs::Component::kDigital);
  g_true_cache_.resize(cells_.size());
  g_eff_cache_.resize(cells_.size());
  g_ideal_cache_.resize(cells_.size());
  g_eff_sq_colsum_.assign(cfg_.cols, 0.0);
  g_eff_rowsum_.assign(cfg_.rows, 0.0);
  g_ideal_rowsum_.assign(cfg_.rows, 0.0);
  g_true_sum_ = 0.0;
  const auto& sch = scheme();
  std::size_t idx = 0;
  for (std::size_t r = 0; r < cfg_.rows; ++r) {
    for (std::size_t c = 0; c < cfg_.cols; ++c, ++idx) {
      const double g = cells_[idx].true_conductance_us();
      g_true_cache_[idx] = g;
      const double ge = effective_conductance(r, c, g);
      g_eff_cache_[idx] = ge;
      g_true_sum_ += g;
      const double gi = sch.level_conductance_us(cells_[idx].target_level());
      g_ideal_cache_[idx] = gi;
      g_eff_sq_colsum_[c] += ge * ge;
      g_eff_rowsum_[r] += ge;
      g_ideal_rowsum_[r] += gi;
    }
  }
  g_eff_col_std_.resize(cfg_.cols);
  for (std::size_t c = 0; c < cfg_.cols; ++c)
    g_eff_col_std_[c] = std::sqrt(g_eff_sq_colsum_[c]);
  g_cache_built_ = true;
  g_all_dirty_ = false;
  dirty_cells_.clear();
  std::fill(dirty_bits_.begin(), dirty_bits_.end(), 0);
  ++stats_.cache_full_rebuilds;
  util::perf::cache_full_rebuilds.fetch_add(1, std::memory_order_relaxed);
}

void Crossbar::apply_dirty_cells() {
  CIM_OBS_SPAN("crossbar.cache.delta", obs::Component::kDigital);
  const auto& sch = scheme();
  for (const std::uint32_t idx : dirty_cells_) {
    const std::size_t r = idx / cfg_.cols;
    const std::size_t c = idx % cfg_.cols;
    const double g = cells_[idx].true_conductance_us();
    if (!cfg_.passive_array) g_true_sum_ += g - g_true_cache_[idx];
    g_true_cache_[idx] = g;
    const double ge_old = g_eff_cache_[idx];
    const double ge = effective_conductance(r, c, g);
    g_eff_cache_[idx] = ge;
    // Fidelity-tier calibration tables: cheap +=delta repair. The sums may
    // drift by ulps from a cold rebuild (different accumulation order);
    // tier-1 consumers are validated with tolerances, never bitwise.
    const double gi_old = g_ideal_cache_[idx];
    const double gi = sch.level_conductance_us(cells_[idx].target_level());
    g_ideal_cache_[idx] = gi;
    g_eff_sq_colsum_[c] += ge * ge - ge_old * ge_old;
    g_eff_rowsum_[r] += ge - ge_old;
    g_ideal_rowsum_[r] += gi - gi_old;
    dirty_bits_[r * dirty_words_per_row_ + (c >> 6)] &=
        ~(std::uint64_t{1} << (c & 63));
  }
  // Refresh the cached column stds wholesale: O(cols) sqrts per delta
  // event is noise next to the per-cell repair above, and the clamp guards
  // against a colsum drifting epsilon-negative through cancellation.
  for (std::size_t c = 0; c < cfg_.cols; ++c)
    g_eff_col_std_[c] = std::sqrt(std::max(0.0, g_eff_sq_colsum_[c]));
  stats_.cache_dirty_cells += dirty_cells_.size();
  dirty_cells_.clear();
  if (cfg_.passive_array) {
    // The sneak background observes g_true_sum_, so keep it bitwise-equal
    // to a rebuild: re-accumulate the (already repaired) flat cache in the
    // same index order the rebuild sums in.
    g_true_sum_ = 0.0;
    for (const double g : g_true_cache_) g_true_sum_ += g;
  }
  ++stats_.cache_delta_updates;
  util::perf::cache_delta_updates.fetch_add(1, std::memory_order_relaxed);
}

void Crossbar::accumulate_currents(std::span<const double> v_rows,
                                   std::span<double> currents,
                                   std::span<double> noise_var,
                                   double& energy) const {
  for (std::size_t r = 0; r < cfg_.rows; ++r) {
    const double v = v_rows[r];
    if (v == 0.0) continue;
    util::kernels::vmm_row_accumulate(
        v, g_eff_cache_.data() + r * cfg_.cols, currents.data(),
        noise_var.data(), tech_.read_noise_frac, tech_.t_read_ns, cfg_.cols,
        energy);
  }
}

double Crossbar::sneak_background_per_col(
    std::span<const double> v_rows) const {
  // Passive 0T1R arrays: half-selected cells leak a sneak background whose
  // magnitude scales with the mean conductance of the unselected matrix.
  const double g_mean = g_true_sum_ / static_cast<double>(cells_.size());
  double v_mean = 0.0;
  for (double v : v_rows) v_mean += std::abs(v);
  v_mean /= static_cast<double>(v_rows.size());
  // One effective 3-cell series path per unselected row.
  return v_mean * (g_mean / 3.0) * 0.1 * static_cast<double>(cfg_.rows - 1);
}

void Crossbar::apply_read_disturb(util::Rng& rng) {
  // Read disturb: expected number of disturbed cells this cycle.
  if (tech_.read_disturb_prob <= 0.0) return;
  const double expected =
      tech_.read_disturb_prob * static_cast<double>(cells_.size());
  std::size_t hits = static_cast<std::size_t>(expected);
  if (rng.bernoulli(expected - static_cast<double>(hits))) ++hits;
  for (std::size_t k = 0; k < hits; ++k) {
    const std::size_t idx = rng.uniform_int(cells_.size());
    auto& cl = cells_[idx];
    cl.force_conductance(cl.true_conductance_us() +
                         0.5 * cl.scheme().step_us());
    mark_cell_dirty(idx / cfg_.cols, idx % cfg_.cols);
    if (obs::health_enabled())
      health_monitor().record_disturb(idx / cfg_.cols, idx % cfg_.cols,
                                      cl.true_conductance_us());
  }
}

std::vector<double> Crossbar::vmm(std::span<const double> v_rows,
                                  FidelityTier tier) {
  std::vector<double> currents(cfg_.cols, 0.0);
  vmm(v_rows, currents, tier);
  return currents;
}

void Crossbar::accumulate_currents_plain(std::span<const double> v_rows,
                                         const double* g_flat,
                                         std::span<double> currents) const {
  // One dispatch-table load for the whole call instead of one per row.
  const auto& t = util::simd::active();
  for (std::size_t r = 0; r < cfg_.rows; ++r) {
    const double v = v_rows[r];
    if (v == 0.0) continue;
    t.axpy(v, g_flat + r * cfg_.cols, currents.data(), cfg_.cols);
  }
}

double Crossbar::vmm_energy_from_rowsums(
    std::span<const double> v_rows, const std::vector<double>& rowsum) const {
  // Tier 0 charges sum_{r,c} |v_r * (v_r * g)| * t * 1e-3. With g >= 0 the
  // inner |.| is v_r^2 * g, so the double sum collapses onto the cached
  // per-row conductance sums (agrees with tier 0 up to reassociation ulps).
  double e = 0.0;
  for (std::size_t r = 0; r < cfg_.rows; ++r)
    e += v_rows[r] * v_rows[r] * rowsum[r];
  return e * tech_.t_read_ns * 1e-3;
}

double Crossbar::calibrated_scale_and_energy(std::span<const double> v_rows,
                                             double& energy) const {
  // One pass over rows serves both tier-1 closed forms. Noise: tier-0
  // column variance is sum_r (noise_frac * v_r * g_eff[r][c])^2; the
  // mean-field calibration factorises it as (mean_r v_r^2) * sum_r g^2 —
  // exact when |v_r| is uniform across rows (the bit-sliced DAC encodings
  // the tile layer feeds are exactly that), within the documented budget
  // otherwise. Per-column std = scale * g_eff_col_std_[c]. Energy: same
  // accumulation order as vmm_energy_from_rowsums, so the collapse onto
  // the cached row sums stays bit-identical to the unfused helper.
  double v_sq_sum = 0.0;
  double e = 0.0;
  for (std::size_t r = 0; r < cfg_.rows; ++r) {
    const double vv = v_rows[r] * v_rows[r];
    v_sq_sum += vv;
    e += vv * g_eff_rowsum_[r];
  }
  energy = e * tech_.t_read_ns * 1e-3;
  return tech_.read_noise_frac *
         std::sqrt(v_sq_sum / static_cast<double>(cfg_.rows));
}

void Crossbar::vmm_calibrated(std::span<const double> v_rows,
                              std::span<double> currents) {
  CIM_OBS_SPAN_NAMED(span, "crossbar.vmm.fast", obs::Component::kArray);
  ensure_conductance_cache();
  std::fill(currents.begin(), currents.end(), 0.0);
  accumulate_currents_plain(v_rows, g_eff_cache_.data(), currents);
  if (cfg_.passive_array) {
    const double sneak_per_col = sneak_background_per_col(v_rows);
    for (double& i : currents) i += sneak_per_col;
  }
  double energy = 0.0;
  const double scale = calibrated_scale_and_energy(v_rows, energy);
  if (scale > 0.0) {
    // One serial generator advance keys the whole draw; each column's
    // noise is then a pure counter hash against the cached column std —
    // an order of magnitude cheaper than four xoshiro steps plus a sqrt
    // per column, with the same Irwin-Hall-4 distribution.
    const std::uint64_t key = rng_();
    for (std::size_t c = 0; c < cfg_.cols; ++c)
      currents[c] +=
          scale * g_eff_col_std_[c] * util::Rng::normal_hash(key, c);
  }
  ++stats_.vmm_ops;
  charge(tech_.t_read_ns, energy);
  if (obs::enabled()) {
    obs_counters().vmm_ops.add(1);
    obs_counters().vmm_fast_ops.add(1);
    span.add_sim_time_ns(tech_.t_read_ns);
    span.add_energy_pj(energy);
  }
}

void Crossbar::vmm_ideal(std::span<const double> v_rows,
                         std::span<double> currents) {
  CIM_OBS_SPAN_NAMED(span, "crossbar.vmm.ideal", obs::Component::kArray);
  ensure_conductance_cache();
  std::fill(currents.begin(), currents.end(), 0.0);
  accumulate_currents_plain(v_rows, g_ideal_cache_.data(), currents);
  const double energy = vmm_energy_from_rowsums(v_rows, g_ideal_rowsum_);
  ++stats_.vmm_ops;
  charge(tech_.t_read_ns, energy);
  if (obs::enabled()) {
    obs_counters().vmm_ops.add(1);
    obs_counters().vmm_ideal_ops.add(1);
    span.add_sim_time_ns(tech_.t_read_ns);
    span.add_energy_pj(energy);
  }
}

void Crossbar::vmm(std::span<const double> v_rows, std::span<double> currents,
                   FidelityTier tier) {
  if (v_rows.size() != cfg_.rows)
    throw std::invalid_argument("vmm: input size != rows");
  if (currents.size() != cfg_.cols)
    throw std::invalid_argument("vmm: output size != cols");
  if (tier == FidelityTier::kCalibrated) return vmm_calibrated(v_rows, currents);
  if (tier == FidelityTier::kIdeal) return vmm_ideal(v_rows, currents);
  CIM_OBS_SPAN_NAMED(span, "crossbar.vmm", obs::Component::kArray);
  ensure_conductance_cache();
  std::fill(currents.begin(), currents.end(), 0.0);
  vmm_noise_scratch_.assign(cfg_.cols, 0.0);
  double energy = 0.0;
  accumulate_currents(v_rows, currents, vmm_noise_scratch_, energy);

  if (cfg_.passive_array) {
    const double sneak_per_col = sneak_background_per_col(v_rows);
    for (double& i : currents) i += sneak_per_col;
    if (obs::health_enabled()) {
      auto& h = health_monitor();
      for (std::size_t c = 0; c < cfg_.cols; ++c)
        h.record_sneak_current(c, sneak_per_col);
    }
  }

  // Aggregate read noise per column.
  for (std::size_t c = 0; c < cfg_.cols; ++c)
    currents[c] += rng_.normal(0.0, std::sqrt(vmm_noise_scratch_[c]));

  apply_read_disturb(rng_);

  ++stats_.vmm_ops;
  charge(tech_.t_read_ns, energy);
  if (obs::enabled()) {
    obs_counters().vmm_ops.add(1);
    span.add_sim_time_ns(tech_.t_read_ns);
    span.add_energy_pj(energy);
  }
}

void Crossbar::vmm_batch(const util::Matrix& v_batch, util::Matrix& out,
                         util::ThreadPool* pool, FidelityTier tier) {
  if (v_batch.cols() != cfg_.rows)
    throw std::invalid_argument("vmm_batch: input width != rows");
  const std::size_t batch = v_batch.rows();
  if (out.rows() != batch || out.cols() != cfg_.cols)
    out = util::Matrix(batch, cfg_.cols);
  if (batch == 0) return;
  auto& pool_ref = pool != nullptr ? *pool : util::ThreadPool::global();
  if (tier == FidelityTier::kCalibrated)
    return vmm_batch_calibrated(v_batch, out, pool_ref);
  if (tier == FidelityTier::kIdeal)
    return vmm_batch_ideal(v_batch, out, pool_ref);
  CIM_OBS_SPAN_NAMED(span, "crossbar.vmm_batch", obs::Component::kArray);
  ensure_conductance_cache();

  // One serial draw ties the whole batch into the array's RNG sequence;
  // every per-sample stream derives from it by counter splitting, so the
  // fan-out below is bit-identical for any pool size.
  const std::uint64_t master = rng_();
  batch_energy_scratch_.assign(batch, 0.0);
  auto& sample_energy = batch_energy_scratch_;

  // Attach the monitor before the fan-out: the lazy attach mutates health_,
  // which must not happen concurrently from pool lanes.
  obs::HealthMonitor* hm = cfg_.passive_array && obs::health_enabled()
                               ? &health_monitor()
                               : nullptr;

  auto& p = pool != nullptr ? *pool : util::ThreadPool::global();
  p.parallel_for(0, batch, [&](std::size_t s) {
    const auto v_rows = v_batch.row(s);
    auto currents = out.row(s);
    std::fill(currents.begin(), currents.end(), 0.0);
    thread_local std::vector<double> noise_var;
    noise_var.assign(cfg_.cols, 0.0);
    double energy = 0.0;
    accumulate_currents(v_rows, currents, noise_var, energy);
    if (cfg_.passive_array) {
      const double sneak_per_col = sneak_background_per_col(v_rows);
      for (double& i : currents) i += sneak_per_col;
      // Relaxed-atomic accumulators tolerate the pool's concurrent lanes.
      if (hm != nullptr)
        for (std::size_t c = 0; c < cfg_.cols; ++c)
          hm->record_sneak_current(c, sneak_per_col);
    }
    util::Rng srng = util::Rng::stream(master, 2 * s);
    for (std::size_t c = 0; c < cfg_.cols; ++c)
      currents[c] += srng.normal(0.0, std::sqrt(noise_var[c]));
    sample_energy[s] = energy;
  });

  // Serial epilogue in sample order: stats, then the read disturb each
  // sample accumulated (applied post-batch; see header contract).
  for (std::size_t s = 0; s < batch; ++s) {
    ++stats_.vmm_ops;
    charge(tech_.t_read_ns, sample_energy[s]);
  }
  if (obs::enabled()) {
    obs_counters().vmm_ops.add(batch);
    double batch_energy = 0.0;
    for (const double e : sample_energy) batch_energy += e;
    span.add_sim_time_ns(tech_.t_read_ns * static_cast<double>(batch));
    span.add_energy_pj(batch_energy);
  }
  if (tech_.read_disturb_prob > 0.0) {
    for (std::size_t s = 0; s < batch; ++s) {
      util::Rng drng = util::Rng::stream(master, 2 * s + 1);
      apply_read_disturb(drng);
    }
  }
}

void Crossbar::vmm_batch_calibrated(const util::Matrix& v_batch,
                                    util::Matrix& out,
                                    util::ThreadPool& pool) {
  const std::size_t batch = v_batch.rows();
  CIM_OBS_SPAN_NAMED(span, "crossbar.vmm_batch.fast", obs::Component::kArray);
  ensure_conductance_cache();
  // Same counter-split determinism contract as tier 0: one serial master
  // draw, per-sample noise streams — bit-identical for any pool size. No
  // disturb streams (tier 1 skips read disturb).
  const std::uint64_t master = rng_();
  batch_energy_scratch_.assign(batch, 0.0);
  auto& sample_energy = batch_energy_scratch_;
  pool.parallel_for(0, batch, [&](std::size_t s) {
    const auto v_rows = v_batch.row(s);
    auto currents = out.row(s);
    std::fill(currents.begin(), currents.end(), 0.0);
    accumulate_currents_plain(v_rows, g_eff_cache_.data(), currents);
    if (cfg_.passive_array) {
      const double sneak_per_col = sneak_background_per_col(v_rows);
      for (double& i : currents) i += sneak_per_col;
    }
    double energy = 0.0;
    const double scale = calibrated_scale_and_energy(v_rows, energy);
    if (scale > 0.0) {
      // Counter-split per sample, counter-hashed per column: pure
      // functions of (master, s, c), so the fan-out stays bit-identical
      // for any pool size without paying a generator per column.
      const std::uint64_t key = util::Rng::stream_seed(master, s);
      for (std::size_t c = 0; c < cfg_.cols; ++c)
        currents[c] +=
            scale * g_eff_col_std_[c] * util::Rng::normal_hash(key, c);
    }
    sample_energy[s] = energy;
  });
  for (std::size_t s = 0; s < batch; ++s) {
    ++stats_.vmm_ops;
    charge(tech_.t_read_ns, sample_energy[s]);
  }
  if (obs::enabled()) {
    obs_counters().vmm_ops.add(batch);
    obs_counters().vmm_fast_ops.add(batch);
    double batch_energy = 0.0;
    for (const double e : sample_energy) batch_energy += e;
    span.add_sim_time_ns(tech_.t_read_ns * static_cast<double>(batch));
    span.add_energy_pj(batch_energy);
  }
}

void Crossbar::vmm_batch_ideal(const util::Matrix& v_batch, util::Matrix& out,
                               util::ThreadPool& pool) {
  const std::size_t batch = v_batch.rows();
  CIM_OBS_SPAN_NAMED(span, "crossbar.vmm_batch.ideal",
                     obs::Component::kArray);
  ensure_conductance_cache();
  // No RNG at all: tier 2 does not advance the array's stream.
  batch_energy_scratch_.assign(batch, 0.0);
  auto& sample_energy = batch_energy_scratch_;
  pool.parallel_for(0, batch, [&](std::size_t s) {
    const auto v_rows = v_batch.row(s);
    auto currents = out.row(s);
    std::fill(currents.begin(), currents.end(), 0.0);
    accumulate_currents_plain(v_rows, g_ideal_cache_.data(), currents);
    sample_energy[s] = vmm_energy_from_rowsums(v_rows, g_ideal_rowsum_);
  });
  for (std::size_t s = 0; s < batch; ++s) {
    ++stats_.vmm_ops;
    charge(tech_.t_read_ns, sample_energy[s]);
  }
  if (obs::enabled()) {
    obs_counters().vmm_ops.add(batch);
    obs_counters().vmm_ideal_ops.add(batch);
    double batch_energy = 0.0;
    for (const double e : sample_energy) batch_energy += e;
    span.add_sim_time_ns(tech_.t_read_ns * static_cast<double>(batch));
    span.add_energy_pj(batch_energy);
  }
}

std::vector<std::vector<double>> Crossbar::vmm_batch(
    std::span<const std::vector<double>> inputs, util::ThreadPool* pool,
    FidelityTier tier) {
  util::Matrix v_batch(inputs.size(), cfg_.rows);
  for (std::size_t s = 0; s < inputs.size(); ++s) {
    if (inputs[s].size() != cfg_.rows)
      throw std::invalid_argument("vmm_batch: input size != rows");
    std::copy(inputs[s].begin(), inputs[s].end(), v_batch.row(s).begin());
  }
  util::Matrix out;
  vmm_batch(v_batch, out, pool, tier);
  std::vector<std::vector<double>> results(inputs.size());
  for (std::size_t s = 0; s < inputs.size(); ++s) {
    const auto row = out.row(s);
    results[s].assign(row.begin(), row.end());
  }
  return results;
}

std::vector<double> Crossbar::ideal_vmm(std::span<const double> v_rows) const {
  if (v_rows.size() != cfg_.rows)
    throw std::invalid_argument("ideal_vmm: input size != rows");
  std::vector<double> currents(cfg_.cols, 0.0);
  const auto& sch = scheme();
  for (std::size_t r = 0; r < cfg_.rows; ++r) {
    const double v = v_rows[r];
    if (v == 0.0) continue;
    for (std::size_t c = 0; c < cfg_.cols; ++c) {
      currents[c] += v * sch.level_conductance_us(cell(r, c).target_level());
    }
  }
  return currents;
}

namespace {
bool in_window(std::size_t a, std::size_t b, std::size_t window) {
  const std::size_t d = a > b ? a - b : b - a;
  return d <= window;
}
}  // namespace

double Crossbar::ideal_current_with_sneak(std::size_t row, std::size_t col,
                                          std::size_t window) const {
  if (row >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("ideal_current_with_sneak: out of range");
  const auto& sch = scheme();
  const double v = tech_.v_read;
  auto target_g = [&](std::size_t r, std::size_t c) {
    return sch.level_conductance_us(cell(r, c).target_level());
  };
  double i = v * target_g(row, col);
  for (std::size_t r2 = 0; r2 < cfg_.rows; ++r2) {
    if (r2 == row || !in_window(r2, row, window)) continue;
    for (std::size_t c2 = 0; c2 < cfg_.cols; ++c2) {
      if (c2 == col || !in_window(c2, col, window)) continue;
      const double g1 = target_g(row, c2);
      const double g2 = target_g(r2, c2);
      const double g3 = target_g(r2, col);
      if (g1 <= 0.0 || g2 <= 0.0 || g3 <= 0.0) continue;
      i += v / (1.0 / g1 + 1.0 / g2 + 1.0 / g3);
    }
  }
  return i;
}

double Crossbar::read_current_with_sneak(std::size_t row, std::size_t col,
                                         std::size_t window) {
  if (row >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("read_current_with_sneak: out of range");
  ensure_conductance_cache();  // hoists the per-cell conductance lookups
  const double* g = g_true_cache_.data();
  const std::size_t cols = cfg_.cols;
  const double v = tech_.v_read;
  double i = v * g[row * cols + col];
  // Every (r', c') with r' != row, c' != col closes a 3-cell series loop
  // (row,c') -> (r',c') -> (r',col); its series conductance adds to the
  // measured current. This is the region-of-detection mechanism the
  // sneak-path test of Kannan et al. exploits; the biasing scheme limits
  // the loops to a window around the target.
  const std::size_t r_lo = window >= row ? 0 : row - window;
  const std::size_t r_hi = std::min(cfg_.rows, window >= cfg_.rows - row
                                                   ? cfg_.rows
                                                   : row + window + 1);
  const std::size_t c_lo = window >= col ? 0 : col - window;
  const std::size_t c_hi =
      std::min(cols, window >= cols - col ? cols : col + window + 1);
  for (std::size_t r2 = r_lo; r2 < r_hi; ++r2) {
    if (r2 == row) continue;
    const double* g_r2 = g + r2 * cols;
    const double g3 = g_r2[col];
    if (g3 <= 0.0) continue;
    const double inv_g3 = 1.0 / g3;
    const double* g_row = g + row * cols;
    for (std::size_t c2 = c_lo; c2 < c_hi; ++c2) {
      if (c2 == col) continue;
      const double g1 = g_row[c2];
      const double g2 = g_r2[c2];
      if (g1 <= 0.0 || g2 <= 0.0) continue;
      i += v / (1.0 / g1 + 1.0 / g2 + inv_g3);
    }
  }
  ++stats_.bit_reads;
  charge(tech_.t_read_ns, v * i * tech_.t_read_ns * 1e-3);
  // The excess over the direct-path current is exactly the sneak-loop
  // contribution — the spatial error signal the health monitor tracks.
  if (obs::health_enabled())
    health_monitor().record_sneak_current(col, i - v * g[row * cols + col]);
  // Measurement noise on the summed current.
  return i + rng_.normal(0.0, tech_.read_noise_frac * i);
}

// --- stateful logic ---------------------------------------------------------

void Crossbar::imply(std::size_t dest_row, std::size_t dest_col,
                     std::size_t src_row, std::size_t src_col) {
  if (dest_row >= cfg_.rows || dest_col >= cfg_.cols || src_row >= cfg_.rows ||
      src_col >= cfg_.cols)
    throw std::out_of_range("imply: out of range");
  auto& dest = cell(dest_row, dest_col);
  const bool p = bit_of(dest);
  const bool q = bit_of(cell(src_row, src_col));
  const bool next = !p || q;  // p -> q
  ++stats_.logic_ops;
  if (obs::enabled()) obs_counters().logic_ops.add(1);
  if (next != p) {
    mark_cell_dirty(dest_row, dest_col);
    const bool was_stuck = dest.stuck() != device::StuckMode::kNone;
    const auto res =
        dest.write_level(next ? dest.scheme().levels() - 1 : 0, rng_, false);
    if (obs::health_enabled())
      record_health_write(dest_row, dest_col, res, was_stuck);
    charge(res.time_ns, res.energy_pj);
  } else {
    // Conditional write that does not fire still costs the pulse window.
    charge(tech_.t_write_ns, 0.1 * tech_.e_write_pj);
  }
}

void Crossbar::set_false(std::size_t row, std::size_t col) {
  if (row >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("set_false: out of range");
  mark_cell_dirty(row, col);
  auto& cl = cell(row, col);
  const bool was_stuck = cl.stuck() != device::StuckMode::kNone;
  const auto res = cl.write_level(0, rng_, false);
  ++stats_.logic_ops;
  if (obs::enabled()) obs_counters().logic_ops.add(1);
  if (obs::health_enabled()) record_health_write(row, col, res, was_stuck);
  charge(res.time_ns, res.energy_pj);
}

void Crossbar::magic_not(std::size_t row, std::size_t in_col,
                         std::size_t out_col) {
  const std::size_t in[] = {in_col};
  magic_nor(row, in, out_col);
}

void Crossbar::magic_nor(std::size_t row, std::span<const std::size_t> in_cols,
                         std::size_t out_col) {
  if (row >= cfg_.rows || out_col >= cfg_.cols)
    throw std::out_of_range("magic_nor: out of range");
  if (in_cols.empty()) throw std::invalid_argument("magic_nor: no inputs");
  bool any_one = false;
  for (std::size_t c : in_cols) {
    if (c >= cfg_.cols) throw std::out_of_range("magic_nor: input out of range");
    any_one = any_one || bit_of(cell(row, c));
  }
  auto& out = cell(row, out_col);
  ++stats_.logic_ops;
  if (obs::enabled()) obs_counters().logic_ops.add(1);
  // MAGIC: the pre-SET output is conditionally RESET when any input is LRS.
  if (any_one) {
    mark_cell_dirty(row, out_col);
    const bool was_stuck = out.stuck() != device::StuckMode::kNone;
    const auto res = out.write_level(0, rng_, false);
    if (obs::health_enabled())
      record_health_write(row, out_col, res, was_stuck);
    charge(res.time_ns, res.energy_pj);
  } else {
    charge(tech_.t_write_ns, 0.1 * tech_.e_write_pj);
  }
}

void Crossbar::majority_write(std::size_t row, std::size_t col, bool v_wl,
                              bool v_bl) {
  if (row >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("majority_write: out of range");
  auto& cl = cell(row, col);
  const bool s = bit_of(cl);
  const bool b = !v_bl;
  const int votes = static_cast<int>(s) + static_cast<int>(v_wl) +
                    static_cast<int>(b);
  const bool next = votes >= 2;  // MAJ3(S, V_wl, !V_bl)
  ++stats_.logic_ops;
  if (obs::enabled()) obs_counters().logic_ops.add(1);
  if (next != s) {
    mark_cell_dirty(row, col);
    const bool was_stuck = cl.stuck() != device::StuckMode::kNone;
    const auto res =
        cl.write_level(next ? cl.scheme().levels() - 1 : 0, rng_, false);
    if (obs::health_enabled()) record_health_write(row, col, res, was_stuck);
    charge(res.time_ns, res.energy_pj);
  } else {
    charge(tech_.t_write_ns, 0.1 * tech_.e_write_pj);
  }
}

double Crossbar::wordline_sense(std::size_t row,
                                const std::vector<bool>& bitline_mask) {
  if (row >= cfg_.rows) throw std::out_of_range("wordline_sense: row");
  if (bitline_mask.size() != cfg_.cols)
    throw std::invalid_argument("wordline_sense: mask size != cols");
  const std::size_t er = effective_row(row);
  const double v = tech_.v_read;
  double i = 0.0;
  double noise_var = 0.0;
  for (std::size_t c = 0; c < cfg_.cols; ++c) {
    if (!bitline_mask[c]) continue;
    const double g = cell(er, c).true_conductance_us();
    const double ic = v * effective_conductance(er, c, g);
    i += ic;
    const double cell_noise = tech_.read_noise_frac * ic;
    noise_var += cell_noise * cell_noise;
  }
  ++stats_.bit_reads;
  charge(tech_.t_read_ns, v * i * tech_.t_read_ns * 1e-3 + tech_.e_read_pj);
  return i + rng_.normal(0.0, std::sqrt(noise_var));
}

bool Crossbar::scout_read(std::size_t r1, std::size_t r2, std::size_t col,
                          ScoutOp op) {
  if (r1 >= cfg_.rows || r2 >= cfg_.rows || col >= cfg_.cols)
    throw std::out_of_range("scout_read: out of range");
  const double v = tech_.v_read;
  const std::size_t er1 = effective_row(r1);
  const std::size_t er2 = effective_row(r2);
  auto& c1 = cell(er1, col);
  auto& c2 = cell(er2, col);
  // Scouting reads can disturb: dirty-mark the cells that actually moved.
  const double g1_before = c1.true_conductance_us();
  const double g1 = c1.read_conductance_us(rng_);
  if (c1.true_conductance_us() != g1_before) {
    mark_cell_dirty(er1, col);
    if (obs::health_enabled())
      health_monitor().record_disturb(er1, col, c1.true_conductance_us());
  }
  const double g2_before = c2.true_conductance_us();
  const double g2 = c2.read_conductance_us(rng_);
  if (c2.true_conductance_us() != g2_before) {
    mark_cell_dirty(er2, col);
    if (obs::health_enabled())
      health_monitor().record_disturb(er2, col, c2.true_conductance_us());
  }
  const double i = v * (g1 + g2);
  stats_.bit_reads += 2;
  ++stats_.logic_ops;
  if (obs::enabled()) obs_counters().logic_ops.add(1);
  charge(tech_.t_read_ns, v * i * tech_.t_read_ns * 1e-3 + 2 * tech_.e_read_pj);

  // References sit between the three distinguishable current levels,
  // accounting for the HRS leakage floor (critical for low on/off-ratio
  // technologies such as STT-MRAM).
  const double i00 = 2.0 * v * tech_.g_off_us();
  const double i01 = v * (tech_.g_off_us() + tech_.g_on_us());
  const double i11 = 2.0 * v * tech_.g_on_us();
  const double ref_or = 0.5 * (i00 + i01);
  const double ref_and = 0.5 * (i01 + i11);
  switch (op) {
    case ScoutOp::kOr: return i > ref_or;
    case ScoutOp::kAnd: return i > ref_and;
    case ScoutOp::kXor: return i > ref_or && i < ref_and;
  }
  return false;
}

}  // namespace cim::crossbar
