/// \file crossbar.hpp
/// \brief ReRAM crossbar array simulator (Section II.B.2, Fig. 4a).
///
/// The crossbar is the storage *and* compute fabric of a CIM core:
///
///   - **Analog VMM**: applying a voltage vector V to the wordlines produces
///     per-bitline currents I_c = sum_r V_r * G(r,c) — n MAC operations in
///     O(1) time (Fig. 4a). Non-idealities modelled: programming variation,
///     read noise, read disturb, wire IR-drop, and (for passive 0T1R arrays)
///     sneak-path currents.
///   - **Digital bit storage** with the RAM-style fault behaviours of
///     Section III (address-decoder aliasing, coupling, stuck-at cells) —
///     the substrate the March-test engine runs against.
///   - **Stateful logic** (Section IV.A): material implication (IMPLY),
///     MAGIC NOR/NOT, ReVAMP-style majority write, and Scouting-logic reads,
///     which the technology mappers of the EDA module target.
///
/// All operations account time (ns) and energy (pJ) into CrossbarStats; the
/// per-operation dynamic energy feeds the on-line power monitor of
/// Section III.C / Fig. 7.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>


#include "crossbar/fidelity.hpp"
#include "device/reram_cell.hpp"
#include "device/technology.hpp"
#include "fault/fault_map.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace cim::util {
class ThreadPool;
}
namespace cim::obs {
class HealthMonitor;
}

namespace cim::crossbar {

/// Static configuration of one crossbar array.
struct CrossbarConfig {
  std::size_t rows = 64;
  std::size_t cols = 64;
  device::Technology tech = device::Technology::kReRamHfOx;
  int levels = 16;                 ///< programmable conductance levels
  bool model_ir_drop = true;       ///< first-order wire-resistance attenuation
  double wire_resistance_ohm = 2.0;///< per wire segment (Ohm)
  bool passive_array = false;      ///< 0T1R: VMM reads suffer sneak paths
  bool verified_writes = false;    ///< program-and-verify on analog writes
  /// Dirty-tracked conductance-cache maintenance: mutating ops record the
  /// touched cells and the next VMM repairs the caches in O(|dirty|) instead
  /// of rebuilding O(rows*cols). Outputs are bit-identical either way; set
  /// to false to force the legacy whole-cache rebuild (the baseline the
  /// write/read-interleave bench and the coherence tests compare against).
  bool incremental_cache = true;
  std::uint64_t seed = 42;         ///< RNG stream for all stochastic behaviour
  /// When set, overrides the preset parameters of `tech` — used by
  /// reliability experiments that sweep endurance, noise or disturb rates.
  std::optional<device::TechnologyParams> tech_override;
};

/// Operation counters and cost accumulation.
struct CrossbarStats {
  std::uint64_t bit_reads = 0;
  std::uint64_t bit_writes = 0;
  std::uint64_t analog_writes = 0;
  std::uint64_t vmm_ops = 0;
  std::uint64_t logic_ops = 0;
  double time_ns = 0.0;
  double energy_pj = 0.0;
  // Conductance-cache maintenance (see "Crossbar state caches and dirty
  // tracking" in DESIGN.md): benches use these to prove a write/VMM
  // interleave took the O(|dirty|) path instead of O(rows*cols) rebuilds.
  std::uint64_t cache_full_rebuilds = 0;  ///< whole-array cache rebuilds
  std::uint64_t cache_delta_updates = 0;  ///< dirty-list delta repairs
  std::uint64_t cache_dirty_cells = 0;    ///< cells repaired across all deltas
};

/// Scouting-logic read operations (Xie et al., ISVLSI'17).
enum class ScoutOp { kOr, kAnd, kXor };

/// Physical array geometry (rows x cols) — the footprint query compiled
/// micro-op programs are checked against by the EDA static verifier.
struct Geometry {
  std::size_t rows = 0;
  std::size_t cols = 0;

  bool contains(std::size_t row, std::size_t col) const {
    return row < rows && col < cols;
  }
  std::size_t cell_count() const { return rows * cols; }
};

/// A ReRAM crossbar array with configurable non-idealities.
class Crossbar {
 public:
  explicit Crossbar(CrossbarConfig cfg);

  std::size_t rows() const { return cfg_.rows; }
  std::size_t cols() const { return cfg_.cols; }
  Geometry geometry() const { return {cfg_.rows, cfg_.cols}; }
  const CrossbarConfig& config() const { return cfg_; }
  const device::TechnologyParams& tech() const { return tech_; }
  const device::LevelScheme& scheme() const { return cells_.front().scheme(); }

  /// Injects a fault map: cell faults are pushed into the cells, array-level
  /// faults (decoder aliasing, coupling) are kept and honoured by every
  /// subsequent addressed operation.
  void apply_faults(const fault::FaultMap& map);

  /// Currently applied fault map (empty map if none was applied).
  const fault::FaultMap& faults() const { return faults_; }

  // --- digital bit interface (logic 1 = LRS = top level) -------------------

  /// Writes one bit through the (possibly faulty) row decoder; triggers
  /// coupling faults and neighbour write-disturb.
  void write_bit(std::size_t row, std::size_t col, bool value);

  /// Reads one bit (threshold at mid conductance) through the row decoder.
  bool read_bit(std::size_t row, std::size_t col);

  // --- analog interface -----------------------------------------------------

  /// Programs one cell to an analog conductance target (uS).
  device::WriteResult program_cell(std::size_t row, std::size_t col, double g_us);

  /// Programs the whole array from a matrix of conductances (uS).
  void program_conductances(const util::Matrix& g_us);

  /// Programs the whole array from a matrix of integer levels.
  void program_levels(const util::Matrix& levels);

  /// Noisy single-cell conductance read (uS).
  double read_conductance(std::size_t row, std::size_t col);

  /// True (noiseless) conductance — test oracle only.
  double true_conductance(std::size_t row, std::size_t col) const;

  /// Analog vector-matrix multiply: applies `v_rows` volts on the wordlines
  /// and returns the bitline currents in uA. At the default tier
  /// (FidelityTier::kFull) models IR-drop, read noise, read disturb and
  /// (for passive arrays) sneak-path background current; the cheaper tiers
  /// trade model fidelity for throughput (see fidelity.hpp).
  std::vector<double> vmm(std::span<const double> v_rows,
                          FidelityTier tier = FidelityTier::kFull);

  /// Allocation-free variant: writes the bitline currents into `currents`
  /// (size cols). The steady-state hot path — all scratch lives in member
  /// buffers, so interleaved write/VMM loops never touch the allocator.
  void vmm(std::span<const double> v_rows, std::span<double> currents,
           FidelityTier tier = FidelityTier::kFull);

  /// Batched analog VMM: row b of `v_batch` is one input vector; result b
  /// lands in row b of `out` (resized only on shape change, so the storage
  /// is reused across batches). Samples fan out across `pool` (the global
  /// pool when null); each sample's noise stream is derived by
  /// counter-based RNG splitting from one serial draw, so the output is
  /// bit-identical for any thread count — including 1.
  ///
  /// Semantics vs. calling vmm() in a loop: the effective-conductance
  /// matrix is computed once for the whole batch and read disturb
  /// accumulated by the batch is applied after all samples (pipelined-read
  /// semantics: every sample of a batch sees the same array state). Stats
  /// accounting matches `batch` sequential vmm() calls.
  ///
  /// Cheaper tiers skip the per-sample disturb streams (kCalibrated) or the
  /// RNG entirely (kIdeal) — see fidelity.hpp.
  void vmm_batch(const util::Matrix& v_batch, util::Matrix& out,
                 util::ThreadPool* pool = nullptr,
                 FidelityTier tier = FidelityTier::kFull);

  /// Convenience overload over a span of input vectors.
  std::vector<std::vector<double>> vmm_batch(
      std::span<const std::vector<double>> inputs,
      util::ThreadPool* pool = nullptr,
      FidelityTier tier = FidelityTier::kFull);

  /// Ideal VMM on the *target* conductances — the mathematical oracle.
  std::vector<double> ideal_vmm(std::span<const double> v_rows) const;

  /// Single-cell read current including 3-cell sneak-path contributions
  /// (the mechanism exploited by the sneak-path test of Section III.B).
  /// `window` restricts the contributing loops to cells within that many
  /// rows/columns of the target (biasing scheme of the parallel test);
  /// SIZE_MAX means the whole array.
  double read_current_with_sneak(std::size_t row, std::size_t col,
                                 std::size_t window = SIZE_MAX);

  /// Oracle counterpart of read_current_with_sneak: same loop sum evaluated
  /// on the *target* (programmed) conductances, noiseless and free.
  double ideal_current_with_sneak(std::size_t row, std::size_t col,
                                  std::size_t window = SIZE_MAX) const;

  // --- stateful logic (Section IV.A) ---------------------------------------

  /// Material implication, result into dest: S_dest <- S_dest -> S_src
  /// (paper's convention: NS_p = S_p -> S_q).
  void imply(std::size_t dest_row, std::size_t dest_col, std::size_t src_row,
             std::size_t src_col);

  /// Unconditional RESET to logic 0 (the FALSE operation completing the
  /// {IMPLY, FALSE} universal set).
  void set_false(std::size_t row, std::size_t col);

  /// MAGIC NOT within a row: out <- NOT in. Precondition: out cell holds 1.
  void magic_not(std::size_t row, std::size_t in_col, std::size_t out_col);

  /// MAGIC k-input NOR within a row. Precondition: out cell holds 1; the
  /// operation conditionally RESETs it. Input states are unchanged.
  void magic_nor(std::size_t row, std::span<const std::size_t> in_cols,
                 std::size_t out_col);

  /// ReVAMP majority write: S <- MAJ3(S, v_wl, NOT v_bl).
  void majority_write(std::size_t row, std::size_t col, bool v_wl, bool v_bl);

  /// Wordline current sense with selective bitline activation: applies the
  /// read voltage on the bitlines whose mask bit is set and senses the
  /// summed current of `row` (uA). The primitive behind ESOP cube
  /// evaluation [69]: a row of cube-mask cells conducts iff some stored-1
  /// cell sees an active bitline.
  double wordline_sense(std::size_t row, const std::vector<bool>& bitline_mask);

  /// Scouting-logic read of two cells in one column: senses the summed
  /// current of rows r1, r2 against the op's reference(s).
  bool scout_read(std::size_t r1, std::size_t r2, std::size_t col, ScoutOp op);

  // --- accounting ------------------------------------------------------------

  const CrossbarStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CrossbarStats{}; }

  /// Energy (pJ) consumed by the most recent operation — the signal tapped by
  /// the on-line power monitor.
  double last_op_energy_pj() const { return last_op_energy_pj_; }

  util::Rng& rng() { return rng_; }

  // --- device-health observability -----------------------------------------

  /// Registry name this array's health monitor uses. Must be called before
  /// the first health event (default: an auto-assigned "crossbar.<n>").
  void set_health_name(std::string name) { health_name_ = std::move(name); }

  /// The spatial health monitor attached to this array, lazily registered
  /// in obs::HealthRegistry on first use. Hot paths only reach it behind
  /// `obs::health_enabled()`; calling this directly (tests, exporters)
  /// attaches it regardless of mode.
  obs::HealthMonitor& health_monitor();

 private:
  device::ReRamCell& cell(std::size_t r, std::size_t c) {
    return cells_[r * cfg_.cols + c];
  }
  const device::ReRamCell& cell(std::size_t r, std::size_t c) const {
    return cells_[r * cfg_.cols + c];
  }

  /// Row actually selected by the decoder (honours address-decoder faults).
  std::size_t effective_row(std::size_t r) const;

  /// Shared body of program_cell and the bulk programming loops: performs
  /// the write + accounting + side effects but leaves cache dirty-marking
  /// to the caller (bulk programming marks the whole array once).
  device::WriteResult program_cell_impl(std::size_t row, std::size_t col,
                                        double g_us);

  /// Post-write side effects: coupling-fault victims and neighbour disturb.
  void after_write(std::size_t r, std::size_t c, bool value_is_one);

  /// Health bookkeeping for one completed write on (r, c): wear (pulses),
  /// drift baseline reset, and the in-field wear-out transition. Callers
  /// gate on obs::health_enabled().
  void record_health_write(std::size_t r, std::size_t c,
                           const device::WriteResult& res, bool was_stuck);

  /// IR-drop-attenuated effective conductance of a cell during VMM.
  double effective_conductance(std::size_t r, std::size_t c, double g_us) const;

  bool bit_of(const device::ReRamCell& cell) const;
  double charge(double time_ns, double energy_pj);

  /// Brings the cached true/effective conductance matrices up to date.
  /// Every operation that can change a stored conductance (writes, fault
  /// injection, disturb, drift-prone reads) must either mark the exact
  /// cells it touched via mark_cell_dirty() or declare the whole array
  /// stale via invalidate_conductance_cache(). With `incremental_cache`
  /// on, a pending dirty list is repaired in O(|dirty|); the repaired
  /// caches are bitwise-equal to a full rebuild (effective conductance is
  /// a pure per-cell function, and g_true_sum_ is re-accumulated in
  /// rebuild order whenever it is observable, i.e. for passive arrays).
  void ensure_conductance_cache();

  /// Whole-array invalidation: the next ensure_conductance_cache() does a
  /// full O(rows*cols) rebuild. Used by bulk mutations (fault injection,
  /// array-wide programming) and as the dirty-list spill target.
  void invalidate_conductance_cache() {
    g_all_dirty_ = true;
    dirty_cells_.clear();
  }

  /// Records one mutated cell for the next delta repair; spills to
  /// invalidate_conductance_cache() once the list stops paying off.
  void mark_cell_dirty(std::size_t r, std::size_t c);

  /// Dirty-list length at which delta bookkeeping loses to a rebuild.
  std::size_t dirty_spill_threshold() const {
    return std::max<std::size_t>(32, cells_.size() / 8);
  }

  void rebuild_conductance_cache();  ///< full O(rows*cols) rebuild
  void apply_dirty_cells();          ///< O(|dirty|) delta repair

  /// Accumulates per-column currents / noise variance / array energy for
  /// one input vector from the cached effective conductances.
  void accumulate_currents(std::span<const double> v_rows,
                           std::span<double> currents,
                           std::span<double> noise_var, double& energy) const;

  /// Tier-1/2 serial VMM bodies (dispatched from vmm()). Both assume a
  /// valid conductance cache.
  void vmm_calibrated(std::span<const double> v_rows,
                      std::span<double> currents);
  void vmm_ideal(std::span<const double> v_rows, std::span<double> currents);

  /// Shared tier-1/2 current accumulation: currents[c] += v_r * g[r][c]
  /// over the given flat conductance matrix, same element order and
  /// rounding as tier 0's pre-noise accumulation (dispatched axpy rows).
  void accumulate_currents_plain(std::span<const double> v_rows,
                                 const double* g_flat,
                                 std::span<double> currents) const;

  /// Closed-form VMM energy (pJ) from the per-row conductance sums:
  /// sum_r v_r^2 * rowsum[r] * t_read * 1e-3 — exact for tier 0's
  /// per-cell energy formula because conductances are non-negative.
  double vmm_energy_from_rowsums(std::span<const double> v_rows,
                                 const std::vector<double>& rowsum) const;

  /// Tier-1 fused input pass: returns the calibrated noise scale factor
  /// (mean-field over rows; exact when |v| is uniform — per-column std is
  /// scale * g_eff_col_std_[c]) and writes the closed-form VMM energy from
  /// the cached row sums into `energy`, both from one loop over v_rows.
  double calibrated_scale_and_energy(std::span<const double> v_rows,
                                     double& energy) const;

  /// Tier-dependent batch fan-out bodies (dispatched from vmm_batch()).
  void vmm_batch_calibrated(const util::Matrix& v_batch, util::Matrix& out,
                            util::ThreadPool& pool);
  void vmm_batch_ideal(const util::Matrix& v_batch, util::Matrix& out,
                       util::ThreadPool& pool);

  /// Sneak background current per column of a passive 0T1R array (from the
  /// cached conductance sum; requires a valid cache).
  double sneak_background_per_col(std::span<const double> v_rows) const;

  /// Expected-count read-disturb events for one VMM cycle, drawn from `rng`.
  void apply_read_disturb(util::Rng& rng);

  CrossbarConfig cfg_;
  device::TechnologyParams tech_;
  util::Rng rng_;
  std::vector<device::ReRamCell> cells_;
  fault::FaultMap faults_;
  CrossbarStats stats_;
  double last_op_energy_pj_ = 0.0;

  // Device-health observability (see health_monitor()).
  std::shared_ptr<obs::HealthMonitor> health_;
  std::string health_name_;

  // Hot-path caches (see ensure_conductance_cache).
  std::vector<double> g_true_cache_;   ///< stored conductances, flat row-major
  std::vector<double> g_eff_cache_;    ///< IR-drop-attenuated counterparts
  double g_true_sum_ = 0.0;            ///< sum of g_true (sneak background)
  // Fidelity-tier calibration tables, maintained alongside the conductance
  // caches (rebuild + delta repair): target conductances for tier 2, and
  // the per-column / per-row sums tier 1 derives its noise and energy from.
  std::vector<double> g_ideal_cache_;    ///< target conductances, flat
  std::vector<double> g_eff_sq_colsum_;  ///< per-column sum of g_eff^2
  std::vector<double> g_eff_col_std_;    ///< sqrt(g_eff_sq_colsum_), cached
  std::vector<double> g_eff_rowsum_;     ///< per-row sum of g_eff
  std::vector<double> g_ideal_rowsum_;   ///< per-row sum of g_ideal
  bool g_cache_built_ = false;         ///< caches populated at least once
  bool g_all_dirty_ = true;            ///< full rebuild pending

  // Dirty tracking (incremental_cache): flat cell indices pending repair,
  // deduplicated by a per-row bitset (dirty_words_per_row_ words per row).
  std::vector<std::uint32_t> dirty_cells_;
  std::vector<std::uint64_t> dirty_bits_;
  std::size_t dirty_words_per_row_ = 0;

  std::vector<double> vmm_noise_scratch_;  ///< per-call noise-variance buffer
  std::vector<double> batch_energy_scratch_;  ///< per-sample energy (vmm_batch)
};

}  // namespace cim::crossbar
