#include "eda/bench_circuits.hpp"

#include <stdexcept>

#include "eda/aig.hpp"
#include "eda/truth_table.hpp"

namespace cim::eda {

Netlist ripple_carry_adder(int bits) {
  if (bits < 1 || bits > 8)
    throw std::invalid_argument("ripple_carry_adder: bits in [1,8]");
  Netlist nl;
  std::vector<std::size_t> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  std::size_t carry = nl.add_input("cin");

  for (int i = 0; i < bits; ++i) {
    const auto axb = nl.add_gate(GateType::kXor, {a[static_cast<std::size_t>(i)],
                                                  b[static_cast<std::size_t>(i)]});
    const auto sum = nl.add_gate(GateType::kXor, {axb, carry});
    const auto c1 = nl.add_gate(GateType::kAnd, {a[static_cast<std::size_t>(i)],
                                                 b[static_cast<std::size_t>(i)]});
    const auto c2 = nl.add_gate(GateType::kAnd, {axb, carry});
    carry = nl.add_gate(GateType::kOr, {c1, c2});
    nl.mark_output(sum);
  }
  nl.mark_output(carry);
  return nl;
}

Netlist array_multiplier(int bits) {
  if (bits < 1 || bits > 4)
    throw std::invalid_argument("array_multiplier: bits in [1,4]");
  Netlist nl;
  std::vector<std::size_t> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));

  // Partial products pp[i][j] = a_i & b_j, accumulated column-wise with
  // half/full adders.
  const int out_bits = 2 * bits;
  std::vector<std::vector<std::size_t>> columns(static_cast<std::size_t>(out_bits));
  for (int i = 0; i < bits; ++i)
    for (int j = 0; j < bits; ++j)
      columns[static_cast<std::size_t>(i + j)].push_back(
          nl.add_gate(GateType::kAnd, {a[static_cast<std::size_t>(i)],
                                       b[static_cast<std::size_t>(j)]}));

  for (int col = 0; col < out_bits; ++col) {
    auto& stack = columns[static_cast<std::size_t>(col)];
    while (stack.size() > 1) {
      if (stack.size() >= 3) {
        // Full adder on three column bits.
        const auto x = stack.back(); stack.pop_back();
        const auto y = stack.back(); stack.pop_back();
        const auto z = stack.back(); stack.pop_back();
        const auto xy = nl.add_gate(GateType::kXor, {x, y});
        const auto sum = nl.add_gate(GateType::kXor, {xy, z});
        const auto carry = nl.add_gate(GateType::kMaj, {x, y, z});
        stack.push_back(sum);
        if (col + 1 < out_bits)
          columns[static_cast<std::size_t>(col + 1)].push_back(carry);
      } else {
        // Half adder on two column bits.
        const auto x = stack.back(); stack.pop_back();
        const auto y = stack.back(); stack.pop_back();
        const auto sum = nl.add_gate(GateType::kXor, {x, y});
        const auto carry = nl.add_gate(GateType::kAnd, {x, y});
        stack.push_back(sum);
        if (col + 1 < out_bits)
          columns[static_cast<std::size_t>(col + 1)].push_back(carry);
      }
    }
    nl.mark_output(stack.empty() ? nl.add_const(false) : stack.front());
  }
  return nl;
}

Netlist parity(int inputs) {
  if (inputs < 2 || inputs > 16)
    throw std::invalid_argument("parity: inputs in [2,16]");
  Netlist nl;
  std::size_t acc = nl.add_input();
  for (int i = 1; i < inputs; ++i) {
    const auto x = nl.add_input();
    acc = nl.add_gate(GateType::kXor, {acc, x});
  }
  nl.mark_output(acc);
  return nl;
}

Netlist mux_tree(int sel_bits) {
  if (sel_bits < 1 || sel_bits > 4)
    throw std::invalid_argument("mux_tree: sel_bits in [1,4]");
  Netlist nl;
  const int n_data = 1 << sel_bits;
  std::vector<std::size_t> layer;
  for (int i = 0; i < n_data; ++i)
    layer.push_back(nl.add_input("d" + std::to_string(i)));
  std::vector<std::size_t> sel;
  for (int i = 0; i < sel_bits; ++i)
    sel.push_back(nl.add_input("s" + std::to_string(i)));

  for (int level = 0; level < sel_bits; ++level) {
    const auto s = sel[static_cast<std::size_t>(level)];
    const auto ns = nl.add_gate(GateType::kNot, {s});
    std::vector<std::size_t> next;
    for (std::size_t k = 0; k + 1 < layer.size(); k += 2) {
      const auto lo = nl.add_gate(GateType::kAnd, {ns, layer[k]});
      const auto hi = nl.add_gate(GateType::kAnd, {s, layer[k + 1]});
      next.push_back(nl.add_gate(GateType::kOr, {lo, hi}));
    }
    layer = std::move(next);
  }
  nl.mark_output(layer.front());
  return nl;
}

Netlist comparator_gt(int bits) {
  if (bits < 1 || bits > 8)
    throw std::invalid_argument("comparator_gt: bits in [1,8]");
  Netlist nl;
  std::vector<std::size_t> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));

  // gt = OR over i of (a_i & !b_i & equal_above_i)
  std::size_t gt = nl.add_const(false);
  std::size_t eq = nl.add_const(true);
  for (int i = bits - 1; i >= 0; --i) {
    const auto ai = a[static_cast<std::size_t>(i)];
    const auto bi = b[static_cast<std::size_t>(i)];
    const auto nbi = nl.add_gate(GateType::kNot, {bi});
    const auto here = nl.add_gate(GateType::kAnd, {ai, nbi});
    const auto term = nl.add_gate(GateType::kAnd, {eq, here});
    gt = nl.add_gate(GateType::kOr, {gt, term});
    const auto eq_bit = nl.add_gate(GateType::kXnor, {ai, bi});
    eq = nl.add_gate(GateType::kAnd, {eq, eq_bit});
  }
  nl.mark_output(gt);
  return nl;
}

Netlist majority_n(int inputs) {
  if (inputs < 3 || inputs > 9 || inputs % 2 == 0)
    throw std::invalid_argument("majority_n: odd inputs in [3,9]");
  // Exact construction from the truth table through an AIG, then netlist.
  TruthTable tt(inputs);
  for (std::uint64_t m = 0; m < tt.size(); ++m) {
    int ones = 0;
    for (int v = 0; v < inputs; ++v) ones += (m >> v) & 1ULL;
    if (ones > inputs / 2) tt.set(m, true);
  }
  return Aig::from_truth_table(tt).to_netlist();
}

Netlist random_function(int vars, util::Rng& rng) {
  if (vars < 2 || vars > 10)
    throw std::invalid_argument("random_function: vars in [2,10]");
  TruthTable tt(vars);
  for (std::uint64_t m = 0; m < tt.size(); ++m)
    if (rng.bernoulli(0.5)) tt.set(m, true);
  // Guard against degenerate constants.
  if (tt.is_constant()) tt.set(0, !tt.get(0));
  return Aig::from_truth_table(tt).to_netlist();
}

Netlist address_decoder(int bits) {
  if (bits < 1 || bits > 4)
    throw std::invalid_argument("address_decoder: bits in [1,4]");
  Netlist nl;
  std::vector<std::size_t> a, na;
  for (int i = 0; i < bits; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i)
    na.push_back(nl.add_gate(GateType::kNot, {a[static_cast<std::size_t>(i)]}));
  for (int line = 0; line < (1 << bits); ++line) {
    std::vector<std::size_t> terms;
    for (int b = 0; b < bits; ++b)
      terms.push_back(((line >> b) & 1) ? a[static_cast<std::size_t>(b)]
                                        : na[static_cast<std::size_t>(b)]);
    nl.mark_output(bits == 1 ? terms[0]
                             : nl.add_gate(GateType::kAnd, std::move(terms)));
  }
  return nl;
}

Netlist gray_to_binary(int bits) {
  if (bits < 2 || bits > 12)
    throw std::invalid_argument("gray_to_binary: bits in [2,12]");
  Netlist nl;
  std::vector<std::size_t> g;
  for (int i = 0; i < bits; ++i) g.push_back(nl.add_input("g" + std::to_string(i)));
  // b[n-1] = g[n-1]; b[i] = b[i+1] ^ g[i].
  std::vector<std::size_t> b(static_cast<std::size_t>(bits));
  b[static_cast<std::size_t>(bits - 1)] = g[static_cast<std::size_t>(bits - 1)];
  for (int i = bits - 2; i >= 0; --i)
    b[static_cast<std::size_t>(i)] = nl.add_gate(
        GateType::kXor,
        {b[static_cast<std::size_t>(i + 1)], g[static_cast<std::size_t>(i)]});
  for (int i = 0; i < bits; ++i) nl.mark_output(b[static_cast<std::size_t>(i)]);
  return nl;
}

Netlist alu_slice() {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto cin = nl.add_input("cin");
  const auto op0 = nl.add_input("op0");
  const auto op1 = nl.add_input("op1");

  const auto ab_and = nl.add_gate(GateType::kAnd, {a, b});
  const auto ab_or = nl.add_gate(GateType::kOr, {a, b});
  const auto ab_xor = nl.add_gate(GateType::kXor, {a, b});
  const auto sum = nl.add_gate(GateType::kXor, {ab_xor, cin});
  const auto cout = nl.add_gate(GateType::kMaj, {a, b, cin});

  // 4:1 mux on (op1, op0): 00->AND, 01->OR, 10->XOR, 11->SUM.
  const auto nop0 = nl.add_gate(GateType::kNot, {op0});
  const auto nop1 = nl.add_gate(GateType::kNot, {op1});
  const auto s_and = nl.add_gate(GateType::kAnd, {ab_and, nop1, nop0});
  const auto s_or = nl.add_gate(GateType::kAnd, {ab_or, nop1, op0});
  const auto s_xor = nl.add_gate(GateType::kAnd, {ab_xor, op1, nop0});
  const auto s_sum = nl.add_gate(GateType::kAnd, {sum, op1, op0});
  nl.mark_output(nl.add_gate(GateType::kOr, {s_and, s_or, s_xor, s_sum}));
  nl.mark_output(cout);
  return nl;
}

std::vector<BenchmarkCircuit> standard_suite(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<BenchmarkCircuit> suite;
  suite.push_back({"xor2", parity(2)});
  suite.push_back({"parity8", parity(8)});
  suite.push_back({"rca2", ripple_carry_adder(2)});
  suite.push_back({"rca4", ripple_carry_adder(4)});
  suite.push_back({"mult2", array_multiplier(2)});
  suite.push_back({"mult3", array_multiplier(3)});
  suite.push_back({"mux4", mux_tree(2)});
  suite.push_back({"mux8", mux_tree(3)});
  suite.push_back({"cmp4", comparator_gt(4)});
  suite.push_back({"maj5", majority_n(5)});
  suite.push_back({"rand6", random_function(6, rng)});
  suite.push_back({"rand8", random_function(8, rng)});
  // Appended after the original twelve so existing index-based sweeps keep
  // their meaning.
  suite.push_back({"dec3", address_decoder(3)});
  suite.push_back({"gray6", gray_to_binary(6)});
  suite.push_back({"alu1", alu_slice()});
  return suite;
}

}  // namespace cim::eda
