/// \file lint_magic.cpp
/// \brief Static dataflow verification of compiled single-row MAGIC
///        programs.
///
/// MAGIC's contract is strict: a NOR conditionally RESETs its output cell,
/// so the cell must be unconditionally SET immediately before — writing over
/// a previous result without the re-SET is the classic mapper bug this
/// linter's write-after-write rule exists for. When the NOR-only source
/// netlist is supplied the analysis additionally re-derives the mapper's
/// constant folding and fanout death points, proving the CONTRA-style cell
/// recycling never retires a value that still has consumers.
#include <algorithm>
#include <sstream>

#include "eda/verify/cell_state.hpp"
#include "eda/verify/dataflow.hpp"
#include "eda/verify/verify.hpp"

namespace cim::eda::verify {

VerifyReport lint_magic(const MagicProgram& prog, const Netlist* source,
                        const VerifyOptions& opts) {
  VerifyReport rep;
  const std::size_t n_cells = prog.num_cells;
  rep.cells_tracked = n_cells;

  auto diag = [&rep](Severity sev, Rule rule, std::size_t instr,
                     std::size_t cell, std::string msg) {
    rep.diagnostics.push_back({sev, rule, instr, cell, std::move(msg)});
  };

  // --- footprint vs. target geometry ----------------------------------------
  if (opts.geometry &&
      (opts.geometry->cols < n_cells || opts.geometry->rows < 1)) {
    std::ostringstream os;
    os << "program footprint 1x" << n_cells << " exceeds crossbar geometry "
       << opts.geometry->rows << "x" << opts.geometry->cols;
    diag(Severity::kError, Rule::kOobCell, kNoInstr, kNoCell, os.str());
  }
  if (prog.num_inputs > n_cells)
    diag(Severity::kError, Rule::kOobCell, kNoInstr, kNoCell,
         "more inputs than cells in the program footprint");

  CellTable cells(n_cells);
  for (std::size_t i = 0; i < std::min(prog.num_inputs, n_cells); ++i)
    cells[i].state = CellState::kDriven;

  // --- source-netlist analysis: const folding + fanout counts ---------------
  const bool live = source != nullptr;
  std::vector<int> const_value;          // -1: not a constant
  std::vector<std::size_t> remaining;    // fanout counts per node
  std::vector<char> consumed;            // gates whose fanins were consumed
  std::size_t gate_cursor = 0;           // netlist position the walk reached
  if (live) {
    const auto n_nodes = source->num_nodes();
    const_value.assign(n_nodes, -1);
    remaining.assign(n_nodes, 0);
    consumed.assign(n_nodes, 0);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const auto& g = source->gate(i);
      for (const auto f : g.fanins) ++remaining[f];
      // Mirror compile_magic's folding: a const-1 fanin forces 0; a NOR
      // whose non-const fanins all vanished evaluates to 1.
      if (g.type == GateType::kConst0) {
        const_value[i] = 0;
      } else if (g.type == GateType::kConst1) {
        const_value[i] = 1;
      } else if (g.type == GateType::kNor) {
        bool forced_zero = false;
        bool any_dynamic = false;
        for (const auto f : g.fanins) {
          if (const_value[f] == 1) forced_zero = true;
          else if (const_value[f] != 0) any_dynamic = true;
        }
        if (forced_zero) const_value[i] = 0;
        else if (!any_dynamic) const_value[i] = 1;
      }
    }
    for (const auto o : source->outputs()) ++remaining[o];
    std::size_t k = 0;
    for (const auto in : source->inputs()) {
      if (k < n_cells) cells[k].node = in;
      ++k;
    }
  }

  auto consume_gate = [&](std::size_t g) {
    if (consumed[g]) return;
    consumed[g] = 1;
    for (const auto f : source->gate(g).fanins) {
      if (remaining[f] > 0) --remaining[f];
      if (remaining[f] == 0 && const_value[f] < 0)
        cells.kill_node(f, prog.num_inputs);  // fanout death point
    }
  };

  // Consumes the const-folded NOR gates the mapper processed (and released
  // the fanins of) without emitting instructions, up to netlist position `g`.
  auto advance_to = [&](std::size_t g) {
    for (; gate_cursor < std::min(g, source->num_nodes()); ++gate_cursor) {
      const auto& gate = source->gate(gate_cursor);
      if (gate.type == GateType::kNor && const_value[gate_cursor] >= 0)
        consume_gate(gate_cursor);
    }
  };

  // --- the abstract walk, hosted on the dataflow driver ---------------------
  run_straight_line(prog.instrs.size(), cells, [&](CellTable& cells,
                                                   std::size_t i) {
    const auto& ins = prog.instrs[i];
    if (live && ins.node < source->num_nodes()) advance_to(ins.node);

    if (ins.out_cell >= n_cells) {
      diag(Severity::kError, Rule::kOobCell, i, ins.out_cell,
           std::string(ins.kind == MagicInstr::Kind::kSet ? "SET" : "NOR") +
               " drives a cell outside the program footprint");
      return;
    }
    auto& out = cells[ins.out_cell];

    if (ins.kind == MagicInstr::Kind::kSet) {
      if (live && out.node != kNoNode && out.node < remaining.size() &&
          out.state == CellState::kDriven && remaining[out.node] > 0) {
        std::ostringstream os;
        os << "SET recycles cell " << ins.out_cell << " while node "
           << out.node << " still has " << remaining[out.node]
           << " live fanout(s) — premature recycle";
        diag(Severity::kError, Rule::kDeadCellRead, i, ins.out_cell, os.str());
      }
      cells.record_write(ins.out_cell, i);
      out.state = CellState::kSet;
      out.node = kNoNode;
      return;
    }

    // kNor: read every input cell.
    std::vector<std::size_t> resident_nodes;
    for (const auto c : ins.in_cells) {
      if (c >= n_cells) {
        diag(Severity::kError, Rule::kOobCell, i, c,
             "NOR reads a cell outside the program footprint");
        continue;
      }
      const auto& ci = cells[c];
      if (ci.state == CellState::kUnknown) {
        diag(Severity::kError, Rule::kUseBeforeInit, i, c,
             "NOR reads cell " + std::to_string(c) +
                 " that no micro-op ever initialized");
      } else if (ci.state == CellState::kDead) {
        std::ostringstream os;
        os << "NOR reads cell " << c << " after its resident value (node "
           << ci.node << ") exhausted all fanouts — recycled under reuse";
        diag(Severity::kError, Rule::kDeadCellRead, i, c, os.str());
      } else if (ci.node != kNoNode) {
        resident_nodes.push_back(ci.node);
      }
    }

    // Residency check: the cells read must hold exactly the gate's live
    // (non-constant) fanins — anything else is a stale value.
    if (live && ins.node < source->num_nodes()) {
      std::vector<std::size_t> expected;
      for (const auto f : source->gate(ins.node).fanins)
        if (const_value[f] < 0) expected.push_back(f);
      auto exp = expected;
      std::sort(exp.begin(), exp.end());
      for (const auto rn : resident_nodes) {
        const auto it = std::find(exp.begin(), exp.end(), rn);
        if (it != exp.end()) {
          exp.erase(it);
          continue;
        }
        std::ostringstream os;
        os << "NOR for node " << ins.node << " reads a cell holding node "
           << rn << ", not one of its fanins — stale value";
        diag(Severity::kError, Rule::kDeadCellRead, i, kNoCell, os.str());
      }
    }

    // Output-cell discipline: must be freshly SET.
    switch (out.state) {
      case CellState::kSet:
        break;  // the one legal state
      case CellState::kUnknown:
        diag(Severity::kError, Rule::kUseBeforeInit, i, ins.out_cell,
             "NOR drives cell " + std::to_string(ins.out_cell) +
                 " that was never SET");
        break;
      default:
        diag(Severity::kError, Rule::kWriteAfterWrite, i, ins.out_cell,
             "NOR drives cell " + std::to_string(ins.out_cell) +
                 " without an intervening SET (state: " +
                 std::string(cell_state_name(out.state)) + ")");
        break;
    }
    cells.record_write(ins.out_cell, i);
    out.state = CellState::kDriven;
    out.node = (ins.node == static_cast<std::size_t>(-1)) ? kNoNode : ins.node;

    if (live && ins.node < source->num_nodes()) {
      consume_gate(ins.node);
      gate_cursor = std::max(gate_cursor, ins.node + 1);
    }
  });
  if (live) advance_to(source->num_nodes());

  // --- output-cell reachability ---------------------------------------------
  if (live && prog.output_cells.size() != source->outputs().size())
    diag(Severity::kError, Rule::kOutputUnreachable, kNoInstr, kNoCell,
         "program output count differs from the source netlist's");
  for (std::size_t k = 0; k < prog.output_cells.size(); ++k) {
    const bool is_const =
        k < prog.output_is_const.size() && prog.output_is_const[k];
    if (is_const) continue;  // resolved statically, no cell to check
    const std::size_t c = prog.output_cells[k];
    if (c >= n_cells) {
      diag(Severity::kError, Rule::kOobCell, kNoInstr, c,
           "output " + std::to_string(k) +
               " taps a cell outside the program footprint");
      continue;
    }
    const auto& ci = cells[c];
    if (ci.state == CellState::kUnknown) {
      diag(Severity::kError, Rule::kOutputUnreachable, kNoInstr, c,
           "output " + std::to_string(k) +
               " is not dominated by any defining micro-op");
      continue;
    }
    if (ci.state == CellState::kDead) {
      diag(Severity::kError, Rule::kDeadCellRead, kNoInstr, c,
           "output " + std::to_string(k) + " taps a dead (recycled) cell");
      continue;
    }
    if (live && k < source->outputs().size()) {
      const std::size_t want = source->outputs()[k];
      if (const_value[want] < 0 && ci.node != kNoNode && ci.node != want) {
        std::ostringstream os;
        os << "output " << k << " taps a cell holding node " << ci.node
           << ", expected node " << want << " — stale value";
        diag(Severity::kError, Rule::kDeadCellRead, kNoInstr, c, os.str());
      }
    }
  }

  // --- endurance-budget accounting ------------------------------------------
  rep.max_writes_per_cell = cells.max_writes();
  const std::size_t budget = opts.resolved_endurance_budget();
  for (std::size_t c = 0; c < n_cells; ++c) {
    if (cells[c].writes > budget) {
      std::ostringstream os;
      os << "cell " << c << " written " << cells[c].writes
         << " times per run, endurance budget " << budget;
      diag(Severity::kWarning, Rule::kEnduranceBudget, kNoInstr, c, os.str());
    }
  }
  return rep;
}

}  // namespace cim::eda::verify
