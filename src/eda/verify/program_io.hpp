/// \file program_io.hpp
/// \brief Text serialization of compiled micro-op programs — the
///        `cim-prog-v1` format the `cim-lint` CLI reads and the mappers
///        dump for offline analysis.
///
/// One program per file. Line-oriented; `#` starts a comment; the first
/// non-comment line is the header `cim-prog-v1 <family>` with family one
/// of `imply`, `magic`, `revamp`. Node annotations (`@N`) are optional —
/// they carry the mapper's IR introspection hooks so the liveness rules
/// can run offline; `@-` (or omission) means "no node".
///
/// ```
/// cim-prog-v1 imply
/// inputs 2
/// cells 5
/// zero 2
/// false 3 @-
/// imply 3 0 @4
/// output 3
/// ```
///
/// MAGIC instructions are `set <out> @N` / `nor <out> <in...> @N`, outputs
/// `output <cell>` or `output const <0|1>`. ReVAMP instructions are
/// `read <wl>` / `apply <wl> <wl-op> <col>=<op> ...` with operands encoded
/// `c0`, `c1`, `i<k>`, `d<r>.<c>`, optionally prefixed `!` for a
/// complemented driver; the header grows `wordlines` / `bitlines` lines.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/revamp_isa.hpp"

namespace cim::eda::verify {

/// Program family tag of a parsed `cim-prog-v1` file.
enum class ProgramFamily { kImply, kMagic, kRevamp };

/// A parsed program: exactly the member matching `family` is meaningful.
struct ParsedProgram {
  ProgramFamily family = ProgramFamily::kImply;
  ImplyProgram imply;
  MagicProgram magic;
  RevampProgram revamp;
};

void dump_program(std::ostream& os, const ImplyProgram& prog);
void dump_program(std::ostream& os, const MagicProgram& prog);
void dump_program(std::ostream& os, const RevampProgram& prog);

/// Parses a `cim-prog-v1` stream. Returns std::nullopt and sets `error`
/// (when non-null) on malformed input.
std::optional<ParsedProgram> parse_program(std::istream& is,
                                           std::string* error = nullptr);

}  // namespace cim::eda::verify
