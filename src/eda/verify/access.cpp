#include "eda/verify/access.hpp"

#include <algorithm>

namespace cim::eda::verify {
namespace {

ProgramAccess make_footprint(std::size_t rows, std::size_t cols) {
  ProgramAccess a;
  a.rows = rows;
  a.cols = cols;
  a.write_bound.assign(rows * cols, 0);
  a.read.assign(rows * cols, 0);
  a.written.assign(rows * cols, 0);
  a.sensed_cols.assign(cols, 0);
  a.driven_rows.assign(rows, 0);
  return a;
}

void bump_write(ProgramAccess& a, std::size_t cell) {
  if (cell >= a.write_bound.size()) return;  // oob caught by the linters
  ++a.write_bound[cell];
  a.written[cell] = 1;
  ++a.total_writes;
}

void mark_read(ProgramAccess& a, std::size_t cell) {
  if (cell < a.read.size()) a.read[cell] = 1;
}

void sense(ProgramAccess& a, std::size_t cell) {
  mark_read(a, cell);
  if (a.cols != 0 && cell < a.read.size()) ++a.sensed_cols[cell % a.cols];
  ++a.sensed_reads;
}

}  // namespace

std::size_t ProgramAccess::max_write_bound() const {
  std::uint32_t m = 0;
  for (const auto w : write_bound) m = std::max(m, w);
  return m;
}

ProgramAccess access_of(const ImplyProgram& prog) {
  auto a = make_footprint(1, prog.num_cells);
  if (prog.num_cells > 0) a.driven_rows[0] = 1;
  // Input launch: the executor materializes the assignment with write_bit.
  for (std::size_t c = 0; c < std::min(prog.num_inputs, prog.num_cells); ++c)
    bump_write(a, c);
  for (const auto& ins : prog.instrs) {
    if (ins.kind == ImplyInstr::Kind::kImply) {
      mark_read(a, ins.src);   // internal operand reads: no ADC charge,
      mark_read(a, ins.dest);  // but they are still data dependences
    }
    bump_write(a, ins.dest);
  }
  for (const auto c : prog.output_cells) sense(a, c);
  return a;
}

ProgramAccess access_of(const MagicProgram& prog) {
  auto a = make_footprint(1, prog.num_cells);
  if (prog.num_cells > 0) a.driven_rows[0] = 1;
  for (std::size_t c = 0; c < std::min(prog.num_inputs, prog.num_cells); ++c)
    bump_write(a, c);
  for (const auto& ins : prog.instrs) {
    if (ins.kind == MagicInstr::Kind::kNor)
      for (const auto c : ins.in_cells) mark_read(a, c);
    bump_write(a, ins.out_cell);
  }
  for (std::size_t k = 0; k < prog.output_cells.size(); ++k) {
    if (k < prog.output_is_const.size() && prog.output_is_const[k])
      continue;  // resolved statically; the executor never touches the array
    sense(a, prog.output_cells[k]);
  }
  return a;
}

ProgramAccess access_of(const RevampProgram& prog) {
  auto a = make_footprint(prog.wordlines, prog.bitlines);
  // No launch writes: inputs live in the PIR register, not the array.
  for (const auto& ins : prog.instrs) {
    if (ins.wordline >= prog.wordlines) continue;  // oob: linters report it
    a.driven_rows[ins.wordline] = 1;
    if (ins.kind == RevampInstruction::Kind::kRead) {
      // READ latches the whole row into the DMR: B sensed read_bit calls.
      for (std::size_t c = 0; c < prog.bitlines; ++c)
        sense(a, a.flat(ins.wordline, c));
      continue;
    }
    for (std::size_t c = 0;
         c < std::min(ins.columns.size(), prog.bitlines); ++c)
      if (ins.columns[c]) bump_write(a, a.flat(ins.wordline, c));
  }
  // Output taps read the DMR/PIR registers or constants — no array access.
  return a;
}

}  // namespace cim::eda::verify
