/// \file dataflow.hpp
/// \brief Reusable fixpoint dataflow engine for the static-analysis
///        framework (`cim::eda::verify`).
///
/// PR 1's linters each hand-rolled the same shape: thread an abstract
/// per-cell state (cell_state.hpp's five-point domain) through a compiled
/// micro-op program and report rule violations along the way. This header
/// factors that shape out into two drivers the analyses share:
///
///  - `run_straight_line` — the chain-graph specialization every micro-op
///    program uses today. Programs are branch-free instruction streams, so
///    the transfer function threads one state through in place and the
///    fixpoint is reached in a single sweep. The per-family linters
///    (lint_imply / lint_magic / lint_revamp) are hosted on this driver.
///  - `run_fixpoint` — the general worklist engine over an arbitrary
///    dataflow graph: per-node transfer functions, predecessor joins, and
///    iteration to convergence with a divergence cap. Nodes are processed
///    in index order, so on a DAG whose edges all point forward each
///    transfer fires exactly once — analyses may therefore emit
///    diagnostics from inside the transfer on such graphs. On cyclic
///    graphs transfers re-fire until the state stabilizes; diagnostics
///    must then be derived from the returned in/out states instead.
///
/// The lattice the engine generalizes is the five-point cell-state domain:
/// `join_cell_state` / `join_cell` / `join_cells` define the merge of two
/// abstract states at a control join (or between interleaved programs).
/// The partial order is chosen so that every hazard the linters report on
/// one path is still reported after a merge:
///
///  - equal states join to themselves;
///  - `kUnknown` (may be uninitialized) absorbs everything — reading a
///    maybe-uninitialized cell must stay a use-before-init hazard;
///  - `kDead` absorbs every readable state — reading a maybe-recycled cell
///    must stay a dead-cell-read hazard;
///  - mixed readable states (`kSet` / `kReset` / `kDriven`) join to
///    `kDriven`: the value is unknown but safely readable. This is
///    conservative for MAGIC's SET discipline (a maybe-SET cell is treated
///    as not-freshly-SET), which can only add diagnostics, never hide one.
#pragma once

#include <cstddef>
#include <vector>

#include "eda/verify/cell_state.hpp"

namespace cim::eda::verify {

// --- the five-point lattice join ---------------------------------------------

/// Join of two abstract cell states (see the partial order above).
inline CellState join_cell_state(CellState a, CellState b) {
  if (a == b) return a;
  if (a == CellState::kUnknown || b == CellState::kUnknown)
    return CellState::kUnknown;
  if (a == CellState::kDead || b == CellState::kDead) return CellState::kDead;
  return CellState::kDriven;  // mixed Set/Reset/Driven: readable, value unknown
}

/// Joins `other` into `into`. Returns true when `into` changed. Write
/// counters take the max (an upper bound over either path) and the resident
/// node is kept only when both paths agree on it.
inline bool join_cell(CellInfo& into, const CellInfo& other) {
  bool changed = false;
  const CellState js = join_cell_state(into.state, other.state);
  if (js != into.state) {
    into.state = js;
    changed = true;
  }
  if (into.node != other.node && into.node != kNoNode) {
    into.node = kNoNode;
    changed = true;
  }
  if (other.writes > into.writes) {
    into.writes = other.writes;
    changed = true;
  }
  return changed;
}

/// Element-wise join of two equally sized cell tables.
inline bool join_cells(CellTable& into, const CellTable& other) {
  bool changed = false;
  for (std::size_t c = 0; c < into.size() && c < other.size(); ++c)
    changed = join_cell(into[c], other[c]) || changed;
  return changed;
}

// --- straight-line driver ----------------------------------------------------

/// Runs `transfer(state, i)` for i in [0, num_instrs): the chain-graph
/// specialization of the fixpoint engine. Micro-op programs are branch-free,
/// so a single in-place sweep *is* the fixpoint — no per-node state copies,
/// no joins. The per-family linters and the static cost model are hosted on
/// this driver with `State = CellTable` (+ family-specific extras).
template <typename State, typename TransferFn>
void run_straight_line(std::size_t num_instrs, State& state,
                       TransferFn&& transfer) {
  for (std::size_t i = 0; i < num_instrs; ++i) transfer(state, i);
}

// --- general worklist engine -------------------------------------------------

/// Result of a fixpoint run: per-node in/out states, the number of transfer
/// invocations, and whether the engine converged under the iteration cap.
template <typename State>
struct FixpointResult {
  std::vector<State> in;
  std::vector<State> out;
  std::size_t transfers = 0;
  bool converged = false;
};

/// Worklist fixpoint over a dataflow graph of `num_nodes` nodes.
///
///  - `succs[n]`  — forward edges of node n (may be empty).
///  - `entry`     — in-state of every node without predecessors (also the
///                  initial out-state a not-yet-processed predecessor
///                  contributes on cyclic graphs).
///  - `transfer`  — `State(const State& in, std::size_t node)`.
///  - `join`      — `bool(State& into, const State& other)`, returns true
///                  when `into` changed (e.g. `join_cells`).
///
/// Out-states are *replaced* by the transfer result (not joined into), so
/// transfers may overwrite lattice points the way the cell analyses do on
/// writes; equality for change detection is derived from `join` itself
/// (a == b iff joining either into the other reports no change), so State
/// needs no operator==. Nodes are seeded in index order; a node re-enters
/// the worklist when a predecessor's out-state changes after the node was
/// last processed. On a DAG with forward-pointing edges every transfer
/// therefore fires exactly once. `max_transfers` caps divergence on cyclic
/// graphs (0 selects 64 * num_nodes); `converged` is false when the cap
/// was hit.
template <typename State, typename TransferFn, typename JoinFn>
FixpointResult<State> run_fixpoint(
    std::size_t num_nodes, const std::vector<std::vector<std::size_t>>& succs,
    const State& entry, TransferFn&& transfer, JoinFn&& join,
    std::size_t max_transfers = 0) {
  FixpointResult<State> res;
  res.in.assign(num_nodes, entry);
  res.out.assign(num_nodes, entry);
  if (num_nodes == 0) {
    res.converged = true;
    return res;
  }
  if (max_transfers == 0) max_transfers = 64 * num_nodes;

  // Predecessors, derived once.
  std::vector<std::vector<std::size_t>> preds(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n)
    for (const std::size_t s : succs[n])
      if (s < num_nodes) preds[s].push_back(n);

  std::vector<char> queued(num_nodes, 1);
  std::vector<std::size_t> worklist;
  worklist.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) worklist.push_back(n);

  std::size_t head = 0;
  while (head < worklist.size()) {
    const std::size_t n = worklist[head++];
    queued[n] = 0;
    // In-state: the join of every predecessor's out-state; `entry` only for
    // nodes without predecessors (joining it everywhere would saturate
    // lattices whose entry point is absorbing, like all-kUnknown).
    State in = entry;
    if (!preds[n].empty()) {
      in = res.out[preds[n][0]];
      for (std::size_t k = 1; k < preds[n].size(); ++k)
        join(in, res.out[preds[n][k]]);
    }
    res.in[n] = in;
    if (res.transfers >= max_transfers) return res;  // converged stays false
    ++res.transfers;
    State out = transfer(static_cast<const State&>(in), n);
    // The new out-state replaces the stored one. Change detection uses the
    // join order: a == b iff joining either into the other changes nothing
    // (join is commutative), so no operator== is required of State.
    State up = res.out[n];
    const bool moved_up = join(up, out);
    State down = out;
    const bool moved_down = join(down, res.out[n]);
    const bool changed = moved_up || moved_down;
    res.out[n] = std::move(out);
    if (changed) {
      for (const std::size_t s : succs[n]) {
        if (s < num_nodes && queued[s] == 0) {
          queued[s] = 1;
          worklist.push_back(s);
        }
      }
    }
  }
  res.converged = true;
  return res;
}

}  // namespace cim::eda::verify
