/// \file pass.hpp
/// \brief Pass manager for the static-analysis framework
///        (`cim::eda::verify`): named analysis passes over one compiled
///        program unit, with shared on-demand analysis results, aggregated
///        diagnostics, and per-pass wall-clock accounting.
///
/// A `ProgramUnit` bundles one compiled program (exactly one of the three
/// families), its optional source IR (for liveness re-derivation), and the
/// certification inputs. Passes pull shared facts from `AnalysisResults`
/// — the access sets and the cost estimate are computed once and cached,
/// however many passes consume them — and append diagnostics to a common
/// `VerifyReport`. `PassManager::standard()` assembles the pipeline the
/// `eda::Flow` gate and the `cim-lint` CLI both run:
///
///   1. family-lint     the per-family dataflow linter (lint_imply /
///                      lint_magic / lint_revamp, hosted on dataflow.hpp)
///   2. wear-certify    static per-cell write bounds vs. device endurance
///                      (wear_cost.hpp)
///   3. cost-certify    static time/energy estimate vs. the cost budget
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "eda/verify/access.hpp"
#include "eda/verify/hazard.hpp"
#include "eda/verify/verify.hpp"
#include "eda/verify/wear_cost.hpp"

namespace cim::eda::verify {

/// One compiled program plus everything the passes need. Exactly one of
/// the three program pointers should be set; the matching source IR is
/// optional (it enables the liveness rules). Pointers are borrowed — the
/// caller keeps them alive for the duration of `PassManager::run`.
struct ProgramUnit {
  std::string name;
  const ImplyProgram* imply = nullptr;
  const Aig* aig = nullptr;
  const MagicProgram* magic = nullptr;
  const Netlist* netlist = nullptr;
  const RevampProgram* revamp = nullptr;
  VerifyOptions opts;
  /// Planned lifetime evaluations for the wear certificate (0: report the
  /// certificate without gating).
  std::uint64_t planned_evaluations = 0;
  /// Per-execution cost budget (0 dimensions are unconstrained).
  CostBudget cost_budget{};

  /// "IMPLY" / "MAGIC" / "ReVAMP" / "?" from whichever program is set.
  std::string_view family() const;
};

/// Shared per-unit analysis facts, computed on demand and cached so every
/// pass (and the caller, afterwards) sees the same objects.
class AnalysisResults {
 public:
  /// Access sets of the unit's program (access.hpp), cached.
  const ProgramAccess& access(const ProgramUnit& unit);
  /// Static cost estimate (wear_cost.hpp), cached.
  const CostEstimate& cost(const ProgramUnit& unit);

  /// Set by the wear-certify pass.
  const std::optional<WearCertificate>& wear() const { return wear_; }
  void set_wear(const WearCertificate& cert) { wear_ = cert; }

 private:
  std::optional<ProgramAccess> access_;
  std::optional<CostEstimate> cost_;
  std::optional<WearCertificate> wear_;
};

/// One analysis pass.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  virtual void run(const ProgramUnit& unit, AnalysisResults& results,
                   VerifyReport& rep) = 0;
};

/// Cumulative wall-clock per pass across every `run` call.
struct PassTiming {
  std::string name;
  double wall_ms = 0.0;
  std::size_t runs = 0;
};

/// Runs an ordered pass pipeline over program units.
class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> pass);

  /// Runs every pass over `unit`; diagnostics, `max_writes_per_cell` and
  /// `cells_tracked` aggregate into the returned report. `results` is
  /// reset first and left holding the shared facts for the caller.
  VerifyReport run(const ProgramUnit& unit, AnalysisResults& results);
  VerifyReport run(const ProgramUnit& unit);

  const std::vector<PassTiming>& timings() const { return timings_; }
  std::size_t size() const { return passes_.size(); }

  /// The standard pipeline: family-lint, wear-certify, cost-certify.
  static PassManager standard();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<PassTiming> timings_;
};

/// The standard passes, individually instantiable.
std::unique_ptr<Pass> make_family_lint_pass();
std::unique_ptr<Pass> make_wear_certify_pass();
std::unique_ptr<Pass> make_cost_certify_pass();

}  // namespace cim::eda::verify
