/// \file hazard.hpp
/// \brief Cross-tile static hazard analysis (`cim::eda::verify`): a race
///        detector for micro-op programs scheduled concurrently on a pool
///        of CIM tiles.
///
/// A multi-tile system (core::CimSystem) dispatches compiled programs onto
/// tiles with a placement origin and a schedule window. Two programs whose
/// windows overlap on the *same* tile contend for physical resources; this
/// analysis derives each program's resource access sets statically
/// (access.hpp) and reports every conflict as a structured diagnostic:
///
///  - `raw-hazard`        a later-starting program reads cells an
///                        overlapping earlier program writes
///  - `waw-hazard`        two overlapping programs write the same cells
///  - `war-hazard`        a later-starting program writes cells an
///                        overlapping earlier program reads
///  - `shared-adc-conflict` both programs sense columns multiplexed onto
///                        the same physical ADC channel (channel =
///                        absolute column % tile ADC count)
///  - `shared-row-driver` warning: both programs engage the same wordline
///                        driver (serialized by the periphery, so a
///                        throughput hazard rather than a correctness one)
///  - `oob-cell`          a placement pushes the program footprint outside
///                        its tile, or names a tile the pool lacks
///
/// Programs on different tiles never conflict (tiles own their arrays,
/// drivers, and ADCs), and same-tile programs with disjoint windows are
/// serialized by construction — both cases produce zero findings, which is
/// the zero-false-positive contract the clean-schedule test sweep locks in.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "eda/verify/access.hpp"
#include "eda/verify/diagnostics.hpp"

namespace cim::eda::verify {

/// Physical resources of one tile in the pool.
struct TileInfo {
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Physical ADC channels; columns time-multiplex onto channel
  /// (absolute column) % adc_channels.
  std::size_t adc_channels = 1;
};

/// The tile pool programs are scheduled across.
struct TilePool {
  std::vector<TileInfo> tiles;
};

/// One compiled program placed on a tile with a schedule window
/// [start, start + duration). A non-positive duration means "always
/// active" (an unconstrained reservation that overlaps everything on the
/// tile).
struct ScheduledProgram {
  std::string name;
  std::size_t tile = 0;
  std::size_t row0 = 0;  ///< placement origin (tile row)
  std::size_t col0 = 0;  ///< placement origin (tile column)
  double start = 0.0;
  double duration = 0.0;
  ProgramAccess access;  ///< access_of(program)
};

/// Analysis toggles (both default on).
struct HazardOptions {
  bool check_adc = true;
  bool check_row_drivers = true;
};

/// Runs the pairwise hazard analysis over `scheduled` against `pool`.
VerifyReport analyze_hazards(const TilePool& pool,
                             const std::vector<ScheduledProgram>& scheduled,
                             const HazardOptions& opts = {});

}  // namespace cim::eda::verify
