#include "eda/verify/hazard.hpp"

#include <algorithm>
#include <sstream>

namespace cim::eda::verify {
namespace {

/// Windows overlap when both have positive measure in common; a
/// non-positive duration is an always-active reservation.
bool windows_overlap(const ScheduledProgram& a, const ScheduledProgram& b) {
  const bool a_open = a.duration <= 0.0;
  const bool b_open = b.duration <= 0.0;
  if (a_open && b_open) return true;
  if (a_open) return true;  // open interval overlaps any positive window
  if (b_open) return true;
  return a.start < b.start + b.duration && b.start < a.start + a.duration;
}

}  // namespace

VerifyReport analyze_hazards(const TilePool& pool,
                             const std::vector<ScheduledProgram>& scheduled,
                             const HazardOptions& opts) {
  VerifyReport rep;
  auto diag = [&rep](Severity sev, Rule rule, std::size_t cell,
                     std::string msg) {
    rep.diagnostics.push_back({sev, rule, kNoInstr, cell, std::move(msg)});
  };

  // --- placement validity ----------------------------------------------------
  for (const auto& p : scheduled) {
    if (p.tile >= pool.tiles.size()) {
      std::ostringstream os;
      os << "program '" << p.name << "' targets tile " << p.tile
         << " but the pool has " << pool.tiles.size();
      diag(Severity::kError, Rule::kOobCell, kNoCell, os.str());
      continue;
    }
    const auto& t = pool.tiles[p.tile];
    if (p.row0 + p.access.rows > t.rows || p.col0 + p.access.cols > t.cols) {
      std::ostringstream os;
      os << "program '" << p.name << "' at r" << p.row0 << ",c" << p.col0
         << " (" << p.access.rows << "x" << p.access.cols
         << ") exceeds tile " << p.tile << " (" << t.rows << "x" << t.cols
         << ")";
      diag(Severity::kError, Rule::kOobCell, kNoCell, os.str());
    }
    rep.cells_tracked += p.access.rows * p.access.cols;
    rep.max_writes_per_cell =
        std::max(rep.max_writes_per_cell, p.access.max_write_bound());
  }

  // --- pairwise conflicts ----------------------------------------------------
  // A tile-frame cell is (row, col) with col < tile.cols; the flat id
  // row * tile.cols + col is what the diagnostics carry.
  for (std::size_t i = 0; i < scheduled.size(); ++i) {
    for (std::size_t j = i + 1; j < scheduled.size(); ++j) {
      const auto* a = &scheduled[i];
      const auto* b = &scheduled[j];
      if (a->tile != b->tile || a->tile >= pool.tiles.size()) continue;
      if (!windows_overlap(*a, *b)) continue;
      // Order by start so RAW/WAR classification is deterministic: `a` is
      // the earlier program.
      if (b->start < a->start) std::swap(a, b);
      const auto& tile = pool.tiles[a->tile];

      // Cell-set intersections over the overlapping footprint rectangle.
      std::size_t raw = 0, war = 0, waw = 0;
      std::size_t first_raw = kNoCell, first_war = kNoCell,
                  first_waw = kNoCell;
      const std::size_t r_lo = std::max(a->row0, b->row0);
      const std::size_t r_hi = std::min(a->row0 + a->access.rows,
                                        b->row0 + b->access.rows);
      const std::size_t c_lo = std::max(a->col0, b->col0);
      const std::size_t c_hi = std::min(a->col0 + a->access.cols,
                                        b->col0 + b->access.cols);
      for (std::size_t r = r_lo; r < r_hi; ++r) {
        for (std::size_t c = c_lo; c < c_hi; ++c) {
          const auto& aa = a->access;
          const auto& ba = b->access;
          const std::size_t ia = aa.flat(r - a->row0, c - a->col0);
          const std::size_t ib = ba.flat(r - b->row0, c - b->col0);
          const std::size_t abs_cell = r * tile.cols + c;
          if (aa.written[ia] && ba.written[ib]) {
            if (waw++ == 0) first_waw = abs_cell;
          }
          if (aa.written[ia] && ba.read[ib]) {
            if (raw++ == 0) first_raw = abs_cell;
          }
          if (aa.read[ia] && ba.written[ib]) {
            if (war++ == 0) first_war = abs_cell;
          }
        }
      }
      auto pair_msg = [&](const char* what, std::size_t n) {
        std::ostringstream os;
        os << "programs '" << a->name << "' and '" << b->name
           << "' overlap in time on tile " << a->tile << ": " << n << " "
           << what;
        return os.str();
      };
      if (waw > 0)
        diag(Severity::kError, Rule::kWawHazard, first_waw,
             pair_msg("cell(s) written by both", waw));
      if (raw > 0)
        diag(Severity::kError, Rule::kRawHazard, first_raw,
             pair_msg("cell(s) read by the later program while the earlier "
                      "one writes them",
                      raw));
      if (war > 0)
        diag(Severity::kError, Rule::kWarHazard, first_war,
             pair_msg("cell(s) written by the later program while the "
                      "earlier one reads them",
                      war));

      // Shared-ADC contention: both programs sense columns muxed onto the
      // same physical channel during the overlap.
      if (opts.check_adc && tile.adc_channels > 0) {
        std::vector<char> chan_a(tile.adc_channels, 0);
        for (std::size_t c = 0; c < a->access.sensed_cols.size(); ++c)
          if (a->access.sensed_cols[c] != 0)
            chan_a[(a->col0 + c) % tile.adc_channels] = 1;
        std::size_t shared = 0, first_chan = kNoCell;
        for (std::size_t c = 0; c < b->access.sensed_cols.size(); ++c) {
          if (b->access.sensed_cols[c] == 0) continue;
          const std::size_t ch = (b->col0 + c) % tile.adc_channels;
          if (chan_a[ch]) {
            if (shared++ == 0) first_chan = ch;
            chan_a[ch] = 0;  // count each channel once
          }
        }
        if (shared > 0) {
          std::ostringstream os;
          os << "programs '" << a->name << "' and '" << b->name
             << "' contend for " << shared << " shared ADC channel(s) on "
             << "tile " << a->tile << " (" << tile.adc_channels
             << " physical ADCs, column-muxed)";
          diag(Severity::kError, Rule::kAdcConflict, first_chan, os.str());
        }
      }

      // Shared wordline drivers: a throughput (serialization) warning.
      if (opts.check_row_drivers) {
        std::size_t shared = 0, first_row = kNoCell;
        for (std::size_t ra = 0; ra < a->access.driven_rows.size(); ++ra) {
          if (!a->access.driven_rows[ra]) continue;
          const std::size_t abs_row = a->row0 + ra;
          if (abs_row < b->row0 ||
              abs_row >= b->row0 + b->access.driven_rows.size())
            continue;
          if (b->access.driven_rows[abs_row - b->row0]) {
            if (shared++ == 0) first_row = abs_row;
          }
        }
        if (shared > 0) {
          std::ostringstream os;
          os << "programs '" << a->name << "' and '" << b->name << "' drive "
             << shared << " shared wordline(s) on tile " << a->tile
             << " — the row decoder serializes them";
          diag(Severity::kWarning, Rule::kRowDriverConflict, first_row,
               os.str());
        }
      }
    }
  }
  return rep;
}

}  // namespace cim::eda::verify
