/// \file cell_state.hpp
/// \brief The abstract cell-state lattice shared by the per-family static
///        analyses of `cim::eda::verify`.
///
/// Every crossbar cell touched by a compiled micro-op program is tracked
/// through a five-point abstract domain:
///
///     kUnknown  — power-on state; reading it is a use-before-init hazard
///     kSet      — unconditionally SET to logic 1 (MAGIC output preset)
///     kReset    — unconditionally RESET to logic 0 (IMPLY FALSE)
///     kDriven   — holds a computed value (result of NOR / IMPLY / MAJ)
///     kDead     — held a value whose source node has exhausted all of its
///                 fanouts; the allocator may recycle the cell, so reading
///                 it is a dead-cell-read hazard
///
/// The per-cell `node` field links the abstract state back to the source IR
/// node (AIG / netlist / MIG id) the resident value was computed from — the
/// introspection hook the mappers emit — enabling the verifier to re-derive
/// fanout death points independently of the allocator it is checking.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string_view>
#include <vector>

namespace cim::eda::verify {

/// Abstract state of one crossbar cell during the static walk.
enum class CellState { kUnknown, kSet, kReset, kDriven, kDead };

inline std::string_view cell_state_name(CellState s) {
  switch (s) {
    case CellState::kUnknown: return "unknown";
    case CellState::kSet: return "set";
    case CellState::kReset: return "reset";
    case CellState::kDriven: return "driven";
    case CellState::kDead: return "dead";
  }
  return "?";
}

/// Sentinel for "no source-IR node associated".
inline constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

/// Per-cell abstract record: lattice point, resident source node, and the
/// write counter feeding the endurance-budget accounting.
struct CellInfo {
  CellState state = CellState::kUnknown;
  std::size_t node = kNoNode;  ///< source IR node of the resident value
  std::size_t writes = 0;      ///< total micro-op writes into this cell
  std::size_t def_instr = static_cast<std::size_t>(-1);  ///< last defining op

  bool readable() const {
    return state != CellState::kUnknown && state != CellState::kDead;
  }
};

/// Flat cell-state table with write accounting.
class CellTable {
 public:
  explicit CellTable(std::size_t cells) : cells_(cells) {}

  CellInfo& operator[](std::size_t c) { return cells_[c]; }
  const CellInfo& operator[](std::size_t c) const { return cells_[c]; }
  std::size_t size() const { return cells_.size(); }

  /// Records a write into `cell` by instruction `instr`.
  void record_write(std::size_t cell, std::size_t instr) {
    auto& ci = cells_[cell];
    ++ci.writes;
    ci.def_instr = instr;
  }

  /// Marks every cell whose resident value came from `node` as dead — the
  /// fanout death point of that node, re-derived by the verifier.
  void kill_node(std::size_t node, std::size_t first_protected_cell) {
    for (std::size_t c = first_protected_cell; c < cells_.size(); ++c)
      if (cells_[c].node == node && cells_[c].state != CellState::kUnknown)
        cells_[c].state = CellState::kDead;
  }

  std::size_t max_writes() const {
    std::size_t m = 0;
    for (const auto& ci : cells_) m = std::max(m, ci.writes);
    return m;
  }

 private:
  std::vector<CellInfo> cells_;
};

}  // namespace cim::eda::verify
