/// \file diagnostics.hpp
/// \brief Structured lint diagnostics for the static micro-op program
///        verifier (`cim::eda::verify`).
///
/// Every rule violation found by the per-family analyses is reported as a
/// `Diagnostic` carrying a stable machine-readable rule id, the offending
/// instruction index and cell, a severity, and a human-readable message —
/// the shape a `cim-lint` CLI would print and a CI gate would grep.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cim::eda::verify {

/// Diagnostic severity: errors make a program un-clean, warnings do not.
enum class Severity { kError, kWarning };
std::string_view severity_name(Severity severity);

/// Stable rule identifiers (one per static-analysis check).
enum class Rule {
  kUseBeforeInit,      ///< a micro-op reads a cell that was never initialized
  kWriteAfterWrite,    ///< MAGIC NOR drives a cell that was not re-SET
  kDeadCellRead,       ///< liveness hazard: stale/recycled value read or a
                       ///< live cell overwritten before its last fanout
  kOobCell,            ///< cell/row/column index outside the program or the
                       ///< target crossbar geometry
  kEnduranceBudget,    ///< per-cell write count exceeds the endurance budget
  kOutputUnreachable,  ///< an output tap is not dominated by a defining write
  kDmrNotLatched,      ///< ReVAMP operand reads a DMR row that was never (or
                       ///< stalely) latched by a READ
  // Cross-tile hazard analysis (eda/verify/hazard.hpp): static races between
  // programs scheduled concurrently on a shared tile.
  kRawHazard,          ///< a later program reads cells a concurrent earlier
                       ///< program writes (read-after-write race)
  kWawHazard,          ///< two concurrent programs write the same cells
  kWarHazard,          ///< a later program writes cells a concurrent earlier
                       ///< program still reads (write-after-read race)
  kAdcConflict,        ///< two concurrent programs contend for the same
                       ///< physical (column-muxed) ADC channel
  kRowDriverConflict,  ///< two concurrent programs drive the same wordline
  // Static wear & cost certification (eda/verify/wear_cost.hpp).
  kWearBudget,         ///< lifetime wear bound: writes/run x planned
                       ///< evaluations exceeds the device endurance
  kCostBudget,         ///< static energy/latency estimate exceeds the
                       ///< caller's cost budget
};

/// The machine-readable rule id ("use-before-init", ...).
std::string_view rule_id(Rule rule);

/// Sentinels for diagnostics not tied to one instruction / cell.
inline constexpr std::size_t kNoInstr = static_cast<std::size_t>(-1);
inline constexpr std::size_t kNoCell = static_cast<std::size_t>(-1);

/// One lint finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  Rule rule = Rule::kUseBeforeInit;
  std::size_t instr = kNoInstr;  ///< instruction index (kNoInstr: program)
  std::size_t cell = kNoCell;    ///< flat cell / column id (kNoCell: n/a)
  std::string message;

  /// "error[use-before-init] @instr 4 cell 7: ..." rendering.
  std::string to_string() const;
};

/// Result of statically verifying one compiled program.
struct VerifyReport {
  std::vector<Diagnostic> diagnostics;
  std::size_t max_writes_per_cell = 0;  ///< endurance accounting summary
  std::size_t cells_tracked = 0;        ///< cells covered by the analysis

  /// True when no error-severity diagnostic was produced.
  bool clean() const;
  std::size_t errors() const;
  std::size_t warnings() const;
  /// Number of diagnostics carrying `rule`.
  std::size_t count(Rule rule) const;
};

}  // namespace cim::eda::verify
