/// \file wear_cost.hpp
/// \brief Static wear & cost certification of compiled micro-op programs
///        (`cim::eda::verify`).
///
/// Two certificates, both derived without touching a crossbar:
///
/// **Wear.** `certify_wear` turns a `ProgramAccess` write-bound map into a
/// per-cell lifetime statement against the `device::Technology` endurance:
/// the bound counts every programming pulse the executor can issue
/// (input-launch writes, unconditional SET/FALSE writes, and every
/// conditional logic op as if it fired), so it dominates the runtime
/// `obs::HealthMonitor` wear counters for any input data — provided writes
/// are non-verified (`CrossbarConfig::verified_writes == false`; verified
/// writes retry a stochastic number of pulses no static bound can cap).
/// The certificate reports how many program evaluations the device
/// endurance sustains, and `write_static_wear_json` exports the spatial
/// bound map in the `cim-health-heatmap-v1` schema so the existing heatmap
/// tooling renders predicted and observed wear side by side.
///
/// **Cost.** `estimate_cost` statically predicts the simulated time and
/// energy one program execution charges through `Crossbar::charge`,
/// mirroring the cost model exactly:
///
///  - every write slot (launch `write_bit`, FALSE/SET, conditional logic
///    op) occupies `t_write_ns`; a fired write costs `e_write_pj`, an
///    unfired conditional op 0.1 * `e_write_pj`;
///  - every sensed read costs `t_read_ns` and
///    `v_read^2 * g * t_read_ns * 1e-3 + e_read_pj` with the cell
///    conductance g in [g_off, g_on];
///  - internal logic-op operand reads are free (uncharged `bit_of`).
///
/// Time is input-independent and therefore exact. Energy depends on which
/// conditional ops fire, so the estimate carries a hard [min, max] bracket
/// (no-fire/g_off vs. all-fire/g_on) plus an expectation over uniformly
/// distributed inputs. Up to `kExactCostInputCap` inputs the expectation is
/// computed *exactly* by symbolic evaluation — each cell's resident value
/// is tracked as a `TruthTable` over the program inputs, and fire
/// probabilities are minterm counts, not independence approximations; past
/// the cap a per-cell probability propagation takes over. Stochastic write
/// variation and read noise are zero-mean, so measured energy converges to
/// the expectation (the `bench_fig8_eda_flow` gate checks 15%).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "device/technology.hpp"
#include "eda/verify/access.hpp"
#include "eda/verify/diagnostics.hpp"
#include "eda/verify/verify.hpp"

namespace cim::eda::verify {

/// Inputs at or below this count use exact symbolic (truth-table) cost
/// expectation; above it, independence-based probability propagation.
inline constexpr std::size_t kExactCostInputCap = 12;

/// Static cost estimate for one program execution.
struct CostEstimate {
  double time_ns = 0.0;       ///< exact: micro-op schedules are data-blind
  double energy_pj_min = 0.0; ///< no conditional fires, reads at g_off
  double energy_pj_max = 0.0; ///< every conditional fires, reads at g_on
  double energy_pj_exp = 0.0; ///< expectation over uniform inputs
  bool exact_expectation = false;  ///< expectation symbolic, not approximated
  std::size_t write_slots = 0;     ///< pulse windows charged t_write_ns
  std::size_t conditional_ops = 0; ///< data-dependent subset of write_slots
  std::size_t sensed_reads = 0;    ///< charged read_bit events
};

CostEstimate estimate_cost(const ImplyProgram& prog,
                           const device::TechnologyParams& tech);
CostEstimate estimate_cost(const MagicProgram& prog,
                           const device::TechnologyParams& tech);
CostEstimate estimate_cost(const RevampProgram& prog,
                           const device::TechnologyParams& tech);

/// Per-execution budget for `certify_cost` (0 = unconstrained dimension).
struct CostBudget {
  double time_ns = 0.0;
  double energy_pj = 0.0;
};

/// Appends a `cost-budget` error for every budget dimension the estimate's
/// worst case exceeds.
void certify_cost(const CostEstimate& cost, const CostBudget& budget,
                  VerifyReport& rep);

/// Static lifetime statement for one program placement.
struct WearCertificate {
  std::size_t max_writes_per_run = 0;  ///< worst cell, launch included
  std::size_t total_writes_per_run = 0;
  double endurance_mean = 0.0;         ///< device budget (writes per cell)
  /// Evaluations the endurance sustains on the worst cell (mean-endurance
  /// estimate; UINT64_MAX when the program never writes).
  std::uint64_t certified_evaluations = 0;
};

/// Certifies `access` against the technology endurance in `opts`. When
/// `planned_evaluations * max_writes_per_run` exceeds the device endurance,
/// a `wear-budget` error is appended per offending cell (first few) and
/// summarized.
WearCertificate certify_wear(const ProgramAccess& access,
                             const VerifyOptions& opts,
                             std::uint64_t planned_evaluations,
                             VerifyReport& rep);

/// One named program placement for the static wear heatmap export.
struct StaticWearEntry {
  std::string name;
  const ProgramAccess* access = nullptr;
};

/// Writes the per-cell static write bounds in the `cim-health-heatmap-v1`
/// JSON schema (wear = write bound, adc_samples = sensed reads per column;
/// disturb/drift/sneak planes are zero — they are runtime-only phenomena).
void write_static_wear_json(std::ostream& os,
                            const std::vector<StaticWearEntry>& entries);

}  // namespace cim::eda::verify
