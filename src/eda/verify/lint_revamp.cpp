/// \file lint_revamp.cpp
/// \brief Static verification of ReVAMP instruction streams.
///
/// The ReVAMP machine has two hazards the other families lack: the DMR
/// register file (an Apply operand may only draw from a wordline that a
/// READ latched — and latched *after* the row's last write), and the shared
/// wordline driver (an Apply's majority step depends on the stored state S,
/// so the first write into a cell must be state-independent: the RESET
/// idiom wl=0 / bl=1, or the forced-SET wl=1 / bl=0). Both are checked with
/// a per-cell abstract state plus a per-row latch/write version clock.
#include <sstream>

#include "eda/verify/cell_state.hpp"
#include "eda/verify/dataflow.hpp"
#include "eda/verify/verify.hpp"

namespace cim::eda::verify {
namespace {

/// Statically resolved operand value: 0, 1, or dynamic (-1).
int static_value(const RevampOperand& op) {
  if (op.src == RevampOperand::Src::kConst0) return op.complemented ? 1 : 0;
  if (op.src == RevampOperand::Src::kConst1) return op.complemented ? 0 : 1;
  return -1;
}

}  // namespace

VerifyReport lint_revamp(const RevampProgram& prog,
                         const VerifyOptions& opts) {
  VerifyReport rep;
  const std::size_t W = prog.wordlines;
  const std::size_t B = prog.bitlines;
  rep.cells_tracked = W * B;

  auto diag = [&rep](Severity sev, Rule rule, std::size_t instr,
                     std::size_t cell, std::string msg) {
    rep.diagnostics.push_back({sev, rule, instr, cell, std::move(msg)});
  };

  if (opts.geometry &&
      (opts.geometry->rows < W || opts.geometry->cols < B)) {
    std::ostringstream os;
    os << "program footprint " << W << "x" << B
       << " exceeds crossbar geometry " << opts.geometry->rows << "x"
       << opts.geometry->cols;
    diag(Severity::kError, Rule::kOobCell, kNoInstr, kNoCell, os.str());
  }

  CellTable cells(W * B);
  auto flat = [B](std::size_t r, std::size_t c) { return r * B + c; };

  // Per-row latch bookkeeping: which write generation a READ captured, and
  // which columns held initialized values at that point.
  struct RowLatch {
    bool latched = false;
    std::size_t at_version = 0;
    std::vector<char> valid;
  };
  std::vector<RowLatch> latches(W);
  std::vector<std::size_t> write_version(W, 0);

  // Validates one operand read (Apply wl/bl or an output tap).
  auto check_operand = [&](std::size_t i, const RevampOperand& op,
                           bool is_output, std::size_t k) {
    switch (op.src) {
      case RevampOperand::Src::kConst0:
      case RevampOperand::Src::kConst1:
        return;
      case RevampOperand::Src::kInput:
        if (op.input_index >= prog.num_inputs) {
          std::ostringstream os;
          os << (is_output ? "output " + std::to_string(k) : "operand")
             << " reads PIR bit " << op.input_index << " but the program has "
             << prog.num_inputs << " inputs";
          diag(Severity::kError, Rule::kOobCell, i, kNoCell, os.str());
        }
        return;
      case RevampOperand::Src::kDmr: {
        if (op.dmr_row >= W || op.dmr_col >= B) {
          std::ostringstream os;
          os << "DMR reference r" << op.dmr_row << ",c" << op.dmr_col
             << " outside the " << W << "x" << B << " program footprint";
          diag(Severity::kError, Rule::kOobCell, i, kNoCell, os.str());
          return;
        }
        const auto& latch = latches[op.dmr_row];
        if (!latch.latched) {
          std::ostringstream os;
          os << (is_output ? "output " + std::to_string(k) : "operand")
             << " reads DMR row " << op.dmr_row
             << " that no READ ever latched";
          diag(Severity::kError, Rule::kDmrNotLatched, i,
               flat(op.dmr_row, op.dmr_col), os.str());
          return;
        }
        if (latch.at_version != write_version[op.dmr_row]) {
          std::ostringstream os;
          os << (is_output ? "output " + std::to_string(k) : "operand")
             << " reads DMR row " << op.dmr_row
             << " latched before the row's last write — stale latch";
          diag(Severity::kError, Rule::kDmrNotLatched, i,
               flat(op.dmr_row, op.dmr_col), os.str());
          return;
        }
        if (!latch.valid[op.dmr_col]) {
          std::ostringstream os;
          os << (is_output ? "output " + std::to_string(k) : "operand")
             << " reads DMR word column " << op.dmr_col
             << " latched from a cell no Apply ever drove";
          diag(Severity::kError,
               is_output ? Rule::kOutputUnreachable : Rule::kUseBeforeInit, i,
               flat(op.dmr_row, op.dmr_col), os.str());
        }
        return;
      }
    }
  };

  // --- the abstract walk, hosted on the dataflow driver ---------------------
  run_straight_line(prog.instrs.size(), cells, [&](CellTable& cells,
                                                   std::size_t i) {
    const auto& ins = prog.instrs[i];
    if (ins.wordline >= W) {
      std::ostringstream os;
      os << (ins.kind == RevampInstruction::Kind::kRead ? "READ" : "APPLY")
         << " addresses wordline " << ins.wordline << " of " << W;
      diag(Severity::kError, Rule::kOobCell, i, kNoCell, os.str());
      return;
    }

    if (ins.kind == RevampInstruction::Kind::kRead) {
      auto& latch = latches[ins.wordline];
      latch.latched = true;
      latch.at_version = write_version[ins.wordline];
      latch.valid.assign(B, 0);
      for (std::size_t c = 0; c < B; ++c)
        latch.valid[c] =
            cells[flat(ins.wordline, c)].state != CellState::kUnknown;
      return;
    }

    // kApply.
    check_operand(i, ins.wl, false, 0);
    if (ins.columns.size() > B)
      diag(Severity::kError, Rule::kOobCell, i, kNoCell,
           "bitline vector wider than the program's " + std::to_string(B) +
               " bitlines");
    const int wl_static = static_value(ins.wl);
    bool wrote = false;
    for (std::size_t c = 0; c < std::min(ins.columns.size(), B); ++c) {
      if (!ins.columns[c]) continue;
      const auto& blop = *ins.columns[c];
      check_operand(i, blop, false, 0);
      const int bl_static = static_value(blop);
      auto& cell = cells[flat(ins.wordline, c)];
      // NS = MAJ3(S, wl, !bl): with both drivers static the next state is
      // forced (wl == !bl) or a no-op (wl == bl); with any dynamic driver
      // the result depends on S, so S must be initialized.
      if (wl_static >= 0 && bl_static >= 0) {
        if (wl_static == 1 - bl_static) {
          cell.state = wl_static ? CellState::kSet : CellState::kReset;
        }
        // wl == bl: MAJ(S, v, !v) = S — keeps the cell's state.
      } else {
        if (cell.state == CellState::kUnknown) {
          std::ostringstream os;
          os << "APPLY majority at r" << ins.wordline << ",c" << c
             << " depends on uninitialized device state (no RESET idiom ran)";
          diag(Severity::kError, Rule::kUseBeforeInit, i,
               flat(ins.wordline, c), os.str());
        }
        cell.state = CellState::kDriven;
      }
      cells.record_write(flat(ins.wordline, c), i);
      wrote = true;
    }
    if (wrote) ++write_version[ins.wordline];
  });

  // --- output taps ----------------------------------------------------------
  for (std::size_t k = 0; k < prog.outputs.size(); ++k)
    check_operand(kNoInstr, prog.outputs[k], true, k);

  // --- endurance-budget accounting ------------------------------------------
  rep.max_writes_per_cell = cells.max_writes();
  const std::size_t budget = opts.resolved_endurance_budget();
  for (std::size_t r = 0; r < W; ++r) {
    for (std::size_t c = 0; c < B; ++c) {
      const auto& ci = cells[flat(r, c)];
      if (ci.writes > budget) {
        std::ostringstream os;
        os << "cell r" << r << ",c" << c << " written " << ci.writes
           << " times per run, endurance budget " << budget;
        diag(Severity::kWarning, Rule::kEnduranceBudget, kNoInstr, flat(r, c),
             os.str());
      }
    }
  }
  return rep;
}

}  // namespace cim::eda::verify
