#include "eda/verify/wear_cost.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>

#include "eda/truth_table.hpp"
#include "obs/obs.hpp"

namespace cim::eda::verify {
namespace {

// --- cost accumulator mirroring Crossbar::charge -----------------------------

struct CostAcc {
  const device::TechnologyParams& tech;
  CostEstimate est;

  explicit CostAcc(const device::TechnologyParams& t) : tech(t) {}

  /// Unconditional programming pulse: write_bit / set_false / MAGIC SET.
  void write() {
    est.time_ns += tech.t_write_ns;
    est.energy_pj_min += tech.e_write_pj;
    est.energy_pj_max += tech.e_write_pj;
    est.energy_pj_exp += tech.e_write_pj;
    ++est.write_slots;
  }

  /// Conditional logic op: fires with probability `p_fire`, else costs the
  /// 0.1 * e_write no-fire pulse window.
  void conditional(double p_fire) {
    est.time_ns += tech.t_write_ns;
    est.energy_pj_min += 0.1 * tech.e_write_pj;
    est.energy_pj_max += tech.e_write_pj;
    est.energy_pj_exp +=
        p_fire * tech.e_write_pj + (1.0 - p_fire) * 0.1 * tech.e_write_pj;
    ++est.write_slots;
    ++est.conditional_ops;
  }

  /// Charged read_bit of a cell holding 1 with probability `p1`.
  void sensed_read(double p1) {
    auto e = [&](double g_us) {
      return tech.v_read * tech.v_read * g_us * tech.t_read_ns * 1e-3 +
             tech.e_read_pj;
    };
    est.time_ns += tech.t_read_ns;
    est.energy_pj_min += e(tech.g_off_us());
    est.energy_pj_max += e(tech.g_on_us());
    est.energy_pj_exp +=
        e(p1 * tech.g_on_us() + (1.0 - p1) * tech.g_off_us());
    ++est.sensed_reads;
  }
};

// --- value domains -----------------------------------------------------------

/// Exact domain: each cell's resident value as a truth table over the
/// program inputs; probabilities are minterm counts.
class TtDomain {
 public:
  using V = TruthTable;
  explicit TtDomain(std::size_t vars) : vars_(static_cast<int>(vars)) {}
  V constant(bool b) const { return TruthTable::constant(b, vars_); }
  V input(std::size_t i) const {
    return TruthTable::var(static_cast<int>(i), vars_);
  }
  static V not_(const V& a) { return ~a; }
  static V or_(const V& a, const V& b) { return a | b; }
  static V and_(const V& a, const V& b) { return a & b; }
  static V maj(const V& a, const V& b, const V& c) {
    return TruthTable::maj(a, b, c);
  }
  double p(const V& a) const {
    return static_cast<double>(a.count_ones()) /
           static_cast<double>(std::uint64_t{1} << vars_);
  }

 private:
  int vars_;
};

/// Approximate domain for wide programs: per-cell P(cell = 1) under an
/// independence assumption.
class ProbDomain {
 public:
  using V = double;
  explicit ProbDomain(std::size_t) {}
  V constant(bool b) const { return b ? 1.0 : 0.0; }
  V input(std::size_t) const { return 0.5; }
  static V not_(V a) { return 1.0 - a; }
  static V or_(V a, V b) { return 1.0 - (1.0 - a) * (1.0 - b); }
  static V and_(V a, V b) { return a * b; }
  static V maj(V a, V b, V c) { return a * b + a * c + b * c - 2 * a * b * c; }
  double p(V a) const { return a; }
};

// --- per-family walkers ------------------------------------------------------

template <typename D>
CostEstimate cost_imply(const ImplyProgram& prog,
                        const device::TechnologyParams& tech) {
  D dom(prog.num_inputs);
  const std::size_t n = prog.num_cells;
  std::vector<typename D::V> val(n, dom.constant(false));
  CostAcc acc(tech);
  for (std::size_t i = 0; i < std::min(prog.num_inputs, n); ++i) {
    val[i] = dom.input(i);
    acc.write();  // executor launch: write_bit per input
  }
  for (const auto& ins : prog.instrs) {
    if (ins.kind == ImplyInstr::Kind::kFalse) {
      acc.write();
      if (ins.dest < n) val[ins.dest] = dom.constant(false);
      continue;
    }
    if (ins.dest >= n || ins.src >= n) {  // oob: the linters report it;
      acc.conditional(0.5);               // keep the pulse-window cost
      continue;
    }
    // dest' = dest -> src; switches unless dest = src = 1.
    const auto fire = D::not_(D::and_(val[ins.dest], val[ins.src]));
    acc.conditional(dom.p(fire));
    val[ins.dest] = D::or_(D::not_(val[ins.dest]), val[ins.src]);
  }
  for (const auto c : prog.output_cells)
    acc.sensed_read(c < n ? dom.p(val[c]) : 0.0);
  return acc.est;
}

template <typename D>
CostEstimate cost_magic(const MagicProgram& prog,
                        const device::TechnologyParams& tech) {
  D dom(prog.num_inputs);
  const std::size_t n = prog.num_cells;
  std::vector<typename D::V> val(n, dom.constant(false));
  CostAcc acc(tech);
  for (std::size_t i = 0; i < std::min(prog.num_inputs, n); ++i) {
    val[i] = dom.input(i);
    acc.write();
  }
  for (const auto& ins : prog.instrs) {
    if (ins.kind == MagicInstr::Kind::kSet) {
      acc.write();
      if (ins.out_cell < n) val[ins.out_cell] = dom.constant(true);
      continue;
    }
    // NOR conditionally RESETs: fires iff any input holds 1.
    auto any = dom.constant(false);
    for (const auto c : ins.in_cells)
      if (c < n) any = D::or_(any, val[c]);
    acc.conditional(dom.p(any));
    if (ins.out_cell < n) val[ins.out_cell] = D::not_(any);
  }
  for (std::size_t k = 0; k < prog.output_cells.size(); ++k) {
    if (k < prog.output_is_const.size() && prog.output_is_const[k]) continue;
    const std::size_t c = prog.output_cells[k];
    acc.sensed_read(c < n ? dom.p(val[c]) : 0.0);
  }
  return acc.est;
}

template <typename D>
CostEstimate cost_revamp(const RevampProgram& prog,
                         const device::TechnologyParams& tech) {
  D dom(prog.num_inputs);
  const std::size_t W = prog.wordlines;
  const std::size_t B = prog.bitlines;
  std::vector<typename D::V> val(W * B, dom.constant(false));
  std::vector<std::optional<std::vector<typename D::V>>> dmr(W);
  CostAcc acc(tech);

  auto resolve = [&](const RevampOperand& op) -> typename D::V {
    typename D::V v = dom.constant(false);
    switch (op.src) {
      case RevampOperand::Src::kConst0: v = dom.constant(false); break;
      case RevampOperand::Src::kConst1: v = dom.constant(true); break;
      case RevampOperand::Src::kInput:
        v = op.input_index < prog.num_inputs ? dom.input(op.input_index)
                                             : dom.constant(false);
        break;
      case RevampOperand::Src::kDmr:
        if (op.dmr_row < W && dmr[op.dmr_row] && op.dmr_col < B)
          v = (*dmr[op.dmr_row])[op.dmr_col];
        break;
    }
    return op.complemented ? D::not_(v) : v;
  };

  for (const auto& ins : prog.instrs) {
    if (ins.wordline >= W) continue;  // oob: the linter reports it
    if (ins.kind == RevampInstruction::Kind::kRead) {
      std::vector<typename D::V> word;
      word.reserve(B);
      for (std::size_t c = 0; c < B; ++c) {
        acc.sensed_read(dom.p(val[ins.wordline * B + c]));
        word.push_back(val[ins.wordline * B + c]);
      }
      dmr[ins.wordline] = std::move(word);
      continue;
    }
    const auto w = resolve(ins.wl);
    for (std::size_t c = 0; c < std::min(ins.columns.size(), B); ++c) {
      if (!ins.columns[c]) continue;
      const auto b = resolve(*ins.columns[c]);  // v_bl; the cell sees !v_bl
      auto& s = val[ins.wordline * B + c];
      const auto nb = D::not_(b);
      // NS = MAJ3(S, w, !b) switches iff w == !b and w != S: disjoint cases
      // (w=1, b=0, S=0) and (w=0, b=1, S=1).
      const auto fire = D::or_(D::and_(D::and_(w, nb), D::not_(s)),
                               D::and_(D::and_(D::not_(w), b), s));
      acc.conditional(dom.p(fire));
      s = D::maj(s, w, nb);
    }
  }
  // Output taps resolve from DMR/PIR/constants — nothing charged.
  return acc.est;
}

template <typename WalkFn, typename ProbWalkFn>
CostEstimate dispatch(std::size_t num_inputs, WalkFn&& exact,
                      ProbWalkFn&& approx) {
  if (num_inputs <= kExactCostInputCap) {
    auto est = exact();
    est.exact_expectation = true;
    return est;
  }
  return approx();
}

}  // namespace

CostEstimate estimate_cost(const ImplyProgram& prog,
                           const device::TechnologyParams& tech) {
  return dispatch(
      prog.num_inputs, [&] { return cost_imply<TtDomain>(prog, tech); },
      [&] { return cost_imply<ProbDomain>(prog, tech); });
}

CostEstimate estimate_cost(const MagicProgram& prog,
                           const device::TechnologyParams& tech) {
  return dispatch(
      prog.num_inputs, [&] { return cost_magic<TtDomain>(prog, tech); },
      [&] { return cost_magic<ProbDomain>(prog, tech); });
}

CostEstimate estimate_cost(const RevampProgram& prog,
                           const device::TechnologyParams& tech) {
  return dispatch(
      prog.num_inputs, [&] { return cost_revamp<TtDomain>(prog, tech); },
      [&] { return cost_revamp<ProbDomain>(prog, tech); });
}

void certify_cost(const CostEstimate& cost, const CostBudget& budget,
                  VerifyReport& rep) {
  if (budget.time_ns > 0.0 && cost.time_ns > budget.time_ns) {
    std::ostringstream os;
    os << "static latency " << cost.time_ns << " ns exceeds the budget of "
       << budget.time_ns << " ns";
    rep.diagnostics.push_back(
        {Severity::kError, Rule::kCostBudget, kNoInstr, kNoCell, os.str()});
  }
  if (budget.energy_pj > 0.0 && cost.energy_pj_max > budget.energy_pj) {
    std::ostringstream os;
    os << "static worst-case energy " << cost.energy_pj_max
       << " pJ exceeds the budget of " << budget.energy_pj << " pJ";
    rep.diagnostics.push_back(
        {Severity::kError, Rule::kCostBudget, kNoInstr, kNoCell, os.str()});
  }
}

WearCertificate certify_wear(const ProgramAccess& access,
                             const VerifyOptions& opts,
                             std::uint64_t planned_evaluations,
                             VerifyReport& rep) {
  WearCertificate cert;
  cert.max_writes_per_run = access.max_write_bound();
  cert.total_writes_per_run = access.total_writes;
  cert.endurance_mean = device::technology_params(opts.tech).endurance_mean;
  cert.certified_evaluations =
      cert.max_writes_per_run == 0
          ? std::numeric_limits<std::uint64_t>::max()
          : static_cast<std::uint64_t>(
                cert.endurance_mean /
                static_cast<double>(cert.max_writes_per_run));
  if (planned_evaluations == 0) return cert;

  constexpr std::size_t kMaxPerCellDiags = 4;
  std::size_t offending = 0;
  for (std::size_t cell = 0; cell < access.write_bound.size(); ++cell) {
    const double lifetime = static_cast<double>(access.write_bound[cell]) *
                            static_cast<double>(planned_evaluations);
    if (lifetime <= cert.endurance_mean) continue;
    if (++offending <= kMaxPerCellDiags) {
      std::ostringstream os;
      os << "cell r" << cell / access.cols << ",c" << cell % access.cols
         << ": " << access.write_bound[cell] << " writes/run x "
         << planned_evaluations << " planned runs = " << lifetime
         << " exceeds the mean endurance of " << cert.endurance_mean;
      rep.diagnostics.push_back(
          {Severity::kError, Rule::kWearBudget, kNoInstr, cell, os.str()});
    }
  }
  if (offending > kMaxPerCellDiags) {
    std::ostringstream os;
    os << (offending - kMaxPerCellDiags)
       << " further cells exceed the endurance budget (suppressed)";
    rep.diagnostics.push_back(
        {Severity::kError, Rule::kWearBudget, kNoInstr, kNoCell, os.str()});
  }
  return cert;
}

// --- cim-health-heatmap-v1 export --------------------------------------------

namespace {

void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void json_zeros(std::ostream& os, std::size_t n) {
  os << "[";
  for (std::size_t i = 0; i < n; ++i) os << (i == 0 ? "0" : ",0");
  os << "]";
}

template <typename T>
void json_counts(std::ostream& os, const std::vector<T>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ",";
    os << static_cast<std::uint64_t>(v[i]);
  }
  os << "]";
}

}  // namespace

void write_static_wear_json(std::ostream& os,
                            const std::vector<StaticWearEntry>& entries) {
  const obs::BuildInfo info = obs::build_info();
  os << "{\"meta\":{\"git_sha\":";
  json_escape(os, info.git_sha);
  os << ",\"build_type\":";
  json_escape(os, info.build_type);
  os << ",\"schema\":\"cim-health-heatmap-v1\"},\"arrays\":[";
  bool first = true;
  for (const auto& e : entries) {
    if (e.access == nullptr) continue;
    const auto& a = *e.access;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    json_escape(os, e.name);
    os << ",\"rows\":" << a.rows << ",\"cols\":" << a.cols;
    os << ",\"wear\":";
    json_counts(os, a.write_bound);
    // Disturbs, drift, wear-out and sneak currents are runtime phenomena —
    // the static certificate has no statement about them.
    os << ",\"disturbs\":";
    json_zeros(os, a.write_bound.size());
    os << ",\"drift_us\":";
    json_zeros(os, a.write_bound.size());
    os << ",\"worn\":";
    json_zeros(os, a.write_bound.size());
    os << ",\"adc_samples\":";
    json_counts(os, a.sensed_cols);
    os << ",\"adc_clips\":";
    json_zeros(os, a.cols);
    os << ",\"sneak_ua\":";
    json_zeros(os, a.cols);
    std::size_t adc_total = 0;
    for (const auto s : a.sensed_cols) adc_total += s;
    os << ",\"summary\":{";
    os << "\"total_writes\":" << a.total_writes;
    os << ",\"total_disturbs\":0";
    os << ",\"max_wear\":" << a.max_write_bound();
    os << ",\"worn_cells\":0";
    os << ",\"total_adc_samples\":" << adc_total;
    os << ",\"total_adc_clips\":0";
    os << ",\"mean_abs_drift_us\":0";
    os << ",\"max_abs_drift_us\":0";
    os << ",\"total_sneak_ua\":0";
    os << "}}";
  }
  os << "]}\n";
}

}  // namespace cim::eda::verify
