/// \file access.hpp
/// \brief Static per-program resource access sets (`cim::eda::verify`).
///
/// The cross-tile hazard analyzer (hazard.hpp) and the wear & cost
/// certifier (wear_cost.hpp) both need the same summary of a compiled
/// micro-op program: which cells of its footprint it reads and writes, how
/// many times each cell is written per execution (an upper bound that
/// includes the executor's input-launch writes), which columns it senses
/// through the column-muxed ADC, and which wordlines its drivers occupy.
///
/// The derivation mirrors the executors exactly:
///
///  - IMPLY  (`execute_imply`):  inputs are materialized with `write_bit`
///    before the first micro-op; FALSE/IMPLY write their destination;
///    IMPLY's operand reads are internal (uncharged `bit_of`, no ADC);
///    each output cell is sensed once with `read_bit`.
///  - MAGIC  (`execute_magic`):  same launch discipline; SET/NOR write the
///    output cell, NOR reads its input cells internally; non-constant
///    outputs are sensed with `read_bit`.
///  - ReVAMP (`execute_revamp_program`): no launch writes (inputs live in
///    the PIR register). READ senses all B columns of a wordline through
///    the ADC to latch the DMR; APPLY performs one `majority_write` per
///    active column. Output taps draw from DMR/PIR/constants — no array
///    access.
///
/// Counts are per single program execution; a scheduler running the program
/// N times scales `write_bound` by N.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/revamp_isa.hpp"

namespace cim::eda::verify {

/// Static access summary of one compiled program over its local footprint
/// (rows x cols, flat index r * cols + c). Row/column indices are relative
/// to the program's placement origin.
struct ProgramAccess {
  std::size_t rows = 1;  ///< footprint height (1 for IMPLY/MAGIC rows)
  std::size_t cols = 0;  ///< footprint width in cells

  /// Upper bound on writes per cell per execution, input-launch writes
  /// included. Conditional logic-op writes (IMPLY on a set destination,
  /// MAGIC NOR that does not fire) count as full writes — the bound must
  /// dominate every data-dependent trace.
  std::vector<std::uint32_t> write_bound;
  std::vector<char> read;     ///< per-cell: some micro-op reads it
  std::vector<char> written;  ///< per-cell: some write (launch or op) hits it

  std::vector<std::uint32_t> sensed_cols;  ///< per-column ADC sample count
  std::vector<char> driven_rows;           ///< per-row: wordline driver engaged

  std::size_t total_writes = 0;  ///< sum of `write_bound`
  std::size_t sensed_reads = 0;  ///< charged `read_bit` events per execution

  std::size_t flat(std::size_t r, std::size_t c) const { return r * cols + c; }
  std::size_t max_write_bound() const;
};

/// Access summary of a compiled IMPLY program (single row).
ProgramAccess access_of(const ImplyProgram& prog);

/// Access summary of a compiled MAGIC program (single row).
ProgramAccess access_of(const MagicProgram& prog);

/// Access summary of a ReVAMP instruction stream (wordlines x bitlines).
ProgramAccess access_of(const RevampProgram& prog);

}  // namespace cim::eda::verify
