#include "eda/verify/pass.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace cim::eda::verify {

std::string_view ProgramUnit::family() const {
  if (imply != nullptr) return "IMPLY";
  if (magic != nullptr) return "MAGIC";
  if (revamp != nullptr) return "ReVAMP";
  return "?";
}

const ProgramAccess& AnalysisResults::access(const ProgramUnit& unit) {
  if (!access_) {
    if (unit.imply != nullptr)
      access_ = access_of(*unit.imply);
    else if (unit.magic != nullptr)
      access_ = access_of(*unit.magic);
    else if (unit.revamp != nullptr)
      access_ = access_of(*unit.revamp);
    else
      access_ = ProgramAccess{};
  }
  return *access_;
}

const CostEstimate& AnalysisResults::cost(const ProgramUnit& unit) {
  if (!cost_) {
    const auto tech = device::technology_params(unit.opts.tech);
    if (unit.imply != nullptr)
      cost_ = estimate_cost(*unit.imply, tech);
    else if (unit.magic != nullptr)
      cost_ = estimate_cost(*unit.magic, tech);
    else if (unit.revamp != nullptr)
      cost_ = estimate_cost(*unit.revamp, tech);
    else
      cost_ = CostEstimate{};
  }
  return *cost_;
}

namespace {

class FamilyLintPass final : public Pass {
 public:
  std::string_view name() const override { return "family-lint"; }
  void run(const ProgramUnit& unit, AnalysisResults&,
           VerifyReport& rep) override {
    VerifyReport sub;
    if (unit.imply != nullptr)
      sub = lint_imply(*unit.imply, unit.aig, unit.opts);
    else if (unit.magic != nullptr)
      sub = lint_magic(*unit.magic, unit.netlist, unit.opts);
    else if (unit.revamp != nullptr)
      sub = lint_revamp(*unit.revamp, unit.opts);
    for (auto& d : sub.diagnostics) rep.diagnostics.push_back(std::move(d));
    rep.max_writes_per_cell =
        std::max(rep.max_writes_per_cell, sub.max_writes_per_cell);
    rep.cells_tracked = std::max(rep.cells_tracked, sub.cells_tracked);
  }
};

class WearCertifyPass final : public Pass {
 public:
  std::string_view name() const override { return "wear-certify"; }
  void run(const ProgramUnit& unit, AnalysisResults& results,
           VerifyReport& rep) override {
    const auto& access = results.access(unit);
    results.set_wear(
        certify_wear(access, unit.opts, unit.planned_evaluations, rep));
    rep.max_writes_per_cell =
        std::max(rep.max_writes_per_cell, access.max_write_bound());
    rep.cells_tracked =
        std::max(rep.cells_tracked, access.rows * access.cols);
  }
};

class CostCertifyPass final : public Pass {
 public:
  std::string_view name() const override { return "cost-certify"; }
  void run(const ProgramUnit& unit, AnalysisResults& results,
           VerifyReport& rep) override {
    certify_cost(results.cost(unit), unit.cost_budget, rep);
  }
};

}  // namespace

std::unique_ptr<Pass> make_family_lint_pass() {
  return std::make_unique<FamilyLintPass>();
}
std::unique_ptr<Pass> make_wear_certify_pass() {
  return std::make_unique<WearCertifyPass>();
}
std::unique_ptr<Pass> make_cost_certify_pass() {
  return std::make_unique<CostCertifyPass>();
}

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  timings_.push_back({std::string(pass->name()), 0.0, 0});
  passes_.push_back(std::move(pass));
  return *this;
}

VerifyReport PassManager::run(const ProgramUnit& unit,
                              AnalysisResults& results) {
  results = AnalysisResults{};
  VerifyReport rep;
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    passes_[i]->run(unit, results, rep);
    const auto t1 = std::chrono::steady_clock::now();
    timings_[i].wall_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++timings_[i].runs;
  }
  return rep;
}

VerifyReport PassManager::run(const ProgramUnit& unit) {
  AnalysisResults results;
  return run(unit, results);
}

PassManager PassManager::standard() {
  PassManager pm;
  pm.add(make_family_lint_pass())
      .add(make_wear_certify_pass())
      .add(make_cost_certify_pass());
  return pm;
}

}  // namespace cim::eda::verify
