/// \file lint_imply.cpp
/// \brief Static dataflow verification of compiled IMPLY programs.
///
/// The walk mirrors the machine: FALSE resets a cell, IMPLY reads both its
/// destination and source and overwrites the destination. Liveness (when a
/// source AIG is supplied) is re-derived from scratch — fanout counts per
/// node, decremented at each AND completion exactly where compile_imply's
/// allocator consumes them — so a mapper that recycles a cell one micro-op
/// too early is caught without trusting any of its bookkeeping.
#include <sstream>

#include "eda/verify/cell_state.hpp"
#include "eda/verify/dataflow.hpp"
#include "eda/verify/verify.hpp"

namespace cim::eda::verify {
namespace {

std::string cell_desc(const ImplyProgram& prog, std::size_t c) {
  std::ostringstream os;
  if (c < prog.num_inputs)
    os << "input cell " << c;
  else if (c == prog.zero_cell)
    os << "zero cell " << c;
  else
    os << "work cell " << c;
  return os.str();
}

}  // namespace

VerifyReport lint_imply(const ImplyProgram& prog, const Aig* source,
                        const VerifyOptions& opts) {
  VerifyReport rep;
  const std::size_t n_cells = prog.num_cells;
  rep.cells_tracked = n_cells;

  auto diag = [&rep](Severity sev, Rule rule, std::size_t instr,
                     std::size_t cell, std::string msg) {
    rep.diagnostics.push_back({sev, rule, instr, cell, std::move(msg)});
  };

  // --- footprint vs. program header and target geometry ---------------------
  if (opts.geometry && (opts.geometry->cols < n_cells ||
                        opts.geometry->rows < 1)) {
    std::ostringstream os;
    os << "program footprint 1x" << n_cells << " exceeds crossbar geometry "
       << opts.geometry->rows << "x" << opts.geometry->cols;
    diag(Severity::kError, Rule::kOobCell, kNoInstr, kNoCell, os.str());
  }
  if (prog.zero_cell >= n_cells)
    diag(Severity::kError, Rule::kOobCell, kNoInstr, prog.zero_cell,
         "zero cell lies outside the program footprint");
  if (prog.num_inputs > n_cells)
    diag(Severity::kError, Rule::kOobCell, kNoInstr, kNoCell,
         "more inputs than cells in the program footprint");

  CellTable cells(n_cells);
  // The executor materializes the assignment into the input cells before the
  // first micro-op, so they start Driven.
  for (std::size_t i = 0; i < std::min(prog.num_inputs, n_cells); ++i)
    cells[i].state = CellState::kDriven;

  // --- liveness bookkeeping re-derived from the source AIG ------------------
  std::vector<std::size_t> uses;       // remaining fanouts per AIG node
  std::vector<char> consumed;          // AND nodes whose fanins were consumed
  const bool live = source != nullptr;
  if (live) {
    uses.assign(source->num_nodes(), 0);
    for (std::uint32_t i = 1; i < source->num_nodes(); ++i) {
      if (!source->is_and(i)) continue;
      const auto& nd = source->node(i);
      ++uses[Aig::node_of(nd.fanin0)];
      ++uses[Aig::node_of(nd.fanin1)];
    }
    for (const auto o : source->outputs()) ++uses[Aig::node_of(o)];
    consumed.assign(source->num_nodes(), 0);
    std::size_t k = 0;
    for (const auto in : source->input_nodes()) {
      if (k < n_cells) cells[k].node = in;
      ++k;
    }
  }

  // Consumes one fanout of `node`; at zero remaining fanouts every work cell
  // holding the node's value dies (the fanout death point, re-derived).
  auto consume_node = [&](std::uint32_t node) {
    if (node == 0) return;  // constants never die
    if (uses[node] > 0) --uses[node];
    if (uses[node] == 0) cells.kill_node(node, prog.zero_cell + 1);
  };

  auto check_read = [&](std::size_t i, std::size_t c) {
    if (c >= n_cells) {
      diag(Severity::kError, Rule::kOobCell, i, c,
           "IMPLY reads a cell outside the program footprint");
      return;
    }
    const auto& ci = cells[c];
    if (ci.state == CellState::kUnknown) {
      diag(Severity::kError, Rule::kUseBeforeInit, i, c,
           "IMPLY reads " + cell_desc(prog, c) +
               " that no FALSE/IMPLY ever initialized");
    } else if (ci.state == CellState::kDead) {
      std::ostringstream os;
      os << "IMPLY reads " << cell_desc(prog, c)
         << " after its resident value (node " << ci.node
         << ") exhausted all fanouts — cell recycled under reuse";
      diag(Severity::kError, Rule::kDeadCellRead, i, c, os.str());
    }
  };

  // Returns false when the write target is out of bounds.
  auto check_write = [&](std::size_t i, std::size_t c) {
    if (c >= n_cells) {
      diag(Severity::kError, Rule::kOobCell, i, c,
           "IMPLY writes a cell outside the program footprint");
      return false;
    }
    if (live) {
      const auto& ci = cells[c];
      if (ci.node != kNoNode && ci.node != 0 && ci.node < uses.size() &&
          ci.state == CellState::kDriven && uses[ci.node] > 0) {
        std::ostringstream os;
        os << "overwrites " << cell_desc(prog, c) << " while node " << ci.node
           << " still has " << uses[ci.node]
           << " live fanout(s) — premature recycle";
        diag(Severity::kError, Rule::kDeadCellRead, i, c, os.str());
      }
    }
    return true;
  };

  // --- the abstract walk, hosted on the dataflow driver ---------------------
  run_straight_line(prog.instrs.size(), cells, [&](CellTable& cells,
                                                   std::size_t i) {
    const auto& ins = prog.instrs[i];
    if (ins.kind == ImplyInstr::Kind::kFalse) {
      if (check_write(i, ins.dest)) {
        cells.record_write(ins.dest, i);
        cells[ins.dest].state = CellState::kReset;
        cells[ins.dest].node = kNoNode;
      }
    } else {
      check_read(i, ins.src);
      check_read(i, ins.dest);  // IMPLY is read-modify-write on dest
      if (check_write(i, ins.dest)) {
        cells.record_write(ins.dest, i);
        cells[ins.dest].state = CellState::kDriven;
        cells[ins.dest].node = kNoNode;
      }
    }
    // Completion annotation: dest now holds def_node's value.
    if (ins.def_node != kNoNode && ins.dest < n_cells) {
      cells[ins.dest].node = ins.def_node;
      if (live && ins.def_node < source->num_nodes() &&
          source->is_and(static_cast<std::uint32_t>(ins.def_node)) &&
          !consumed[ins.def_node]) {
        consumed[ins.def_node] = 1;
        const auto& nd = source->node(static_cast<std::uint32_t>(ins.def_node));
        consume_node(Aig::node_of(nd.fanin0));
        consume_node(Aig::node_of(nd.fanin1));
      }
    }
  });

  // --- output-cell reachability ---------------------------------------------
  if (live && prog.output_cells.size() != source->outputs().size())
    diag(Severity::kError, Rule::kOutputUnreachable, kNoInstr, kNoCell,
         "program output count differs from the source AIG's");
  for (std::size_t k = 0; k < prog.output_cells.size(); ++k) {
    const std::size_t c = prog.output_cells[k];
    if (c >= n_cells) {
      diag(Severity::kError, Rule::kOobCell, kNoInstr, c,
           "output " + std::to_string(k) +
               " taps a cell outside the program footprint");
      continue;
    }
    const auto& ci = cells[c];
    if (ci.state == CellState::kUnknown) {
      diag(Severity::kError, Rule::kOutputUnreachable, kNoInstr, c,
           "output " + std::to_string(k) +
               " is not dominated by any defining micro-op");
      continue;
    }
    if (ci.state == CellState::kDead) {
      diag(Severity::kError, Rule::kDeadCellRead, kNoInstr, c,
           "output " + std::to_string(k) + " taps a dead (recycled) cell");
      continue;
    }
    if (live && k < source->outputs().size()) {
      const std::uint32_t want = Aig::node_of(source->outputs()[k]);
      if (want != 0 && ci.node != kNoNode && ci.node != want) {
        std::ostringstream os;
        os << "output " << k << " taps a cell holding node " << ci.node
           << ", expected node " << want << " — stale value";
        diag(Severity::kError, Rule::kDeadCellRead, kNoInstr, c, os.str());
      }
    }
  }

  // --- endurance-budget accounting ------------------------------------------
  rep.max_writes_per_cell = cells.max_writes();
  const std::size_t budget = opts.resolved_endurance_budget();
  for (std::size_t c = 0; c < n_cells; ++c) {
    if (cells[c].writes > budget) {
      std::ostringstream os;
      os << cell_desc(prog, c) << " written " << cells[c].writes
         << " times per run, endurance budget " << budget;
      diag(Severity::kWarning, Rule::kEnduranceBudget, kNoInstr, c, os.str());
    }
  }
  return rep;
}

}  // namespace cim::eda::verify
