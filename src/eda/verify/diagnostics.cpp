#include "eda/verify/diagnostics.hpp"

#include <sstream>

namespace cim::eda::verify {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
  }
  return "unknown";
}

std::string_view rule_id(Rule rule) {
  switch (rule) {
    case Rule::kUseBeforeInit: return "use-before-init";
    case Rule::kWriteAfterWrite: return "write-after-write";
    case Rule::kDeadCellRead: return "dead-cell-read";
    case Rule::kOobCell: return "oob-cell";
    case Rule::kEnduranceBudget: return "endurance-budget";
    case Rule::kOutputUnreachable: return "output-unreachable";
    case Rule::kDmrNotLatched: return "dmr-not-latched";
    case Rule::kRawHazard: return "raw-hazard";
    case Rule::kWawHazard: return "waw-hazard";
    case Rule::kWarHazard: return "war-hazard";
    case Rule::kAdcConflict: return "shared-adc-conflict";
    case Rule::kRowDriverConflict: return "shared-row-driver";
    case Rule::kWearBudget: return "wear-budget";
    case Rule::kCostBudget: return "cost-budget";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << "[" << rule_id(rule) << "]";
  if (instr != kNoInstr) os << " @instr " << instr;
  if (cell != kNoCell) os << " cell " << cell;
  os << ": " << message;
  return os.str();
}

bool VerifyReport::clean() const { return errors() == 0; }

std::size_t VerifyReport::errors() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics)
    if (d.severity == Severity::kError) ++n;
  return n;
}

std::size_t VerifyReport::warnings() const {
  return diagnostics.size() - errors();
}

std::size_t VerifyReport::count(Rule rule) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics)
    if (d.rule == rule) ++n;
  return n;
}

}  // namespace cim::eda::verify
