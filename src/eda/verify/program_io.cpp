#include "eda/verify/program_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace cim::eda::verify {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

void dump_node(std::ostream& os, std::size_t node) {
  if (node == kNone)
    os << " @-";
  else
    os << " @" << node;
}

void dump_operand(std::ostream& os, const RevampOperand& op) {
  if (op.complemented) os << '!';
  switch (op.src) {
    case RevampOperand::Src::kConst0: os << "c0"; break;
    case RevampOperand::Src::kConst1: os << "c1"; break;
    case RevampOperand::Src::kInput: os << 'i' << op.input_index; break;
    case RevampOperand::Src::kDmr:
      os << 'd' << op.dmr_row << '.' << op.dmr_col;
      break;
  }
}

/// Tokenizer state over one parsed line.
struct Line {
  std::vector<std::string> tokens;
  bool empty() const { return tokens.empty(); }
  const std::string& head() const { return tokens.front(); }
};

Line split(const std::string& raw) {
  Line line;
  std::istringstream is(raw);
  std::string tok;
  while (is >> tok) {
    if (tok.front() == '#') break;  // comment to end of line
    line.tokens.push_back(tok);
  }
  return line;
}

bool parse_size(const std::string& tok, std::size_t& out) {
  if (tok.empty()) return false;
  std::size_t v = 0;
  for (const char ch : tok) {
    if (ch < '0' || ch > '9') return false;
    v = v * 10 + static_cast<std::size_t>(ch - '0');
  }
  out = v;
  return true;
}

bool parse_node(const std::string& tok, std::size_t& out) {
  if (tok.size() < 2 || tok[0] != '@') return false;
  if (tok == "@-") {
    out = kNone;
    return true;
  }
  return parse_size(tok.substr(1), out);
}

bool parse_operand(const std::string& tok, RevampOperand& op) {
  std::string body = tok;
  op = RevampOperand{};
  if (!body.empty() && body[0] == '!') {
    op.complemented = true;
    body.erase(0, 1);
  }
  if (body == "c0") {
    op.src = RevampOperand::Src::kConst0;
    return true;
  }
  if (body == "c1") {
    op.src = RevampOperand::Src::kConst1;
    return true;
  }
  if (body.size() >= 2 && body[0] == 'i') {
    op.src = RevampOperand::Src::kInput;
    return parse_size(body.substr(1), op.input_index);
  }
  if (body.size() >= 4 && body[0] == 'd') {
    const auto dot = body.find('.');
    if (dot == std::string::npos) return false;
    op.src = RevampOperand::Src::kDmr;
    return parse_size(body.substr(1, dot - 1), op.dmr_row) &&
           parse_size(body.substr(dot + 1), op.dmr_col);
  }
  return false;
}

std::optional<ParsedProgram> fail(std::string* error, std::size_t line_no,
                                  const std::string& what) {
  if (error != nullptr) {
    std::ostringstream os;
    os << "cim-prog-v1 parse error at line " << line_no << ": " << what;
    *error = os.str();
  }
  return std::nullopt;
}

}  // namespace

void dump_program(std::ostream& os, const ImplyProgram& prog) {
  os << "cim-prog-v1 imply\n";
  os << "inputs " << prog.num_inputs << "\n";
  os << "cells " << prog.num_cells << "\n";
  os << "zero " << prog.zero_cell << "\n";
  for (const auto& ins : prog.instrs) {
    if (ins.kind == ImplyInstr::Kind::kFalse)
      os << "false " << ins.dest;
    else
      os << "imply " << ins.dest << ' ' << ins.src;
    dump_node(os, ins.def_node);
    os << "\n";
  }
  for (const auto c : prog.output_cells) os << "output " << c << "\n";
}

void dump_program(std::ostream& os, const MagicProgram& prog) {
  os << "cim-prog-v1 magic\n";
  os << "inputs " << prog.num_inputs << "\n";
  os << "cells " << prog.num_cells << "\n";
  for (const auto& ins : prog.instrs) {
    if (ins.kind == MagicInstr::Kind::kSet) {
      os << "set " << ins.out_cell;
    } else {
      os << "nor " << ins.out_cell;
      for (const auto c : ins.in_cells) os << ' ' << c;
    }
    dump_node(os, ins.node);
    os << "\n";
  }
  for (std::size_t k = 0; k < prog.output_cells.size(); ++k) {
    if (k < prog.output_is_const.size() && prog.output_is_const[k])
      os << "output const "
         << (k < prog.const_values.size() && prog.const_values[k] ? 1 : 0)
         << "\n";
    else
      os << "output " << prog.output_cells[k] << "\n";
  }
}

void dump_program(std::ostream& os, const RevampProgram& prog) {
  os << "cim-prog-v1 revamp\n";
  os << "inputs " << prog.num_inputs << "\n";
  os << "wordlines " << prog.wordlines << "\n";
  os << "bitlines " << prog.bitlines << "\n";
  for (const auto& ins : prog.instrs) {
    if (ins.kind == RevampInstruction::Kind::kRead) {
      os << "read " << ins.wordline << "\n";
      continue;
    }
    os << "apply " << ins.wordline << ' ';
    dump_operand(os, ins.wl);
    for (std::size_t c = 0; c < ins.columns.size(); ++c) {
      if (!ins.columns[c]) continue;
      os << ' ' << c << '=';
      dump_operand(os, *ins.columns[c]);
    }
    os << "\n";
  }
  for (const auto& o : prog.outputs) {
    os << "output ";
    dump_operand(os, o);
    os << "\n";
  }
}

std::optional<ParsedProgram> parse_program(std::istream& is,
                                           std::string* error) {
  ParsedProgram out;
  bool have_header = false;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const Line line = split(raw);
    if (line.empty()) continue;
    const auto& t = line.tokens;

    if (!have_header) {
      if (t.size() != 2 || t[0] != "cim-prog-v1")
        return fail(error, line_no, "expected 'cim-prog-v1 <family>' header");
      if (t[1] == "imply")
        out.family = ProgramFamily::kImply;
      else if (t[1] == "magic")
        out.family = ProgramFamily::kMagic;
      else if (t[1] == "revamp")
        out.family = ProgramFamily::kRevamp;
      else
        return fail(error, line_no, "unknown family '" + t[1] + "'");
      have_header = true;
      continue;
    }

    const std::string& kw = line.head();
    auto size_field = [&](std::size_t& field) {
      return t.size() == 2 && parse_size(t[1], field);
    };

    if (kw == "inputs") {
      std::size_t v = 0;
      if (!size_field(v)) return fail(error, line_no, "bad 'inputs'");
      out.imply.num_inputs = out.magic.num_inputs = out.revamp.num_inputs = v;
      continue;
    }

    switch (out.family) {
      case ProgramFamily::kImply: {
        auto& p = out.imply;
        if (kw == "cells") {
          if (!size_field(p.num_cells))
            return fail(error, line_no, "bad 'cells'");
        } else if (kw == "zero") {
          if (!size_field(p.zero_cell))
            return fail(error, line_no, "bad 'zero'");
        } else if (kw == "false" || kw == "imply") {
          ImplyInstr ins;
          ins.kind = kw == "false" ? ImplyInstr::Kind::kFalse
                                   : ImplyInstr::Kind::kImply;
          const std::size_t operands = kw == "false" ? 1 : 2;
          if (t.size() < 1 + operands)
            return fail(error, line_no, "missing operands");
          if (!parse_size(t[1], ins.dest))
            return fail(error, line_no, "bad dest cell");
          if (operands == 2 && !parse_size(t[2], ins.src))
            return fail(error, line_no, "bad src cell");
          if (t.size() > 1 + operands &&
              !parse_node(t[1 + operands], ins.def_node))
            return fail(error, line_no, "bad node annotation");
          p.instrs.push_back(ins);
        } else if (kw == "output") {
          std::size_t c = 0;
          if (!size_field(c)) return fail(error, line_no, "bad 'output'");
          p.output_cells.push_back(c);
        } else {
          return fail(error, line_no, "unknown directive '" + kw + "'");
        }
        break;
      }
      case ProgramFamily::kMagic: {
        auto& p = out.magic;
        if (kw == "cells") {
          if (!size_field(p.num_cells))
            return fail(error, line_no, "bad 'cells'");
        } else if (kw == "set" || kw == "nor") {
          MagicInstr ins;
          ins.kind =
              kw == "set" ? MagicInstr::Kind::kSet : MagicInstr::Kind::kNor;
          if (t.size() < 2 || !parse_size(t[1], ins.out_cell))
            return fail(error, line_no, "bad out cell");
          std::size_t k = 2;
          for (; k < t.size() && t[k][0] != '@'; ++k) {
            std::size_t c = 0;
            if (!parse_size(t[k], c))
              return fail(error, line_no, "bad input cell");
            ins.in_cells.push_back(c);
          }
          if (k < t.size() && !parse_node(t[k], ins.node))
            return fail(error, line_no, "bad node annotation");
          if (ins.kind == MagicInstr::Kind::kNor && ins.in_cells.empty())
            return fail(error, line_no, "nor without inputs");
          p.instrs.push_back(std::move(ins));
        } else if (kw == "output") {
          if (t.size() == 3 && t[1] == "const") {
            p.output_cells.push_back(0);
            p.output_is_const.push_back(true);
            p.const_values.push_back(t[2] == "1");
          } else {
            std::size_t c = 0;
            if (!size_field(c)) return fail(error, line_no, "bad 'output'");
            p.output_cells.push_back(c);
            p.output_is_const.push_back(false);
            p.const_values.push_back(false);
          }
        } else {
          return fail(error, line_no, "unknown directive '" + kw + "'");
        }
        break;
      }
      case ProgramFamily::kRevamp: {
        auto& p = out.revamp;
        if (kw == "wordlines") {
          if (!size_field(p.wordlines))
            return fail(error, line_no, "bad 'wordlines'");
        } else if (kw == "bitlines") {
          if (!size_field(p.bitlines))
            return fail(error, line_no, "bad 'bitlines'");
        } else if (kw == "read") {
          RevampInstruction ins;
          ins.kind = RevampInstruction::Kind::kRead;
          if (t.size() != 2 || !parse_size(t[1], ins.wordline))
            return fail(error, line_no, "bad 'read'");
          p.instrs.push_back(std::move(ins));
        } else if (kw == "apply") {
          RevampInstruction ins;
          ins.kind = RevampInstruction::Kind::kApply;
          if (t.size() < 3 || !parse_size(t[1], ins.wordline))
            return fail(error, line_no, "bad 'apply' wordline");
          if (!parse_operand(t[2], ins.wl))
            return fail(error, line_no, "bad wordline operand");
          ins.columns.assign(p.bitlines, std::nullopt);
          for (std::size_t k = 3; k < t.size(); ++k) {
            const auto eq = t[k].find('=');
            if (eq == std::string::npos)
              return fail(error, line_no, "expected <col>=<operand>");
            std::size_t col = 0;
            RevampOperand op;
            if (!parse_size(t[k].substr(0, eq), col) ||
                !parse_operand(t[k].substr(eq + 1), op))
              return fail(error, line_no, "bad column operand");
            if (col >= ins.columns.size()) ins.columns.resize(col + 1);
            ins.columns[col] = op;
          }
          p.instrs.push_back(std::move(ins));
        } else if (kw == "output") {
          RevampOperand op;
          if (t.size() != 2 || !parse_operand(t[1], op))
            return fail(error, line_no, "bad 'output'");
          p.outputs.push_back(op);
        } else {
          return fail(error, line_no, "unknown directive '" + kw + "'");
        }
        break;
      }
    }
  }
  if (!have_header) return fail(error, line_no, "empty stream");
  return out;
}

}  // namespace cim::eda::verify
