/// \file verify.hpp
/// \brief Static micro-op program verifier (`cim::eda::verify`) — proves
///        hazard-freedom of compiled IMPLY / MAGIC / ReVAMP programs without
///        executing them on a crossbar (Section IV / Fig. 8 tooling).
///
/// The dynamic `FlowReport::verified` bit simulates a mapping exhaustively;
/// that catches functional bugs but scales as 2^inputs and says nothing
/// about *why* a mapping is wrong. The static verifier instead walks the
/// instruction stream once with an abstract cell-state lattice
/// (cell_state.hpp) and per-family dataflow rules:
///
///   - use-before-init      reading a cell no micro-op ever initialized
///   - write-after-write    MAGIC NOR driving a cell that was not re-SET
///   - dead-cell-read       liveness: reading a recycled/stale cell, or
///                          overwriting a cell whose source node still has
///                          live fanouts (the verifier re-derives fanout
///                          death points from the source IR, independently
///                          of the CONTRA-style allocator it checks)
///   - oob-cell             indices outside the program footprint or the
///                          target crossbar geometry
///   - endurance-budget     per-cell write counts vs. the device endurance
///   - output-unreachable   an output tap not dominated by a defining write
///   - dmr-not-latched      ReVAMP operand reading an unlatched/stale DMR row
///
/// Each analysis is linear in program size and reports structured
/// `Diagnostic`s (diagnostics.hpp) with stable rule ids — the contract the
/// `ctest -L lint` gate and the `cim-lint` summary table are built on.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "eda/aig.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/netlist.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/diagnostics.hpp"
#include "util/table.hpp"

namespace cim::eda::verify {

/// Options shared by the per-family analyses.
struct VerifyOptions {
  /// When set, program footprints are additionally checked against this
  /// physical crossbar geometry (rows x cols).
  std::optional<crossbar::Geometry> geometry;

  /// Maximum tolerated writes into a single cell per program execution.
  /// 0 selects the device endurance budget: technology_params(tech)
  /// .endurance_mean writes — generous for one run, but the accounting (and
  /// `VerifyReport::max_writes_per_cell`) lets a system integrator divide
  /// the device budget by the planned evaluation count.
  std::size_t endurance_budget = 0;

  /// Technology whose endurance backs the default budget.
  device::Technology tech = device::Technology::kSttMram;

  /// Resolved per-run write budget.
  std::size_t resolved_endurance_budget() const;
};

/// Statically verifies a compiled IMPLY program. When `source` is non-null
/// the liveness analysis re-derives AIG fanout death points and checks the
/// allocator's cell recycling against them (dead-cell-read rule); without a
/// source only program-local rules run.
VerifyReport lint_imply(const ImplyProgram& prog, const Aig* source = nullptr,
                        const VerifyOptions& opts = {});

/// Statically verifies a compiled single-row MAGIC program against its
/// NOR-only source netlist (pass nullptr for program-local rules only).
VerifyReport lint_magic(const MagicProgram& prog,
                        const Netlist* source = nullptr,
                        const VerifyOptions& opts = {});

/// Statically verifies a ReVAMP instruction stream: geometry, DMR latch
/// discipline, per-cell initialization and output reachability.
VerifyReport lint_revamp(const RevampProgram& prog,
                         const VerifyOptions& opts = {});

/// One row of the `cim-lint` summary.
struct LintEntry {
  std::string name;    ///< circuit (or program) name
  std::string family;  ///< logic family / program kind
  VerifyReport report;
};

/// Renders the `cim-lint` style summary table (one row per entry: errors,
/// warnings, worst per-cell write count, clean verdict).
util::Table lint_table(const std::vector<LintEntry>& entries);

}  // namespace cim::eda::verify
