#include "eda/verify/verify.hpp"

#include <algorithm>
#include <cmath>

#include "device/technology.hpp"

namespace cim::eda::verify {

std::size_t VerifyOptions::resolved_endurance_budget() const {
  if (endurance_budget > 0) return endurance_budget;
  // Device endurance as a per-run write ceiling: generous for one program
  // execution, but it ties the static accounting to the device model the
  // rest of the stack simulates with.
  const double e = device::technology_params(tech).endurance_mean;
  const double capped = std::min(e, 1e18);
  return static_cast<std::size_t>(std::max(1.0, capped));
}

util::Table lint_table(const std::vector<LintEntry>& entries) {
  util::Table t({"circuit", "family", "errors", "warnings", "max W/cell",
                 "first rule", "clean"});
  t.set_title("cim-lint summary");
  for (const auto& e : entries) {
    std::string first_rule = "-";
    if (!e.report.diagnostics.empty())
      first_rule = std::string(rule_id(e.report.diagnostics.front().rule));
    t.add_row({e.name, e.family, std::to_string(e.report.errors()),
               std::to_string(e.report.warnings()),
               std::to_string(e.report.max_writes_per_cell), first_rule,
               e.report.clean() ? "yes" : "NO"});
  }
  return t;
}

}  // namespace cim::eda::verify
