#include "eda/flow.hpp"

#include "eda/aig.hpp"
#include "eda/bdd.hpp"
#include "eda/esop.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/verify.hpp"
#include "obs/obs.hpp"

namespace cim::eda {
namespace {

/// Folds a static-verification report into the flow report.
void absorb_lint(FlowReport& rep, verify::VerifyReport&& lint) {
  rep.lint_errors = lint.errors();
  rep.lint_warnings = lint.warnings();
  rep.lint_clean = lint.clean();
  rep.max_writes_per_cell = lint.max_writes_per_cell;
  rep.lint_diagnostics = std::move(lint.diagnostics);
}

}  // namespace

std::string_view logic_family_name(LogicFamily family) {
  switch (family) {
    case LogicFamily::kImply: return "IMPLY";
    case LogicFamily::kMajority: return "Majority";
    case LogicFamily::kMagic: return "MAGIC";
  }
  return "unknown";
}

std::vector<LogicFamily> all_logic_families() {
  return {LogicFamily::kImply, LogicFamily::kMajority, LogicFamily::kMagic};
}

FlowReport run_flow(const std::string& name, const Netlist& circuit,
                    LogicFamily family, const FlowOptions& opts) {
  CIM_OBS_SPAN("eda.flow.run", obs::Component::kDigital);
  if (obs::enabled()) obs::Registry::global().counter("eda.flow.runs").add(1);
  FlowReport rep;
  rep.circuit = name;
  rep.family = family;

  // Phase 1: technology-independent synthesis into an AIG.
  const Aig aig = [&] {
    CIM_OBS_SPAN("eda.flow.synth", obs::Component::kDigital);
    return Aig::from_netlist(circuit);
  }();
  rep.aig_nodes = aig.num_ands();
  rep.aig_depth = aig.depth();

  // Phase 2: technology-dependent representations.
  const Mig mig = Mig::from_aig(aig);
  rep.mig_nodes = mig.num_majs();
  rep.mig_depth = mig.depth();

  if (circuit.num_outputs() == 1 && circuit.num_inputs() <= 12) {
    const auto tt = circuit.truth_tables().front();
    rep.esop_cubes = Esop::from_truth_table(tt).cube_count();
    BddManager bdd(tt.vars());
    rep.bdd_nodes = bdd.size(bdd.from_truth_table(tt));
  }

  // Phase 3: technology mapping.
  CIM_OBS_SPAN("eda.flow.map", obs::Component::kDigital);
  switch (family) {
    case LogicFamily::kImply: {
      const auto prog = compile_imply(aig, opts.reuse_cells);
      rep.devices = prog.num_cells;
      rep.delay = prog.delay();
      if (opts.verify) rep.verified = verify_imply(prog, aig);
      if (opts.lint) absorb_lint(rep, verify::lint_imply(prog, &aig));
      break;
    }
    case LogicFamily::kMajority: {
      const auto sched = schedule_revamp(mig);
      rep.devices = sched.device_count;
      rep.delay = sched.delay();
      if (opts.verify) rep.verified = verify_revamp(mig, sched);
      if (opts.lint)
        absorb_lint(rep, verify::lint_revamp(assemble_revamp(mig, sched)));
      break;
    }
    case LogicFamily::kMagic: {
      const auto nor = aig.to_netlist().to_nor_only();
      const auto prog = compile_magic(nor, opts.reuse_cells);
      rep.devices = prog.num_cells;
      rep.delay = prog.delay();
      if (opts.verify) rep.verified = verify_magic(prog, nor);
      if (opts.lint) absorb_lint(rep, verify::lint_magic(prog, &nor));
      break;
    }
  }
  rep.area_delay_product =
      static_cast<double>(rep.devices) * static_cast<double>(rep.delay);
  return rep;
}

std::vector<FlowReport> run_suite(const std::vector<BenchmarkCircuit>& suite,
                                  const FlowOptions& opts) {
  std::vector<FlowReport> reports;
  reports.reserve(suite.size() * 3);
  for (const auto& bc : suite)
    for (const auto family : all_logic_families())
      reports.push_back(run_flow(bc.name, bc.netlist, family, opts));
  return reports;
}

util::Table lint_summary(const std::vector<FlowReport>& reports) {
  std::vector<verify::LintEntry> entries;
  entries.reserve(reports.size());
  for (const auto& r : reports) {
    verify::VerifyReport vr;
    vr.diagnostics = r.lint_diagnostics;
    vr.max_writes_per_cell = r.max_writes_per_cell;
    entries.push_back(
        {r.circuit, std::string(logic_family_name(r.family)), std::move(vr)});
  }
  return verify::lint_table(entries);
}

}  // namespace cim::eda
