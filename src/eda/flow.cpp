#include "eda/flow.hpp"

#include <algorithm>

#include "eda/aig.hpp"
#include "eda/bdd.hpp"
#include "eda/esop.hpp"
#include "eda/imply_mapper.hpp"
#include "eda/magic_mapper.hpp"
#include "eda/majority_mapper.hpp"
#include "eda/mig.hpp"
#include "eda/revamp_isa.hpp"
#include "eda/verify/hazard.hpp"
#include "eda/verify/pass.hpp"
#include "eda/verify/verify.hpp"
#include "obs/obs.hpp"

namespace cim::eda {
namespace {

/// Folds a static-verification report into the flow report.
void absorb_lint(FlowReport& rep, verify::VerifyReport&& lint) {
  rep.lint_errors = lint.errors();
  rep.lint_warnings = lint.warnings();
  rep.lint_clean = lint.clean();
  rep.max_writes_per_cell = lint.max_writes_per_cell;
  rep.lint_diagnostics = std::move(lint.diagnostics);
}

/// Runs the standard static pass pipeline over `unit`, absorbing the
/// aggregated diagnostics plus the wear/cost certificates. When `keep` is
/// non-null the program's access sets (which run_suite schedules across
/// the hazard tile pool) are copied out.
void run_passes(FlowReport& rep, const verify::ProgramUnit& unit,
                verify::ProgramAccess* keep) {
  verify::PassManager pm = verify::PassManager::standard();
  verify::AnalysisResults results;
  absorb_lint(rep, pm.run(unit, results));
  const auto& cost = results.cost(unit);
  rep.static_time_ns = cost.time_ns;
  rep.static_energy_pj_min = cost.energy_pj_min;
  rep.static_energy_pj_exp = cost.energy_pj_exp;
  rep.static_energy_pj_max = cost.energy_pj_max;
  rep.static_cost_exact = cost.exact_expectation;
  const auto& access = results.access(unit);
  rep.static_max_writes_per_cell = access.max_write_bound();
  if (results.wear())
    rep.certified_evaluations = results.wear()->certified_evaluations;
  if (keep != nullptr) *keep = access;
}

/// Assigns the suite's compiled programs round-robin onto a small tile
/// pool with per-tile serialized schedule windows — the dispatch model a
/// CimSystem-style scheduler would produce. A correct mapper output must
/// yield zero findings here (the clean-schedule contract).
struct SuiteScheduleEntry {
  std::string name;
  verify::ProgramAccess access;
  double duration_ns = 0.0;
};

verify::VerifyReport analyze_suite_schedule(
    const std::vector<SuiteScheduleEntry>& entries) {
  constexpr std::size_t kPoolTiles = 4;
  verify::TilePool pool;
  const std::size_t n_tiles = std::min(kPoolTiles, std::max<std::size_t>(
                                                       1, entries.size()));
  verify::TileInfo tile;
  tile.adc_channels = 8;
  for (const auto& e : entries) {
    tile.rows = std::max(tile.rows, e.access.rows);
    tile.cols = std::max(tile.cols, e.access.cols);
  }
  pool.tiles.assign(n_tiles, tile);

  std::vector<verify::ScheduledProgram> sched;
  std::vector<double> tile_clock(n_tiles, 0.0);
  sched.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    verify::ScheduledProgram p;
    p.name = entries[i].name;
    p.tile = i % n_tiles;
    p.access = entries[i].access;
    p.duration = std::max(1.0, entries[i].duration_ns);
    p.start = tile_clock[p.tile];  // serialized per tile
    tile_clock[p.tile] += p.duration;
    sched.push_back(std::move(p));
  }
  return verify::analyze_hazards(pool, sched);
}

FlowReport run_flow_impl(const std::string& name, const Netlist& circuit,
                         LogicFamily family, const FlowOptions& opts,
                         verify::ProgramAccess* keep_access);

}  // namespace

std::string_view logic_family_name(LogicFamily family) {
  switch (family) {
    case LogicFamily::kImply: return "IMPLY";
    case LogicFamily::kMajority: return "Majority";
    case LogicFamily::kMagic: return "MAGIC";
  }
  return "unknown";
}

std::vector<LogicFamily> all_logic_families() {
  return {LogicFamily::kImply, LogicFamily::kMajority, LogicFamily::kMagic};
}

namespace {

FlowReport run_flow_impl(const std::string& name, const Netlist& circuit,
                         LogicFamily family, const FlowOptions& opts,
                         verify::ProgramAccess* keep_access) {
  CIM_OBS_SPAN("eda.flow.run", obs::Component::kDigital);
  if (obs::enabled()) obs::Registry::global().counter("eda.flow.runs").add(1);
  FlowReport rep;
  rep.circuit = name;
  rep.family = family;

  // Phase 1: technology-independent synthesis into an AIG.
  const Aig aig = [&] {
    CIM_OBS_SPAN("eda.flow.synth", obs::Component::kDigital);
    return Aig::from_netlist(circuit);
  }();
  rep.aig_nodes = aig.num_ands();
  rep.aig_depth = aig.depth();

  // Phase 2: technology-dependent representations.
  const Mig mig = Mig::from_aig(aig);
  rep.mig_nodes = mig.num_majs();
  rep.mig_depth = mig.depth();

  if (circuit.num_outputs() == 1 && circuit.num_inputs() <= 12) {
    const auto tt = circuit.truth_tables().front();
    rep.esop_cubes = Esop::from_truth_table(tt).cube_count();
    BddManager bdd(tt.vars());
    rep.bdd_nodes = bdd.size(bdd.from_truth_table(tt));
  }

  // Phase 3: technology mapping, then the static pass pipeline over the
  // mapped micro-op program (family linter + wear/cost certification).
  CIM_OBS_SPAN("eda.flow.map", obs::Component::kDigital);
  verify::ProgramUnit unit;
  unit.name = name + "/" + std::string(logic_family_name(family));
  unit.planned_evaluations = opts.planned_evaluations;
  unit.cost_budget = opts.cost_budget;
  switch (family) {
    case LogicFamily::kImply: {
      const auto prog = compile_imply(aig, opts.reuse_cells);
      rep.devices = prog.num_cells;
      rep.delay = prog.delay();
      if (opts.verify) rep.verified = verify_imply(prog, aig);
      if (opts.lint) {
        unit.imply = &prog;
        unit.aig = &aig;
        run_passes(rep, unit, keep_access);
      }
      break;
    }
    case LogicFamily::kMajority: {
      const auto sched = schedule_revamp(mig);
      rep.devices = sched.device_count;
      rep.delay = sched.delay();
      if (opts.verify) rep.verified = verify_revamp(mig, sched);
      if (opts.lint) {
        const auto prog = assemble_revamp(mig, sched);
        unit.revamp = &prog;
        run_passes(rep, unit, keep_access);
      }
      break;
    }
    case LogicFamily::kMagic: {
      const auto nor = aig.to_netlist().to_nor_only();
      const auto prog = compile_magic(nor, opts.reuse_cells);
      rep.devices = prog.num_cells;
      rep.delay = prog.delay();
      if (opts.verify) rep.verified = verify_magic(prog, nor);
      if (opts.lint) {
        unit.magic = &prog;
        unit.netlist = &nor;
        run_passes(rep, unit, keep_access);
      }
      break;
    }
  }
  rep.area_delay_product =
      static_cast<double>(rep.devices) * static_cast<double>(rep.delay);
  return rep;
}

}  // namespace

FlowReport run_flow(const std::string& name, const Netlist& circuit,
                    LogicFamily family, const FlowOptions& opts) {
  return run_flow_impl(name, circuit, family, opts, nullptr);
}

std::vector<FlowReport> run_suite(const std::vector<BenchmarkCircuit>& suite,
                                  const FlowOptions& opts) {
  std::vector<FlowReport> reports;
  reports.reserve(suite.size() * 3);
  std::vector<SuiteScheduleEntry> entries;
  entries.reserve(suite.size() * 3);
  for (const auto& bc : suite) {
    for (const auto family : all_logic_families()) {
      SuiteScheduleEntry entry;
      reports.push_back(run_flow_impl(bc.name, bc.netlist, family, opts,
                                      opts.lint ? &entry.access : nullptr));
      if (!opts.lint) continue;
      entry.name = reports.back().circuit + "/" +
                   std::string(logic_family_name(family));
      entry.duration_ns = reports.back().static_time_ns;
      entries.push_back(std::move(entry));
    }
  }
  if (entries.empty()) return reports;

  // Cross-tile hazard gate: dispatch the whole suite across a shared tile
  // pool and attribute any findings back to the originating report.
  auto hazards = analyze_suite_schedule(entries);
  for (auto& rep : reports) {
    const std::string tag =
        "'" + rep.circuit + "/" + std::string(logic_family_name(rep.family)) +
        "'";
    for (auto& d : hazards.diagnostics) {
      if (d.message.find(tag) == std::string::npos) continue;
      rep.hazard_clean = rep.hazard_clean &&
                         d.severity != verify::Severity::kError;
      ++rep.hazard_findings;
      rep.lint_diagnostics.push_back(d);
      if (d.severity == verify::Severity::kError) {
        ++rep.lint_errors;
        rep.lint_clean = false;
      } else {
        ++rep.lint_warnings;
      }
    }
  }
  return reports;
}

util::Table lint_summary(const std::vector<FlowReport>& reports) {
  std::vector<verify::LintEntry> entries;
  entries.reserve(reports.size());
  for (const auto& r : reports) {
    verify::VerifyReport vr;
    vr.diagnostics = r.lint_diagnostics;
    vr.max_writes_per_cell = r.max_writes_per_cell;
    entries.push_back(
        {r.circuit, std::string(logic_family_name(r.family)), std::move(vr)});
  }
  return verify::lint_table(entries);
}

}  // namespace cim::eda
