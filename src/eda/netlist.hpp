/// \file netlist.hpp
/// \brief Gate-level netlists: the hand-off format between logic synthesis
///        and technology mapping (Fig. 8's middle artifacts).
///
/// Nodes are stored in topological order (every fanin index precedes its
/// gate), so simulation and depth computation are single passes. The
/// `to_nor_only` transform rewrites any netlist into the multi-input
/// NOR/NOT basis MAGIC executes natively (Section IV.A).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "eda/truth_table.hpp"

namespace cim::eda {

enum class GateType {
  kInput,
  kConst0,
  kConst1,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,   ///< multi-input (MAGIC primitive)
  kXor,
  kXnor,
  kMaj,   ///< 3-input majority
};

std::string_view gate_type_name(GateType type);

/// One gate instance.
struct Gate {
  GateType type = GateType::kInput;
  std::vector<std::size_t> fanins;
};

/// A combinational netlist with named primary inputs and marked outputs.
class Netlist {
 public:
  /// Adds a primary input; returns its node id.
  std::size_t add_input(std::string name = {});
  std::size_t add_const(bool value);
  /// Adds a gate over existing node ids (must all be < the new id).
  std::size_t add_gate(GateType type, std::vector<std::size_t> fanins);
  /// Marks a node as a primary output (order preserved, repeats allowed).
  void mark_output(std::size_t node);

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  std::size_t num_nodes() const { return gates_.size(); }
  const Gate& gate(std::size_t id) const { return gates_.at(id); }
  const std::vector<std::size_t>& outputs() const { return outputs_; }
  const std::vector<std::size_t>& inputs() const { return inputs_; }
  const std::string& input_name(std::size_t k) const { return input_names_.at(k); }

  /// Gates that are neither inputs nor constants.
  std::size_t gate_count() const;
  std::size_t count(GateType type) const;
  /// Logic depth (inputs/constants at depth 0).
  std::size_t depth() const;

  /// Evaluates all outputs for one input assignment (bit i of `assignment`
  /// drives input i).
  std::vector<bool> simulate(std::uint64_t assignment) const;

  /// Truth table of each output (requires num_inputs <= 16).
  std::vector<TruthTable> truth_tables() const;

  /// Structurally rewrites into the {NOR, NOT-as-NOR1} basis. Inputs and
  /// output order are preserved; every non-input gate becomes kNor.
  Netlist to_nor_only() const;

 private:
  std::vector<Gate> gates_;
  std::vector<std::size_t> inputs_;
  std::vector<std::string> input_names_;
  std::vector<std::size_t> outputs_;
};

}  // namespace cim::eda
