#include "eda/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace cim::eda {
namespace {
// Precomputed single-word projection patterns for variables 0..5.
constexpr std::uint64_t kVarPattern[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};
}  // namespace

TruthTable::TruthTable(int vars) : vars_(vars) {
  if (vars < 0 || vars > 16)
    throw std::invalid_argument("TruthTable: vars in [0,16]");
  const std::uint64_t bits = 1ULL << vars;
  words_.assign((bits + 63) / 64, 0);
}

TruthTable TruthTable::var(int i, int vars) {
  if (i < 0 || i >= vars) throw std::invalid_argument("TruthTable::var: bad index");
  TruthTable t(vars);
  if (i < 6) {
    for (auto& w : t.words_) w = kVarPattern[i];
  } else {
    // Variable i >= 6 selects whole words periodically.
    const std::uint64_t period = 1ULL << (i - 6);
    for (std::uint64_t w = 0; w < t.words_.size(); ++w)
      if ((w / period) & 1ULL) t.words_[w] = ~0ULL;
  }
  t.mask_tail();
  return t;
}

TruthTable TruthTable::constant(bool value, int vars) {
  TruthTable t(vars);
  if (value)
    for (auto& w : t.words_) w = ~0ULL;
  t.mask_tail();
  return t;
}

TruthTable TruthTable::from_binary_string(const std::string& bits) {
  // Size must be a power of two.
  const std::uint64_t n = bits.size();
  if (n == 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("from_binary_string: size must be 2^k");
  int vars = 0;
  while ((1ULL << vars) < n) ++vars;
  TruthTable t(vars);
  for (std::uint64_t i = 0; i < n; ++i) {
    const char ch = bits[n - 1 - i];  // MSB first = highest minterm first
    if (ch != '0' && ch != '1')
      throw std::invalid_argument("from_binary_string: non-binary char");
    t.set(i, ch == '1');
  }
  return t;
}

bool TruthTable::get(std::uint64_t minterm) const {
  if (minterm >= size()) throw std::out_of_range("TruthTable::get");
  return (words_[minterm / 64] >> (minterm % 64)) & 1ULL;
}

void TruthTable::set(std::uint64_t minterm, bool value) {
  if (minterm >= size()) throw std::out_of_range("TruthTable::set");
  const std::uint64_t mask = 1ULL << (minterm % 64);
  if (value)
    words_[minterm / 64] |= mask;
  else
    words_[minterm / 64] &= ~mask;
}

void TruthTable::check_compat(const TruthTable& other) const {
  if (vars_ != other.vars_)
    throw std::invalid_argument("TruthTable: variable count mismatch");
}

void TruthTable::mask_tail() {
  if (vars_ < 6) words_[0] &= (1ULL << (1ULL << vars_)) - 1;
}

TruthTable TruthTable::operator&(const TruthTable& other) const {
  check_compat(other);
  TruthTable t(vars_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    t.words_[w] = words_[w] & other.words_[w];
  return t;
}

TruthTable TruthTable::operator|(const TruthTable& other) const {
  check_compat(other);
  TruthTable t(vars_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    t.words_[w] = words_[w] | other.words_[w];
  return t;
}

TruthTable TruthTable::operator^(const TruthTable& other) const {
  check_compat(other);
  TruthTable t(vars_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    t.words_[w] = words_[w] ^ other.words_[w];
  return t;
}

TruthTable TruthTable::operator~() const {
  TruthTable t(vars_);
  for (std::size_t w = 0; w < words_.size(); ++w) t.words_[w] = ~words_[w];
  t.mask_tail();
  return t;
}

bool TruthTable::operator==(const TruthTable& other) const {
  return vars_ == other.vars_ && words_ == other.words_;
}

TruthTable TruthTable::maj(const TruthTable& a, const TruthTable& b,
                           const TruthTable& c) {
  a.check_compat(b);
  a.check_compat(c);
  TruthTable t(a.vars_);
  for (std::size_t w = 0; w < t.words_.size(); ++w) {
    const std::uint64_t x = a.words_[w];
    const std::uint64_t y = b.words_[w];
    const std::uint64_t z = c.words_[w];
    t.words_[w] = (x & y) | (x & z) | (y & z);
  }
  return t;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  if (var < 0 || var >= vars_)
    throw std::invalid_argument("TruthTable::cofactor: bad variable");
  TruthTable t(vars_);
  const std::uint64_t stride = 1ULL << var;
  for (std::uint64_t m = 0; m < size(); ++m) {
    const bool bit_set = (m >> var) & 1ULL;
    std::uint64_t source = m;
    if (bit_set != value) source = value ? m + stride : m - stride;
    t.set(m, get(source));
  }
  return t;
}

bool TruthTable::depends_on(int var) const {
  return !(cofactor(var, false) == cofactor(var, true));
}

bool TruthTable::is_constant() const {
  const auto ones = count_ones();
  return ones == 0 || ones == size();
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t n = 0;
  for (const auto w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
  return n;
}

std::string TruthTable::to_binary_string() const {
  std::string s(size(), '0');
  for (std::uint64_t i = 0; i < size(); ++i)
    if (get(i)) s[size() - 1 - i] = '1';
  return s;
}

}  // namespace cim::eda
