#include "eda/magic_mapper.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace cim::eda {

std::size_t MagicProgram::nor_count() const {
  std::size_t n = 0;
  for (const auto& ins : instrs)
    if (ins.kind == MagicInstr::Kind::kNor) ++n;
  return n;
}

MagicProgram compile_magic(const Netlist& nl, bool reuse_cells) {
  MagicProgram prog;
  prog.num_inputs = nl.num_inputs();

  // Validate the basis: only inputs, constants and NOR gates.
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto t = nl.gate(i).type;
    if (t != GateType::kInput && t != GateType::kConst0 &&
        t != GateType::kConst1 && t != GateType::kNor)
      throw std::invalid_argument("compile_magic: netlist not NOR-only");
  }

  // Fanout counts for cell recycling.
  std::vector<int> remaining(nl.num_nodes(), 0);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i)
    for (const auto f : nl.gate(i).fanins) ++remaining[f];
  for (const auto o : nl.outputs()) ++remaining[o];

  std::size_t next_cell = prog.num_inputs;
  std::vector<std::size_t> free_list;
  auto alloc = [&]() {
    if (reuse_cells && !free_list.empty()) {
      const auto c = free_list.back();
      free_list.pop_back();
      return c;
    }
    return next_cell++;
  };

  // node -> cell. Constants have no cell: NOR over a constant-0 fanin just
  // drops it; a constant-1 fanin forces the gate to 0 (handled statically).
  std::vector<std::size_t> cell(nl.num_nodes(), SIZE_MAX);
  std::vector<int> const_value(nl.num_nodes(), -1);  // -1: not a constant
  {
    std::size_t k = 0;
    for (const auto in : nl.inputs()) cell[in] = k++;
  }

  auto release = [&](std::size_t node) {
    if (!reuse_cells) return;
    if (--remaining[node] == 0 && cell[node] != SIZE_MAX &&
        cell[node] >= prog.num_inputs)
      free_list.push_back(cell[node]);
  };

  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto& g = nl.gate(i);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        const_value[i] = 0;
        break;
      case GateType::kConst1:
        const_value[i] = 1;
        break;
      case GateType::kNor: {
        bool forced_zero = false;
        std::vector<std::size_t> ins;
        for (const auto f : g.fanins) {
          if (const_value[f] == 1) forced_zero = true;
          else if (const_value[f] == 0) continue;  // neutral for NOR
          else ins.push_back(cell[f]);
        }
        if (forced_zero) {
          const_value[i] = 0;
        } else if (ins.empty()) {
          // NOR of nothing (all fanins const-0) = 1.
          const_value[i] = 1;
        } else {
          const auto out = alloc();
          cell[i] = out;
          prog.instrs.push_back({MagicInstr::Kind::kSet, out, {}, i});
          prog.instrs.push_back({MagicInstr::Kind::kNor, out, ins, i});
        }
        for (const auto f : g.fanins) release(f);
        break;
      }
      default:
        break;  // unreachable (validated above)
    }
  }

  for (const auto o : nl.outputs()) {
    if (const_value[o] >= 0) {
      prog.output_cells.push_back(SIZE_MAX);
      prog.output_is_const.push_back(true);
      prog.const_values.push_back(const_value[o] == 1);
    } else {
      prog.output_cells.push_back(cell[o]);
      prog.output_is_const.push_back(false);
      prog.const_values.push_back(false);
    }
  }
  prog.num_cells = next_cell;
  return prog;
}

std::vector<bool> execute_magic(crossbar::Crossbar& xbar,
                                const MagicProgram& prog,
                                std::uint64_t assignment, std::size_t row) {
  if (xbar.cols() < prog.num_cells)
    throw std::invalid_argument("execute_magic: crossbar row too narrow");
  // The span mirrors the crossbar's own charge accounting so measured
  // program cost can be cross-checked against verify::estimate_cost.
  CIM_OBS_SPAN_NAMED(span, "eda.exec.magic", obs::Component::kArray);
  const double t0 = xbar.stats().time_ns;
  const double e0 = xbar.stats().energy_pj;
  for (std::size_t i = 0; i < prog.num_inputs; ++i)
    xbar.write_bit(row, i, (assignment >> i) & 1ULL);

  for (const auto& ins : prog.instrs) {
    if (ins.kind == MagicInstr::Kind::kSet) {
      xbar.write_bit(row, ins.out_cell, true);
    } else {
      xbar.magic_nor(row, ins.in_cells, ins.out_cell);
    }
  }

  std::vector<bool> out;
  out.reserve(prog.output_cells.size());
  for (std::size_t k = 0; k < prog.output_cells.size(); ++k) {
    if (prog.output_is_const[k])
      out.push_back(prog.const_values[k]);
    else
      out.push_back(xbar.read_bit(row, prog.output_cells[k]));
  }
  if (obs::enabled()) {
    span.add_sim_time_ns(xbar.stats().time_ns - t0);
    span.add_energy_pj(xbar.stats().energy_pj - e0);
  }
  return out;
}

bool verify_magic(const MagicProgram& prog, const Netlist& nl) {
  const auto tts = nl.truth_tables();
  const std::uint64_t n = 1ULL << nl.num_inputs();

  crossbar::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = prog.num_cells;
  cfg.tech = device::Technology::kSttMram;
  cfg.levels = 2;
  cfg.model_ir_drop = false;

  for (std::uint64_t a = 0; a < n; ++a) {
    crossbar::Crossbar xbar(cfg);
    const auto out = execute_magic(xbar, prog, a);
    for (std::size_t o = 0; o < tts.size(); ++o)
      if (out[o] != tts[o].get(a)) return false;
  }
  return true;
}

}  // namespace cim::eda
