#include "eda/aig.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace cim::eda {

Aig::Aig() {
  nodes_.push_back({});  // node 0 = constant 0
}

Aig::Lit Aig::add_input() {
  Node n;
  n.is_input = true;
  nodes_.push_back(n);
  const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
  inputs_.push_back(id);
  return make_lit(id, false);
}

Aig::Lit Aig::land(Lit a, Lit b) {
  // Trivial rules.
  if (a > b) std::swap(a, b);
  if (a == const0()) return const0();
  if (a == const1()) return b;
  if (a == b) return a;
  if (a == lnot(b)) return const0();

  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  if (auto it = strash_.find(key); it != strash_.end())
    return make_lit(it->second, false);

  Node n;
  n.fanin0 = a;
  n.fanin1 = b;
  nodes_.push_back(n);
  const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
  strash_.emplace(key, id);
  return make_lit(id, false);
}

Aig::Lit Aig::lxor(Lit a, Lit b) {
  // a ^ b = !(!(a & !b) & !(!a & b))
  return lnot(land(lnot(land(a, lnot(b))), lnot(land(lnot(a), b))));
}

Aig::Lit Aig::lmux(Lit sel, Lit t, Lit e) {
  return lnot(land(lnot(land(sel, t)), lnot(land(lnot(sel), e))));
}

Aig::Lit Aig::lmaj(Lit a, Lit b, Lit c) {
  return lor(land(a, b), lor(land(a, c), land(b, c)));
}

std::size_t Aig::num_ands() const {
  std::size_t n = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    if (!nodes_[i].is_input) ++n;
  return n;
}

std::size_t Aig::depth() const {
  std::vector<std::size_t> d(nodes_.size(), 0);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].is_input) continue;
    d[i] = 1 + std::max(d[node_of(nodes_[i].fanin0)],
                        d[node_of(nodes_[i].fanin1)]);
  }
  std::size_t best = 0;
  for (const auto o : outputs_) best = std::max(best, d[node_of(o)]);
  return best;
}

std::vector<TruthTable> Aig::truth_tables() const {
  if (num_inputs() > 16) throw std::invalid_argument("Aig: > 16 inputs");
  const int vars = static_cast<int>(num_inputs());
  std::vector<TruthTable> node_tt;
  node_tt.reserve(nodes_.size());
  node_tt.push_back(TruthTable::constant(false, vars));

  std::map<std::uint32_t, int> input_index;
  for (std::size_t k = 0; k < inputs_.size(); ++k)
    input_index[inputs_[k]] = static_cast<int>(k);

  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].is_input) {
      node_tt.push_back(
          TruthTable::var(input_index.at(static_cast<std::uint32_t>(i)), vars));
      continue;
    }
    auto value_of = [&](Lit l) {
      const auto& t = node_tt[node_of(l)];
      return is_complemented(l) ? ~t : t;
    };
    node_tt.push_back(value_of(nodes_[i].fanin0) & value_of(nodes_[i].fanin1));
  }

  std::vector<TruthTable> out;
  out.reserve(outputs_.size());
  for (const auto o : outputs_) {
    const auto& t = node_tt[node_of(o)];
    out.push_back(is_complemented(o) ? ~t : t);
  }
  return out;
}

namespace {

Aig::Lit shannon(Aig& aig, const TruthTable& tt, int var,
                 const std::vector<Aig::Lit>& input_lits,
                 std::map<std::string, Aig::Lit>& memo) {
  if (tt.is_constant())
    return tt.count_ones() ? aig.const1() : aig.const0();

  const auto key = tt.to_binary_string();
  if (auto it = memo.find(key); it != memo.end()) return it->second;

  // Find the next variable the function actually depends on.
  int v = var;
  while (v >= 0 && !tt.depends_on(v)) --v;
  if (v < 0)
    return tt.count_ones() ? aig.const1() : aig.const0();

  const auto hi = shannon(aig, tt.cofactor(v, true), v - 1, input_lits, memo);
  const auto lo = shannon(aig, tt.cofactor(v, false), v - 1, input_lits, memo);
  const auto res =
      aig.lmux(input_lits[static_cast<std::size_t>(v)], hi, lo);
  memo.emplace(key, res);
  return res;
}

}  // namespace

Aig Aig::from_truth_table(const TruthTable& tt) {
  Aig aig;
  std::vector<Lit> input_lits;
  input_lits.reserve(static_cast<std::size_t>(tt.vars()));
  for (int i = 0; i < tt.vars(); ++i) input_lits.push_back(aig.add_input());
  std::map<std::string, Lit> memo;
  aig.mark_output(shannon(aig, tt, tt.vars() - 1, input_lits, memo));
  return aig;
}

Aig Aig::from_netlist(const Netlist& nl) {
  Aig aig;
  std::vector<Lit> map(nl.num_nodes(), 0);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto& g = nl.gate(i);
    auto fan = [&](std::size_t k) { return map[g.fanins[k]]; };
    switch (g.type) {
      case GateType::kInput:
        map[i] = aig.add_input();
        break;
      case GateType::kConst0:
        map[i] = aig.const0();
        break;
      case GateType::kConst1:
        map[i] = aig.const1();
        break;
      case GateType::kNot:
        map[i] = lnot(fan(0));
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        Lit acc = aig.const1();
        for (std::size_t k = 0; k < g.fanins.size(); ++k)
          acc = aig.land(acc, fan(k));
        map[i] = (g.type == GateType::kNand) ? lnot(acc) : acc;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        Lit acc = aig.const0();
        for (std::size_t k = 0; k < g.fanins.size(); ++k)
          acc = aig.lor(acc, fan(k));
        map[i] = (g.type == GateType::kNor) ? lnot(acc) : acc;
        break;
      }
      case GateType::kXor:
        map[i] = aig.lxor(fan(0), fan(1));
        break;
      case GateType::kXnor:
        map[i] = lnot(aig.lxor(fan(0), fan(1)));
        break;
      case GateType::kMaj:
        map[i] = aig.lmaj(fan(0), fan(1), fan(2));
        break;
    }
  }
  for (const auto o : nl.outputs()) aig.mark_output(map[o]);
  return aig;
}

Netlist Aig::to_netlist() const {
  Netlist nl;
  std::vector<std::size_t> pos_id(nodes_.size());   // netlist id of node value
  std::vector<std::size_t> neg_id(nodes_.size(), SIZE_MAX);  // NOT of it

  const std::size_t const0_id = nl.add_const(false);
  pos_id[0] = const0_id;

  auto get = [&](Lit l, auto&& ensure_neg) -> std::size_t {
    const auto n = node_of(l);
    if (!is_complemented(l)) return pos_id[n];
    return ensure_neg(n);
  };
  auto ensure_neg = [&](std::uint32_t n) -> std::size_t {
    if (neg_id[n] == SIZE_MAX)
      neg_id[n] = nl.add_gate(GateType::kNot, {pos_id[n]});
    return neg_id[n];
  };

  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].is_input) {
      pos_id[i] = nl.add_input();
      continue;
    }
    const auto a = get(nodes_[i].fanin0, ensure_neg);
    const auto b = get(nodes_[i].fanin1, ensure_neg);
    pos_id[i] = nl.add_gate(GateType::kAnd, {a, b});
  }
  for (const auto o : outputs_) nl.mark_output(get(o, ensure_neg));
  return nl;
}

}  // namespace cim::eda
