#include "eda/imply_mapper.hpp"

#include <functional>
#include <stdexcept>

#include "obs/obs.hpp"

namespace cim::eda {
namespace {

/// Cell allocator with optional free-list recycling.
class CellAllocator {
 public:
  explicit CellAllocator(std::size_t first, bool reuse)
      : next_(first), reuse_(reuse) {}

  std::size_t alloc() {
    if (reuse_ && !free_.empty()) {
      const std::size_t c = free_.back();
      free_.pop_back();
      return c;
    }
    return next_++;
  }
  void release(std::size_t cell) {
    if (reuse_) free_.push_back(cell);
  }
  std::size_t high_water() const { return next_; }

 private:
  std::size_t next_;
  bool reuse_;
  std::vector<std::size_t> free_;
};

}  // namespace

ImplyProgram compile_imply(const Aig& aig, bool reuse_cells) {
  ImplyProgram prog;
  prog.num_inputs = aig.num_inputs();
  prog.zero_cell = prog.num_inputs;  // cell layout: inputs, z, work cells

  auto emit_false = [&prog](std::size_t d) {
    prog.instrs.push_back({ImplyInstr::Kind::kFalse, d, 0});
  };
  auto emit_imply = [&prog](std::size_t d, std::size_t s) {
    prog.instrs.push_back({ImplyInstr::Kind::kImply, d, s});
  };
  // TRUE(d) macro.
  auto emit_true = [&](std::size_t d) {
    emit_false(d);
    emit_imply(d, prog.zero_cell);
  };

  emit_false(prog.zero_cell);  // establish the constant-0 cell
  prog.instrs.back().def_node = 0;  // resident: the constant node

  CellAllocator alloc(prog.num_inputs + 1, reuse_cells);

  // Remaining uses of each *node* (either polarity); when a node's uses hit
  // zero both of its literal cells can be recycled. Complement cells are
  // derived from the positive cell, so lifetimes are tracked per node.
  std::vector<int> node_uses(aig.num_nodes(), 0);
  for (std::uint32_t i = 1; i < aig.num_nodes(); ++i) {
    if (aig.is_and(i)) {
      const auto& n = aig.node(i);
      ++node_uses[Aig::node_of(n.fanin0)];
      ++node_uses[Aig::node_of(n.fanin1)];
    }
  }
  for (const auto o : aig.outputs()) ++node_uses[Aig::node_of(o)];

  // cells[lit] = cell currently holding that literal's value (SIZE_MAX: none).
  std::vector<std::size_t> cells(aig.num_nodes() * 2, SIZE_MAX);
  cells[0] = prog.zero_cell;                      // const-0 literal
  for (const auto in : aig.input_nodes())
    cells[Aig::make_lit(in, false)] = 0;  // placeholder, fixed below
  {
    std::size_t k = 0;
    for (const auto in : aig.input_nodes())
      cells[Aig::make_lit(in, false)] = k++;
  }

  auto consume = [&](Aig::Lit l) {
    const auto node = Aig::node_of(l);
    if (node == 0 || --node_uses[node] > 0) return;
    for (const Aig::Lit lit :
         {Aig::make_lit(node, false), Aig::make_lit(node, true)}) {
      const std::size_t c = cells[lit];
      // Never recycle inputs or the zero cell.
      if (c != SIZE_MAX && c > prog.zero_cell) {
        alloc.release(c);
        cells[lit] = SIZE_MAX;
      }
    }
  };

  // Materializes literal l into a cell (creating the complement if needed).
  // The returned cell must not be written by the caller.
  std::function<std::size_t(Aig::Lit)> cell_of = [&](Aig::Lit l) -> std::size_t {
    if (cells[l] != SIZE_MAX) return cells[l];
    // Only complements should be missing: build !x from x.
    const Aig::Lit pos = Aig::lnot(l);
    if (cells[pos] == SIZE_MAX)
      throw std::logic_error("compile_imply: literal not available");
    const std::size_t d = alloc.alloc();
    emit_true(d);
    emit_imply(d, cells[pos]);  // d = value(pos)
    emit_imply(d, prog.zero_cell);  // d = !value(pos)
    prog.instrs.back().def_node = Aig::node_of(pos);
    cells[l] = d;
    return d;
  };

  // Handle the degenerate const-1 literal.
  auto ensure_const1 = [&]() -> std::size_t {
    if (cells[1] == SIZE_MAX) {
      const std::size_t d = alloc.alloc();
      emit_true(d);
      prog.instrs.back().def_node = 0;  // resident: the constant node
      cells[1] = d;
    }
    return cells[1];
  };

  for (std::uint32_t i = 1; i < aig.num_nodes(); ++i) {
    if (!aig.is_and(i)) continue;
    const auto& n = aig.node(i);

    // AND(x, y) = !(!x | !y): u = COPY(x); u = IMPLY(u, cell(!y)) -> !x|!y;
    // u = NOT(u).
    const std::size_t cx = cell_of(n.fanin0);
    const std::size_t cny = cell_of(Aig::lnot(n.fanin1));
    const std::size_t u = alloc.alloc();
    emit_true(u);                    // u = 1
    emit_imply(u, cx);               // u = x          (COPY)
    emit_imply(u, cny);              // u = !x | !y  = NAND(x,y)
    emit_imply(u, prog.zero_cell);   // u = x & y      (NOT)
    prog.instrs.back().def_node = i;
    cells[Aig::make_lit(i, false)] = u;

    consume(n.fanin0);
    consume(n.fanin1);
  }

  // Outputs: make sure each output literal has a cell.
  for (const auto o : aig.outputs()) {
    std::size_t c;
    if (o == 0) {
      c = prog.zero_cell;
    } else if (o == 1) {
      c = ensure_const1();
    } else {
      c = cell_of(o);
    }
    prog.output_cells.push_back(c);
  }

  prog.num_cells = alloc.high_water();
  return prog;
}

std::vector<bool> execute_imply(crossbar::Crossbar& xbar,
                                const ImplyProgram& prog,
                                std::uint64_t assignment, std::size_t row) {
  if (xbar.cols() < prog.num_cells)
    throw std::invalid_argument("execute_imply: crossbar row too narrow");
  // The span mirrors the crossbar's own charge accounting so measured
  // program cost can be cross-checked against verify::estimate_cost.
  CIM_OBS_SPAN_NAMED(span, "eda.exec.imply", obs::Component::kArray);
  const double t0 = xbar.stats().time_ns;
  const double e0 = xbar.stats().energy_pj;
  for (std::size_t i = 0; i < prog.num_inputs; ++i)
    xbar.write_bit(row, i, (assignment >> i) & 1ULL);

  for (const auto& ins : prog.instrs) {
    if (ins.kind == ImplyInstr::Kind::kFalse)
      xbar.set_false(row, ins.dest);
    else
      xbar.imply(row, ins.dest, row, ins.src);
  }

  std::vector<bool> out;
  out.reserve(prog.output_cells.size());
  for (const auto c : prog.output_cells) out.push_back(xbar.read_bit(row, c));
  if (obs::enabled()) {
    span.add_sim_time_ns(xbar.stats().time_ns - t0);
    span.add_energy_pj(xbar.stats().energy_pj - e0);
  }
  return out;
}

bool verify_imply(const ImplyProgram& prog, const Aig& aig) {
  const auto tts = aig.truth_tables();
  const std::uint64_t n = 1ULL << aig.num_inputs();

  crossbar::CrossbarConfig cfg;
  cfg.rows = 1;
  cfg.cols = prog.num_cells;
  cfg.tech = device::Technology::kSttMram;  // tight, binary, low-noise
  cfg.levels = 2;
  cfg.model_ir_drop = false;

  for (std::uint64_t a = 0; a < n; ++a) {
    crossbar::Crossbar xbar(cfg);
    const auto out = execute_imply(xbar, prog, a);
    for (std::size_t o = 0; o < tts.size(); ++o)
      if (out[o] != tts[o].get(a)) return false;
  }
  return true;
}

}  // namespace cim::eda
