/// \file majority_mapper.hpp
/// \brief Technology mapping onto ReVAMP-style in-array majority logic
///        (Section IV.A/IV.C, refs [35], [67], [68]).
///
/// Device primitive (Section IV.A):  NS_x = MAJ3(S_x, V_wl, !V_bl) — the
/// stored state is the third input; the wordline voltage is shared by every
/// cell of a row, the bitline voltage is per-column.
///
/// The mapper schedules an MIG level by level, one crossbar row per level,
/// one column per node:
///   - READ step: latch the previous levels' values into the instruction
///     register (one step per producer row read);
///   - INIT step: reset the level's row and write each node's *preloaded*
///     fanin through the per-column bitlines (V_wl = 1 writes any word into
///     a zeroed row: MAJ(0, 1, b) = b) — 2 steps;
///   - MAJ steps: apply the remaining two fanins; since V_wl is shared, the
///     nodes of the level are greedily grouped by a common fanin literal,
///     one apply step per group (the shared literal rides V_wl, the
///     per-node literal rides the bitlines).
/// With unconstrained devices and single-group levels this approaches the
/// delay-optimal "MIG levels + 1" result of [67], which is also reported.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "eda/mig.hpp"

namespace cim::eda {

/// Per-node placement and operand roles.
struct MajNodePlan {
  std::uint32_t node = 0;       ///< MIG node id
  std::size_t level = 0;        ///< 1-based MIG level
  std::size_t row = 0;          ///< crossbar row assigned to the level
  std::size_t col = 0;          ///< column within the level's row
  Mig::Lit preload = 0;         ///< fanin written at INIT
  Mig::Lit shared = 0;          ///< fanin applied via V_wl (group key)
  Mig::Lit per_column = 0;      ///< fanin applied via the bitline
};

/// A compiled ReVAMP schedule.
struct MajSchedule {
  std::size_t num_levels = 0;
  std::size_t device_count = 0;     ///< total cells across level rows
  std::size_t rows = 0;             ///< crossbar rows used
  std::size_t max_row_width = 0;
  std::size_t read_steps = 0;
  std::size_t init_steps = 0;
  std::size_t maj_steps = 0;        ///< apply groups across all levels
  std::vector<MajNodePlan> plan;
  std::vector<std::pair<std::size_t, std::size_t>> output_cells;  ///< (row,col)
  std::vector<bool> output_complemented;

  std::size_t delay() const { return read_steps + init_steps + maj_steps; }
  /// The unconstrained-device lower bound of [67].
  std::size_t delay_lower_bound() const { return num_levels + 1; }
};

/// Schedules an MIG (greedy shared-fanin grouping per level).
MajSchedule schedule_revamp(const Mig& mig);

/// Functionally executes the schedule for one input assignment following
/// the hardware semantics (preload write, then grouped majority applies);
/// returns the output values.
std::vector<bool> execute_revamp(const Mig& mig, const MajSchedule& sched,
                                 std::uint64_t assignment);

/// Exhaustive equivalence check of the schedule against the MIG.
bool verify_revamp(const Mig& mig, const MajSchedule& sched);

/// Executes the schedule on a physical crossbar: every node is realized as
/// a cell in its (row, col) placement, computed with the device's native
/// RESET / preload / MAJ3 write operations (Section IV.A); node operands
/// are latched by reading the producing cells. Returns the output values.
std::vector<bool> execute_revamp_on_crossbar(crossbar::Crossbar& xbar,
                                             const Mig& mig,
                                             const MajSchedule& sched,
                                             std::uint64_t assignment);

/// Exhaustive crossbar-level verification (builds a low-noise binary array
/// sized to the schedule).
bool verify_revamp_on_crossbar(const Mig& mig, const MajSchedule& sched);

}  // namespace cim::eda
