/// \file bdd.hpp
/// \brief Reduced Ordered Binary Decision Diagrams (Section IV.B, [57]) —
///        one of the intermediate representations the synthesis flow can
///        target before technology mapping.
///
/// A small ITE-based package: unique table for canonicity, computed table
/// for memoized ITE. Complement edges are not used (plain ROBDD), which
/// keeps the package simple and canonical per variable order.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "eda/truth_table.hpp"

namespace cim::eda {

/// A shared ROBDD manager for a fixed number of variables.
class BddManager {
 public:
  using Ref = std::uint32_t;  ///< index into the node table

  explicit BddManager(int vars);

  int vars() const { return vars_; }
  Ref zero() const { return 0; }
  Ref one() const { return 1; }
  /// BDD of variable i.
  Ref var(int i);

  Ref bnot(Ref f);
  Ref band(Ref f, Ref g);
  Ref bor(Ref f, Ref g);
  Ref bxor(Ref f, Ref g);
  /// if-then-else: the universal connective.
  Ref ite(Ref f, Ref g, Ref h);

  /// Builds the BDD of a truth table (must have the manager's var count).
  Ref from_truth_table(const TruthTable& tt);
  /// Expands a BDD back into a truth table.
  TruthTable to_truth_table(Ref f) const;

  /// Nodes reachable from f (excluding terminals) — the BDD size metric.
  std::size_t size(Ref f) const;
  /// Number of satisfying assignments of f.
  std::uint64_t sat_count(Ref f) const;
  /// Total nodes allocated in the manager.
  std::size_t table_size() const { return nodes_.size(); }

  struct Node {
    int var = -1;   ///< -1 for terminals
    Ref low = 0;
    Ref high = 0;
  };
  const Node& node(Ref f) const { return nodes_.at(f); }
  bool is_terminal(Ref f) const { return f <= 1; }

 private:
  Ref make_node(int var, Ref low, Ref high);
  bool eval(Ref f, std::uint64_t assignment) const;

  int vars_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, Ref> unique_;
  std::unordered_map<std::uint64_t, Ref> computed_;  // ITE cache
};

}  // namespace cim::eda
