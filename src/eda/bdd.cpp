#include "eda/bdd.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace cim::eda {

BddManager::BddManager(int vars) : vars_(vars) {
  if (vars < 0 || vars > 20)
    throw std::invalid_argument("BddManager: vars in [0,20]");
  nodes_.push_back({-1, 0, 0});  // 0 terminal
  nodes_.push_back({-1, 1, 1});  // 1 terminal
}

BddManager::Ref BddManager::make_node(int var, Ref low, Ref high) {
  if (low == high) return low;  // reduction rule
  const std::uint64_t key = (static_cast<std::uint64_t>(var) << 48) |
                            (static_cast<std::uint64_t>(low) << 24) | high;
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  nodes_.push_back({var, low, high});
  const Ref id = static_cast<Ref>(nodes_.size() - 1);
  unique_.emplace(key, id);
  return id;
}

BddManager::Ref BddManager::var(int i) {
  if (i < 0 || i >= vars_) throw std::invalid_argument("BddManager::var");
  return make_node(i, zero(), one());
}

BddManager::Ref BddManager::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == one()) return g;
  if (f == zero()) return h;
  if (g == h) return g;
  if (g == one() && h == zero()) return f;

  const std::uint64_t key = (static_cast<std::uint64_t>(f) << 42) |
                            (static_cast<std::uint64_t>(g) << 21) | h;
  if (auto it = computed_.find(key); it != computed_.end()) return it->second;

  // Top variable among the three. The manager's variable order is
  // *descending* index: variable vars-1 sits at the root, variable 0 just
  // above the terminals (matching the truth-table construction, which
  // splits the minterm range on its most significant bit first).
  int top = -1;
  for (const Ref r : {f, g, h})
    if (!is_terminal(r)) top = std::max(top, nodes_[r].var);

  auto cofactor = [&](Ref r, bool value) {
    if (is_terminal(r) || nodes_[r].var != top) return r;
    return value ? nodes_[r].high : nodes_[r].low;
  };

  const Ref hi = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const Ref lo = ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const Ref res = make_node(top, lo, hi);
  computed_.emplace(key, res);
  return res;
}

BddManager::Ref BddManager::bnot(Ref f) { return ite(f, zero(), one()); }
BddManager::Ref BddManager::band(Ref f, Ref g) { return ite(f, g, zero()); }
BddManager::Ref BddManager::bor(Ref f, Ref g) { return ite(f, one(), g); }
BddManager::Ref BddManager::bxor(Ref f, Ref g) { return ite(f, bnot(g), g); }

BddManager::Ref BddManager::from_truth_table(const TruthTable& tt) {
  if (tt.vars() != vars_)
    throw std::invalid_argument("from_truth_table: var count mismatch");
  // Bottom-up over minterm blocks: standard recursive construction by
  // splitting on the highest variable.
  struct Builder {
    BddManager& mgr;
    const TruthTable& tt;
    Ref build(std::uint64_t lo, std::uint64_t hi, int var) {
      if (var < 0) return tt.get(lo) ? mgr.one() : mgr.zero();
      const std::uint64_t mid = lo + ((hi - lo) >> 1);
      const Ref l = build(lo, mid, var - 1);
      const Ref h = build(mid, hi, var - 1);
      return mgr.make_node(var, l, h);
    }
  };
  Builder b{*this, tt};
  return b.build(0, tt.size(), vars_ - 1);
}

bool BddManager::eval(Ref f, std::uint64_t assignment) const {
  while (!is_terminal(f)) {
    const auto& n = nodes_[f];
    f = ((assignment >> n.var) & 1ULL) ? n.high : n.low;
  }
  return f == one();
}

TruthTable BddManager::to_truth_table(Ref f) const {
  TruthTable tt(vars_);
  for (std::uint64_t m = 0; m < tt.size(); ++m)
    if (eval(f, m)) tt.set(m, true);
  return tt;
}

std::size_t BddManager::size(Ref f) const {
  std::set<Ref> seen;
  std::vector<Ref> stack = {f};
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (is_terminal(r) || !seen.insert(r).second) continue;
    stack.push_back(nodes_[r].low);
    stack.push_back(nodes_[r].high);
  }
  return seen.size();
}

std::uint64_t BddManager::sat_count(Ref f) const {
  // Memoized count of satisfying paths, scaled by skipped variables.
  // Variable order is descending: below a node with var v live variables
  // v-1 .. 0 (terminals act as var -1).
  std::unordered_map<Ref, double> memo;
  auto count = [&](auto&& self, Ref r) -> double {
    if (r == zero()) return 0.0;
    if (r == one()) return 1.0;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const auto& n = nodes_[r];
    auto weight = [&](Ref child) {
      const int child_var = is_terminal(child) ? -1 : nodes_[child].var;
      return self(self, child) *
             static_cast<double>(1ULL << (n.var - child_var - 1));
    };
    const double c = weight(n.low) + weight(n.high);
    memo.emplace(r, c);
    return c;
  };
  const int top = is_terminal(f) ? -1 : nodes_[f].var;
  const double total =
      count(count, f) * static_cast<double>(1ULL << (vars_ - 1 - top));
  return static_cast<std::uint64_t>(total);
}

}  // namespace cim::eda
