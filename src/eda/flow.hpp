/// \file flow.hpp
/// \brief The end-to-end EDA flow of Fig. 8: technology-independent
///        synthesis -> technology-dependent optimization -> technology
///        mapping, for each of the three ReRAM logic families of
///        Section IV.A (IMPLY, Majority/ReVAMP, MAGIC).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "eda/bench_circuits.hpp"
#include "eda/netlist.hpp"
#include "eda/verify/diagnostics.hpp"
#include "eda/verify/wear_cost.hpp"
#include "util/table.hpp"

namespace cim::eda {

/// The mapping targets (stateful logic families).
enum class LogicFamily { kImply, kMajority, kMagic };
std::string_view logic_family_name(LogicFamily family);
std::vector<LogicFamily> all_logic_families();

/// Result of mapping one circuit to one family.
struct FlowReport {
  std::string circuit;
  LogicFamily family = LogicFamily::kImply;
  // Synthesis statistics.
  std::size_t aig_nodes = 0;
  std::size_t aig_depth = 0;
  std::size_t mig_nodes = 0;
  std::size_t mig_depth = 0;
  std::size_t esop_cubes = 0;   ///< single-output circuits only (else 0)
  std::size_t bdd_nodes = 0;    ///< single-output circuits only (else 0)
  // Mapping metrics.
  std::size_t devices = 0;      ///< area (cells)
  std::size_t delay = 0;        ///< steps
  double area_delay_product = 0.0;
  bool verified = false;        ///< mapping simulated == specification
  // Static verification (the `cim-lint` pass pipeline; see
  // eda/verify/pass.hpp). Diagnostics aggregate the family linter plus the
  // wear and cost certification passes.
  bool lint_clean = true;       ///< no static-analysis errors
  std::size_t lint_errors = 0;
  std::size_t lint_warnings = 0;
  std::size_t max_writes_per_cell = 0;
  std::vector<verify::Diagnostic> lint_diagnostics;
  // Static wear certificate (eda/verify/wear_cost.hpp): per-cell write
  // bounds with the executor's input-launch writes included.
  std::size_t static_max_writes_per_cell = 0;
  std::uint64_t certified_evaluations = 0;  ///< endurance / worst-cell bound
  // Static cost estimate for one program execution. Time is exact (the
  // micro-op schedule is data-blind); energy carries a hard [min, max]
  // bracket and a uniform-input expectation (exact up to
  // verify::kExactCostInputCap inputs).
  double static_time_ns = 0.0;
  double static_energy_pj_min = 0.0;
  double static_energy_pj_exp = 0.0;
  double static_energy_pj_max = 0.0;
  bool static_cost_exact = false;
  // Cross-tile hazard section (eda/verify/hazard.hpp): run_suite schedules
  // every compiled program of the suite across a shared tile pool and
  // attributes findings back to the reports.
  bool hazard_clean = true;
  std::size_t hazard_findings = 0;
};

/// Options for the flow.
struct FlowOptions {
  bool reuse_cells = true;   ///< area-constrained mapping for IMPLY/MAGIC
  bool verify = true;        ///< exhaustively simulate each mapping
  bool lint = true;          ///< run the static pass pipeline per program
  /// Planned lifetime evaluations for the wear-budget gate (0: report the
  /// certificate without gating).
  std::uint64_t planned_evaluations = 0;
  /// Per-execution cost budget for the cost-budget gate (0-dimensions are
  /// unconstrained).
  verify::CostBudget cost_budget{};
};

/// Runs the full flow for one circuit and one family.
FlowReport run_flow(const std::string& name, const Netlist& circuit,
                    LogicFamily family, const FlowOptions& opts = {});

/// Runs every family over every circuit of a suite.
std::vector<FlowReport> run_suite(const std::vector<BenchmarkCircuit>& suite,
                                  const FlowOptions& opts = {});

/// Renders the `cim-lint` summary over a batch of flow reports.
util::Table lint_summary(const std::vector<FlowReport>& reports);

}  // namespace cim::eda
