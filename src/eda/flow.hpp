/// \file flow.hpp
/// \brief The end-to-end EDA flow of Fig. 8: technology-independent
///        synthesis -> technology-dependent optimization -> technology
///        mapping, for each of the three ReRAM logic families of
///        Section IV.A (IMPLY, Majority/ReVAMP, MAGIC).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "eda/bench_circuits.hpp"
#include "eda/netlist.hpp"
#include "eda/verify/diagnostics.hpp"
#include "util/table.hpp"

namespace cim::eda {

/// The mapping targets (stateful logic families).
enum class LogicFamily { kImply, kMajority, kMagic };
std::string_view logic_family_name(LogicFamily family);
std::vector<LogicFamily> all_logic_families();

/// Result of mapping one circuit to one family.
struct FlowReport {
  std::string circuit;
  LogicFamily family = LogicFamily::kImply;
  // Synthesis statistics.
  std::size_t aig_nodes = 0;
  std::size_t aig_depth = 0;
  std::size_t mig_nodes = 0;
  std::size_t mig_depth = 0;
  std::size_t esop_cubes = 0;   ///< single-output circuits only (else 0)
  std::size_t bdd_nodes = 0;    ///< single-output circuits only (else 0)
  // Mapping metrics.
  std::size_t devices = 0;      ///< area (cells)
  std::size_t delay = 0;        ///< steps
  double area_delay_product = 0.0;
  bool verified = false;        ///< mapping simulated == specification
  // Static verification (the `cim-lint` pass; see eda/verify/verify.hpp).
  bool lint_clean = true;       ///< no static-analysis errors
  std::size_t lint_errors = 0;
  std::size_t lint_warnings = 0;
  std::size_t max_writes_per_cell = 0;
  std::vector<verify::Diagnostic> lint_diagnostics;
};

/// Options for the flow.
struct FlowOptions {
  bool reuse_cells = true;   ///< area-constrained mapping for IMPLY/MAGIC
  bool verify = true;        ///< exhaustively simulate each mapping
  bool lint = true;          ///< statically verify each compiled program
};

/// Runs the full flow for one circuit and one family.
FlowReport run_flow(const std::string& name, const Netlist& circuit,
                    LogicFamily family, const FlowOptions& opts = {});

/// Runs every family over every circuit of a suite.
std::vector<FlowReport> run_suite(const std::vector<BenchmarkCircuit>& suite,
                                  const FlowOptions& opts = {});

/// Renders the `cim-lint` summary over a batch of flow reports.
util::Table lint_summary(const std::vector<FlowReport>& reports);

}  // namespace cim::eda
