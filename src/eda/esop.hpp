/// \file esop.hpp
/// \brief Exclusive Sum-of-Products representation (Section IV.B, [56]) via
///        the positive-polarity Reed-Muller (PPRM) expansion.
///
/// ESOPs matter for ReRAM mapping because Bhattacharjee et al. [69] derive
/// their crossbar lower bound (3 wordlines x 2 bitlines) for functions in
/// ESOP form; the cube count drives the LUT/area-constrained mapping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eda/truth_table.hpp"

namespace cim::eda {

/// One product term: the AND of the variables whose bit is set in `mask`
/// (PPRM: all literals positive; mask 0 = the constant-1 cube).
struct Cube {
  std::uint32_t mask = 0;

  bool eval(std::uint64_t assignment) const {
    return (assignment & mask) == mask;
  }
};

/// An exclusive (XOR) sum of positive cubes.
class Esop {
 public:
  /// Computes the (unique) PPRM expansion of a truth table via the
  /// butterfly Reed-Muller transform.
  static Esop from_truth_table(const TruthTable& tt);

  int vars() const { return vars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  std::size_t cube_count() const { return cubes_.size(); }
  /// Total literal count (sum of cube sizes) — the area proxy.
  std::size_t literal_count() const;

  bool eval(std::uint64_t assignment) const;
  TruthTable to_truth_table() const;

  /// Human-readable form, e.g. "1 ^ x0 ^ x0.x2".
  std::string to_string() const;

 private:
  int vars_ = 0;
  std::vector<Cube> cubes_;
};

}  // namespace cim::eda
